//! Pyramid Blending — Burt & Adelson multiresolution splines (§4, Fig. 8).
//!
//! Blends two images under a mask by building Gaussian pyramids of both
//! inputs and the mask, blending Laplacian levels, and collapsing. With
//! four pyramid levels this produces the ~44-stage graph of the paper's
//! Fig. 8 (↓x/↓y pairs per pyramid, ↑x/↑y pairs in the Laplacian and
//! collapse phases).
//!
//! Borders: the paper's DSL handles boundaries with case conditions; we
//! shrink each level's domain by the exact margin its accesses need (the
//! shared [`crate::pyr_util`] machinery, verified by the compiler's static
//! bounds checker). Inputs are grayscale — the paper's color version
//! processes three identical channels.

use crate::pyr_util::{max_margin, ref_down, ref_up, Plane, PyrBuilder, St, M4};
use crate::{Benchmark, Scale};
use polymage_ir::*;
use polymage_vm::Buffer;

/// Number of pyramid levels.
pub const LEVELS: usize = 4;

/// Builds the DSL specification. Inputs: images `A` and `B` plus blend mask
/// `M`, all `(R, C)` with `R`, `C` divisible by `2^LEVELS`.
pub fn build() -> Pipeline {
    let mut pb = PipelineBuilder::new("pyramid_blending");
    let r = pb.param("R");
    let c = pb.param("C");
    let dims = vec![PAff::param(r), PAff::param(c)];
    let ia = pb.image("A", ScalarType::Float, dims.clone());
    let ib = pb.image("B", ScalarType::Float, dims.clone());
    let im = pb.image("M", ScalarType::Float, dims);
    let x = pb.var("x");
    let y = pb.var("y");
    let mut b = PyrBuilder {
        p: pb,
        r,
        c,
        x,
        y,
        extra: None,
    };

    // level-0 copy stages (point-wise; inlined by the compiler)
    let mk0 = |b: &mut PyrBuilder, name: &str, img: ImageId| {
        let dom = b.dom(0, 0, (0, 0, 0, 0));
        let f = b.p.func(name, &dom, ScalarType::Float);
        b.p.define(
            f,
            vec![Case::always(Expr::at(
                img,
                [Expr::from(b.x), Expr::from(b.y)],
            ))],
        )
        .unwrap();
        St {
            f,
            lvl: 0,
            m: (0, 0, 0, 0),
        }
    };
    let ga0 = mk0(&mut b, "GA0", ia);
    let gb0 = mk0(&mut b, "GB0", ib);
    let gm0 = mk0(&mut b, "GM0", im);

    // Gaussian pyramids
    let mut ga = vec![ga0];
    let mut gb = vec![gb0];
    let mut gm = vec![gm0];
    for l in 1..LEVELS {
        let a = b.downsample(&format!("GA{l}"), ga[l - 1]);
        ga.push(a);
        let bb = b.downsample(&format!("GB{l}"), gb[l - 1]);
        gb.push(bb);
        let m = b.downsample(&format!("GM{l}"), gm[l - 1]);
        gm.push(m);
    }

    // Laplacian levels + blending
    let mut blend: Vec<St> = Vec::new();
    for l in 0..LEVELS {
        let (la, lb) = if l == LEVELS - 1 {
            (ga[l], gb[l])
        } else {
            let ua = b.upsample(&format!("LA{l}"), ga[l + 1]);
            let la = b.combine(&format!("LA{l}"), &[ga[l], ua], |e| {
                e[0].clone() - e[1].clone()
            });
            let ub = b.upsample(&format!("LB{l}"), gb[l + 1]);
            let lb = b.combine(&format!("LB{l}"), &[gb[l], ub], |e| {
                e[0].clone() - e[1].clone()
            });
            (la, lb)
        };
        let bl = b.combine(&format!("blend{l}"), &[gm[l], la, lb], |e| {
            e[0].clone() * e[1].clone() + (1.0 - e[0].clone()) * e[2].clone()
        });
        blend.push(bl);
    }

    // Collapse
    let mut out = blend[LEVELS - 1];
    for l in (0..LEVELS - 1).rev() {
        let up = b.upsample(&format!("out{l}"), out);
        out = b.combine(&format!("out{l}"), &[blend[l], up], |e| {
            e[0].clone() + e[1].clone()
        });
    }
    let final_dom = b.dom(0, 0, out.m);
    let f = b.p.func("blended", &final_dom, ScalarType::Float);
    b.p.define(
        f,
        vec![Case::always(
            Expr::at(out.f, [Expr::from(b.x), Expr::from(b.y)]).clamp(0.0, 1.0),
        )],
    )
    .unwrap();
    b.p.finish(&[f]).unwrap()
}

/// The Pyramid Blending benchmark.
pub struct PyramidBlend {
    pipeline: Pipeline,
    rows: i64,
    cols: i64,
}

impl PyramidBlend {
    /// Instantiates at a given scale.
    pub fn new(scale: Scale) -> Self {
        let (rows, cols) = crate::sizes::PYRAMID.at(scale);
        PyramidBlend::with_size(rows, cols)
    }

    /// Instantiates with explicit dimensions (divisible by `2^LEVELS` and
    /// large enough for the pyramid margins).
    ///
    /// # Panics
    ///
    /// Panics when the dimensions are not divisible by `2^LEVELS`.
    pub fn with_size(rows: i64, cols: i64) -> Self {
        assert!(
            rows % (1 << LEVELS) == 0 && cols % (1 << LEVELS) == 0,
            "dimensions must be divisible by 2^{LEVELS}"
        );
        PyramidBlend {
            pipeline: build(),
            rows,
            cols,
        }
    }
}

impl Benchmark for PyramidBlend {
    fn name(&self) -> &str {
        "Pyramid Blending"
    }

    fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    fn params(&self) -> Vec<i64> {
        vec![self.rows, self.cols]
    }

    fn make_inputs(&self, seed: u64) -> Vec<Buffer> {
        vec![
            crate::inputs::gray_image(self.rows, self.cols, seed),
            crate::inputs::gray_image(self.rows, self.cols, seed ^ 0xABCD),
            crate::inputs::blend_mask(self.rows, self.cols),
        ]
    }

    fn reference(&self, inputs: &[Buffer]) -> Vec<Buffer> {
        let to_plane = |b: &Buffer| Plane {
            rows: self.rows,
            cols: self.cols,
            data: b.data.clone(),
        };
        let m0: M4 = (0, 0, 0, 0);
        let mut ga = vec![(to_plane(&inputs[0]), m0)];
        let mut gb = vec![(to_plane(&inputs[1]), m0)];
        let mut gm = vec![(to_plane(&inputs[2]), m0)];
        for l in 1..LEVELS {
            let d = ref_down(&ga[l - 1].0, ga[l - 1].1);
            ga.push(d);
            let d = ref_down(&gb[l - 1].0, gb[l - 1].1);
            gb.push(d);
            let d = ref_down(&gm[l - 1].0, gm[l - 1].1);
            gm.push(d);
        }
        let combine =
            |a: &(Plane, M4), b: &(Plane, M4), f: &dyn Fn(f32, f32) -> f32| -> (Plane, M4) {
                let m = max_margin(a.1, b.1);
                let mut o = Plane::zero(a.0.rows, a.0.cols);
                for x in m.0..=o.rows - 1 - m.1 {
                    for y in m.2..=o.cols - 1 - m.3 {
                        o.set(x, y, f(a.0.at(x, y), b.0.at(x, y)));
                    }
                }
                (o, m)
            };
        let mut blend: Vec<(Plane, M4)> = Vec::new();
        for l in 0..LEVELS {
            let (la, lb) = if l == LEVELS - 1 {
                (
                    (ga[l].0.clone_plane(), ga[l].1),
                    (gb[l].0.clone_plane(), gb[l].1),
                )
            } else {
                let ua = ref_up(&ga[l + 1].0, ga[l + 1].1);
                let ub = ref_up(&gb[l + 1].0, gb[l + 1].1);
                (
                    combine(&ga[l], &ua, &|a, b| a - b),
                    combine(&gb[l], &ub, &|a, b| a - b),
                )
            };
            let mm = max_margin(gm[l].1, max_margin(la.1, lb.1));
            let mut bl = Plane::zero(la.0.rows, la.0.cols);
            for x in mm.0..=bl.rows - 1 - mm.1 {
                for y in mm.2..=bl.cols - 1 - mm.3 {
                    let m = gm[l].0.at(x, y);
                    bl.set(x, y, m * la.0.at(x, y) + (1.0 - m) * lb.0.at(x, y));
                }
            }
            blend.push((bl, mm));
        }
        let mut out = blend.pop().unwrap();
        for l in (0..LEVELS - 1).rev() {
            let up = ref_up(&out.0, out.1);
            out = combine(&blend[l], &up, &|a, b| a + b);
            blend.truncate(l);
        }
        // Extract the final stage's (margin-shrunk) rectangle.
        let final_rect = {
            let fd = self
                .pipeline
                .funcs()
                .iter()
                .find(|f| f.name == "blended")
                .expect("final stage");
            polymage_poly::Rect::new(
                fd.var_dom
                    .dom
                    .iter()
                    .map(|iv| iv.eval(&self.params()))
                    .collect(),
            )
        };
        let mut res = Buffer::zeros(final_rect.clone());
        let mut i = 0;
        let (rx, ry) = (final_rect.range(0), final_rect.range(1));
        for xx in rx.0..=rx.1 {
            for yy in ry.0..=ry.1 {
                res.data[i] = out.0.at(xx, yy).clamp(0.0, 1.0);
                i += 1;
            }
        }
        vec![res]
    }

    fn tolerance(&self) -> f32 {
        1e-4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_count_matches_paper_ballpark() {
        let p = build();
        // The paper's Fig. 8 graph has ~44 nodes at 4 levels.
        assert!(
            (35..=55).contains(&p.funcs().len()),
            "got {} stages",
            p.funcs().len()
        );
    }

    #[test]
    fn bounds_check_validates_margins() {
        let app = PyramidBlend::with_size(256, 256);
        let violations = polymage_graph::check_bounds(app.pipeline(), &[256, 256]);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
