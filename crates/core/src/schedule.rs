//! Per-group schedule construction: overlapped tiles, storage mapping,
//! kernel lowering (paper §3.4, §3.6, §3.7).

use crate::grouping::{effective_tiles, Group, GroupKindTag};
use crate::lower::{KernelBuilder, LowerEnv};
use crate::{CompileError, CompileOptions};
use polymage_graph::PipelineGraph;
use polymage_ir::{FuncBody, FuncId, Pipeline, ScalarType, Source, VarId};
use polymage_poly::{
    extract_accesses, narrow_rect_by_cond, required_region, solve_alignment, Access, AccessDim,
    DimMap, Rect,
};
use polymage_vm::{
    BufDecl, BufId, BufKind, CaseExec, GroupExec, GroupKind, ReductionExec, RegId, SeqExec,
    StageExec, TileWork, TiledGroup,
};
use std::collections::{HashMap, HashSet};

/// Mutable compilation context shared across groups.
pub(crate) struct Ctx<'a> {
    pub pipe: &'a Pipeline,
    pub graph: &'a PipelineGraph,
    pub opts: &'a CompileOptions,
    pub buffers: Vec<BufDecl>,
    pub image_bufs: Vec<BufId>,
    /// Full buffer of each full-stored stage (filled as groups schedule).
    pub func_full: HashMap<FuncId, BufId>,
    /// Stages consumed by other groups or live-out (need full storage).
    pub needs_full: HashSet<FuncId>,
}

impl Ctx<'_> {
    fn new_buffer(&mut self, decl: BufDecl) -> BufId {
        self.buffers.push(decl);
        BufId(self.buffers.len() - 1)
    }

    fn concrete_dom(&self, f: FuncId) -> Rect {
        Rect::new(
            self.pipe
                .func(f)
                .var_dom
                .dom
                .iter()
                .map(|iv| iv.eval(&self.opts.params))
                .collect(),
        )
    }
}

/// Information the scheduler derives for each stage of a tiled group.
struct StagePlan {
    f: FuncId,
    dom: Rect,
    needs_full: bool,
    direct: bool,
    /// Alignment of each stage dimension to the group's schedule space.
    maps: Vec<DimMap>,
}

/// Schedules one group into an executable [`GroupExec`].
pub(crate) fn schedule_group(ctx: &mut Ctx<'_>, group: &Group) -> Result<GroupExec, CompileError> {
    match group.kind {
        GroupKindTag::Reduction => schedule_reduction(ctx, group.sink),
        GroupKindTag::SelfRef => schedule_selfref(ctx, group.sink),
        GroupKindTag::Normal => schedule_tiled(ctx, group),
    }
}

/// Orders the group's stages producers-first.
fn group_topo(ctx: &Ctx<'_>, group: &Group) -> Vec<FuncId> {
    ctx.graph
        .topo_order()
        .iter()
        .copied()
        .filter(|f| group.stages.contains(f))
        .collect()
}

fn sat_round(ty: ScalarType) -> (Option<(f32, f32)>, bool) {
    let sat = ty.saturation_range().map(|(lo, hi)| (lo as f32, hi as f32));
    (sat, ty.is_integral())
}

fn schedule_tiled(ctx: &mut Ctx<'_>, group: &Group) -> Result<GroupExec, CompileError> {
    let stages = group_topo(ctx, group);
    let sink = group.sink;
    let alignment =
        solve_alignment(ctx.pipe, &stages, sink).expect("grouping only forms alignable groups");

    // --- storage classification ---
    let mut plans: Vec<StagePlan> = Vec::with_capacity(stages.len());
    for &f in &stages {
        let dom = ctx.concrete_dom(f);
        let in_group_consumed = ctx.graph.consumers(f).iter().any(|c| stages.contains(c));
        let needs_full = ctx.needs_full.contains(&f) || !ctx.opts.storage_opt;
        let direct = needs_full && !in_group_consumed;
        plans.push(StagePlan {
            f,
            dom,
            needs_full,
            direct,
            maps: alignment.map(f).to_vec(),
        });
    }

    // --- tiling of the sink domain ---
    let sink_dom = ctx.concrete_dom(sink);
    // Normalization may scale the sink itself; tile boundaries live in the
    // scheduled space, so convert via the sink's own per-dim scale.
    let sink_scales: Vec<i64> = (0..sink_dom.ndim())
        .map(|g| alignment.scale_on(sink, g).map_or(1, |s| s.num().max(1)))
        .collect();
    let sink_extents: Vec<i64> = (0..sink_dom.ndim()).map(|d| sink_dom.extent(d)).collect();
    let tiles_cfg = effective_tiles(&sink_extents, ctx.opts);
    let tile_counts: Vec<i64> = (0..sink_dom.ndim())
        .map(|d| match tiles_cfg[d] {
            Some(t) => (sink_dom.extent(d) + t - 1) / t,
            None => 1,
        })
        .collect();
    let nstrips = tile_counts.first().copied().unwrap_or(1).max(1) as usize;

    // Pre-extract in-group accesses: consumer stage index -> producer -> accesses
    let accesses_to: Vec<Vec<(usize, Vec<Access>)>> = stages
        .iter()
        .map(|&c| {
            let mut per_prod: HashMap<usize, Vec<Access>> = HashMap::new();
            for acc in extract_accesses(ctx.pipe.func(c)) {
                if let Source::Func(p) = acc.src {
                    if let Some(pi) = stages.iter().position(|&s| s == p) {
                        if p != c {
                            per_prod.entry(pi).or_default().push(acc);
                        }
                    }
                }
            }
            per_prod.into_iter().collect()
        })
        .collect();

    // --- tile enumeration + backward propagation ---
    let mut tiles: Vec<TileWork> = Vec::new();
    let mut max_ext: Vec<Vec<i64>> = plans.iter().map(|p| vec![0i64; p.dom.ndim()]).collect();

    // At least one tile always runs: a sink whose domain is empty at these
    // parameter values (deep pyramid levels at small sizes) must not
    // prevent full-stored member stages from materializing — their regions
    // then come entirely from the owned-coverage extension.
    let total_tiles: i64 = tile_counts.iter().product::<i64>().max(1);
    {
        for lin in 0..total_tiles {
            // decompose the linear index into per-dim tile coordinates
            let mut tidx = vec![0i64; sink_dom.ndim()];
            let mut rem = lin;
            for d in (0..sink_dom.ndim()).rev() {
                tidx[d] = rem % tile_counts[d];
                rem /= tile_counts[d];
            }
            // sink tile rectangle
            let tile_rect = Rect::new(
                (0..sink_dom.ndim())
                    .map(|d| {
                        let (lo, hi) = sink_dom.range(d);
                        match tiles_cfg[d] {
                            Some(t) => (lo + tidx[d] * t, (lo + (tidx[d] + 1) * t - 1).min(hi)),
                            None => (lo, hi),
                        }
                    })
                    .collect(),
            );
            let strip = tidx[0] as usize;
            let mut regions: Vec<Rect> = plans
                .iter()
                .map(|p| Rect::new(vec![(0, -1); p.dom.ndim()]))
                .collect();
            // sink gets the tile itself
            let sink_idx = stages.iter().position(|&s| s == sink).unwrap();
            regions[sink_idx] = tile_rect.clone();
            // reverse topological propagation
            for ci in (0..stages.len()).rev() {
                if regions[ci].is_empty() {
                    continue;
                }
                let cvars: Vec<VarId> = ctx.pipe.func(stages[ci]).var_dom.vars.clone();
                for (pi, accs) in &accesses_to[ci] {
                    let req = required_region(
                        accs,
                        &cvars,
                        &regions[ci],
                        &plans[*pi].dom,
                        &ctx.opts.params,
                    );
                    regions[*pi] = if regions[*pi].is_empty() {
                        req
                    } else {
                        regions[*pi].hull(&req)
                    };
                }
            }
            // owned ranges + stores for full stages; region extension for
            // coverage.
            let mut stores: Vec<Option<Rect>> = vec![None; plans.len()];
            for (k, p) in plans.iter().enumerate() {
                if !p.needs_full {
                    continue;
                }
                let owned = owned_rect(p, &sink_dom, &tiles_cfg, &tidx, &tile_counts, &sink_scales);
                let owned = owned.intersect(&p.dom);
                regions[k] = if regions[k].is_empty() {
                    owned.clone()
                } else {
                    regions[k].hull(&owned)
                };
                let store = regions[k].intersect(&owned);
                stores[k] = Some(store);
            }
            for (k, r) in regions.iter().enumerate() {
                if !r.is_empty() {
                    for (d, m) in max_ext[k].iter_mut().enumerate() {
                        *m = (*m).max(r.extent(d));
                    }
                }
            }
            tiles.push(TileWork {
                strip,
                regions,
                stores,
            });
        }
    }
    // order tiles by strip so the executor's grouping is contiguous
    tiles.sort_by_key(|t| t.strip);

    // --- buffer creation ---
    let mut func_scratch: HashMap<FuncId, BufId> = HashMap::new();
    let mut stage_bufs: Vec<(BufId, Option<BufId>)> = Vec::with_capacity(plans.len());
    for (k, p) in plans.iter().enumerate() {
        let name = ctx.pipe.func(p.f).name.clone();
        let scratch = if p.direct {
            BufId(0) // placeholder, unused by direct stages
        } else {
            let sizes: Vec<i64> = max_ext[k].iter().map(|&e| e.max(1)).collect();
            let b = ctx.new_buffer(BufDecl {
                name: format!("{name}.scratch"),
                kind: BufKind::Scratch,
                sizes,
                origin: vec![0; p.dom.ndim()],
            });
            func_scratch.insert(p.f, b);
            b
        };
        let full = if p.needs_full {
            let b = ctx.new_buffer(BufDecl {
                name: name.clone(),
                kind: BufKind::Full,
                // exact extents: an empty domain yields an empty buffer
                sizes: (0..p.dom.ndim()).map(|d| p.dom.extent(d).max(0)).collect(),
                origin: p.dom.ranges().iter().map(|&(lo, _)| lo).collect(),
            });
            ctx.func_full.insert(p.f, b);
            Some(b)
        } else {
            None
        };
        stage_bufs.push((scratch, full));
    }

    // --- kernel lowering ---
    let mut stage_execs: Vec<StageExec> = Vec::with_capacity(plans.len());
    for (k, p) in plans.iter().enumerate() {
        let fd = ctx.pipe.func(p.f);
        let (sat, round) = sat_round(fd.ty);
        let cases = lower_cases(ctx, p.f, &p.dom, &func_scratch)?;
        let mut reads: Vec<BufId> = Vec::new();
        for c in &cases {
            for op in &c.kernel.ops {
                if let polymage_vm::Op::Load { buf, .. } = op {
                    if !reads.contains(buf) {
                        reads.push(*buf);
                    }
                }
            }
        }
        stage_execs.push(StageExec {
            name: fd.name.clone(),
            scratch: stage_bufs[k].0,
            full: stage_bufs[k].1,
            direct: p.direct,
            sat,
            round,
            cases,
            dom: p.dom.clone(),
            reads,
        });
    }

    Ok(GroupExec {
        name: format!("{}+{}", ctx.pipe.func(sink).name, stages.len() - 1),
        kind: GroupKind::Tiled(TiledGroup::new(stage_execs, tiles, nstrips, &ctx.buffers)),
    })
}

/// The sub-rectangle of stage `p`'s coordinates "owned" by tile `tidx`
/// (used to make parallel strips' full-buffer writes disjoint). Boundary
/// strips absorb coordinates outside the sink's scaled range.
fn owned_rect(
    p: &StagePlan,
    sink_dom: &Rect,
    tiles_cfg: &[Option<i64>],
    tidx: &[i64],
    tile_counts: &[i64],
    sink_scales: &[i64],
) -> Rect {
    const INF: i64 = i64::MAX / 4;
    let n = p.dom.ndim();
    let mut dims: Vec<(i64, i64)> = p.dom.ranges().to_vec();

    // Strips run along group dim 0, so cross-thread disjointness requires
    // the stage's own dim 0 to be aligned with group dim 0. Without that
    // alignment, the very first tile materializes the whole stage.
    let dim0_on_gdim0 = matches!(
        p.maps.first(),
        Some(DimMap::Grouped { gdim: 0, scale }) if scale.is_integer() && scale.num() > 0
    );
    if !dim0_on_gdim0 && tile_counts.first().copied().unwrap_or(1) > 1 {
        if tidx.iter().any(|&t| t != 0) {
            return Rect::new(vec![(0, -1); n]);
        }
        return Rect::new(dims);
    }

    // Partition every aligned, tiled dimension by its tile's scheduled range.
    for (k, m) in p.maps.iter().enumerate() {
        let (g, sigma) = match m {
            DimMap::Grouped { gdim, scale } if scale.is_integer() && scale.num() > 0 => {
                (*gdim, scale.num())
            }
            _ => continue,
        };
        if g >= sink_dom.ndim() {
            continue;
        }
        let Some(tg) = tiles_cfg[g] else { continue };
        let (slo, _) = sink_dom.range(g);
        let ls = sink_scales[g];
        let t = tidx[g];
        let last = tile_counts[g] - 1;
        let lo = if t == 0 {
            -INF
        } else {
            let s = (slo + t * tg) * ls;
            -(-s).div_euclid(sigma) // ceil(s/σ)
        };
        let hi = if t == last {
            INF
        } else {
            let s = (slo + (t + 1) * tg) * ls;
            -(-s).div_euclid(sigma) - 1
        };
        dims[k] = (dims[k].0.max(lo), dims[k].1.min(hi));
    }
    Rect::new(dims)
}

/// Lowers all cases of a stage into [`CaseExec`]s.
fn lower_cases(
    ctx: &Ctx<'_>,
    f: FuncId,
    dom: &Rect,
    func_scratch: &HashMap<FuncId, BufId>,
) -> Result<Vec<CaseExec>, CompileError> {
    let fd = ctx.pipe.func(f);
    let cases = match &fd.body {
        FuncBody::Cases(cs) => cs,
        _ => unreachable!("tiled stages are case-defined"),
    };
    let vars = fd.var_dom.vars.clone();
    let env = LowerEnv {
        pipe: ctx.pipe,
        params: &ctx.opts.params,
        image_bufs: &ctx.image_bufs,
        func_scratch,
        func_full: &ctx.func_full,
        vars: &vars,
    };
    let mut out = Vec::with_capacity(cases.len());
    for case in cases {
        let (rect, steps, residual) = match &case.cond {
            None => (dom.clone(), vec![(1, 0); dom.ndim()], None),
            Some(c) => {
                let nr = narrow_rect_by_cond(c, &vars, dom, &ctx.opts.params);
                (
                    nr.rect,
                    nr.steps,
                    if nr.exact { None } else { Some(c.clone()) },
                )
            }
        };
        if rect.is_empty() {
            continue;
        }
        // Strided cases (parity guards): lower the body in strided
        // coordinates by substituting v_d -> stride_d*v_d + phase_d -- the
        // paper's domain splitting instead of inner-loop branching.
        let strided = steps.iter().any(|&(s, _)| s != 1);
        let (expr, residual) = if strided {
            let map: std::collections::HashMap<_, _> = vars
                .iter()
                .enumerate()
                .filter(|(d, _)| steps[*d] != (1, 0))
                .map(|(d, &v)| {
                    let (s, ph) = steps[d];
                    (v, s * polymage_ir::Expr::Var(v) + ph as f64)
                })
                .collect();
            (
                polymage_graph::subst_vars(&case.expr, &map),
                residual.map(|c| polymage_graph::subst_vars_cond(&c, &map)),
            )
        } else {
            (case.expr.clone(), residual)
        };
        let mut b = KernelBuilder::new(&env);
        let val = b.value(&expr);
        let mask: Option<RegId> = residual.as_ref().map(|c| b.cond(c));
        let mut outs = vec![val];
        if let Some(m) = mask {
            outs.push(m);
        }
        let (kernel, _reads) = b.finish(outs);
        out.push(CaseExec {
            rect,
            steps,
            kernel,
            mask,
        });
    }
    Ok(out)
}

fn schedule_reduction(ctx: &mut Ctx<'_>, f: FuncId) -> Result<GroupExec, CompileError> {
    let fd = ctx.pipe.func(f);
    let acc = match &fd.body {
        FuncBody::Reduce(a) => a.clone(),
        _ => unreachable!("reduction group"),
    };
    let dom = ctx.concrete_dom(f);
    let out = ctx.new_buffer(BufDecl {
        name: fd.name.clone(),
        kind: BufKind::Full,
        sizes: (0..dom.ndim()).map(|d| dom.extent(d).max(0)).collect(),
        origin: dom.ranges().iter().map(|&(lo, _)| lo).collect(),
    });
    ctx.func_full.insert(f, out);

    let red_dom = Rect::new(
        acc.red_dom
            .iter()
            .map(|iv| iv.eval(&ctx.opts.params))
            .collect(),
    );
    let empty_scratch = HashMap::new();
    let env = LowerEnv {
        pipe: ctx.pipe,
        params: &ctx.opts.params,
        image_bufs: &ctx.image_bufs,
        func_scratch: &empty_scratch,
        func_full: &ctx.func_full,
        vars: &acc.red_vars,
    };
    let mut b = KernelBuilder::new(&env);
    let val = b.value(&acc.value);
    let mut outs = vec![val];
    for t in &acc.target {
        outs.push(b.index(t));
    }
    let (kernel, reads) = b.finish(outs);
    Ok(GroupExec {
        name: format!("{}(reduce)", fd.name),
        kind: GroupKind::Reduction(ReductionExec {
            name: fd.name.clone(),
            out,
            red_dom,
            kernel,
            op: acc.op,
            reads,
        }),
    })
}

fn schedule_selfref(ctx: &mut Ctx<'_>, f: FuncId) -> Result<GroupExec, CompileError> {
    let fd = ctx.pipe.func(f);
    let dom = ctx.concrete_dom(f);
    let n = dom.ndim();

    // Validate self-access patterns: pure constant offsets, lexicographically
    // negative.
    let mut chunked = true;
    for acc in extract_accesses(fd) {
        if acc.src != Source::Func(f) {
            continue;
        }
        let mut offsets: Vec<i64> = Vec::with_capacity(n);
        for (d, dim) in acc.dims.iter().enumerate() {
            let a = match dim {
                AccessDim::Affine(a) => a,
                AccessDim::Dynamic => {
                    return Err(CompileError::InvalidSelfReference {
                        func: fd.name.clone(),
                        reason: "data-dependent self access".into(),
                    })
                }
            };
            let ok = a.den == 1
                && a.single_var()
                    .map(|(v, q)| q == 1 && v == fd.var_dom.vars[d])
                    == Some(true)
                && a.cst.as_const().is_some();
            if !ok {
                return Err(CompileError::InvalidSelfReference {
                    func: fd.name.clone(),
                    reason: format!("unsupported self index in dimension {d}"),
                });
            }
            offsets.push(a.cst.as_const().unwrap());
        }
        match offsets.iter().position(|&o| o != 0) {
            None => {
                return Err(CompileError::InvalidSelfReference {
                    func: fd.name.clone(),
                    reason: "stage reads its own current point".into(),
                })
            }
            Some(first) => {
                if offsets[first] > 0 {
                    return Err(CompileError::InvalidSelfReference {
                        func: fd.name.clone(),
                        reason: "self dependence points forward in scan order".into(),
                    });
                }
                if first == n - 1 {
                    chunked = false; // same-row backward dependence
                }
            }
        }
    }

    let out = ctx.new_buffer(BufDecl {
        name: fd.name.clone(),
        kind: BufKind::Full,
        sizes: (0..n).map(|d| dom.extent(d).max(0)).collect(),
        origin: dom.ranges().iter().map(|&(lo, _)| lo).collect(),
    });
    ctx.func_full.insert(f, out);

    let empty_scratch = HashMap::new();
    let cases = lower_cases(ctx, f, &dom, &empty_scratch)?;
    let mut reads: Vec<BufId> = Vec::new();
    for c in &cases {
        for op in &c.kernel.ops {
            if let polymage_vm::Op::Load { buf, .. } = op {
                if !reads.contains(buf) {
                    reads.push(*buf);
                }
            }
        }
    }
    let (sat, round) = sat_round(fd.ty);
    Ok(GroupExec {
        name: format!("{}(scan)", fd.name),
        kind: GroupKind::Sequential(SeqExec {
            name: fd.name.clone(),
            out,
            dom,
            cases,
            sat,
            round,
            chunked,
            reads,
        }),
    })
}
