//! # polymage-poly
//!
//! The polyhedral substrate of PolyMage-rs.
//!
//! The original PolyMage uses isl (the integer set library) for its
//! polyhedral representation and loop generation. The pipelines the paper
//! targets only ever need *per-dimension* affine forms — accesses of the
//! shape `(q·x + o) / m` (stencils, up/down-sampling, channel selection) over
//! rectangular, parameter-affine domains — so this crate implements exactly
//! that algebra in pure Rust:
//!
//! - [`Ratio`]: exact rational arithmetic for schedule scaling factors;
//! - [`VAff`]: affine expressions over domain variables and parameters with a
//!   floor-division denominator (the index expressions of the DSL);
//! - [`Rect`]: concrete integer boxes with interval arithmetic;
//! - [`extract_accesses`]: finds every value access of a stage and classifies
//!   each dimension as affine or data-dependent;
//! - [`solve_alignment`]: the paper's §3.3 *alignment and scaling* — computes
//!   per-function schedule scales that make dependence components constant
//!   (bounded), or reports that the group is not alignable;
//! - [`group_overlap`]: the paper's §3.4 tile-shape analysis — per-stage
//!   dependence extents and the total overlap per dimension, computed
//!   level-wise (the tight variant of Fig. 6, not the uniform-cone
//!   over-approximation);
//! - [`required_region`]: backward interval propagation that turns a live-out
//!   tile rectangle into the exact per-stage regions an overlapped tile must
//!   compute.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod access;
mod align;
mod condbox;
mod overlap;
mod prop;
mod ratio;
mod rect;
mod tiling;
mod vaff;

pub use access::{extract_accesses, Access, AccessDim};
pub use align::{solve_alignment, AlignError, Alignment, DimMap};
pub use condbox::{narrow_rect_by_cond, NarrowedRect};
pub use overlap::{group_overlap, DimOverlap, GroupOverlap};
pub use prop::{access_image, required_region};
pub use ratio::Ratio;
pub use rect::Rect;
pub use tiling::{compare_tilings, TilingComparison, TilingProfile, TilingStrategy};
pub use vaff::VAff;
