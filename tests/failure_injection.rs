//! Failure injection: invalid specifications must be rejected with the
//! right errors, at the right phase — builder, graph construction, static
//! bounds checking, compilation, or execution — never by computing garbage.

use polymage::core::{compile, CompileError, CompileOptions};
use polymage::graph::{GraphError, PipelineGraph};
use polymage::ir::*;
use polymage::poly::Rect;
use polymage::vm::{run_program, Buffer, VmError};

#[test]
fn cyclic_specification_rejected() {
    let mut p = PipelineBuilder::new("cycle");
    let x = p.var("x");
    let d = Interval::cst(0, 15);
    let a = p.func("a", &[(x, d.clone())], ScalarType::Float);
    let b = p.func("b", &[(x, d.clone())], ScalarType::Float);
    let c = p.func("c", &[(x, d)], ScalarType::Float);
    p.define(a, vec![Case::always(Expr::at(c, [x + 0]))])
        .unwrap();
    p.define(b, vec![Case::always(Expr::at(a, [x + 0]))])
        .unwrap();
    p.define(c, vec![Case::always(Expr::at(b, [x + 0]))])
        .unwrap();
    let pipe = p.finish(&[c]).unwrap();
    match PipelineGraph::build(&pipe) {
        Err(GraphError::Cycle(names)) => assert_eq!(names.len(), 3),
        other => panic!("expected a 3-cycle, got {other:?}"),
    }
    // compile surfaces the same error
    assert!(matches!(
        compile(&pipe, &CompileOptions::optimized(vec![])),
        Err(CompileError::Graph(GraphError::Cycle(_)))
    ));
}

#[test]
fn out_of_bounds_stencil_reported_with_details() {
    let mut p = PipelineBuilder::new("oob");
    let img = p.image("I", ScalarType::Float, vec![PAff::cst(32), PAff::cst(32)]);
    let (x, y) = (p.var("x"), p.var("y"));
    let d = Interval::cst(0, 31);
    let f = p.func("f", &[(x, d.clone()), (y, d)], ScalarType::Float);
    p.define(
        f,
        vec![Case::always(stencil(
            img,
            &[x, y],
            1.0,
            &[[1, 1, 1], [1, 1, 1], [1, 1, 1]],
        ))],
    )
    .unwrap();
    let pipe = p.finish(&[f]).unwrap();
    match compile(&pipe, &CompileOptions::optimized(vec![])) {
        Err(CompileError::Bounds(vs)) => {
            assert_eq!(vs.len(), 1);
            assert_eq!(vs[0].consumer, "f");
            assert_eq!(vs[0].producer, "I");
            // the error message names the offending ranges
            let msg = vs[0].to_string();
            assert!(msg.contains("reads"), "{msg}");
        }
        other => panic!("expected bounds violation, got {other:?}"),
    }
}

#[test]
fn forward_self_dependence_rejected() {
    let mut p = PipelineBuilder::new("fwd");
    let x = p.var("x");
    let f = p.func("f", &[(x, Interval::cst(0, 15))], ScalarType::Float);
    p.define(
        f,
        vec![
            Case::new(Expr::from(x).ge(1), Expr::at(f, [x - 1]) + 1.0),
            // forward reference: invalid scan order
            Case::new(Expr::from(x).le(0), Expr::at(f, [x + 1])),
        ],
    )
    .unwrap();
    let pipe = p.finish(&[f]).unwrap();
    match compile(&pipe, &CompileOptions::optimized(vec![])) {
        Err(CompileError::InvalidSelfReference { func, reason }) => {
            assert_eq!(func, "f");
            assert!(reason.contains("forward"), "{reason}");
        }
        other => panic!("expected invalid self-reference, got {other:?}"),
    }
}

#[test]
fn self_read_of_current_point_rejected() {
    let mut p = PipelineBuilder::new("selfpt");
    let x = p.var("x");
    let f = p.func("f", &[(x, Interval::cst(0, 15))], ScalarType::Float);
    p.define(f, vec![Case::always(Expr::at(f, [x + 0]) + 1.0)])
        .unwrap();
    let pipe = p.finish(&[f]).unwrap();
    assert!(matches!(
        compile(&pipe, &CompileOptions::optimized(vec![])),
        Err(CompileError::InvalidSelfReference { .. })
    ));
}

#[test]
fn scaled_self_access_rejected() {
    let mut p = PipelineBuilder::new("selfscale");
    let x = p.var("x");
    let f = p.func("f", &[(x, Interval::cst(0, 15))], ScalarType::Float);
    p.define(
        f,
        vec![
            Case::new(Expr::from(x).le(7), Expr::from(x)),
            Case::new(Expr::from(x).ge(8), Expr::at(f, [Expr::from(x) / 2])),
        ],
    )
    .unwrap();
    let pipe = p.finish(&[f]).unwrap();
    assert!(matches!(
        compile(&pipe, &CompileOptions::optimized(vec![])),
        Err(CompileError::InvalidSelfReference { .. })
    ));
}

#[test]
fn zero_sized_image_rejected() {
    let mut p = PipelineBuilder::new("empty");
    let n = p.param("N");
    let img = p.image("I", ScalarType::Float, vec![PAff::param(n)]);
    let x = p.var("x");
    let f = p.func(
        "f",
        &[(x, Interval::new(PAff::cst(0), PAff::param(n) - 1))],
        ScalarType::Float,
    );
    p.define(f, vec![Case::always(Expr::at(img, [x + 0]))])
        .unwrap();
    let pipe = p.finish(&[f]).unwrap();
    assert!(matches!(
        compile(&pipe, &CompileOptions::optimized(vec![0])),
        Err(CompileError::EmptyDomain { .. })
    ));
}

#[test]
fn execution_input_mismatches_reported() {
    let mut p = PipelineBuilder::new("inputs");
    let img = p.image("I", ScalarType::Float, vec![PAff::cst(16)]);
    let x = p.var("x");
    let f = p.func("f", &[(x, Interval::cst(0, 15))], ScalarType::Float);
    p.define(f, vec![Case::always(Expr::at(img, [x + 0]))])
        .unwrap();
    let pipe = p.finish(&[f]).unwrap();
    let compiled = compile(&pipe, &CompileOptions::optimized(vec![])).unwrap();
    // no inputs
    assert!(matches!(
        run_program(&compiled.program, &[], 1),
        Err(VmError::InputCountMismatch {
            expected: 1,
            got: 0
        })
    ));
    // wrong shape
    let bad = Buffer::zeros(Rect::new(vec![(0, 7)]));
    assert!(matches!(
        run_program(&compiled.program, &[bad], 1),
        Err(VmError::InputShapeMismatch { index: 0, .. })
    ));
    // wrong rank
    let bad = Buffer::zeros(Rect::new(vec![(0, 15), (0, 15)]));
    assert!(matches!(
        run_program(&compiled.program, &[bad], 1),
        Err(VmError::InputShapeMismatch { index: 0, .. })
    ));
}

#[test]
fn error_messages_are_human_readable() {
    // Display implementations must carry enough context to act on.
    let e = CompileError::ParamMismatch {
        pipeline: "demo".into(),
        expected: 2,
        got: 0,
        missing: vec![(0, "R".into()), (1, "C".into())],
        extra: vec![],
    };
    assert!(e.to_string().contains("2 parameter"));
    assert!(e.to_string().contains("`R` (#0)"));
    let e = VmError::InputCountMismatch {
        expected: 3,
        got: 1,
    };
    assert!(e.to_string().contains("expected 3"));
    let e = GraphError::Cycle(vec!["a".into(), "b".into()]);
    assert!(e.to_string().contains("a -> b"));
}
