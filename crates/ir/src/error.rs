//! Error type for DSL construction.

use std::error::Error;
use std::fmt;

/// Errors reported while building a pipeline specification.
///
/// Deeper semantic validation (cycle detection, static bounds checking) is
/// performed by the `polymage-graph` crate when the specification is
/// compiled; this type only covers structural errors in the specification
/// itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// Two entities of the same kind share a name.
    DuplicateName(String),
    /// A function was used before `define` gave it a body.
    UndefinedFunction(String),
    /// `define` was called twice for the same function.
    AlreadyDefined(String),
    /// A live-out id does not belong to this pipeline.
    UnknownLiveOut(String),
    /// A function was declared with differing variable/interval counts.
    DomainArityMismatch {
        /// Offending function name.
        func: String,
        /// Number of variables declared.
        vars: usize,
        /// Number of intervals declared.
        intervals: usize,
    },
    /// A function was defined with an empty case list.
    EmptyCases(String),
    /// `finish` was called with no live-out functions.
    NoLiveOuts,
    /// The same variable appears twice in one function's domain.
    RepeatedVariable {
        /// Offending function name.
        func: String,
        /// The repeated variable's name.
        var: String,
    },
    /// An accumulator's target arity differs from its variable domain.
    TargetArityMismatch {
        /// Offending accumulator name.
        func: String,
        /// Number of target index expressions.
        targets: usize,
        /// Number of variable-domain dimensions.
        dims: usize,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            IrError::UndefinedFunction(n) => {
                write!(f, "function `{n}` was declared but never defined")
            }
            IrError::AlreadyDefined(n) => write!(f, "function `{n}` is already defined"),
            IrError::UnknownLiveOut(n) => {
                write!(f, "live-out `{n}` does not belong to this pipeline")
            }
            IrError::DomainArityMismatch {
                func,
                vars,
                intervals,
            } => write!(
                f,
                "function `{func}` declares {vars} variables but {intervals} intervals"
            ),
            IrError::EmptyCases(n) => write!(f, "function `{n}` defined with no cases"),
            IrError::NoLiveOuts => write!(f, "pipeline has no live-out functions"),
            IrError::RepeatedVariable { func, var } => {
                write!(
                    f,
                    "function `{func}` repeats variable `{var}` in its domain"
                )
            }
            IrError::TargetArityMismatch {
                func,
                targets,
                dims,
            } => write!(
                f,
                "accumulator `{func}` has {targets} target indices for {dims} dimensions"
            ),
        }
    }
}

impl Error for IrError {}
