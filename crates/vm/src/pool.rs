//! Freelist allocators for `f32` working buffers: the single-threaded
//! [`BufferPool`] (worker-local scratch arenas) and the size-class-sharded
//! [`SharedPool`] the [`crate::Engine`] shares across concurrent runs.

use std::sync::{Mutex, MutexGuard};

/// Counters and occupancy of a [`BufferPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out (both acquire variants).
    pub acquires: u64,
    /// Acquisitions served by a retained allocation instead of a fresh one.
    pub reuses: u64,
    /// Releases dropped because the freelist was at its retention cap.
    pub dropped: u64,
    /// Bytes currently retained on the freelist (by capacity).
    pub retained_bytes: usize,
}

/// A bounded freelist of `Vec<f32>` allocations, shared by the
/// [`crate::Engine`] coordinator and its workers for full buffers, output
/// slabs, and reduction partials.
///
/// [`BufferPool::acquire_zeroed`] returns a zero-filled vector of exactly
/// the requested length; [`BufferPool::acquire`] skips the zero-fill for
/// buffers the caller provably overwrites in full before any read (see the
/// method contract). Both reuse the retained allocation with the smallest
/// sufficient capacity when one exists; [`BufferPool::release`] returns a
/// vector to the freelist. Retention is capped so pathological workloads
/// cannot hoard memory indefinitely.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<f32>>,
    stats: PoolStats,
}

/// Maximum number of free buffers retained for reuse.
pub(crate) const MAX_RETAINED: usize = 64;

impl BufferPool {
    /// An empty pool.
    pub fn new() -> BufferPool {
        BufferPool::default()
    }

    /// Pops the retained allocation with the smallest sufficient capacity,
    /// if any (best fit).
    fn pop_best_fit(&mut self, len: usize) -> Option<Vec<f32>> {
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, v) in self.free.iter().enumerate() {
            let cap = v.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        best.map(|(i, cap)| {
            self.stats.reuses += 1;
            // Saturating: `retained_bytes` is an exact mirror of the
            // freelist (see `audit_retained_bytes`), so this never actually
            // saturates — but a u-underflow here would poison every later
            // stat, so fail soft.
            self.stats.retained_bytes = self
                .stats
                .retained_bytes
                .saturating_sub(cap * std::mem::size_of::<f32>());
            self.free.swap_remove(i)
        })
    }

    /// [`SharedPool`] variant of [`BufferPool::pop_best_fit`]: counts one
    /// acquire and (on success) one reuse on this shard.
    fn pop_tracked(&mut self, len: usize) -> Option<Vec<f32>> {
        let hit = self.pop_best_fit(len);
        if hit.is_some() {
            self.stats.acquires += 1;
        }
        hit
    }

    /// Accounts an acquisition that every shard probe missed (the caller
    /// allocates fresh).
    fn note_fresh_acquire(&mut self) {
        self.stats.acquires += 1;
    }

    /// A zero-filled vector of length `len`, reusing a retained allocation
    /// when one is large enough (best fit by capacity).
    pub fn acquire_zeroed(&mut self, len: usize) -> Vec<f32> {
        self.stats.acquires += 1;
        let mut v = self.pop_best_fit(len).unwrap_or_default();
        v.clear();
        v.resize(len, 0.0);
        v
    }

    /// A vector of length `len` with **arbitrary contents** (whatever the
    /// previous user left behind), reusing a retained allocation when one
    /// is large enough.
    ///
    /// Only for buffers the caller provably writes in full before any
    /// read — e.g. full-array group sinks, whose tile stores exactly
    /// partition a buffer sized exactly to the stage domain (the invariant
    /// `polymage_core`'s validator checks). Callers that may leave any
    /// element unwritten must use [`BufferPool::acquire_zeroed`].
    pub fn acquire(&mut self, len: usize) -> Vec<f32> {
        self.stats.acquires += 1;
        match self.pop_best_fit(len) {
            Some(mut v) => {
                if v.len() >= len {
                    v.truncate(len);
                } else {
                    // Only the tail beyond the previous length is
                    // zero-filled; the rest keeps stale contents.
                    v.resize(len, 0.0);
                }
                v
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a vector to the freelist for later reuse. At the retention
    /// cap (`MAX_RETAINED` buffers) the allocation is dropped instead.
    pub fn release(&mut self, v: Vec<f32>) {
        if v.capacity() == 0 {
            return;
        }
        if self.free.len() < MAX_RETAINED {
            self.stats.retained_bytes += v.capacity() * std::mem::size_of::<f32>();
            self.free.push(v);
        } else {
            self.stats.dropped += 1;
        }
    }

    /// Counters and occupancy since creation.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of currently retained free buffers.
    pub fn retained(&self) -> usize {
        self.free.len()
    }

    /// Recounts freelist occupancy from the buffers themselves
    /// (Σ capacity × 4). Always equals `stats().retained_bytes`; regression
    /// tests assert the incremental accounting never drifts across
    /// acquire → early-release → re-acquire cycles.
    pub fn audit_retained_bytes(&self) -> usize {
        self.free
            .iter()
            .map(|v| v.capacity() * std::mem::size_of::<f32>())
            .sum()
    }
}

/// Number of size-class shards in a [`SharedPool`].
const NSHARDS: usize = 8;

/// Smallest length (log2) owned by shard 0; classes double per shard.
const SHARD_BASE_LOG2: u32 = 10; // 1 Ki elements = 4 KiB

/// The size class of a length: shard `i` owns lengths in
/// `[2^(BASE+i), 2^(BASE+i+1))`, clamped at both ends.
fn shard_of(len: usize) -> usize {
    let log2 = usize::BITS - len.max(1).leading_zeros() - 1;
    (log2.saturating_sub(SHARD_BASE_LOG2) as usize).min(NSHARDS - 1)
}

/// A size-class-sharded, internally synchronized buffer pool.
///
/// One engine-wide `Mutex<BufferPool>` was fine when runs serialized; with
/// concurrent [`crate::Engine`] runs every strip's slab acquire/release
/// would contend on that single lock. `SharedPool` splits the freelist
/// into eight independently locked [`BufferPool`]s by size class
/// (powers of two, so one run's full-frame buffers and another's small
/// reduction partials never touch the same lock), keeping critical
/// sections to a freelist push/pop.
///
/// Acquisition checks the requested length's own class and the next one up
/// (a release routes by *capacity*, which can land one class above the
/// originally requested length); a miss in both falls back to a fresh
/// allocation rather than scanning every shard.
#[derive(Debug)]
pub struct SharedPool {
    shards: [Mutex<BufferPool>; NSHARDS],
}

impl Default for SharedPool {
    fn default() -> Self {
        SharedPool::new()
    }
}

fn lock_shard(m: &Mutex<BufferPool>) -> MutexGuard<'_, BufferPool> {
    // Shard state is only a freelist; a panicking holder cannot tear it.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl SharedPool {
    /// An empty sharded pool.
    pub fn new() -> SharedPool {
        SharedPool {
            shards: std::array::from_fn(|_| Mutex::new(BufferPool::new())),
        }
    }

    fn acquire_impl(&self, len: usize, zeroed: bool) -> Vec<f32> {
        let c = shard_of(len);
        // Try the length's own class, then one class up (capacity-routed
        // releases can promote a buffer by one class). One lock is held at
        // a time, and never across the zero-fill.
        let neighbor = (c + 1).min(NSHARDS - 1);
        for s in if c == neighbor { c..=c } else { c..=neighbor } {
            if let Some(v) = lock_shard(&self.shards[s]).pop_tracked(len) {
                return finish_reuse(v, len, zeroed);
            }
        }
        // Fresh allocation: account it on the home shard.
        lock_shard(&self.shards[c]).note_fresh_acquire();
        vec![0.0; len]
    }

    /// A zero-filled vector of length `len` (see
    /// [`BufferPool::acquire_zeroed`]).
    pub fn acquire_zeroed(&self, len: usize) -> Vec<f32> {
        self.acquire_impl(len, true)
    }

    /// A vector of length `len` with **arbitrary contents**; same contract
    /// as [`BufferPool::acquire`] — only for buffers provably overwritten
    /// in full before any read.
    pub fn acquire(&self, len: usize) -> Vec<f32> {
        self.acquire_impl(len, false)
    }

    /// Returns a vector to its capacity class's freelist.
    pub fn release(&self, v: Vec<f32>) {
        if v.capacity() == 0 {
            return;
        }
        lock_shard(&self.shards[shard_of(v.capacity())]).release(v);
    }

    /// Aggregated counters and occupancy across all shards.
    pub fn stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for shard in &self.shards {
            let s = lock_shard(shard).stats();
            total.acquires += s.acquires;
            total.reuses += s.reuses;
            total.dropped += s.dropped;
            total.retained_bytes += s.retained_bytes;
        }
        total
    }

    /// Total retained free buffers across all shards.
    pub fn retained(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).retained()).sum()
    }

    /// Recounted freelist occupancy across all shards (see
    /// [`BufferPool::audit_retained_bytes`]).
    pub fn audit_retained_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_shard(s).audit_retained_bytes())
            .sum()
    }
}

/// Fixes up a reused allocation exactly like the [`BufferPool`] variants:
/// zeroed reuse re-zeroes in full; raw reuse only zero-fills growth past
/// the previous length.
fn finish_reuse(mut v: Vec<f32>, len: usize, zeroed: bool) -> Vec<f32> {
    if zeroed {
        v.clear();
        v.resize(len, 0.0);
    } else if v.len() >= len {
        v.truncate(len);
    } else {
        v.resize(len, 0.0);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_capacity_and_zeroes() {
        let mut p = BufferPool::new();
        let mut v = p.acquire_zeroed(100);
        assert!(v.iter().all(|&x| x == 0.0));
        v.iter_mut().for_each(|x| *x = 7.0);
        let cap = v.capacity();
        p.release(v);
        assert_eq!(p.retained(), 1);
        assert_eq!(p.stats().retained_bytes, cap * 4);
        let v2 = p.acquire_zeroed(50);
        assert_eq!(v2.len(), 50);
        assert!(v2.capacity() >= cap.min(100));
        assert!(
            v2.iter().all(|&x| x == 0.0),
            "reused buffer must be re-zeroed"
        );
        let s = p.stats();
        assert_eq!((s.acquires, s.reuses), (2, 1));
        assert_eq!(s.retained_bytes, 0);
        assert_eq!(p.retained(), 0);
    }

    #[test]
    fn acquire_skips_zeroing_but_fixes_length() {
        let mut p = BufferPool::new();
        let mut v = p.acquire_zeroed(100);
        v.iter_mut().for_each(|x| *x = 3.0);
        p.release(v);

        // Shrinking reuse: stale contents are visible, length is exact.
        let v2 = p.acquire(40);
        assert_eq!(v2.len(), 40);
        assert!(v2.iter().all(|&x| x == 3.0), "acquire must not zero");
        p.release(v2);

        // Growing reuse within capacity: the tail past the previous length
        // is zero-filled, the prefix keeps stale contents.
        let v3 = p.acquire(60);
        assert_eq!(v3.len(), 60);
        assert!(v3[..40].iter().all(|&x| x == 3.0));
        assert!(v3[40..].iter().all(|&x| x == 0.0));

        // Fresh allocations are zeroed by construction.
        let v4 = p.acquire(10_000);
        assert!(v4.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut p = BufferPool::new();
        let big = p.acquire_zeroed(1000);
        let small = p.acquire_zeroed(10);
        p.release(big);
        p.release(small);
        let v = p.acquire_zeroed(8);
        assert!(v.capacity() < 1000, "should reuse the 10-element buffer");
        let v2 = p.acquire_zeroed(500);
        assert!(
            v2.capacity() >= 1000,
            "should reuse the 1000-element buffer"
        );
    }

    #[test]
    fn empty_vectors_are_not_retained() {
        let mut p = BufferPool::new();
        p.release(Vec::new());
        assert_eq!(p.retained(), 0);
        assert_eq!(p.stats().dropped, 0);
    }

    #[test]
    fn eviction_at_the_retention_cap() {
        let mut p = BufferPool::new();
        let bufs: Vec<Vec<f32>> = (0..MAX_RETAINED + 3).map(|_| vec![0.0; 16]).collect();
        let mut expected_bytes = 0;
        for (i, v) in bufs.into_iter().enumerate() {
            if i < MAX_RETAINED {
                expected_bytes += v.capacity() * 4;
            }
            p.release(v);
        }
        assert_eq!(p.retained(), MAX_RETAINED);
        let s = p.stats();
        assert_eq!(s.dropped, 3, "releases beyond the cap are dropped");
        assert_eq!(s.retained_bytes, expected_bytes);

        // Draining one slot re-opens retention for exactly one buffer.
        let v = p.acquire(16);
        assert_eq!(p.retained(), MAX_RETAINED - 1);
        p.release(v);
        p.release(vec![0.0; 16]);
        assert_eq!(p.retained(), MAX_RETAINED);
        assert_eq!(p.stats().dropped, 4);
    }

    #[test]
    fn shard_classes_are_monotone_and_clamped() {
        assert_eq!(shard_of(0), 0);
        assert_eq!(shard_of(1), 0);
        assert_eq!(shard_of(1 << SHARD_BASE_LOG2), 0);
        assert_eq!(shard_of((1 << (SHARD_BASE_LOG2 + 1)) - 1), 0);
        assert_eq!(shard_of(1 << (SHARD_BASE_LOG2 + 1)), 1);
        assert_eq!(shard_of(usize::MAX), NSHARDS - 1);
        let mut prev = 0;
        for i in 0..30 {
            let s = shard_of(1 << i);
            assert!(s >= prev, "classes must be monotone in length");
            assert!(s < NSHARDS);
            prev = s;
        }
    }

    #[test]
    fn shared_pool_reuses_within_a_class() {
        let p = SharedPool::new();
        let mut v = p.acquire_zeroed(5000);
        assert!(v.iter().all(|&x| x == 0.0));
        v.iter_mut().for_each(|x| *x = 9.0);
        p.release(v);
        assert_eq!(p.retained(), 1);
        let v2 = p.acquire_zeroed(4000);
        assert!(v2.capacity() >= 5000, "same class must reuse");
        assert!(v2.iter().all(|&x| x == 0.0), "zeroed reuse re-zeroes");
        let s = p.stats();
        assert_eq!((s.acquires, s.reuses), (2, 1));
        assert_eq!(p.retained(), 0);
        p.release(v2);
    }

    #[test]
    fn shared_pool_probes_one_class_up() {
        let p = SharedPool::new();
        // A release routes by capacity, which may sit one class above the
        // length a later caller asks for.
        let v = vec![0.0f32; 3000]; // class of 3000 > class of 1500
        assert_eq!(shard_of(3000), shard_of(1500) + 1);
        p.release(v);
        let v2 = p.acquire(1500);
        assert!(v2.capacity() >= 3000, "neighbor-class probe must hit");
        let s = p.stats();
        assert_eq!((s.acquires, s.reuses), (1, 1));
    }

    #[test]
    fn shared_pool_raw_acquire_keeps_stale_prefix() {
        let p = SharedPool::new();
        // Length 100 but capacity 200: reuse for 140 grows within capacity.
        let mut v = Vec::with_capacity(200);
        v.resize(100, 3.0f32);
        p.release(v);
        let v2 = p.acquire(140);
        assert_eq!(v2.len(), 140);
        assert!(v2[..100].iter().all(|&x| x == 3.0));
        assert!(v2[100..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn early_release_reacquire_does_not_double_count() {
        // The engine's liveness plan releases a full buffer mid-run and may
        // re-acquire the same allocation for a later run (or a later lazily
        // acquired buffer). `retained_bytes` must track the freelist
        // exactly through the cycle — neither double-counting the release
        // nor leaking bytes on the reuse.
        let p = SharedPool::new();
        let v = p.acquire(5000);
        let cap = v.capacity();
        assert_eq!(p.stats().retained_bytes, 0);

        // Early release: bytes appear once.
        p.release(v);
        assert_eq!(p.stats().retained_bytes, cap * 4);
        assert_eq!(p.audit_retained_bytes(), cap * 4);

        // Re-acquire (same class): bytes leave in full.
        let v2 = p.acquire(4500);
        assert!(v2.capacity() >= 5000, "must reuse the early release");
        assert_eq!(p.stats().retained_bytes, 0);
        assert_eq!(p.audit_retained_bytes(), 0);

        // Release again: still counted once, not accumulated.
        let cap2 = v2.capacity();
        p.release(v2);
        let s = p.stats();
        assert_eq!(s.retained_bytes, cap2 * 4);
        assert_eq!(s.retained_bytes, p.audit_retained_bytes());
        assert_eq!((s.acquires, s.reuses), (2, 1));
    }

    #[test]
    fn neighbor_shard_reuse_keeps_retained_bytes_exact() {
        // A release routes by capacity to one shard; a reuse may pull it
        // from the acquiring length's neighbor class. The decrement must
        // land on the shard that held the bytes.
        let p = SharedPool::new();
        let v = vec![0.0f32; 3000];
        let cap = v.capacity();
        assert_eq!(shard_of(3000), shard_of(1500) + 1);
        p.release(v);
        assert_eq!(p.stats().retained_bytes, cap * 4);
        assert_eq!(p.audit_retained_bytes(), cap * 4);
        let v2 = p.acquire(1500);
        assert!(v2.capacity() >= 3000);
        assert_eq!(p.stats().retained_bytes, 0);
        assert_eq!(p.audit_retained_bytes(), 0);
    }

    #[test]
    fn buffer_pool_accounting_matches_audit_across_cycles() {
        let mut p = BufferPool::new();
        let mut held = Vec::new();
        for round in 0..3 {
            for i in 0..10 {
                held.push(p.acquire_zeroed(64 + 37 * i + round));
            }
            for v in held.drain(..) {
                p.release(v);
            }
            assert_eq!(p.stats().retained_bytes, p.audit_retained_bytes());
        }
    }

    #[test]
    fn shared_pool_is_usable_from_many_threads() {
        let p = std::sync::Arc::new(SharedPool::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let p = std::sync::Arc::clone(&p);
                s.spawn(move || {
                    for i in 0..50 {
                        let len = 64 + 97 * ((t * 50 + i) % 40);
                        let v = p.acquire_zeroed(len);
                        assert_eq!(v.len(), len);
                        assert!(v.iter().all(|&x| x == 0.0));
                        p.release(v);
                    }
                });
            }
        });
        let s = p.stats();
        assert_eq!(s.acquires, 200);
        assert!(s.reuses > 0);
    }
}
