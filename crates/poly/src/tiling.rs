//! Comparison of tiling strategies for a fused group (paper Fig. 5).
//!
//! The paper motivates overlapped tiling by contrasting it with
//! parallelogram and split tiling: each offers a different trade-off
//! between parallelism, locality, redundant computation, and ease of
//! storage optimization. This module makes that comparison *computable*
//! for any aligned group: given the group's dependence extents (the same
//! analysis that shapes overlapped tiles), it derives the quantitative
//! profile of each strategy — the paper's bottom-right table in Fig. 5,
//! with numbers.
//!
//! The compiler itself always uses overlapped tiling (§3.2's conclusion:
//! tile-independence is what enables scratchpads); this analysis exists to
//! reproduce and check the paper's rationale, and backs the
//! `tile_anatomy` example and ablation discussions.

use crate::{group_overlap, AlignError, Alignment, GroupOverlap};
use polymage_ir::{FuncId, Pipeline};

/// The three §3.2 tiling strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TilingStrategy {
    /// Neighboring tiles recompute the shared cone; all tiles independent.
    Overlapped,
    /// Two phases (upward/downward tiles); boundary values stay live
    /// between phases.
    Split,
    /// Skewed tiles with wavefront dependences between neighbors.
    Parallelogram,
}

/// Quantitative profile of one strategy on one group.
#[derive(Debug, Clone)]
pub struct TilingProfile {
    /// Which strategy.
    pub strategy: TilingStrategy,
    /// Can all tiles (of a phase) start concurrently?
    pub concurrent_start: bool,
    /// Number of sequential phases/wavefront steps needed.
    ///
    /// Overlapped/split: a constant (1 or 2). Parallelogram: the number of
    /// tiles along the dependence direction — with the shallow "time"
    /// extent of image pipelines this "effectively reduces to sequential
    /// execution of the tiles" (§3.2).
    pub sequential_steps: i64,
    /// Redundant-computation fraction per tile (recomputed ÷ useful).
    pub redundant_fraction: f64,
    /// Values that must stay live across tile/phase boundaries, per tile
    /// (prevents scratchpad storage when non-zero).
    pub live_boundary_values: i64,
    /// Whether intermediates can live in per-tile scratchpads.
    pub scratchpad_storage: bool,
}

/// The full Fig. 5 comparison for a group.
#[derive(Debug, Clone)]
pub struct TilingComparison {
    /// Profile per strategy, in Fig. 5's order.
    pub profiles: [TilingProfile; 3],
    /// The dependence analysis both tile shapes derive from.
    pub overlap: GroupOverlap,
}

impl TilingComparison {
    /// The profile of one strategy.
    pub fn profile(&self, s: TilingStrategy) -> &TilingProfile {
        self.profiles
            .iter()
            .find(|p| p.strategy == s)
            .expect("all strategies present")
    }

    /// Renders the Fig. 5 characteristics table.
    pub fn table(&self) -> String {
        let mut s = String::from(
            "strategy        parallel  seq-steps  redundancy  live-boundary  scratchpads\n",
        );
        for p in &self.profiles {
            s.push_str(&format!(
                "{:<15} {:>8} {:>10} {:>10.1}% {:>14} {:>12}\n",
                format!("{:?}", p.strategy),
                if p.concurrent_start { "yes" } else { "no" },
                p.sequential_steps,
                p.redundant_fraction * 100.0,
                p.live_boundary_values,
                if p.scratchpad_storage { "yes" } else { "no" },
            ));
        }
        s
    }
}

/// Computes the Fig. 5 comparison for an aligned group with the given tile
/// sizes (`tile[d]` per group dimension; 0 = untiled) and per-dimension
/// domain extents of the sink.
///
/// # Errors
///
/// Propagates the overlap analysis' [`AlignError`] (a group that cannot be
/// overlap-tiled cannot be compared either).
pub fn compare_tilings(
    pipe: &Pipeline,
    group: &[FuncId],
    alignment: &Alignment,
    tile: &[i64],
    sink_extents: &[i64],
) -> Result<TilingComparison, AlignError> {
    let overlap = group_overlap(pipe, group, alignment)?;

    // Boundary footprint: per tiled dimension, the dependence width that
    // either gets recomputed (overlapped) or must stay live (split /
    // parallelogram), counted over the tile's faces.
    let mut live_per_tile = 0i64;
    let mut tiles_along_dep = 1i64;
    for (d, o) in overlap.dims.iter().enumerate() {
        let t = tile.get(d).copied().unwrap_or(0);
        if t <= 0 {
            continue;
        }
        // face size = product of the other tiled dims' sizes
        let mut face = 1i64;
        for (d2, o2) in overlap.dims.iter().enumerate() {
            if d2 != d {
                let t2 = tile.get(d2).copied().unwrap_or(0);
                face *= if t2 > 0 { t2 } else { 1.max(o2.total()) };
            }
        }
        live_per_tile += o.total() * face;
        let ext = sink_extents.get(d).copied().unwrap_or(t);
        tiles_along_dep = tiles_along_dep.max((ext + t - 1) / t.max(1));
    }

    let redundancy = overlap.overlap_ratio(tile).max(0.0);
    let profiles = [
        TilingProfile {
            strategy: TilingStrategy::Overlapped,
            concurrent_start: true,
            sequential_steps: 1,
            redundant_fraction: redundancy,
            live_boundary_values: 0,
            scratchpad_storage: true,
        },
        TilingProfile {
            strategy: TilingStrategy::Split,
            concurrent_start: true,
            sequential_steps: 2, // upward-pointing phase, then downward
            redundant_fraction: 0.0,
            live_boundary_values: live_per_tile,
            scratchpad_storage: false,
        },
        TilingProfile {
            strategy: TilingStrategy::Parallelogram,
            // wavefront: each tile depends on its predecessor along the
            // skew direction — no concurrent start (§3.2: "effectively
            // reduces to sequential execution")
            concurrent_start: false,
            sequential_steps: tiles_along_dep,
            redundant_fraction: 0.0,
            live_boundary_values: live_per_tile,
            scratchpad_storage: false,
        },
    ];
    Ok(TilingComparison { profiles, overlap })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_alignment;
    use polymage_ir::{Case, Expr, Interval, PipelineBuilder, ScalarType};

    /// The Fig. 5 chain: two chained ±1 stencils.
    fn fig5_group() -> (Pipeline, Vec<FuncId>, FuncId) {
        let mut p = PipelineBuilder::new("fig5");
        let img = p.image("in", ScalarType::Float, vec![polymage_ir::PAff::cst(1024)]);
        let x = p.var("x");
        let d = Interval::cst(2, 1021);
        let f1 = p.func("f1", &[(x, d.clone())], ScalarType::Float);
        p.define(f1, vec![Case::always(Expr::at(img, [x + 0]))])
            .unwrap();
        let f2 = p.func("f2", &[(x, d.clone())], ScalarType::Float);
        p.define(
            f2,
            vec![Case::always(Expr::at(f1, [x - 1]) + Expr::at(f1, [x + 1]))],
        )
        .unwrap();
        let fout = p.func("fout", &[(x, d)], ScalarType::Float);
        p.define(
            fout,
            vec![Case::always(Expr::at(f2, [x - 1]) * Expr::at(f2, [x + 1]))],
        )
        .unwrap();
        let pipe = p.finish(&[fout]).unwrap();
        (pipe, vec![f1, f2, fout], fout)
    }

    #[test]
    fn fig5_characteristics_table() {
        let (pipe, group, sink) = fig5_group();
        let al = solve_alignment(&pipe, &group, sink).unwrap();
        let cmp = compare_tilings(&pipe, &group, &al, &[64], &[1020]).unwrap();

        let ov = cmp.profile(TilingStrategy::Overlapped);
        assert!(ov.concurrent_start);
        assert_eq!(ov.sequential_steps, 1);
        // overlap 2+2 on a 64 tile → 6.25% redundancy
        assert!((ov.redundant_fraction - 4.0 / 64.0).abs() < 1e-9);
        assert_eq!(ov.live_boundary_values, 0);
        assert!(ov.scratchpad_storage);

        let sp = cmp.profile(TilingStrategy::Split);
        assert!(sp.concurrent_start);
        assert_eq!(sp.sequential_steps, 2);
        assert_eq!(sp.redundant_fraction, 0.0);
        assert_eq!(sp.live_boundary_values, 4); // 2 left + 2 right
        assert!(!sp.scratchpad_storage);

        let pl = cmp.profile(TilingStrategy::Parallelogram);
        assert!(!pl.concurrent_start);
        assert_eq!(pl.sequential_steps, 16); // 1020 / 64 tiles in a wavefront
        assert!(!pl.scratchpad_storage);

        // Fig. 5's qualitative table, mechanically:
        // overlapped is the only strategy with parallelism AND scratchpads.
        let both = cmp
            .profiles
            .iter()
            .filter(|p| p.concurrent_start && p.scratchpad_storage)
            .count();
        assert_eq!(both, 1);
        let t = cmp.table();
        assert!(t.contains("Overlapped"));
        assert!(t.contains("Parallelogram"));
    }

    #[test]
    fn untiled_dims_do_not_contribute() {
        let (pipe, group, sink) = fig5_group();
        let al = solve_alignment(&pipe, &group, sink).unwrap();
        let cmp = compare_tilings(&pipe, &group, &al, &[0], &[1020]).unwrap();
        assert_eq!(
            cmp.profile(TilingStrategy::Overlapped).redundant_fraction,
            0.0
        );
        assert_eq!(cmp.profile(TilingStrategy::Split).live_boundary_values, 0);
    }
}
