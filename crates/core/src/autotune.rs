//! Autotuning (paper §3.8), model-pruned by default, and the
//! random-search baseline.
//!
//! The model-driven grouping heuristic narrows the schedule space to tile
//! sizes and an overlap threshold; the exhaustive tuner sweeps the paper's
//! exact space — tile sizes {8, 16, 32, 64, 128, 256, 512} per tilable
//! dimension and thresholds {0.2, 0.4, 0.5} — measuring real executions
//! and keeping the best. [`autotune_pruned`] ranks the same space with the
//! cache model of [`crate::tilemodel`] first (grouping plus analytic
//! per-group cost, no lowering or execution) and measures only the top-k
//! candidates — the "cost model prunes the measured set" move of the GPU
//! scheduling literature, applied to the paper's CPU space.
//! [`random_search`] is the stand-in for the unrestricted-space tuners the
//! paper compares against (OpenTuner): it samples arbitrary tile shapes
//! and thresholds from a much larger space under the same budget.

use crate::grouping::{effective_tiles_from, group_stages, GroupKindTag};
use crate::tilemodel::{predict_group_cost, CacheModel, GroupGeom};
use crate::{CompileError, CompileOptions, RunError, Session, TileSpec};
use polymage_diag::Value;
use polymage_graph::{inline_pointwise, PipelineGraph};
use polymage_ir::Pipeline;
use polymage_vm::{Buffer, RunRequest};
use rand::Rng;
use std::time::{Duration, Instant};

/// The paper's tile-size candidates.
pub const TILE_CANDIDATES: [i64; 7] = [8, 16, 32, 64, 128, 256, 512];
/// The paper's overlap-threshold candidates.
pub const THRESHOLDS: [f64; 3] = [0.2, 0.4, 0.5];
/// Default number of model-ranked configurations [`autotune_pruned`]
/// actually measures.
pub const PRUNED_TOP_K: usize = 8;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct TuneRecord {
    /// Tile sizes tried.
    pub tile: Vec<i64>,
    /// Overlap threshold tried.
    pub threshold: f64,
    /// The compiler model's predicted redundancy fraction for this
    /// configuration ([`crate::CompileReport::predicted_overlap`]) —
    /// recorded next to the measured times so model-vs-measured tables
    /// fall straight out of a sweep.
    pub predicted_overlap: f64,
    /// Single-thread execution time.
    pub t1: Duration,
    /// Execution time with `threads` workers.
    pub tn: Duration,
}

/// Autotuner outcome: all records plus the index of the best (by `tn`).
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// Every configuration measured, in exploration order.
    pub records: Vec<TuneRecord>,
    /// Index into `records` of the fastest configuration.
    pub best: usize,
    /// Size of the candidate space considered (equals `records.len()` for
    /// the exhaustive sweep; larger under model pruning, where only the
    /// top-ranked candidates were measured).
    pub considered: usize,
}

impl TuneOutcome {
    /// The best record.
    pub fn best_record(&self) -> &TuneRecord {
        &self.records[self.best]
    }
}

fn measure(
    session: &Session,
    pipe: &Pipeline,
    opts: &CompileOptions,
    inputs: &[Buffer],
    threads: usize,
    runs: usize,
) -> Result<(Duration, Duration, f64), RunError> {
    let compiled = session.compile(pipe, opts)?;
    let predicted = compiled.report.predicted_overlap();
    let engine = session.engine();
    let time_with = |n: usize| -> Result<Duration, RunError> {
        let run_once = || -> Result<(), RunError> {
            engine
                .submit(RunRequest::new(&compiled.program, inputs).threads(n))?
                .join()?;
            Ok(())
        };
        // one warm-up, then average
        run_once()?;
        let start = Instant::now();
        for _ in 0..runs {
            run_once()?;
        }
        Ok(start.elapsed() / runs.max(1) as u32)
    };
    let t1 = time_with(1)?;
    let tn = if threads > 1 { time_with(threads)? } else { t1 };
    Ok((t1, tn, predicted))
}

/// Records one tuned configuration (model prediction next to measured
/// times) through the session's diagnostics sink.
fn emit_tune_event(session: &Session, rec: &TuneRecord) {
    let diag = session.diag();
    if !diag.enabled() {
        return;
    }
    let tile: Vec<String> = rec.tile.iter().map(|t| t.to_string()).collect();
    diag.event(
        "tune.config",
        vec![
            ("tile", Value::from(tile.join("x"))),
            ("threshold", Value::Float(rec.threshold)),
            ("predicted_overlap", Value::Float(rec.predicted_overlap)),
            ("t1_us", Value::UInt(rec.t1.as_micros() as u64)),
            ("tn_us", Value::UInt(rec.tn.as_micros() as u64)),
        ],
    );
}

/// Runs the paper's model-driven sweep: `tiles² × thresholds` (square tiles
/// per 2-D group; pass `dims = 1` for 1-D pipelines).
///
/// `runs` executions are averaged per configuration (after one warm-up).
/// All measurements run on one [`Session`], so the worker pool persists
/// across the whole sweep.
///
/// # Errors
///
/// Propagates the first compilation or execution error through
/// [`RunError`]; no configuration result is silently dropped.
pub fn autotune(
    pipe: &Pipeline,
    base: &CompileOptions,
    inputs: &[Buffer],
    threads: usize,
    runs: usize,
    tiles: &[i64],
    thresholds: &[f64],
) -> Result<TuneOutcome, RunError> {
    // Size the compile cache to hold the whole sweep so a repeated sweep
    // on the same session (e.g. after resizing inputs back) hits entirely.
    let sweep = tiles.len() * tiles.len() * thresholds.len();
    let session = Session::with_threads(threads.max(1)).with_cache_capacity(sweep.max(1));
    autotune_with_session(
        &session, pipe, base, inputs, threads, runs, tiles, thresholds,
    )
}

/// [`autotune`] on a caller-provided [`Session`]: compilations go through
/// the session's compile cache (a re-sweep of the same space is all cache
/// hits) and each configuration is recorded as a `tune.config` diagnostics
/// event with the predicted overlap ratio next to the measured times.
///
/// # Errors
///
/// Same conditions as [`autotune`].
#[allow(clippy::too_many_arguments)]
pub fn autotune_with_session(
    session: &Session,
    pipe: &Pipeline,
    base: &CompileOptions,
    inputs: &[Buffer],
    threads: usize,
    runs: usize,
    tiles: &[i64],
    thresholds: &[f64],
) -> Result<TuneOutcome, RunError> {
    let mut records = Vec::new();
    let mut opts = base.clone();
    opts.skip_bounds_check = false;
    for &t0 in tiles {
        for &t1 in tiles {
            for &th in thresholds {
                opts.tiles = TileSpec::Fixed(vec![t0, t1]);
                opts.overlap_threshold = th;
                let (d1, dn, predicted) = measure(session, pipe, &opts, inputs, threads, runs)?;
                opts.skip_bounds_check = true; // checked once is enough
                records.push(TuneRecord {
                    tile: vec![t0, t1],
                    threshold: th,
                    predicted_overlap: predicted,
                    t1: d1,
                    tn: dn,
                });
                emit_tune_event(session, records.last().expect("just pushed"));
            }
        }
    }
    let best = records
        .iter()
        .enumerate()
        .min_by_key(|(_, r)| r.tn)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let considered = records.len();
    Ok(TuneOutcome {
        records,
        best,
        considered,
    })
}

/// Model score of one fixed-tile configuration: the summed
/// [`predict_group_cost`] over the grouping this configuration induces.
/// Runs the front-end and Algorithm 1 but no lowering, instantiation, or
/// execution — orders of magnitude cheaper than a measurement.
///
/// # Errors
///
/// Structural pipeline errors only (cycles, estimate mismatch) — the same
/// conditions [`crate::plan`] reports.
pub fn model_score(pipe: &Pipeline, opts: &CompileOptions) -> Result<f64, CompileError> {
    let (pipe2, _) = if opts.inline_pointwise {
        inline_pointwise(pipe)?
    } else {
        (pipe.clone(), Default::default())
    };
    let graph = PipelineGraph::build(&pipe2)?;
    let grouping = group_stages(&pipe2, &graph, opts);
    let model = CacheModel::get();
    let mut total = 0.0;
    for g in &grouping.groups {
        if g.kind != GroupKindTag::Normal {
            continue;
        }
        if let Some(geom) = GroupGeom::build(&pipe2, &graph, g, opts) {
            let tiles = effective_tiles_from(
                geom.sink_extents(),
                opts.tiles.baseline_sizes(),
                opts.tile,
                opts.par_strips,
            );
            total += predict_group_cost(&geom, &tiles, &model);
        }
    }
    Ok(total)
}

/// Model-pruned autotuning: ranks the full `tiles² × thresholds` space
/// with [`model_score`], measures only the `top_k` best-ranked
/// configurations (the same measurement protocol as
/// [`autotune_with_session`]), and reports the full space size in
/// [`TuneOutcome::considered`]. With `top_k >= tiles²·thresholds` this
/// degenerates to the exhaustive sweep in model-rank order.
///
/// # Errors
///
/// Same conditions as [`autotune`].
#[allow(clippy::too_many_arguments)] // mirrors `autotune`'s surface plus the pruning knobs
pub fn autotune_pruned(
    pipe: &Pipeline,
    base: &CompileOptions,
    inputs: &[Buffer],
    threads: usize,
    runs: usize,
    tiles: &[i64],
    thresholds: &[f64],
    top_k: usize,
) -> Result<TuneOutcome, RunError> {
    let session = Session::with_threads(threads.max(1)).with_cache_capacity(top_k.max(1));
    autotune_pruned_with_session(
        &session, pipe, base, inputs, threads, runs, tiles, thresholds, top_k,
    )
}

/// [`autotune_pruned`] on a caller-provided [`Session`]. Each ranked
/// candidate is recorded as a `tune.rank` diagnostics event (model score,
/// measured or pruned) before the measurement loop starts.
///
/// # Errors
///
/// Same conditions as [`autotune`].
#[allow(clippy::too_many_arguments)]
pub fn autotune_pruned_with_session(
    session: &Session,
    pipe: &Pipeline,
    base: &CompileOptions,
    inputs: &[Buffer],
    threads: usize,
    runs: usize,
    tiles: &[i64],
    thresholds: &[f64],
    top_k: usize,
) -> Result<TuneOutcome, RunError> {
    // Rank the whole space analytically.
    let mut ranked: Vec<(f64, i64, i64, f64)> = Vec::new();
    let mut opts = base.clone();
    for &t0 in tiles {
        for &t1 in tiles {
            for &th in thresholds {
                opts.tiles = TileSpec::Fixed(vec![t0, t1]);
                opts.overlap_threshold = th;
                let score = model_score(pipe, &opts)?;
                ranked.push((score, t0, t1, th));
            }
        }
    }
    let considered = ranked.len();
    // Stable sort: ties keep sweep order, so the ranking is deterministic.
    ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let measured = top_k.max(1).min(ranked.len());
    let diag = session.diag();
    if diag.enabled() {
        for (i, &(score, t0, t1, th)) in ranked.iter().enumerate() {
            diag.event(
                "tune.rank",
                vec![
                    ("rank", Value::UInt(i as u64)),
                    ("tile", Value::from(format!("{t0}x{t1}"))),
                    ("threshold", Value::Float(th)),
                    ("score", Value::Float(score)),
                    ("measured", Value::from(i < measured)),
                ],
            );
        }
    }

    // Measure only the top-ranked candidates.
    let mut records = Vec::new();
    opts.skip_bounds_check = false;
    for &(_, t0, t1, th) in ranked.iter().take(measured) {
        opts.tiles = TileSpec::Fixed(vec![t0, t1]);
        opts.overlap_threshold = th;
        let (d1, dn, predicted) = measure(session, pipe, &opts, inputs, threads, runs)?;
        opts.skip_bounds_check = true;
        records.push(TuneRecord {
            tile: vec![t0, t1],
            threshold: th,
            predicted_overlap: predicted,
            t1: d1,
            tn: dn,
        });
        emit_tune_event(session, records.last().expect("just pushed"));
    }
    let best = records
        .iter()
        .enumerate()
        .min_by_key(|(_, r)| r.tn)
        .map(|(i, _)| i)
        .unwrap_or(0);
    Ok(TuneOutcome {
        records,
        best,
        considered,
    })
}

/// Random search over an *unrestricted* schedule space: arbitrary tile
/// shapes in `[4, 1024]`, arbitrary thresholds in `[0, 1]`, and randomly
/// disabled fusion/tiling — the OpenTuner stand-in. Same measurement
/// protocol as [`autotune`], with a configuration budget.
///
/// # Errors
///
/// Propagates compilation and execution errors through [`RunError`] (none
/// occur for valid pipelines; the random space only varies schedule
/// knobs).
pub fn random_search(
    pipe: &Pipeline,
    base: &CompileOptions,
    inputs: &[Buffer],
    threads: usize,
    runs: usize,
    budget: usize,
    rng: &mut impl Rng,
) -> Result<TuneOutcome, RunError> {
    let session = Session::with_threads(threads.max(1));
    let mut records = Vec::new();
    let mut opts = base.clone();
    for i in 0..budget {
        let pow0 = rng.gen_range(2..=10u32);
        let pow1 = rng.gen_range(2..=10u32);
        let tile = vec![1i64 << pow0, 1i64 << pow1];
        opts.tiles = TileSpec::Fixed(tile.clone());
        opts.overlap_threshold = rng.gen_range(0.0..1.0);
        opts.fuse = rng.gen_bool(0.8);
        opts.tile = rng.gen_bool(0.8);
        opts.skip_bounds_check = i > 0;
        let (d1, dn, predicted) = measure(&session, pipe, &opts, inputs, threads, runs)?;
        records.push(TuneRecord {
            tile,
            threshold: opts.overlap_threshold,
            predicted_overlap: predicted,
            t1: d1,
            tn: dn,
        });
        emit_tune_event(&session, records.last().expect("just pushed"));
    }
    let best = records
        .iter()
        .enumerate()
        .min_by_key(|(_, r)| r.tn)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let considered = records.len();
    Ok(TuneOutcome {
        records,
        best,
        considered,
    })
}
