//! Compiler options: the schedule-relevant knobs of the paper.

use polymage_vm::{EvalMode, SimdOpt};

/// The historical global tile shape (the paper's evaluation default): 32
/// rows × 256 columns. Used by [`TileSpec::Fixed`] defaults, as the
/// baseline shape Algorithm 1's overlap estimate reads under
/// [`TileSpec::Auto`], and as the fallback when the cache model finds no
/// feasible shape.
pub const DEFAULT_TILE_SIZES: [i64; 2] = [32, 256];

/// How tile shapes are chosen for tiled groups.
///
/// [`Fixed`](TileSpec::Fixed) applies one global shape to every group
/// (the historical behavior, bit-for-bit). [`Auto`](TileSpec::Auto) runs
/// the per-group cache model ([`crate::tilemodel`]) after grouping: each
/// group gets the largest tile shape whose per-tile working set fits the
/// detected cache budget, subject to a parallelism floor and the group's
/// overlap threshold. Both are value-invisible — tiling never changes
/// output bits — so this is purely a performance knob, but it participates
/// in [`CompileOptions::cache_key`] because it changes the produced
/// program.
///
/// The `POLYMAGE_TILE` environment variable, when set, flips the default:
/// `auto` selects [`TileSpec::Auto`], `fixed`/`default` the historical
/// [`DEFAULT_TILE_SIZES`], and an explicit shape like `32x256` (or
/// `32,256`) a custom [`TileSpec::Fixed`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TileSpec {
    /// Per-group tile shapes from the cache model (`core::tilemodel`).
    Auto,
    /// One global tile shape, as the paper's `T` (the historical
    /// `tile_sizes` knob). Dimensions beyond the vector reuse its last
    /// entry.
    Fixed(Vec<i64>),
}

impl TileSpec {
    /// The global sizes Algorithm 1's overlap estimate and the fallback
    /// path use: the fixed shape itself, or [`DEFAULT_TILE_SIZES`] under
    /// [`TileSpec::Auto`] (the model runs *after* grouping, so grouping
    /// decisions stay identical between `Auto` and the fixed default).
    pub fn baseline_sizes(&self) -> &[i64] {
        match self {
            TileSpec::Auto => &DEFAULT_TILE_SIZES,
            TileSpec::Fixed(sizes) => sizes,
        }
    }

    /// Parses a `POLYMAGE_TILE`-style spelling: `auto`, `fixed`/`default`,
    /// or an explicit shape (`32x256`, `32,256`). `None` for anything
    /// unrecognized.
    pub fn parse(s: &str) -> Option<TileSpec> {
        match s.to_ascii_lowercase().as_str() {
            "auto" | "model" => Some(TileSpec::Auto),
            "fixed" | "default" => Some(TileSpec::Fixed(DEFAULT_TILE_SIZES.to_vec())),
            other => {
                let sizes: Option<Vec<i64>> = other
                    .split(['x', ','])
                    .map(|t| t.trim().parse::<i64>().ok().filter(|&v| v > 0))
                    .collect();
                sizes.filter(|v| !v.is_empty()).map(TileSpec::Fixed)
            }
        }
    }
}

/// Options controlling compilation.
///
/// The defaults correspond to the paper's fully optimized configuration
/// ("PolyMage (opt+vec)"); the `fuse` / `tile` / `mode` knobs reproduce the
/// ablation configurations of Fig. 10.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Concrete values for the pipeline parameters (indexed by
    /// [`polymage_ir::ParamId::index`]).
    pub params: Vec<i64>,
    /// Parameter *estimates* for the size-dependent heuristics (grouping's
    /// `group_size` ordering and the overlap-vs-tile ratio of Algorithm 1,
    /// matching the paper's estimate-driven decisions). `None` (the
    /// default) uses [`params`](Self::params), reproducing the historical
    /// behavior where every analysis is specialized to the bound values.
    ///
    /// Setting explicit estimates makes the expensive phase-1 analysis
    /// ([`crate::plan`]) independent of `params`: one
    /// [`crate::ParametricPlan`] can then be
    /// [instantiated](crate::instantiate) at many sizes, and `Session`
    /// shares the plan across them (see
    /// [`cache_key_structural`](Self::cache_key_structural)).
    pub param_estimates: Option<Vec<i64>>,
    /// Tile-shape selection: a global fixed shape (the paper's `T`; a
    /// dimension is tiled only when its extent is at least twice the
    /// requested size) or per-group shapes from the cache model
    /// ([`TileSpec::Auto`]). The `POLYMAGE_TILE` environment variable,
    /// when set, flips the default.
    pub tiles: TileSpec,
    /// The overlap threshold of Algorithm 1 (`othresh`); fraction of
    /// redundant computation tolerated per tile.
    pub overlap_threshold: f64,
    /// Chunked (vectorized) or point-wise evaluation.
    pub mode: EvalMode,
    /// Run the grouping heuristic. `false` keeps every stage in its own
    /// group (the paper's "base" configuration).
    pub fuse: bool,
    /// Tile group domains. `false` executes groups as parallel row strips
    /// without locality tiling (with `fuse: false` this is exactly the
    /// paper's "base").
    pub tile: bool,
    /// Run the point-wise inlining pass (on in every paper configuration).
    pub inline_pointwise: bool,
    /// Storage optimization (§3.6): when disabled, every stage of a tiled
    /// group is *also* written to a full array, modeling the memory traffic
    /// of tiling without scratchpads — the ablation behind the paper's
    /// "without storage reduction, the tiling transformations are not very
    /// effective".
    pub storage_opt: bool,
    /// Liveness-driven storage folding (§3.6, second half): reuse one
    /// arena slot for scratchpads of stages whose live ranges don't
    /// intersect, and release full buffers right after their last consumer
    /// group instead of at run end. Bit-exact; purely a memory-footprint /
    /// locality knob. The `POLYMAGE_STORAGE_FOLD` environment variable
    /// (`off`/`0`/`false`), when set, flips the default for ablation runs.
    pub storage_fold: bool,
    /// Target strip count for parallelism when a domain's outer dimension is
    /// not tiled.
    pub par_strips: i64,
    /// Skip the static bounds check (useful in the autotuner's inner loop,
    /// where the same pipeline was already checked).
    pub skip_bounds_check: bool,
    /// Run the kernel optimizer (`polymage_vm::opt`): bit-exact constant
    /// folding, simplification, CSE, DCE, register compaction, uniformity
    /// analysis, and load specialization. `false` executes kernels exactly
    /// as lowering emits them (the pre-optimizer behavior, for ablation).
    pub kernel_opt: bool,
    /// SIMD backend selection for the chunk evaluator. [`SimdOpt::Auto`]
    /// (the default) uses the best instruction set detected at startup;
    /// [`SimdOpt::Off`] forces the scalar loops; explicit levels are
    /// clamped to what the host supports. The `POLYMAGE_SIMD` environment
    /// variable, when set, overrides this option. All levels are bit-exact
    /// (see `polymage-vm`'s `simd` module), so this is a pure performance
    /// knob — but it still participates in the cache key because the
    /// compiled [`polymage_vm::Program`] records the resolved level.
    pub simd: SimdOpt,
}

impl CompileOptions {
    /// Options for the paper's fully optimized configuration with the given
    /// parameter values.
    pub fn optimized(params: Vec<i64>) -> Self {
        CompileOptions {
            params,
            param_estimates: None,
            tiles: default_tile_spec(),
            overlap_threshold: 0.4,
            mode: EvalMode::Vector,
            fuse: true,
            tile: true,
            inline_pointwise: true,
            storage_opt: true,
            storage_fold: default_storage_fold(),
            par_strips: 128,
            skip_bounds_check: false,
            kernel_opt: true,
            simd: SimdOpt::Auto,
        }
    }

    /// Options for the paper's "base" configuration: inlining and
    /// parallelism but no grouping, tiling, or storage optimization.
    pub fn base(params: Vec<i64>) -> Self {
        CompileOptions {
            fuse: false,
            tile: false,
            ..CompileOptions::optimized(params)
        }
    }

    /// Switches the evaluation mode (the ±vec axis of Fig. 10).
    pub fn with_mode(mut self, mode: EvalMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets a global fixed tile shape ([`TileSpec::Fixed`]).
    pub fn with_tiles(mut self, tiles: Vec<i64>) -> Self {
        self.tiles = TileSpec::Fixed(tiles);
        self
    }

    /// Sets the tile-shape selection mode (fixed global shape or the
    /// per-group cache model).
    pub fn with_tile_spec(mut self, tiles: TileSpec) -> Self {
        self.tiles = tiles;
        self
    }

    /// Sets the overlap threshold.
    pub fn with_threshold(mut self, t: f64) -> Self {
        self.overlap_threshold = t;
        self
    }

    /// Enables or disables the kernel optimizer (on by default).
    pub fn with_kernel_opt(mut self, on: bool) -> Self {
        self.kernel_opt = on;
        self
    }

    /// Selects the SIMD backend ([`SimdOpt::Auto`] by default).
    pub fn with_simd(mut self, simd: SimdOpt) -> Self {
        self.simd = simd;
        self
    }

    /// Enables or disables liveness-driven storage folding (on by default
    /// unless `POLYMAGE_STORAGE_FOLD` says otherwise).
    pub fn with_storage_fold(mut self, on: bool) -> Self {
        self.storage_fold = on;
        self
    }

    /// Sets explicit parameter estimates for the size-dependent heuristics
    /// (see [`param_estimates`](Self::param_estimates)).
    pub fn with_estimates(mut self, estimates: Vec<i64>) -> Self {
        self.param_estimates = Some(estimates);
        self
    }

    /// The parameter values the heuristics use: the explicit
    /// [`param_estimates`](Self::param_estimates) when set, the bound
    /// [`params`](Self::params) otherwise.
    pub fn estimates(&self) -> &[i64] {
        self.param_estimates.as_deref().unwrap_or(&self.params)
    }

    /// The hashable normal form of these options, used (together with the
    /// pipeline's content hash) to key compile caches.
    ///
    /// Every knob that can change the produced program participates —
    /// including `kernel_opt`, which rewrites kernels and attaches
    /// uniformity metadata. `skip_bounds_check` is deliberately excluded:
    /// it only affects whether invalid specifications are *rejected*,
    /// never the program a successful compilation produces.
    pub fn cache_key(&self) -> OptionsKey {
        OptionsKey {
            params: self.params.clone(),
            structural: self.cache_key_structural(),
        }
    }

    /// The *size-independent* part of [`cache_key`](Self::cache_key):
    /// every knob except the bound `params`. Two option sets with the same
    /// structural key produce the same [`crate::ParametricPlan`] (for the
    /// same pipeline), so `Session` keys its plan cache on this form and
    /// shares one plan across all bound parameter values.
    ///
    /// The *resolved* estimates participate (they steer grouping), which
    /// means that with the default `param_estimates: None` the structural
    /// key still varies with `params` — exactly the historical
    /// one-plan-per-size behavior. Pin `param_estimates` to share plans
    /// across sizes.
    pub fn cache_key_structural(&self) -> StructuralKey {
        let tiles = match &self.tiles {
            // The model's decisions depend on the resolved cache geometry
            // and parallelism floor, so they participate in the key the
            // same way the resolved SIMD level does.
            TileSpec::Auto => {
                let m = crate::tilemodel::CacheModel::get();
                TileKey::Auto {
                    l1: m.l1 as u64,
                    l2: m.l2 as u64,
                    line: m.line as u64,
                    min_strips: crate::tilemodel::min_strip_tiles() as u64,
                }
            }
            TileSpec::Fixed(sizes) => TileKey::Fixed(sizes.clone()),
        };
        StructuralKey {
            estimates: self.estimates().to_vec(),
            tiles,
            overlap_threshold_bits: self.overlap_threshold.to_bits(),
            mode: self.mode,
            fuse: self.fuse,
            tile: self.tile,
            inline_pointwise: self.inline_pointwise,
            storage_opt: self.storage_opt,
            storage_fold: self.storage_fold,
            par_strips: self.par_strips,
            kernel_opt: self.kernel_opt,
            simd: polymage_vm::resolve_simd(self.simd),
        }
    }
}

/// Default for [`CompileOptions::tiles`]: the historical fixed
/// [`DEFAULT_TILE_SIZES`], unless the `POLYMAGE_TILE` environment variable
/// selects the cache model (`auto`) or another fixed shape (used by the CI
/// matrix, mirroring `POLYMAGE_SIMD`/`POLYMAGE_STORAGE_FOLD`).
fn default_tile_spec() -> TileSpec {
    env::get()
        .tiles
        .clone()
        .unwrap_or_else(|| TileSpec::Fixed(DEFAULT_TILE_SIZES.to_vec()))
}

/// Default for [`CompileOptions::storage_fold`]: on, unless the
/// `POLYMAGE_STORAGE_FOLD` environment variable disables it (used by the
/// CI ablation matrix, mirroring `POLYMAGE_SIMD`).
fn default_storage_fold() -> bool {
    env::get().storage_fold.unwrap_or(true)
}

pub mod env {
    //! Centralized `POLYMAGE_*` environment handling.
    //!
    //! Historically each knob parsed its own variable where it was
    //! consumed (`POLYMAGE_TILE` and `POLYMAGE_STORAGE_FOLD` here in
    //! `options`, `POLYMAGE_CACHE` in [`crate::tilemodel`],
    //! `POLYMAGE_SIMD` in `polymage_vm::simd`), and anything unknown or
    //! malformed was silently ignored — a typo like
    //! `POLYMAGE_STORAGE_FOLD=of` quietly ran the default configuration.
    //! This module is the single parse-and-validate entry point: every
    //! `POLYMAGE_*` variable is parsed once per process into [`EnvConfig`]
    //! and every problem is captured as an [`EnvIssue`], reported once via
    //! diag (`env.invalid` events) and stderr when compilation first runs
    //! with an enabled sink (see [`report`]).
    //!
    //! The grammar of each knob stays owned by its type —
    //! [`TileSpec::parse`], [`CacheModel::parse`](crate::tilemodel::CacheModel::parse),
    //! [`SimdOpt::parse_spelling`](polymage_vm::SimdOpt::parse_spelling) —
    //! so engine-only embedders that bypass `polymage-core` keep the exact
    //! same spellings.

    use super::TileSpec;
    use crate::tilemodel::CacheModel;
    use polymage_diag::{Diag, Value};
    use polymage_vm::SimdOpt;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Once, OnceLock};

    /// Every `POLYMAGE_*` variable the toolchain understands.
    pub const KNOWN_VARS: [&str; 4] = [
        "POLYMAGE_SIMD",
        "POLYMAGE_TILE",
        "POLYMAGE_STORAGE_FOLD",
        "POLYMAGE_CACHE",
    ];

    /// One rejected or unrecognized `POLYMAGE_*` variable.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct EnvIssue {
        /// The variable name (always `POLYMAGE_`-prefixed).
        pub var: String,
        /// The value that was set.
        pub value: String,
        /// What was wrong with it (unknown variable / expected grammar).
        pub problem: String,
    }

    /// The parsed `POLYMAGE_*` overrides: `None` per knob means unset *or*
    /// malformed (malformed values keep the built-in default and record an
    /// [`EnvIssue`], exactly like the historical per-site parsers).
    #[derive(Debug, Clone, Default)]
    pub struct EnvConfig {
        /// `POLYMAGE_SIMD` — validated here; *consumed* by
        /// `polymage_vm::resolve_simd`, which also covers engine-only
        /// embedders.
        pub simd: Option<SimdOpt>,
        /// `POLYMAGE_TILE` — the [`CompileOptions::tiles`](super::CompileOptions::tiles)
        /// default.
        pub tiles: Option<TileSpec>,
        /// `POLYMAGE_STORAGE_FOLD` — the
        /// [`CompileOptions::storage_fold`](super::CompileOptions::storage_fold)
        /// default.
        pub storage_fold: Option<bool>,
        /// `POLYMAGE_CACHE` — the cache geometry override consumed by
        /// [`CacheModel::get`].
        pub cache: Option<CacheModel>,
        /// Everything rejected, in variable-name order.
        pub issues: Vec<EnvIssue>,
    }

    /// Parses a set of environment variables (pure; exposed for tests).
    /// Only `POLYMAGE_*` names are considered; order of the input does not
    /// matter — issues come out sorted by variable name.
    pub fn parse(vars: impl IntoIterator<Item = (String, String)>) -> EnvConfig {
        let mut cfg = EnvConfig::default();
        let mut vars: Vec<(String, String)> = vars
            .into_iter()
            .filter(|(k, _)| k.starts_with("POLYMAGE_"))
            .collect();
        vars.sort();
        for (name, value) in vars {
            let bad = |cfg: &mut EnvConfig, problem: &str| {
                cfg.issues.push(EnvIssue {
                    var: name.clone(),
                    value: value.clone(),
                    problem: problem.to_string(),
                });
            };
            match name.as_str() {
                "POLYMAGE_SIMD" => match SimdOpt::parse_spelling(&value) {
                    Some(opt) => cfg.simd = Some(opt),
                    None => bad(&mut cfg, "expected off|scalar|sse2|avx2|neon|auto"),
                },
                "POLYMAGE_TILE" => match TileSpec::parse(&value) {
                    Some(spec) => cfg.tiles = Some(spec),
                    None => bad(
                        &mut cfg,
                        "expected auto|fixed|default or a shape like 32x256",
                    ),
                },
                "POLYMAGE_STORAGE_FOLD" => match value.to_ascii_lowercase().as_str() {
                    "on" | "1" | "true" | "yes" => cfg.storage_fold = Some(true),
                    "off" | "0" | "false" | "no" => cfg.storage_fold = Some(false),
                    _ => bad(&mut cfg, "expected on|off|1|0|true|false"),
                },
                "POLYMAGE_CACHE" => match CacheModel::parse(&value) {
                    Some(model) => cfg.cache = Some(model),
                    None => bad(
                        &mut cfg,
                        "expected l1:l2:line byte counts (k/m/g suffixes allowed)",
                    ),
                },
                _ => bad(&mut cfg, "unknown POLYMAGE_* variable"),
            }
        }
        cfg
    }

    /// The process-wide configuration, parsed from the real environment
    /// once (it feeds compile-cache keys, which must be stable).
    pub fn get() -> &'static EnvConfig {
        static CONFIG: OnceLock<EnvConfig> = OnceLock::new();
        CONFIG.get_or_init(|| parse(std::env::vars()))
    }

    /// Reports every [`EnvIssue`] of the process-wide configuration: once
    /// to stderr (ever), and once as structured `env.invalid` diag events
    /// on the first *enabled* sink offered. Called from the compiler entry
    /// points; idempotent and cheap when there is nothing to say.
    pub fn report(diag: &Diag) {
        let cfg = get();
        if cfg.issues.is_empty() {
            return;
        }
        static STDERR_ONCE: Once = Once::new();
        STDERR_ONCE.call_once(|| {
            for issue in &cfg.issues {
                eprintln!(
                    "polymage: ignoring {} = `{}` ({})",
                    issue.var, issue.value, issue.problem
                );
            }
        });
        static DIAG_DONE: AtomicBool = AtomicBool::new(false);
        if diag.enabled()
            && DIAG_DONE
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            for issue in &cfg.issues {
                diag.event(
                    "env.invalid",
                    vec![
                        ("var", Value::Str(issue.var.clone())),
                        ("value", Value::Str(issue.value.clone())),
                        ("problem", Value::Str(issue.problem.clone())),
                    ],
                );
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn pairs(kv: &[(&str, &str)]) -> Vec<(String, String)> {
            kv.iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect()
        }

        #[test]
        fn parses_known_vars() {
            let cfg = parse(pairs(&[
                ("POLYMAGE_SIMD", "avx2"),
                ("POLYMAGE_TILE", "auto"),
                ("POLYMAGE_STORAGE_FOLD", "off"),
                ("POLYMAGE_CACHE", "48k:2m:64"),
                ("PATH", "/usr/bin"), // non-POLYMAGE vars are ignored
            ]));
            assert_eq!(cfg.simd, Some(SimdOpt::Avx2));
            assert_eq!(cfg.tiles, Some(TileSpec::Auto));
            assert_eq!(cfg.storage_fold, Some(false));
            assert_eq!(
                cfg.cache,
                Some(CacheModel {
                    l1: 48 * 1024,
                    l2: 2 * 1024 * 1024,
                    line: 64
                })
            );
            assert!(cfg.issues.is_empty());
        }

        #[test]
        fn flags_malformed_values_and_keeps_defaults() {
            let cfg = parse(pairs(&[
                ("POLYMAGE_SIMD", "avx512"),
                ("POLYMAGE_TILE", "banana"),
                ("POLYMAGE_STORAGE_FOLD", "of"),
                ("POLYMAGE_CACHE", "big"),
            ]));
            assert_eq!(cfg.simd, None);
            assert_eq!(cfg.tiles, None);
            assert_eq!(cfg.storage_fold, None);
            assert_eq!(cfg.cache, None);
            assert_eq!(cfg.issues.len(), 4);
            assert!(cfg.issues.iter().all(|i| i.var.starts_with("POLYMAGE_")));
        }

        #[test]
        fn flags_unknown_polymage_vars() {
            let cfg = parse(pairs(&[
                ("POLYMAGE_TILES", "auto"), // typo: TILES, not TILE
                ("POLYMAGE_SIMD", "off"),
            ]));
            assert_eq!(cfg.simd, Some(SimdOpt::Off));
            assert_eq!(cfg.issues.len(), 1);
            assert_eq!(cfg.issues[0].var, "POLYMAGE_TILES");
            assert_eq!(cfg.issues[0].problem, "unknown POLYMAGE_* variable");
        }

        #[test]
        fn bool_spellings() {
            for (s, want) in [
                ("on", true),
                ("1", true),
                ("TRUE", true),
                ("yes", true),
                ("off", false),
                ("0", false),
                ("False", false),
                ("no", false),
            ] {
                let cfg = parse(pairs(&[("POLYMAGE_STORAGE_FOLD", s)]));
                assert_eq!(cfg.storage_fold, Some(want), "spelling {s}");
                assert!(cfg.issues.is_empty());
            }
        }

        #[test]
        fn report_is_idempotent_and_panic_free() {
            let diag = Diag::noop();
            report(&diag);
            report(&diag);
        }
    }
}

/// The `Eq + Hash` normal form of [`CompileOptions`] (floats by bit
/// pattern), produced by [`CompileOptions::cache_key`]: the bound
/// parameter values plus the size-independent [`StructuralKey`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OptionsKey {
    params: Vec<i64>,
    structural: StructuralKey,
}

impl OptionsKey {
    /// The size-independent part of the key (plan-cache key).
    pub fn structural(&self) -> &StructuralKey {
        &self.structural
    }
}

/// The size-independent normal form of [`CompileOptions`] (every knob but
/// `params`; floats by bit pattern), produced by
/// [`CompileOptions::cache_key_structural`]. Keys `Session`'s plan cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StructuralKey {
    /// Resolved heuristic estimates (explicit `param_estimates`, or the
    /// bound `params` when none were given).
    estimates: Vec<i64>,
    tiles: TileKey,
    overlap_threshold_bits: u64,
    mode: EvalMode,
    fuse: bool,
    tile: bool,
    inline_pointwise: bool,
    storage_opt: bool,
    storage_fold: bool,
    par_strips: i64,
    kernel_opt: bool,
    /// The *resolved* [`polymage_vm::SimdLevel`]: environment override and
    /// host clamping applied, so two option sets that resolve to the same
    /// level share a cache entry.
    simd: polymage_vm::SimdLevel,
}

/// The hashable normal form of [`TileSpec`]: fixed shapes by value,
/// [`TileSpec::Auto`] by the *resolved* cache geometry and parallelism
/// floor its decisions depend on (environment override applied), so two
/// option sets resolving to the same model share a cache entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum TileKey {
    /// Cache-model selection with the resolved model inputs.
    Auto {
        /// L1 data-cache bytes.
        l1: u64,
        /// Per-core L2 bytes (the working-set budget base).
        l2: u64,
        /// Cache-line bytes.
        line: u64,
        /// Parallelism floor (minimum strip-dimension tiles).
        min_strips: u64,
    },
    /// A global fixed shape.
    Fixed(Vec<i64>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_key_normal_form() {
        let a = CompileOptions::optimized(vec![100, 200]);
        assert_eq!(a.cache_key(), a.clone().cache_key());
        assert_ne!(
            a.cache_key(),
            a.clone().with_tiles(vec![64, 64]).cache_key()
        );
        assert_ne!(a.cache_key(), a.clone().with_threshold(0.5).cache_key());
        assert_ne!(
            a.cache_key(),
            CompileOptions::optimized(vec![100, 201]).cache_key()
        );
        // skip_bounds_check never changes the produced program.
        let mut skipped = a.clone();
        skipped.skip_bounds_check = true;
        assert_eq!(a.cache_key(), skipped.cache_key());
        // kernel_opt rewrites kernels, so it must change the key.
        assert_ne!(a.cache_key(), a.clone().with_kernel_opt(false).cache_key());
        // storage_fold changes slot assignments and buffer lifetimes.
        assert_ne!(
            a.cache_key(),
            a.clone().with_storage_fold(!a.storage_fold).cache_key()
        );
        // The simd option participates through its *resolved* level
        // (environment override and host clamping applied), so the keys
        // differ exactly when the resolved levels do.
        let off = a.clone().with_simd(SimdOpt::Off).cache_key();
        if polymage_vm::resolve_simd(SimdOpt::Off) == polymage_vm::resolve_simd(SimdOpt::Auto) {
            assert_eq!(a.cache_key(), off);
        } else {
            assert_ne!(a.cache_key(), off);
        }
    }

    #[test]
    fn structural_key_drops_params() {
        // Pinned estimates: the structural key is size-independent, the
        // full key still varies with the bound params.
        let a = CompileOptions::optimized(vec![100, 200]).with_estimates(vec![100, 200]);
        let b = CompileOptions::optimized(vec![400, 300]).with_estimates(vec![100, 200]);
        assert_eq!(a.cache_key_structural(), b.cache_key_structural());
        assert_ne!(a.cache_key(), b.cache_key());
        // Default estimates follow params (one plan per size, as before).
        let c = CompileOptions::optimized(vec![100, 200]);
        let d = CompileOptions::optimized(vec![400, 300]);
        assert_ne!(c.cache_key_structural(), d.cache_key_structural());
        assert_eq!(a.cache_key_structural(), c.cache_key_structural());
        // Estimates participate in both keys: they steer grouping.
        let e = CompileOptions::optimized(vec![100, 200]).with_estimates(vec![64, 64]);
        assert_ne!(c.cache_key(), e.cache_key());
        assert_eq!(e.estimates(), &[64, 64]);
        assert_eq!(c.estimates(), &[100, 200]);
    }

    #[test]
    fn presets() {
        let o = CompileOptions::optimized(vec![100]);
        assert!(o.fuse && o.tile && o.kernel_opt);
        assert_eq!(o.mode, EvalMode::Vector);
        let b = CompileOptions::base(vec![100]);
        assert!(!b.fuse && !b.tile);
        let s = CompileOptions::optimized(vec![]).with_mode(EvalMode::Scalar);
        assert_eq!(s.mode, EvalMode::Scalar);
        let t = CompileOptions::optimized(vec![])
            .with_tiles(vec![64, 64])
            .with_threshold(0.2);
        assert_eq!(t.tiles, TileSpec::Fixed(vec![64, 64]));
        assert_eq!(t.overlap_threshold, 0.2);
    }

    #[test]
    fn tile_spec_parse_and_baseline() {
        assert_eq!(TileSpec::parse("auto"), Some(TileSpec::Auto));
        assert_eq!(
            TileSpec::parse("fixed"),
            Some(TileSpec::Fixed(DEFAULT_TILE_SIZES.to_vec()))
        );
        assert_eq!(
            TileSpec::parse("default"),
            Some(TileSpec::Fixed(DEFAULT_TILE_SIZES.to_vec()))
        );
        assert_eq!(
            TileSpec::parse("32x256"),
            Some(TileSpec::Fixed(vec![32, 256]))
        );
        assert_eq!(
            TileSpec::parse("64, 64"),
            Some(TileSpec::Fixed(vec![64, 64]))
        );
        assert_eq!(TileSpec::parse(""), None);
        assert_eq!(TileSpec::parse("banana"), None);
        assert_eq!(TileSpec::parse("32x-1"), None);
        assert_eq!(TileSpec::Auto.baseline_sizes(), &DEFAULT_TILE_SIZES);
        assert_eq!(TileSpec::Fixed(vec![8]).baseline_sizes(), &[8]);
    }

    #[test]
    fn auto_and_fixed_key_differently() {
        // Pin the fixed side so the comparison survives a POLYMAGE_TILE
        // override (the CI tile matrix leg).
        let fixed = CompileOptions::optimized(vec![100, 200])
            .with_tile_spec(TileSpec::Fixed(DEFAULT_TILE_SIZES.to_vec()));
        let auto = fixed.clone().with_tile_spec(TileSpec::Auto);
        assert_ne!(fixed.cache_key(), auto.cache_key());
        assert_ne!(fixed.cache_key_structural(), auto.cache_key_structural());
        // Auto keys are stable across calls (the resolved model is a
        // process-wide constant).
        assert_eq!(auto.cache_key(), auto.clone().cache_key());
    }
}
