//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! bench harness.
//!
//! The build environment has no registry access, so the workspace vendors
//! this minimal drop-in implementing the API subset the repository's benches
//! use: [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is real (wall-clock, warm-up + N timed samples, median /
//! min / max reporting, optional throughput), but there is no HTML report,
//! statistical regression analysis, or saved baseline — output is plain
//! text on stdout, which is what the repo's EXPERIMENTS.md workflow records.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation: per-iteration work used to derive rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many abstract elements (frames, pixels, ...).
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Identifies one benchmark within a group, e.g. `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function name plus parameter, rendered `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only id (the common `group/parameter` form).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark id by [`BenchmarkGroup::bench_function`].
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Per-benchmark timing driver handed to the closure in `bench_function`.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording one duration per sample of
    /// `iters_per_sample` back-to-back calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let n = self.iters_per_sample.max(1);
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / n as u32);
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with per-iteration work for rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let stats = run_benchmark(
            &mut f,
            self.sample_size,
            self.measurement_time,
            self.criterion.filter.as_deref(),
            &full,
        );
        if let Some(stats) = stats {
            report(&full, &stats, self.throughput);
        }
        self
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

struct Stats {
    min: Duration,
    median: Duration,
    max: Duration,
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    f: &mut F,
    sample_size: usize,
    measurement_time: Duration,
    filter: Option<&str>,
    full_name: &str,
) -> Option<Stats> {
    if let Some(pat) = filter {
        if !full_name.contains(pat) {
            return None;
        }
    }
    // Warm-up / calibration pass: one sample of one iteration.
    let mut warm = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
    };
    f(&mut warm);
    let per_iter = warm.samples.first().copied().unwrap_or(Duration::ZERO);
    // Size samples so the whole run roughly fits the measurement budget.
    let budget_per_sample = measurement_time / sample_size.max(1) as u32;
    let iters = if per_iter.is_zero() {
        1000
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };
    let mut bench = Bencher {
        iters_per_sample: iters,
        samples: Vec::new(),
    };
    for _ in 0..sample_size {
        f(&mut bench);
    }
    let mut samples = bench.samples;
    if samples.is_empty() {
        samples.push(per_iter);
    }
    samples.sort_unstable();
    Some(Stats {
        min: samples[0],
        median: samples[samples.len() / 2],
        max: samples[samples.len() - 1],
    })
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, stats: &Stats, throughput: Option<Throughput>) {
    println!(
        "{name:<48} time: [{} {} {}]",
        fmt_duration(stats.min),
        fmt_duration(stats.median),
        fmt_duration(stats.max),
    );
    if let Some(t) = throughput {
        let secs = stats.median.as_secs_f64();
        if secs > 0.0 {
            match t {
                Throughput::Elements(n) => {
                    println!("{:<48} thrpt: {:.3} elem/s", "", n as f64 / secs);
                }
                Throughput::Bytes(n) => {
                    println!(
                        "{:<48} thrpt: {:.3} MiB/s",
                        "",
                        n as f64 / secs / (1 << 20) as f64
                    );
                }
            }
        }
    }
}

/// Top-level bench driver (a far smaller cousin of criterion's).
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies CLI args. Recognizes a positional substring filter and
    /// ignores criterion/libtest flags (`--bench`, `--save-baseline`, ...).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "--quiet" | "-q" | "--verbose" | "--noplot" => {}
                "--save-baseline" | "--baseline" | "--load-baseline" | "--sample-size"
                | "--measurement-time" | "--warm-up-time" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let stats = run_benchmark(
            &mut f,
            20,
            Duration::from_secs(3),
            self.filter.as_deref(),
            name,
        );
        if let Some(stats) = stats {
            report(name, &stats, None);
        }
        self
    }

    /// Final-summary hook; a no-op in this shim.
    pub fn final_summary(&mut self) {}
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(3).measurement_time(Duration::from_millis(20));
        let mut calls = 0u64;
        g.bench_function(BenchmarkId::from_parameter("count"), |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        g.finish();
        assert!(calls > 0);
    }

    #[test]
    fn id_forms() {
        assert_eq!(BenchmarkId::new("f", 4).into_benchmark_id(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("p").into_benchmark_id(), "p");
    }
}
