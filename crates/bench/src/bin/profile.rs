//! Profiles benchmark pipelines through the unified diagnostics layer:
//! compiles and runs each selected app with a recording [`Diag`] sink,
//! writes a chrome://tracing JSON trace per app, and prints a text summary
//! (slowest groups, worker utilization, measured redundancy, cache and
//! evaluator counters).
//!
//! ```text
//! cargo run --release --bin profile -- [--scale tiny|small|paper]
//!     [--filter NAME] [--threads N] [--runs N] [--out DIR]
//! ```
//!
//! Traces land in `results/profile/<app>.trace.json` by default; open them
//! at `chrome://tracing` or <https://ui.perfetto.dev>.

use polymage_apps::{all_benchmarks, Benchmark, Scale};
use polymage_core::{CompileOptions, GroupKindTag, Session};
use polymage_diag::{Counter, Diag, Recording};
use polymage_ir::Pipeline;
use polymage_vm::RunStats;
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    scale: Scale,
    filter: Option<String>,
    threads: usize,
    runs: usize,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut out = Args {
        scale: Scale::Small,
        filter: None,
        threads: 4,
        runs: 3,
        out: PathBuf::from("results/profile"),
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                out.scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    other => panic!("unknown scale {other:?}"),
                };
            }
            "--filter" => {
                i += 1;
                out.filter = Some(args[i].clone());
            }
            "--threads" => {
                i += 1;
                out.threads = args[i].parse().expect("thread count");
            }
            "--runs" => {
                i += 1;
                out.runs = args[i].parse().expect("runs");
            }
            "--out" => {
                i += 1;
                out.out = PathBuf::from(&args[i]);
            }
            other => panic!("unknown argument `{other}`"),
        }
        i += 1;
    }
    out
}

/// Sum of the domain volumes of the named stages at the given parameters —
/// the "useful" point count the redundancy measurement divides by. Stages
/// inlined away by the front-end no longer appear in the report, so this
/// matches what the executor actually computes.
fn useful_points(pipe: &Pipeline, params: &[i64], names: &[&str]) -> u64 {
    pipe.func_ids()
        .filter(|&f| names.contains(&pipe.func(f).name.as_str()))
        .map(|f| {
            pipe.func(f)
                .var_dom
                .dom
                .iter()
                .map(|iv| {
                    let (lo, hi) = iv.eval(params);
                    (hi - lo + 1).max(0) as u64
                })
                .product::<u64>()
        })
        .sum()
}

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// One line per traced run, in submission order: the engine tags every
/// span and event with a `run_id`, so a trace holding many (possibly
/// concurrent) runs can still be split cleanly per tenant.
fn per_run_breakdown(rec: &Recording) {
    let ids = rec.run_ids();
    if ids.is_empty() {
        return;
    }
    println!("  per-run breakdown ({} runs traced):", ids.len());
    for id in ids {
        let mut wall_us = 0u64;
        let mut tiles = 0u64;
        let mut threads = 0u64;
        let mut groups = 0usize;
        let mut priority = "-";
        let mut wait_us = 0u64;
        for e in rec.events_for_run(id) {
            match e.name {
                "run" => {
                    wall_us = e.dur_us.unwrap_or(0);
                    tiles = e.arg("tiles").and_then(|v| v.as_u64()).unwrap_or(0);
                    threads = e.arg("nthreads").and_then(|v| v.as_u64()).unwrap_or(0);
                    priority = e.arg("priority").and_then(|v| v.as_str()).unwrap_or("-");
                    wait_us = e.arg("sched_wait_us").and_then(|v| v.as_u64()).unwrap_or(0);
                }
                "group" => groups += 1,
                _ => {}
            }
        }
        println!(
            "    run {id:>3}: {:>9.3} ms  {groups} groups, {tiles} tiles, \
             {threads} threads, {priority}, waited {:.3} ms",
            wall_us as f64 / 1e3,
            wait_us as f64 / 1e3,
        );
    }
    per_priority_latency(rec);
}

/// Latency percentiles of the traced runs, split by scheduling priority
/// (the engine stamps each `run` span with its band and admission wait).
fn per_priority_latency(rec: &Recording) {
    let mut by_band: std::collections::BTreeMap<String, (Vec<u64>, Vec<u64>)> =
        std::collections::BTreeMap::new();
    for e in rec.events_named("run") {
        let Some(wall) = e.dur_us else { continue };
        let band = e
            .arg("priority")
            .and_then(|v| v.as_str())
            .unwrap_or("-")
            .to_string();
        let wait = e.arg("sched_wait_us").and_then(|v| v.as_u64()).unwrap_or(0);
        let entry = by_band.entry(band).or_default();
        entry.0.push(wall);
        entry.1.push(wait);
    }
    if by_band.is_empty() {
        return;
    }
    let q = |sorted: &[u64], p: f64| -> f64 {
        let i = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[i] as f64 / 1e3
    };
    println!("  latency by priority:");
    for (band, (mut walls, waits)) in by_band {
        walls.sort_unstable();
        let mean_wait = waits.iter().sum::<u64>() as f64 / waits.len() as f64 / 1e3;
        println!(
            "    {band:<8} {:>3} runs: p50 {:>9.3} ms  p95 {:>9.3} ms  \
             mean sched wait {mean_wait:.3} ms",
            walls.len(),
            q(&walls, 0.50),
            q(&walls, 0.95),
        );
    }
}

fn summarize(b: &dyn Benchmark, session: &Session, stats: &RunStats, rec: &Recording) {
    let compiled = session
        .compile(b.pipeline(), &CompileOptions::optimized(b.params()))
        .expect("already compiled");

    // Slowest groups, by measured wall clock.
    let mut timed = compiled.report.with_timings(stats);
    timed.sort_by_key(|&(_, d)| std::cmp::Reverse(d));
    println!("  slowest groups:");
    for (g, d) in timed.iter().take(3) {
        println!(
            "    {:<24} {:>9.3} ms  [{:?}] {} stages, overlap {}",
            g.sink,
            d.as_secs_f64() * 1e3,
            g.kind,
            g.stages.len(),
            pct(g.overlap_ratio),
        );
    }

    // Worker utilization: per-worker busy time over the total execution
    // window (sum of group wall-clock times, the coordinator's view).
    let window: Duration = stats.group_times.iter().map(|(_, d)| *d).sum();
    let busy_strs: Vec<String> = stats
        .worker_busy
        .iter()
        .map(|b| {
            if window.is_zero() {
                "-".to_string()
            } else {
                pct(b.as_secs_f64() / window.as_secs_f64())
            }
        })
        .collect();
    println!(
        "  worker utilization: [{}]  tiles/worker: {:?}",
        busy_strs.join(", "),
        stats.worker_tiles,
    );

    // Redundancy: points actually computed in tiled (Normal) groups vs.
    // the useful domain volumes of their member stages.
    let normal_stages: Vec<&str> = compiled
        .report
        .groups
        .iter()
        .filter(|g| g.kind == GroupKindTag::Normal)
        .flat_map(|g| g.stages.iter().map(String::as_str))
        .collect();
    let useful = useful_points(b.pipeline(), &b.params(), &normal_stages);
    if useful > 0 && stats.points_computed >= useful {
        let measured = stats.points_computed as f64 / useful as f64 - 1.0;
        println!(
            "  redundancy: measured {} vs model {} (points {} / useful {})",
            pct(measured),
            pct(compiled.report.predicted_overlap()),
            stats.points_computed,
            useful,
        );
    }

    // Counters from the diagnostics recording.
    println!(
        "  session: {} plan hits / {} plan misses; {} instance hits / {} \
         instance misses",
        rec.counter(Counter::PlanHit),
        rec.counter(Counter::PlanMiss),
        rec.counter(Counter::InstanceHit),
        rec.counter(Counter::InstanceMiss),
    );
    println!(
        "  cache: {} hits / {} misses; pool: {} reuses / {} acquires; \
         uniform cache: {} hits / {} misses",
        rec.counter(Counter::CacheHit),
        rec.counter(Counter::CacheMiss),
        rec.counter(Counter::PoolReuse),
        rec.counter(Counter::PoolAcquire),
        rec.counter(Counter::UniformHit),
        rec.counter(Counter::UniformMiss),
    );
    println!(
        "  storage: {} scratch bytes/worker folded away; peak full bytes {} \
         (last run {}); early releases {} (last run {})",
        rec.counter(Counter::StorageFoldedBytes),
        rec.counter(Counter::StoragePeakBytes),
        stats.peak_full_bytes,
        rec.counter(Counter::StorageEarlyRelease),
        stats.early_releases,
    );
    println!(
        "  simd: {} (lanes avx2 {} / sse2 {} / neon {} / scalar {})",
        compiled.report.simd,
        rec.counter(Counter::SimdLanesAvx2),
        rec.counter(Counter::SimdLanesSse2),
        rec.counter(Counter::SimdLanesNeon),
        rec.counter(Counter::SimdLanesScalar),
    );
}

fn main() {
    let args = parse_args();
    std::fs::create_dir_all(&args.out).expect("create output directory");

    let benches: Vec<Box<dyn Benchmark>> = all_benchmarks(args.scale)
        .into_iter()
        .filter(|b| {
            args.filter
                .as_ref()
                .map(|f| b.name().to_lowercase().contains(&f.to_lowercase()))
                .unwrap_or(true)
        })
        .collect();
    if benches.is_empty() {
        panic!("no benchmark matches the filter");
    }

    for b in &benches {
        let diag = Diag::recorder();
        let session = Session::with_threads(args.threads).with_diag(diag.clone());
        let inputs = b.make_inputs(0xD1A6);
        let opts = CompileOptions::optimized(b.params());

        let mut last_stats = None;
        for _ in 0..args.runs.max(1) {
            let (_, stats) = session
                .run_stats(b.pipeline(), &opts, &inputs)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            last_stats = Some(stats);
        }
        let stats = last_stats.expect("at least one run");

        let rec = diag.snapshot().expect("recording sink");
        let slug = b.name().to_lowercase().replace([' ', '/'], "-");
        let path = args.out.join(format!("{slug}.trace.json"));
        std::fs::write(&path, rec.to_chrome_json()).expect("write trace");

        println!(
            "{} ({} threads, {} runs; {} trace events) -> {}",
            b.name(),
            args.threads,
            args.runs,
            rec.events.len(),
            path.display(),
        );
        summarize(b.as_ref(), &session, &stats, &rec);
        per_run_breakdown(&rec);
        println!();
    }
}
