//! # polymage-graph
//!
//! The pipeline-DAG substrate of PolyMage-rs: everything the paper's
//! front-end does before polyhedral optimization (§3, first phase of Fig. 4).
//!
//! - [`PipelineGraph`]: the stage graph — producer/consumer edges extracted
//!   from the specification, topological order and levels, cycle detection
//!   (cycles between distinct stages are an invalid specification; a stage
//!   referencing *itself* is the paper's time-iterated pattern and is
//!   recorded as [`PipelineGraph::is_self_referential`]).
//! - [`check_bounds`]: static bounds checking of every affine access against
//!   the producer's domain. The original uses isl's parametric sets; we
//!   check with the user-supplied parameter estimates (the same estimates
//!   Algorithm 1 already requires), which covers the same class of
//!   off-by-one specification bugs.
//! - [`inline_pointwise`]: §3's inlining pass — substitutes point-wise
//!   stages into their consumers (guarded stages become `Select`s with the
//!   undefined-value default), never inlining live-outs, reductions,
//!   self-referential stages, or stages consumed through data-dependent
//!   indices (lookup tables).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bounds;
mod dag;
mod error;
mod inline;
mod rewrite;

pub use bounds::{check_bounds, BoundsViolation};
pub use dag::PipelineGraph;
pub use error::GraphError;
pub use inline::{inline_pointwise, InlineReport};
pub use rewrite::{rewrite_calls, subst_vars, subst_vars_cond};
