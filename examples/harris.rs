//! Harris corner detection — the paper's running example (Fig. 1/2/7).
//!
//! Builds the 11-stage Harris pipeline, prints its stage graph (Fig. 2),
//! the compiler's grouping, the generated C code (Fig. 7 style), and runs
//! the compiled program to report the strongest corner responses.
//!
//! ```sh
//! cargo run --release --example harris
//! ```

use polymage::apps::harris::HarrisCorner;
use polymage::apps::{Benchmark, Scale};
use polymage::core::{emit_c, CompileOptions, Session};
use polymage::graph::PipelineGraph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = HarrisCorner::new(Scale::Small);
    let pipe = app.pipeline();

    println!("--- Fig. 1: the specification (as the compiler sees it) ---");
    println!("{}\n", pipe.display());

    println!("--- Fig. 2: stage graph ---");
    let graph = PipelineGraph::build(pipe)?;
    println!("{}", graph.to_dot(pipe));

    let session = Session::with_threads(2);
    let compiled = session.compile(pipe, &CompileOptions::optimized(app.params()))?;
    println!("--- grouping & storage (the paper's §4 schedule) ---");
    println!("{}", compiled.report);

    println!("--- Fig. 7: generated C (inspection artifact) ---");
    let c = emit_c(pipe, &compiled.program);
    // print the head of the file; the full text is long
    for line in c.lines().take(40) {
        println!("{line}");
    }
    println!("... ({} lines total)", c.lines().count());

    let inputs = app.make_inputs(7);
    let out = &session.run_compiled(&compiled, &inputs)?[0];
    // top corner responses
    let mut best: Vec<(f32, i64, i64)> = Vec::new();
    for pt in out.rect.points() {
        let v = out.at(&pt);
        if best.len() < 5 || v > best.last().unwrap().0 {
            best.push((v, pt[0], pt[1]));
            best.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            best.truncate(5);
        }
    }
    println!("--- strongest corner responses ---");
    for (v, x, y) in best {
        println!("  ({x:>4}, {y:>4}) → {v:.5}");
    }
    Ok(())
}
