//! Compiler options: the schedule-relevant knobs of the paper.

use polymage_vm::{EvalMode, SimdOpt};

/// Options controlling compilation.
///
/// The defaults correspond to the paper's fully optimized configuration
/// ("PolyMage (opt+vec)"); the `fuse` / `tile` / `mode` knobs reproduce the
/// ablation configurations of Fig. 10.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Concrete values for the pipeline parameters (indexed by
    /// [`polymage_ir::ParamId::index`]).
    pub params: Vec<i64>,
    /// Parameter *estimates* for the size-dependent heuristics (grouping's
    /// `group_size` ordering and the overlap-vs-tile ratio of Algorithm 1,
    /// matching the paper's estimate-driven decisions). `None` (the
    /// default) uses [`params`](Self::params), reproducing the historical
    /// behavior where every analysis is specialized to the bound values.
    ///
    /// Setting explicit estimates makes the expensive phase-1 analysis
    /// ([`crate::plan`]) independent of `params`: one
    /// [`crate::ParametricPlan`] can then be
    /// [instantiated](crate::instantiate) at many sizes, and `Session`
    /// shares the plan across them (see
    /// [`cache_key_structural`](Self::cache_key_structural)).
    pub param_estimates: Option<Vec<i64>>,
    /// Tile sizes for the leading dimensions of each group's sink stage
    /// (the paper's `T`). A dimension is tiled only when its extent is at
    /// least twice the requested size.
    pub tile_sizes: Vec<i64>,
    /// The overlap threshold of Algorithm 1 (`othresh`); fraction of
    /// redundant computation tolerated per tile.
    pub overlap_threshold: f64,
    /// Chunked (vectorized) or point-wise evaluation.
    pub mode: EvalMode,
    /// Run the grouping heuristic. `false` keeps every stage in its own
    /// group (the paper's "base" configuration).
    pub fuse: bool,
    /// Tile group domains. `false` executes groups as parallel row strips
    /// without locality tiling (with `fuse: false` this is exactly the
    /// paper's "base").
    pub tile: bool,
    /// Run the point-wise inlining pass (on in every paper configuration).
    pub inline_pointwise: bool,
    /// Storage optimization (§3.6): when disabled, every stage of a tiled
    /// group is *also* written to a full array, modeling the memory traffic
    /// of tiling without scratchpads — the ablation behind the paper's
    /// "without storage reduction, the tiling transformations are not very
    /// effective".
    pub storage_opt: bool,
    /// Liveness-driven storage folding (§3.6, second half): reuse one
    /// arena slot for scratchpads of stages whose live ranges don't
    /// intersect, and release full buffers right after their last consumer
    /// group instead of at run end. Bit-exact; purely a memory-footprint /
    /// locality knob. The `POLYMAGE_STORAGE_FOLD` environment variable
    /// (`off`/`0`/`false`), when set, flips the default for ablation runs.
    pub storage_fold: bool,
    /// Target strip count for parallelism when a domain's outer dimension is
    /// not tiled.
    pub par_strips: i64,
    /// Skip the static bounds check (useful in the autotuner's inner loop,
    /// where the same pipeline was already checked).
    pub skip_bounds_check: bool,
    /// Run the kernel optimizer (`polymage_vm::opt`): bit-exact constant
    /// folding, simplification, CSE, DCE, register compaction, uniformity
    /// analysis, and load specialization. `false` executes kernels exactly
    /// as lowering emits them (the pre-optimizer behavior, for ablation).
    pub kernel_opt: bool,
    /// SIMD backend selection for the chunk evaluator. [`SimdOpt::Auto`]
    /// (the default) uses the best instruction set detected at startup;
    /// [`SimdOpt::Off`] forces the scalar loops; explicit levels are
    /// clamped to what the host supports. The `POLYMAGE_SIMD` environment
    /// variable, when set, overrides this option. All levels are bit-exact
    /// (see `polymage-vm`'s `simd` module), so this is a pure performance
    /// knob — but it still participates in the cache key because the
    /// compiled [`polymage_vm::Program`] records the resolved level.
    pub simd: SimdOpt,
}

impl CompileOptions {
    /// Options for the paper's fully optimized configuration with the given
    /// parameter values.
    pub fn optimized(params: Vec<i64>) -> Self {
        CompileOptions {
            params,
            param_estimates: None,
            tile_sizes: vec![32, 256],
            overlap_threshold: 0.4,
            mode: EvalMode::Vector,
            fuse: true,
            tile: true,
            inline_pointwise: true,
            storage_opt: true,
            storage_fold: default_storage_fold(),
            par_strips: 128,
            skip_bounds_check: false,
            kernel_opt: true,
            simd: SimdOpt::Auto,
        }
    }

    /// Options for the paper's "base" configuration: inlining and
    /// parallelism but no grouping, tiling, or storage optimization.
    pub fn base(params: Vec<i64>) -> Self {
        CompileOptions {
            fuse: false,
            tile: false,
            ..CompileOptions::optimized(params)
        }
    }

    /// Switches the evaluation mode (the ±vec axis of Fig. 10).
    pub fn with_mode(mut self, mode: EvalMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the tile sizes.
    pub fn with_tiles(mut self, tiles: Vec<i64>) -> Self {
        self.tile_sizes = tiles;
        self
    }

    /// Sets the overlap threshold.
    pub fn with_threshold(mut self, t: f64) -> Self {
        self.overlap_threshold = t;
        self
    }

    /// Enables or disables the kernel optimizer (on by default).
    pub fn with_kernel_opt(mut self, on: bool) -> Self {
        self.kernel_opt = on;
        self
    }

    /// Selects the SIMD backend ([`SimdOpt::Auto`] by default).
    pub fn with_simd(mut self, simd: SimdOpt) -> Self {
        self.simd = simd;
        self
    }

    /// Enables or disables liveness-driven storage folding (on by default
    /// unless `POLYMAGE_STORAGE_FOLD` says otherwise).
    pub fn with_storage_fold(mut self, on: bool) -> Self {
        self.storage_fold = on;
        self
    }

    /// Sets explicit parameter estimates for the size-dependent heuristics
    /// (see [`param_estimates`](Self::param_estimates)).
    pub fn with_estimates(mut self, estimates: Vec<i64>) -> Self {
        self.param_estimates = Some(estimates);
        self
    }

    /// The parameter values the heuristics use: the explicit
    /// [`param_estimates`](Self::param_estimates) when set, the bound
    /// [`params`](Self::params) otherwise.
    pub fn estimates(&self) -> &[i64] {
        self.param_estimates.as_deref().unwrap_or(&self.params)
    }

    /// The hashable normal form of these options, used (together with the
    /// pipeline's content hash) to key compile caches.
    ///
    /// Every knob that can change the produced program participates —
    /// including `kernel_opt`, which rewrites kernels and attaches
    /// uniformity metadata. `skip_bounds_check` is deliberately excluded:
    /// it only affects whether invalid specifications are *rejected*,
    /// never the program a successful compilation produces.
    pub fn cache_key(&self) -> OptionsKey {
        OptionsKey {
            params: self.params.clone(),
            structural: self.cache_key_structural(),
        }
    }

    /// The *size-independent* part of [`cache_key`](Self::cache_key):
    /// every knob except the bound `params`. Two option sets with the same
    /// structural key produce the same [`crate::ParametricPlan`] (for the
    /// same pipeline), so `Session` keys its plan cache on this form and
    /// shares one plan across all bound parameter values.
    ///
    /// The *resolved* estimates participate (they steer grouping), which
    /// means that with the default `param_estimates: None` the structural
    /// key still varies with `params` — exactly the historical
    /// one-plan-per-size behavior. Pin `param_estimates` to share plans
    /// across sizes.
    pub fn cache_key_structural(&self) -> StructuralKey {
        StructuralKey {
            estimates: self.estimates().to_vec(),
            tile_sizes: self.tile_sizes.clone(),
            overlap_threshold_bits: self.overlap_threshold.to_bits(),
            mode: self.mode,
            fuse: self.fuse,
            tile: self.tile,
            inline_pointwise: self.inline_pointwise,
            storage_opt: self.storage_opt,
            storage_fold: self.storage_fold,
            par_strips: self.par_strips,
            kernel_opt: self.kernel_opt,
            simd: polymage_vm::resolve_simd(self.simd),
        }
    }
}

/// Default for [`CompileOptions::storage_fold`]: on, unless the
/// `POLYMAGE_STORAGE_FOLD` environment variable disables it (used by the
/// CI ablation matrix, mirroring `POLYMAGE_SIMD`).
fn default_storage_fold() -> bool {
    match std::env::var("POLYMAGE_STORAGE_FOLD") {
        Ok(v) => !matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false"),
        Err(_) => true,
    }
}

/// The `Eq + Hash` normal form of [`CompileOptions`] (floats by bit
/// pattern), produced by [`CompileOptions::cache_key`]: the bound
/// parameter values plus the size-independent [`StructuralKey`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OptionsKey {
    params: Vec<i64>,
    structural: StructuralKey,
}

impl OptionsKey {
    /// The size-independent part of the key (plan-cache key).
    pub fn structural(&self) -> &StructuralKey {
        &self.structural
    }
}

/// The size-independent normal form of [`CompileOptions`] (every knob but
/// `params`; floats by bit pattern), produced by
/// [`CompileOptions::cache_key_structural`]. Keys `Session`'s plan cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StructuralKey {
    /// Resolved heuristic estimates (explicit `param_estimates`, or the
    /// bound `params` when none were given).
    estimates: Vec<i64>,
    tile_sizes: Vec<i64>,
    overlap_threshold_bits: u64,
    mode: EvalMode,
    fuse: bool,
    tile: bool,
    inline_pointwise: bool,
    storage_opt: bool,
    storage_fold: bool,
    par_strips: i64,
    kernel_opt: bool,
    /// The *resolved* [`polymage_vm::SimdLevel`]: environment override and
    /// host clamping applied, so two option sets that resolve to the same
    /// level share a cache entry.
    simd: polymage_vm::SimdLevel,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_key_normal_form() {
        let a = CompileOptions::optimized(vec![100, 200]);
        assert_eq!(a.cache_key(), a.clone().cache_key());
        assert_ne!(
            a.cache_key(),
            a.clone().with_tiles(vec![64, 64]).cache_key()
        );
        assert_ne!(a.cache_key(), a.clone().with_threshold(0.5).cache_key());
        assert_ne!(
            a.cache_key(),
            CompileOptions::optimized(vec![100, 201]).cache_key()
        );
        // skip_bounds_check never changes the produced program.
        let mut skipped = a.clone();
        skipped.skip_bounds_check = true;
        assert_eq!(a.cache_key(), skipped.cache_key());
        // kernel_opt rewrites kernels, so it must change the key.
        assert_ne!(a.cache_key(), a.clone().with_kernel_opt(false).cache_key());
        // storage_fold changes slot assignments and buffer lifetimes.
        assert_ne!(
            a.cache_key(),
            a.clone().with_storage_fold(!a.storage_fold).cache_key()
        );
        // The simd option participates through its *resolved* level
        // (environment override and host clamping applied), so the keys
        // differ exactly when the resolved levels do.
        let off = a.clone().with_simd(SimdOpt::Off).cache_key();
        if polymage_vm::resolve_simd(SimdOpt::Off) == polymage_vm::resolve_simd(SimdOpt::Auto) {
            assert_eq!(a.cache_key(), off);
        } else {
            assert_ne!(a.cache_key(), off);
        }
    }

    #[test]
    fn structural_key_drops_params() {
        // Pinned estimates: the structural key is size-independent, the
        // full key still varies with the bound params.
        let a = CompileOptions::optimized(vec![100, 200]).with_estimates(vec![100, 200]);
        let b = CompileOptions::optimized(vec![400, 300]).with_estimates(vec![100, 200]);
        assert_eq!(a.cache_key_structural(), b.cache_key_structural());
        assert_ne!(a.cache_key(), b.cache_key());
        // Default estimates follow params (one plan per size, as before).
        let c = CompileOptions::optimized(vec![100, 200]);
        let d = CompileOptions::optimized(vec![400, 300]);
        assert_ne!(c.cache_key_structural(), d.cache_key_structural());
        assert_eq!(a.cache_key_structural(), c.cache_key_structural());
        // Estimates participate in both keys: they steer grouping.
        let e = CompileOptions::optimized(vec![100, 200]).with_estimates(vec![64, 64]);
        assert_ne!(c.cache_key(), e.cache_key());
        assert_eq!(e.estimates(), &[64, 64]);
        assert_eq!(c.estimates(), &[100, 200]);
    }

    #[test]
    fn presets() {
        let o = CompileOptions::optimized(vec![100]);
        assert!(o.fuse && o.tile && o.kernel_opt);
        assert_eq!(o.mode, EvalMode::Vector);
        let b = CompileOptions::base(vec![100]);
        assert!(!b.fuse && !b.tile);
        let s = CompileOptions::optimized(vec![]).with_mode(EvalMode::Scalar);
        assert_eq!(s.mode, EvalMode::Scalar);
        let t = CompileOptions::optimized(vec![])
            .with_tiles(vec![64, 64])
            .with_threshold(0.2);
        assert_eq!(t.tile_sizes, vec![64, 64]);
        assert_eq!(t.overlap_threshold, 0.2);
    }
}
