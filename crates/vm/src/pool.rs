//! A freelist allocator for `f32` working buffers.

/// A bounded freelist of `Vec<f32>` allocations, shared by the
/// [`crate::Engine`] coordinator and its workers for full buffers, output
/// slabs, and reduction partials.
///
/// [`BufferPool::acquire_zeroed`] returns a zero-filled vector of exactly
/// the requested length, reusing the retained allocation with the smallest
/// sufficient capacity when one exists; [`BufferPool::release`] returns a
/// vector to the freelist. Retention is capped so pathological workloads
/// cannot hoard memory indefinitely.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<f32>>,
    acquires: u64,
    reuses: u64,
}

/// Maximum number of free buffers retained for reuse.
const MAX_RETAINED: usize = 64;

impl BufferPool {
    /// An empty pool.
    pub fn new() -> BufferPool {
        BufferPool::default()
    }

    /// A zero-filled vector of length `len`, reusing a retained allocation
    /// when one is large enough (best fit by capacity).
    pub fn acquire_zeroed(&mut self, len: usize) -> Vec<f32> {
        self.acquires += 1;
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, v) in self.free.iter().enumerate() {
            let cap = v.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        let mut v = match best {
            Some((i, _)) => {
                self.reuses += 1;
                self.free.swap_remove(i)
            }
            None => Vec::new(),
        };
        v.clear();
        v.resize(len, 0.0);
        v
    }

    /// Returns a vector to the freelist for later reuse.
    pub fn release(&mut self, v: Vec<f32>) {
        if v.capacity() > 0 && self.free.len() < MAX_RETAINED {
            self.free.push(v);
        }
    }

    /// `(acquires, reuses)` counters since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.acquires, self.reuses)
    }

    /// Number of currently retained free buffers.
    pub fn retained(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_capacity_and_zeroes() {
        let mut p = BufferPool::new();
        let mut v = p.acquire_zeroed(100);
        assert!(v.iter().all(|&x| x == 0.0));
        v.iter_mut().for_each(|x| *x = 7.0);
        let cap = v.capacity();
        p.release(v);
        assert_eq!(p.retained(), 1);
        let v2 = p.acquire_zeroed(50);
        assert_eq!(v2.len(), 50);
        assert!(v2.capacity() >= cap.min(100));
        assert!(
            v2.iter().all(|&x| x == 0.0),
            "reused buffer must be re-zeroed"
        );
        assert_eq!(p.stats(), (2, 1));
        assert_eq!(p.retained(), 0);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut p = BufferPool::new();
        let big = p.acquire_zeroed(1000);
        let small = p.acquire_zeroed(10);
        p.release(big);
        p.release(small);
        let v = p.acquire_zeroed(8);
        assert!(v.capacity() < 1000, "should reuse the 10-element buffer");
        let v2 = p.acquire_zeroed(500);
        assert!(
            v2.capacity() >= 1000,
            "should reuse the 1000-element buffer"
        );
    }

    #[test]
    fn empty_vectors_are_not_retained() {
        let mut p = BufferPool::new();
        p.release(Vec::new());
        assert_eq!(p.retained(), 0);
    }
}
