//! Errors reported by DAG construction and bounds checking.

use crate::BoundsViolation;
use std::error::Error;
use std::fmt;

/// Errors from graph construction or static checking.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// The specification contains a dependence cycle between distinct
    /// stages (listed by name).
    Cycle(Vec<String>),
    /// One or more accesses can read outside the producer's domain.
    OutOfBounds(Vec<BoundsViolation>),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Cycle(names) => {
                write!(f, "dependence cycle between stages: {}", names.join(" -> "))
            }
            GraphError::OutOfBounds(vs) => {
                write!(f, "{} out-of-bounds access(es); first: {}", vs.len(), vs[0])
            }
        }
    }
}

impl Error for GraphError {}
