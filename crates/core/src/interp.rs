//! A naive reference interpreter for pipeline specifications.
//!
//! Evaluates every stage point-by-point into full buffers, with no fusion,
//! tiling, or vectorization — deliberately implemented independently of the
//! compiler's lowering so tests can use it as a semantic oracle: for every
//! pipeline, `compile(...)` + `run_program(...)` must agree with
//! [`interpret`] (exactly for integer paths, to small ULP bounds for
//! float-heavy ones, since evaluation order differs).
//!
//! Semantics mirrored from the engine:
//! - all arithmetic in `f32`; integer index expressions use floor division;
//! - values outside every case's guard are 0 ("undefined");
//! - cases are applied in order (each writes where its guard holds);
//! - dynamic indices round to nearest and clamp into the producer's domain;
//! - stores saturate/round per declared scalar type;
//! - reductions sweep their domain row-major; self-referential stages scan
//!   row-major.

use crate::CompileError;
use polymage_graph::PipelineGraph;
use polymage_ir::{BinOp, Cond, Expr, FuncBody, FuncId, Pipeline, ScalarType, Source, UnOp, VarId};
use polymage_poly::{narrow_rect_by_cond, Rect};
use polymage_vm::Buffer;
use std::collections::HashMap;

struct Interp<'a> {
    pipe: &'a Pipeline,
    params: &'a [i64],
    images: &'a [Buffer],
    values: HashMap<FuncId, Buffer>,
}

impl Interp<'_> {
    fn dom(&self, f: FuncId) -> Rect {
        Rect::new(
            self.pipe
                .func(f)
                .var_dom
                .dom
                .iter()
                .map(|iv| iv.eval(self.params))
                .collect(),
        )
    }

    fn source_buffer(&self, s: Source) -> &Buffer {
        match s {
            Source::Image(i) => &self.images[i.index()],
            Source::Func(f) => self.values.get(&f).expect("producer evaluated"),
        }
    }

    /// Reads a producer at the given (rounded, clamped) coordinates.
    fn read(&self, s: Source, idx: &[i64]) -> f32 {
        let buf = self.source_buffer(s);
        let clamped: Vec<i64> = idx
            .iter()
            .zip(buf.rect.ranges())
            .map(|(&i, &(lo, hi))| i.clamp(lo, hi))
            .collect();
        buf.at(&clamped)
    }

    fn eval_value(&self, e: &Expr, vars: &[VarId], pt: &[i64]) -> f32 {
        match e {
            Expr::Const(c) => *c as f32,
            Expr::Param(p) => self.params[p.index()] as f32,
            Expr::Var(v) => {
                let d = vars.iter().position(|u| u == v).expect("bound variable");
                pt[d] as f32
            }
            Expr::Unary(op, a) => {
                let x = self.eval_value(a, vars, pt);
                match op {
                    UnOp::Neg => -x,
                    UnOp::Abs => x.abs(),
                    UnOp::Sqrt => x.sqrt(),
                    UnOp::Exp => x.exp(),
                    UnOp::Log => x.ln(),
                    UnOp::Sin => x.sin(),
                    UnOp::Cos => x.cos(),
                    UnOp::Floor => x.floor(),
                    UnOp::Ceil => x.ceil(),
                }
            }
            Expr::Binary(op, a, b) => {
                let x = self.eval_value(a, vars, pt);
                let y = self.eval_value(b, vars, pt);
                match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                    BinOp::Mod => x - y * (x / y).floor(),
                    BinOp::Pow => x.powf(y),
                }
            }
            Expr::Select(c, a, b) => {
                if self.eval_cond(c, vars, pt) {
                    self.eval_value(a, vars, pt)
                } else {
                    self.eval_value(b, vars, pt)
                }
            }
            Expr::Cast(ty, a) => {
                let x = self.eval_value(a, vars, pt);
                match ty.saturation_range() {
                    Some((lo, hi)) => x.clamp(lo as f32, hi as f32).round(),
                    None if ty.is_integral() => x.round(),
                    None => x,
                }
            }
            Expr::Call(src, args) => {
                let idx: Vec<i64> = args.iter().map(|a| self.eval_index(a, vars, pt)).collect();
                self.read(*src, &idx)
            }
        }
    }

    /// Index-position evaluation: floor semantics.
    fn eval_index(&self, e: &Expr, vars: &[VarId], pt: &[i64]) -> i64 {
        match e {
            Expr::Binary(BinOp::Div, a, b) => {
                let x = self.eval_index(a, vars, pt);
                let y = self.eval_index(b, vars, pt);
                if y == 0 {
                    0
                } else {
                    x.div_euclid(y)
                }
            }
            Expr::Binary(op, a, b) => {
                let x = self.eval_index(a, vars, pt);
                let y = self.eval_index(b, vars, pt);
                match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                    BinOp::Mod => {
                        if y == 0 {
                            0
                        } else {
                            x.rem_euclid(y)
                        }
                    }
                    BinOp::Pow => (x as f32).powf(y as f32).round() as i64,
                    BinOp::Div => unreachable!(),
                }
            }
            Expr::Var(v) => {
                let d = vars.iter().position(|u| u == v).expect("bound variable");
                pt[d]
            }
            Expr::Const(c) => *c as i64,
            Expr::Param(p) => self.params[p.index()],
            Expr::Cast(_, a) => self.eval_index(a, vars, pt),
            Expr::Unary(UnOp::Neg, a) => -self.eval_index(a, vars, pt),
            Expr::Select(c, a, b) => {
                if self.eval_cond(c, vars, pt) {
                    self.eval_index(a, vars, pt)
                } else {
                    self.eval_index(b, vars, pt)
                }
            }
            // Data-dependent: value rounded to nearest (matches the engine's
            // gather).
            other => self.eval_value(other, vars, pt).round() as i64,
        }
    }

    fn eval_cond(&self, c: &Cond, vars: &[VarId], pt: &[i64]) -> bool {
        match c {
            Cond::Cmp(op, a, b) => {
                let x = self.eval_value(a, vars, pt);
                let y = self.eval_value(b, vars, pt);
                op.apply(x as f64, y as f64)
            }
            Cond::And(a, b) => self.eval_cond(a, vars, pt) && self.eval_cond(b, vars, pt),
            Cond::Or(a, b) => self.eval_cond(a, vars, pt) || self.eval_cond(b, vars, pt),
            Cond::Not(a) => !self.eval_cond(a, vars, pt),
        }
    }

    fn store(&self, ty: ScalarType, v: f32) -> f32 {
        let v = match ty.saturation_range() {
            Some((lo, hi)) => v.clamp(lo as f32, hi as f32),
            None => v,
        };
        if ty.is_integral() {
            v.round()
        } else {
            v
        }
    }

    fn eval_func(&mut self, f: FuncId) {
        let fd = self.pipe.func(f);
        let dom = self.dom(f);
        let mut buf = Buffer::zeros(dom.clone());
        match &fd.body {
            FuncBody::Undefined => {}
            FuncBody::Cases(cases) => {
                let vars = &fd.var_dom.vars;
                // Temporarily park the (zeroed or partially written) buffer
                // so self-referential stages can read it while we scan.
                self.values.insert(f, buf);
                for case in cases {
                    // Narrow to the guard's box to skip trivially-false rows,
                    // then test the residual guard per point.
                    let region = match &case.cond {
                        Some(c) => narrow_rect_by_cond(c, vars, &dom, self.params),
                        None => polymage_poly::NarrowedRect {
                            rect: dom.clone(),
                            exact: true,
                            steps: vec![(1, 0); dom.ndim()],
                        },
                    };
                    let pts: Vec<Vec<i64>> = region.rect.points().collect();
                    for pt in pts {
                        // stride (parity) constraints from the guard
                        let on_stride = pt
                            .iter()
                            .zip(&region.steps)
                            .all(|(&c, &(s, ph))| (c - ph).rem_euclid(s) == 0);
                        if !on_stride {
                            continue;
                        }
                        let ok = region.exact
                            || match &case.cond {
                                Some(c) => self.eval_cond(c, vars, &pt),
                                None => true,
                            };
                        if !ok {
                            continue;
                        }
                        let v = self.eval_value(&case.expr, vars, &pt);
                        let v = self.store(fd.ty, v);
                        // write through the parked buffer
                        let b = self.values.get_mut(&f).expect("parked");
                        let flat = flat_index(&b.rect, &pt);
                        b.data[flat] = v;
                    }
                }
                return;
            }
            FuncBody::Reduce(acc) => {
                let red = Rect::new(acc.red_dom.iter().map(|iv| iv.eval(self.params)).collect());
                for v in buf.data.iter_mut() {
                    *v = acc.op.identity() as f32;
                }
                if !red.is_empty() {
                    let pts: Vec<Vec<i64>> = red.points().collect();
                    for pt in pts {
                        let idx: Vec<i64> = acc
                            .target
                            .iter()
                            .map(|t| self.eval_index(t, &acc.red_vars, &pt))
                            .collect();
                        let clamped: Vec<i64> = idx
                            .iter()
                            .zip(dom.ranges())
                            .map(|(&i, &(lo, hi))| i.clamp(lo, hi))
                            .collect();
                        let v = self.eval_value(&acc.value, &acc.red_vars, &pt);
                        let flat = flat_index(&dom, &clamped);
                        buf.data[flat] = acc.op.combine(buf.data[flat] as f64, v as f64) as f32;
                    }
                }
                // untouched Min/Max cells: identity → 0 like the engine
                if !matches!(acc.op, polymage_ir::Reduction::Sum) {
                    let id = acc.op.identity() as f32;
                    for v in buf.data.iter_mut() {
                        if !v.is_finite() && *v == id {
                            *v = 0.0;
                        }
                    }
                }
            }
        }
        self.values.insert(f, buf);
    }
}

fn flat_index(rect: &Rect, pt: &[i64]) -> usize {
    let mut idx = 0i64;
    let mut stride = 1i64;
    for d in (0..pt.len()).rev() {
        let (lo, hi) = rect.range(d);
        idx += (pt[d] - lo) * stride;
        stride *= hi - lo + 1;
    }
    idx as usize
}

/// Interprets a pipeline directly (the testing oracle).
///
/// Returns the live-out buffers in declaration order, like
/// [`polymage_vm::run_program`].
///
/// ```
/// use polymage_ir::*;
/// use polymage_core::interp::interpret;
/// use polymage_vm::Buffer;
/// use polymage_poly::Rect;
///
/// let mut p = PipelineBuilder::new("double");
/// let img = p.image("I", ScalarType::Float, vec![PAff::cst(4)]);
/// let x = p.var("x");
/// let f = p.func("f", &[(x, Interval::cst(0, 3))], ScalarType::Float);
/// p.define(f, vec![Case::always(Expr::at(img, [x + 0]) * 2.0)])?;
/// let pipe = p.finish(&[f])?;
/// let input = Buffer::from_vec(Rect::new(vec![(0, 3)]), vec![1.0, 2.0, 3.0, 4.0]);
/// let out = interpret(&pipe, &[], &[input])?;
/// assert_eq!(out[0].data, vec![2.0, 4.0, 6.0, 8.0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Returns [`CompileError::Graph`] for cyclic specifications and
/// [`CompileError::ParamMismatch`] for wrong parameter counts.
pub fn interpret(
    pipe: &Pipeline,
    params: &[i64],
    inputs: &[Buffer],
) -> Result<Vec<Buffer>, CompileError> {
    if params.len() != pipe.params().len() {
        return Err(CompileError::param_mismatch(pipe, params.len()));
    }
    let graph = PipelineGraph::build(pipe)?;
    let mut interp = Interp {
        pipe,
        params,
        images: inputs,
        values: HashMap::new(),
    };
    for &f in graph.topo_order() {
        interp.eval_func(f);
    }
    Ok(pipe
        .live_outs()
        .iter()
        .map(|f| interp.values.remove(f).expect("live-out evaluated"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymage_ir::{Case, Interval, PAff, PipelineBuilder};

    #[test]
    fn simple_pointwise() {
        let mut p = PipelineBuilder::new("t");
        let img = p.image("I", ScalarType::Float, vec![PAff::cst(4)]);
        let x = p.var("x");
        let f = p.func("f", &[(x, Interval::cst(0, 3))], ScalarType::Float);
        p.define(f, vec![Case::always(Expr::at(img, [x + 0]) * 2.0 + 1.0)])
            .unwrap();
        let pipe = p.finish(&[f]).unwrap();
        let input = Buffer::from_vec(Rect::new(vec![(0, 3)]), vec![1.0, 2.0, 3.0, 4.0]);
        let out = interpret(&pipe, &[], &[input]).unwrap();
        assert_eq!(out[0].data, vec![3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn guarded_cases_zero_fill() {
        let mut p = PipelineBuilder::new("t");
        let x = p.var("x");
        let f = p.func("f", &[(x, Interval::cst(0, 9))], ScalarType::Float);
        p.define(
            f,
            vec![
                Case::new(Expr::from(x).ge(3) & Expr::from(x).le(6), Expr::from(x)),
                Case::new(Expr::from(x).gt(6), Expr::Const(99.0)),
            ],
        )
        .unwrap();
        let pipe = p.finish(&[f]).unwrap();
        let out = interpret(&pipe, &[], &[]).unwrap();
        assert_eq!(
            out[0].data,
            vec![0.0, 0.0, 0.0, 3.0, 4.0, 5.0, 6.0, 99.0, 99.0, 99.0]
        );
    }

    #[test]
    fn time_iterated_self_reference() {
        let mut p = PipelineBuilder::new("t");
        let (t, x) = (p.var("t"), p.var("x"));
        let f = p.func(
            "f",
            &[(t, Interval::cst(0, 3)), (x, Interval::cst(0, 4))],
            ScalarType::Float,
        );
        p.define(
            f,
            vec![
                Case::new(Expr::from(t).le(0), Expr::from(x)),
                Case::new(Expr::from(t).ge(1), Expr::at(f, [t - 1, x + 0]) * 2.0),
            ],
        )
        .unwrap();
        let pipe = p.finish(&[f]).unwrap();
        let out = interpret(&pipe, &[], &[]).unwrap();
        // f(3, x) = x * 8
        assert_eq!(out[0].at(&[3, 4]), 32.0);
        assert_eq!(out[0].at(&[3, 1]), 8.0);
    }

    #[test]
    fn histogram() {
        let mut p = PipelineBuilder::new("t");
        let img = p.image("I", ScalarType::UChar, vec![PAff::cst(8)]);
        let (x, b) = (p.var("x"), p.var("b"));
        let acc = polymage_ir::Accumulate {
            red_vars: vec![x],
            red_dom: vec![Interval::cst(0, 7)],
            target: vec![Expr::at(img, [Expr::from(x)])],
            value: Expr::Const(1.0),
            op: polymage_ir::Reduction::Sum,
        };
        let h = p
            .accumulator("hist", &[(b, Interval::cst(0, 3))], ScalarType::Int, acc)
            .unwrap();
        let pipe = p.finish(&[h]).unwrap();
        let input = Buffer::from_vec(
            Rect::new(vec![(0, 7)]),
            vec![0.0, 1.0, 1.0, 2.0, 3.0, 3.0, 3.0, 0.0],
        );
        let out = interpret(&pipe, &[], &[input]).unwrap();
        assert_eq!(out[0].data, vec![2.0, 2.0, 1.0, 3.0]);
    }
}
