//! # polymage-core
//!
//! The PolyMage optimizing compiler — the paper's primary contribution
//! (§3). Takes a [`polymage_ir::Pipeline`] specification plus concrete
//! parameter values and produces an executable [`polymage_vm::Program`]:
//!
//! 1. front-end: stage graph, static bounds check, point-wise inlining
//!    (`polymage-graph`);
//! 2. **grouping** (Algorithm 1): greedy merging of a group into its single
//!    child when schedules can be aligned/scaled to make dependences
//!    constant and the estimated overlap stays below the threshold;
//! 3. **overlapped tiling**: per-group tile enumeration with exact per-stage
//!    regions from backward interval propagation (the tight tile shapes of
//!    Fig. 6);
//! 4. **storage optimization**: full arrays only for live-outs and
//!    cross-group values; per-tile scratchpads with relative indexing for
//!    everything else (§3.6);
//! 5. lowering of stage expressions to chunked VM kernels (the stand-in for
//!    §3.7's C++ code generation), plus a C emitter that renders the same
//!    loop structure as the paper's Fig. 7 for inspection;
//! 6. an [`autotune`] module exploring the paper's 7-tile-sizes ×
//!    3-thresholds space (§3.8), and a random-schedule baseline tuner.
//!
//! Compilation is split at the size boundary: [`plan`] runs every
//! size-independent analysis once (steered by parameter *estimates*) into
//! a [`ParametricPlan`] whose geometry stays symbolic, and
//! [`instantiate`] binds it to concrete parameter values cheaply — the
//! analogue of the paper's parametric generated code, which compiles once
//! and runs at any size. [`compile`] composes the two; `Session` caches
//! plans across sizes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod autotune;
mod cemit;
mod compile;
mod cref;
mod error;
mod grouping;
mod instantiate;
pub mod interp;
mod lower;
pub mod options;
mod plan;
mod report;
mod session;
mod storage;
pub mod tilemodel;
mod validate;

pub use cemit::emit_c;
pub use compile::{compile, compile_with, Compiled};
pub use cref::{emit_c_inputs, emit_c_reference};
pub use error::CompileError;
pub use grouping::{group_stages, group_stages_with, Group, GroupKindTag, Grouping, MergeDecision};
pub use instantiate::{instantiate, instantiate_with};
pub use options::{CompileOptions, OptionsKey, StructuralKey, TileSpec, DEFAULT_TILE_SIZES};
pub use plan::{plan, plan_with, ParametricPlan};
pub use polymage_vm::{SimdLevel, SimdOpt};
pub use report::{CompileReport, GroupReport, Provenance};
pub use session::{CacheStats, RunError, Session};
pub use tilemodel::{CacheModel, TileChoice};
pub use validate::{assert_valid, validate_program, Violation};
