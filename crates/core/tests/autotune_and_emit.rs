//! Tests for the autotuner (§3.8) and the C emitter (Fig. 7).

use polymage_core::autotune::{autotune, random_search, THRESHOLDS, TILE_CANDIDATES};
use polymage_core::{compile, emit_c, CompileOptions};
use polymage_ir::*;
use polymage_poly::Rect;
use polymage_vm::Buffer;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small 2-stage stencil pipeline for tuning experiments.
fn blur_chain() -> (Pipeline, Vec<Buffer>) {
    let mut p = PipelineBuilder::new("chain");
    let img = p.image("I", ScalarType::Float, vec![PAff::cst(192), PAff::cst(192)]);
    let (x, y) = (p.var("x"), p.var("y"));
    let d1 = Interval::cst(1, 190);
    let a = p.func("a", &[(x, d1.clone()), (y, d1)], ScalarType::Float);
    p.define(
        a,
        vec![Case::always(stencil(
            img,
            &[x, y],
            1.0 / 9.0,
            &[[1, 1, 1], [1, 1, 1], [1, 1, 1]],
        ))],
    )
    .unwrap();
    let d2 = Interval::cst(2, 189);
    let b = p.func("b", &[(x, d2.clone()), (y, d2)], ScalarType::Float);
    p.define(
        b,
        vec![Case::always(stencil(
            a,
            &[x, y],
            1.0 / 9.0,
            &[[1, 1, 1], [1, 1, 1], [1, 1, 1]],
        ))],
    )
    .unwrap();
    let pipe = p.finish(&[b]).unwrap();
    let input = Buffer::zeros(Rect::new(vec![(0, 191), (0, 191)]))
        .fill_with(|pt| ((pt[0] * 7 + pt[1] * 3) % 64) as f32);
    (pipe, vec![input])
}

#[test]
fn autotuner_sweeps_and_picks_a_best() {
    let (pipe, inputs) = blur_chain();
    let base = CompileOptions::optimized(vec![]);
    let out = autotune(&pipe, &base, &inputs, 2, 1, &[16, 64], &[0.2, 0.5]).unwrap();
    assert_eq!(out.records.len(), 2 * 2 * 2);
    let best = out.best_record();
    assert!(out.records.iter().all(|r| r.tn >= best.tn));
    // every record explored a configuration from the requested space
    for r in &out.records {
        assert!([16, 64].contains(&r.tile[0]) && [16, 64].contains(&r.tile[1]));
        assert!([0.2, 0.5].contains(&r.threshold));
    }
}

#[test]
fn random_search_stays_within_budget() {
    let (pipe, inputs) = blur_chain();
    let base = CompileOptions::optimized(vec![]);
    let mut rng = StdRng::seed_from_u64(7);
    let out = random_search(&pipe, &base, &inputs, 1, 1, 5, &mut rng).unwrap();
    assert_eq!(out.records.len(), 5);
    let best = out.best_record();
    assert!(out.records.iter().all(|r| r.tn >= best.tn));
}

#[test]
fn paper_parameter_space_constants() {
    // §3.8: seven tile sizes and three thresholds → 7²·3 = 147 configs.
    assert_eq!(TILE_CANDIDATES.len(), 7);
    assert_eq!(THRESHOLDS.len(), 3);
    assert_eq!(
        TILE_CANDIDATES.len() * TILE_CANDIDATES.len() * THRESHOLDS.len(),
        147
    );
}

#[test]
fn emitted_c_has_fig7_structure() {
    let (pipe, _) = blur_chain();
    let compiled = compile(&pipe, &CompileOptions::optimized(vec![])).unwrap();
    let c = emit_c(&pipe, &compiled.program);
    // Fig. 7's landmarks: OpenMP-parallel tile loop, scratchpad declaration,
    // ivdep-annotated inner loop, live-out malloc, clamped bounds.
    assert!(c.contains("#pragma omp parallel for"), "{c}");
    assert!(c.contains("_scratch"), "{c}");
    assert!(c.contains("#pragma ivdep"), "{c}");
    assert!(c.contains("malloc"), "{c}");
    assert!(c.contains("min("), "{c}");
    assert!(c.contains("for (int Ti"), "{c}");
    // the stage expressions are rendered
    assert!(c.contains("0.1111"), "stencil weight should appear: {c}");
}

#[test]
fn emitted_c_mentions_reductions_and_scans() {
    // histogram → reduction comment; prefix-sum → sequential scan comment
    let mut p = PipelineBuilder::new("mix");
    let img = p.image("I", ScalarType::UChar, vec![PAff::cst(64)]);
    let (x, b) = (p.var("x"), p.var("b"));
    let acc = Accumulate {
        red_vars: vec![x],
        red_dom: vec![Interval::cst(0, 63)],
        target: vec![Expr::at(img, [Expr::from(x)])],
        value: Expr::Const(1.0),
        op: Reduction::Sum,
    };
    let h = p
        .accumulator("hist", &[(b, Interval::cst(0, 255))], ScalarType::Int, acc)
        .unwrap();
    let scan = p.func("scan", &[(b, Interval::cst(0, 255))], ScalarType::Float);
    p.define(
        scan,
        vec![
            Case::new(Expr::from(b).le(0), Expr::at(h, [Expr::from(b)])),
            Case::new(
                Expr::from(b).ge(1),
                Expr::at(scan, [b - 1]) + Expr::at(h, [Expr::from(b)]),
            ),
        ],
    )
    .unwrap();
    let pipe = p.finish(&[scan]).unwrap();
    let compiled = compile(&pipe, &CompileOptions::optimized(vec![])).unwrap();
    let c = emit_c(&pipe, &compiled.program);
    assert!(c.contains("reduction"), "{c}");
    assert!(c.contains("sequential scan"), "{c}");
}
