//! Criterion benches for the compiler itself: specification-to-program
//! time per benchmark (the cost of our "specialize per parameter values"
//! substitution — see DESIGN.md) and the grouping heuristic in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polymage_apps::{all_benchmarks, Scale};
use polymage_core::{compile, CompileOptions};
use polymage_graph::PipelineGraph;

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    g.sample_size(10);
    for b in all_benchmarks(Scale::Small) {
        let opts = CompileOptions::optimized(b.params());
        g.bench_function(
            BenchmarkId::from_parameter(b.name().replace(' ', "_")),
            |bench| bench.iter(|| compile(b.pipeline(), &opts).unwrap()),
        );
    }
    g.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph_build");
    g.sample_size(20);
    for b in all_benchmarks(Scale::Small) {
        g.bench_function(
            BenchmarkId::from_parameter(b.name().replace(' ', "_")),
            |bench| bench.iter(|| PipelineGraph::build(b.pipeline()).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_compile, bench_graph);
criterion_main!(benches);
