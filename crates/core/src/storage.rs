//! Liveness-driven storage assignment (§3.6, second half).
//!
//! Scheduling gives every non-direct stage of a tiled group a private
//! scratchpad and every cross-group value a run-scoped full array. This
//! pass narrows both by liveness:
//!
//! - **Intra-group scratch folding.** Stages execute in a fixed order
//!   inside every tile, so a stage's scratchpad is live from its own
//!   evaluation until the last stage that reads it. Stages whose live
//!   ranges do not intersect can share one *slot* of the packed per-worker
//!   arena (greedy interval coloring; a slot is sized to its largest
//!   occupant and each occupant keeps its own relative-indexing geometry).
//!   This shrinks the per-tile working set toward cache size — the paper's
//!   reason tiling pays off at all.
//! - **Inter-group full-buffer release.** Each full buffer's lifetime is
//!   narrowed to `[first accessing group, last accessing group]`; the
//!   engine materializes it lazily and returns it to the pool right after
//!   its last consumer group, so deep pipelines (Pyramid Blending,
//!   Local Laplacian) no longer hold every intermediate to the end of the
//!   run. Input images stay materialized from submission (their data is
//!   copied in up front) and live-outs to completion (they are cloned into
//!   the result).
//!
//! Both transformations are value-invisible: tests compare folded and
//! unfolded programs bit-for-bit.

use polymage_vm::{
    BufDecl, BufKind, GroupKind, Program, ScratchSlots, SlotRange, StoragePlan, TiledGroup,
};

/// Per-group outcome of scratch folding.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct GroupStorage {
    /// Packed arena bytes with one private slot per stage.
    pub unfolded_bytes: usize,
    /// Packed arena bytes after folding.
    pub folded_bytes: usize,
    /// Slots after folding (0 for non-tiled groups).
    pub slots: usize,
}

/// Whole-program outcome of the storage pass.
#[derive(Debug, Clone, Default)]
pub(crate) struct StorageOutcome {
    /// One entry per program group, in execution order.
    pub groups: Vec<GroupStorage>,
    /// Estimated peak bytes of concurrently resident full buffers under
    /// the computed acquire/release schedule (includes input images).
    pub peak_full_bytes: usize,
    /// Per-worker scratch bytes eliminated (Σ unfolded − folded).
    pub folded_bytes: usize,
}

/// Runs the storage pass over a scheduled program, in place.
///
/// With `enabled == false` the program keeps its identity slot assignment
/// and run-scoped buffer lifetimes; the outcome still reports the
/// (unchanged) footprints so ablations can compare.
pub(crate) fn optimize_storage(prog: &mut Program, enabled: bool) -> StorageOutcome {
    let mut out = StorageOutcome::default();
    let Program {
        ref buffers,
        ref mut groups,
        ..
    } = *prog;
    for g in groups.iter_mut() {
        match &mut g.kind {
            GroupKind::Tiled(tg) => {
                let unfolded_bytes = tg.slots.arena_bytes();
                if enabled {
                    tg.slots = fold_group(tg, buffers);
                }
                out.groups.push(GroupStorage {
                    unfolded_bytes,
                    folded_bytes: tg.slots.arena_bytes(),
                    slots: tg.slots.nslots,
                });
            }
            _ => out.groups.push(GroupStorage::default()),
        }
    }
    prog.storage = if enabled {
        lifetime_plan(prog)
    } else {
        StoragePlan::run_scoped(prog.buffers.len())
    };
    out.peak_full_bytes = peak_estimate(prog);
    out.folded_bytes = out
        .groups
        .iter()
        .map(|g| g.unfolded_bytes - g.folded_bytes)
        .sum();
    out
}

/// Last stage index (in group order) that reads each stage's scratchpad;
/// a stage nobody reads dies at its own index.
fn last_uses(tg: &TiledGroup) -> Vec<usize> {
    let n = tg.stages.len();
    let mut last: Vec<usize> = (0..n).collect();
    for (j, s) in tg.stages.iter().enumerate() {
        for &b in &s.reads {
            if let Some(k) = tg.stages.iter().position(|p| !p.direct && p.scratch == b) {
                last[k] = last[k].max(j);
            }
        }
    }
    last
}

/// Greedy interval coloring of a tiled group's scratchpads onto shared
/// slots. Stage `k` is live over `[k, last_use(k)]`; a slot is free for
/// `k` when its latest occupant's last use is strictly before `k`. Slot
/// choice is deterministic: the smallest free slot that already fits,
/// else the largest free slot (minimizing growth), else a new slot.
fn fold_group(tg: &TiledGroup, buffers: &[BufDecl]) -> ScratchSlots {
    let n = tg.stages.len();
    let last_use = last_uses(tg);

    struct SlotInfo {
        size: usize,
        /// Stage index of the latest occupant's last use.
        busy_until: usize,
    }
    let mut slots: Vec<SlotInfo> = Vec::new();
    let mut assign: Vec<Option<usize>> = vec![None; n];
    for (k, s) in tg.stages.iter().enumerate() {
        if s.direct {
            continue;
        }
        let len = buffers[s.scratch.0].len();
        let mut best_fit: Option<(usize, usize)> = None; // (slot, size)
        let mut largest: Option<(usize, usize)> = None;
        for (i, sl) in slots.iter().enumerate() {
            if sl.busy_until >= k {
                continue; // occupant still live at stage k
            }
            if sl.size >= len && best_fit.is_none_or(|(_, sz)| sl.size < sz) {
                best_fit = Some((i, sl.size));
            }
            if largest.is_none_or(|(_, sz)| sl.size > sz) {
                largest = Some((i, sl.size));
            }
        }
        let si = match best_fit.or(largest) {
            Some((i, _)) => {
                slots[i].size = slots[i].size.max(len);
                slots[i].busy_until = last_use[k];
                i
            }
            None => {
                slots.push(SlotInfo {
                    size: len,
                    busy_until: last_use[k],
                });
                slots.len() - 1
            }
        };
        assign[k] = Some(si);
    }

    let mut offsets = Vec::with_capacity(slots.len());
    let mut off = 0usize;
    for sl in &slots {
        offsets.push(off);
        off += ScratchSlots::align(sl.size);
    }
    ScratchSlots {
        stage: (0..n)
            .map(|k| {
                assign[k].map(|si| SlotRange {
                    slot: si,
                    offset: offsets[si],
                    len: buffers[tg.stages[k].scratch.0].len(),
                })
            })
            .collect(),
        nslots: slots.len(),
        arena_len: off,
    }
}

/// Full buffers accessed (read or written) by a group, as buffer indices.
fn group_accesses(prog: &Program, gi: usize) -> Vec<usize> {
    let mut bufs = Vec::new();
    match &prog.groups[gi].kind {
        GroupKind::Tiled(tg) => {
            for s in &tg.stages {
                if let Some(b) = s.full {
                    bufs.push(b.0);
                }
                bufs.extend(s.reads.iter().map(|b| b.0));
            }
        }
        GroupKind::Reduction(r) => {
            bufs.push(r.out.0);
            bufs.extend(r.reads.iter().map(|b| b.0));
        }
        GroupKind::Sequential(sq) => {
            bufs.push(sq.out.0);
            bufs.extend(sq.reads.iter().map(|b| b.0));
        }
    }
    bufs.retain(|&b| prog.buffers[b].kind == BufKind::Full);
    bufs
}

/// Narrows each full buffer's lifetime to its first/last accessing group.
/// Input images keep a submission-time acquire (`None`); live-outs keep a
/// completion-time release (`None`); untouched buffers stay run-scoped.
fn lifetime_plan(prog: &Program) -> StoragePlan {
    let nbufs = prog.buffers.len();
    let mut acquire: Vec<Option<usize>> = vec![None; nbufs];
    let mut release: Vec<Option<usize>> = vec![None; nbufs];
    for gi in 0..prog.groups.len() {
        for b in group_accesses(prog, gi) {
            if acquire[b].is_none() {
                acquire[b] = Some(gi);
            }
            release[b] = Some(gi);
        }
    }
    for &b in &prog.image_bufs {
        acquire[b.0] = None;
    }
    for (_, b) in &prog.outputs {
        release[b.0] = None;
    }
    // A buffer nobody releases must not be acquired lazily either (it
    // would never be freed mid-run anyway, and an unused live-out must
    // exist at completion).
    for i in 0..nbufs {
        if release[i].is_none() {
            acquire[i] = None;
        }
    }
    StoragePlan {
        acquire_group: acquire,
        release_group: release,
    }
}

/// Simulates the acquire/release schedule to estimate peak resident
/// full-buffer bytes (what `Shared::full_peak` measures for a lone run).
pub(crate) fn peak_estimate(prog: &Program) -> usize {
    let bytes = |i: usize| -> usize { prog.buffers[i].len() * 4 };
    let full = |i: usize| prog.buffers[i].kind == BufKind::Full;
    let mut cur: usize = (0..prog.buffers.len())
        .filter(|&i| full(i) && prog.storage.acquire_group[i].is_none())
        .map(bytes)
        .sum();
    let mut peak = cur;
    for gi in 0..prog.groups.len() {
        for i in 0..prog.buffers.len() {
            if full(i) && prog.storage.acquire_group[i] == Some(gi) {
                cur += bytes(i);
            }
        }
        peak = peak.max(cur);
        for i in 0..prog.buffers.len() {
            if full(i) && prog.storage.release_group[i] == Some(gi) {
                cur -= bytes(i);
            }
        }
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymage_poly::Rect;
    use polymage_vm::{BufId, StageExec};

    /// A stage skeleton: only `direct`, `scratch`, and `reads` matter to
    /// the coloring.
    fn stage(name: &str, scratch: usize, direct: bool, reads: &[usize]) -> StageExec {
        StageExec {
            name: name.into(),
            scratch: BufId(scratch),
            full: None,
            direct,
            sat: None,
            round: false,
            cases: vec![],
            dom: Rect::new(vec![(0, 0)]),
            reads: reads.iter().map(|&b| BufId(b)).collect(),
        }
    }

    fn scratch_decl(name: &str, len: i64) -> BufDecl {
        BufDecl {
            name: name.into(),
            kind: BufKind::Scratch,
            sizes: vec![len],
            origin: vec![0],
        }
    }

    #[test]
    fn chain_folds_to_two_slots() {
        // a → b → c → out: each stage reads only its predecessor, so `a`
        // is dead once `c` runs and can reuse `a`'s slot (ping-pong).
        let buffers = vec![
            scratch_decl("a", 100),
            scratch_decl("b", 80),
            scratch_decl("c", 120),
        ];
        let stages = vec![
            stage("a", 0, false, &[]),
            stage("b", 1, false, &[0]),
            stage("c", 2, false, &[1]),
            stage("out", 0, true, &[2]),
        ];
        let tg = TiledGroup::new(stages, vec![], 1, &buffers);
        assert_eq!(tg.slots.nslots, 3, "unfolded starts private");
        let folded = fold_group(&tg, &buffers);
        assert_eq!(folded.nslots, 2);
        // c reuses a's slot, grown to c's length.
        let (a, c) = (folded.stage[0].unwrap(), folded.stage[2].unwrap());
        assert_eq!(a.slot, c.slot);
        assert_eq!(a.len, 100);
        assert_eq!(c.len, 120);
        assert!(folded.arena_len < tg.slots.arena_len);
        assert!(folded.stage[3].is_none(), "direct stages own no slot");
    }

    #[test]
    fn long_lived_producer_is_not_folded() {
        // Both `a` and `b` feed the sink, so both are live until stage 2:
        // no interval ever closes early and nothing can fold.
        let buffers = vec![scratch_decl("a", 64), scratch_decl("b", 64)];
        let stages = vec![
            stage("a", 0, false, &[]),
            stage("b", 1, false, &[0]),
            stage("out", 0, true, &[0, 1]),
        ];
        let tg = TiledGroup::new(stages, vec![], 1, &buffers);
        let folded = fold_group(&tg, &buffers);
        assert_eq!(folded.nslots, 2);
        let (a, b) = (folded.stage[0].unwrap(), folded.stage[1].unwrap());
        assert_ne!(a.slot, b.slot);
        assert_eq!(folded.arena_len, tg.slots.arena_len);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_slot() {
        // Free slots of size 100 and 40 are both dead when `d` (len 30)
        // runs; best fit must pick the 40 so the 100 stays for larger
        // tenants and the arena does not grow.
        let buffers = vec![
            scratch_decl("a", 100),
            scratch_decl("b", 40),
            scratch_decl("c", 8),
            scratch_decl("d", 30),
        ];
        let stages = vec![
            stage("a", 0, false, &[]),
            stage("b", 1, false, &[0]),
            stage("c", 2, false, &[0, 1]),
            stage("d", 3, false, &[2]),
            stage("out", 0, true, &[3]),
        ];
        let tg = TiledGroup::new(stages, vec![], 1, &buffers);
        let folded = fold_group(&tg, &buffers);
        let (b, d) = (folded.stage[1].unwrap(), folded.stage[3].unwrap());
        assert_eq!(d.slot, b.slot, "d should land in the 40-wide slot");
        assert_eq!(d.len, 30);
    }
}
