//! Scalar element types of images and functions.

use std::fmt;

/// Element type of an image or function value.
///
/// The paper's DSL supports the usual C scalar types. The PolyMage-rs
/// execution engine computes in `f32` internally (see the `polymage-vm`
/// crate); the declared type still matters for input decoding, clamping on
/// store (`UChar` saturates to `[0, 255]`, etc.) and for the emitted C code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScalarType {
    /// 8-bit unsigned integer, saturating stores.
    UChar,
    /// 8-bit signed integer, saturating stores.
    Char,
    /// 16-bit unsigned integer, saturating stores.
    UShort,
    /// 16-bit signed integer, saturating stores.
    Short,
    /// 32-bit signed integer (values rounded on store).
    Int,
    /// 32-bit unsigned integer (values rounded and clamped at 0 on store).
    UInt,
    /// 32-bit IEEE float — the native type of the execution engine.
    #[default]
    Float,
    /// 64-bit IEEE float (stored as `f32` by the engine; declared for
    /// fidelity with paper specs).
    Double,
}

impl ScalarType {
    /// Whether the type is an integer type (stores round to nearest).
    pub fn is_integral(self) -> bool {
        !matches!(self, ScalarType::Float | ScalarType::Double)
    }

    /// Inclusive value range enforced on store, if the type saturates.
    ///
    /// `Float`/`Double` and the 32-bit integer types are not clamped
    /// (32-bit ranges exceed what `f32` arithmetic distinguishes).
    pub fn saturation_range(self) -> Option<(f64, f64)> {
        match self {
            ScalarType::UChar => Some((0.0, 255.0)),
            ScalarType::Char => Some((-128.0, 127.0)),
            ScalarType::UShort => Some((0.0, 65_535.0)),
            ScalarType::Short => Some((-32_768.0, 32_767.0)),
            _ => None,
        }
    }

    /// The C type name used by the code emitter.
    pub fn c_name(self) -> &'static str {
        match self {
            ScalarType::UChar => "unsigned char",
            ScalarType::Char => "char",
            ScalarType::UShort => "unsigned short",
            ScalarType::Short => "short",
            ScalarType::Int => "int",
            ScalarType::UInt => "unsigned int",
            ScalarType::Float => "float",
            ScalarType::Double => "double",
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.c_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_classification() {
        assert!(ScalarType::UChar.is_integral());
        assert!(ScalarType::Int.is_integral());
        assert!(!ScalarType::Float.is_integral());
        assert!(!ScalarType::Double.is_integral());
    }

    #[test]
    fn saturation_ranges() {
        assert_eq!(ScalarType::UChar.saturation_range(), Some((0.0, 255.0)));
        assert_eq!(
            ScalarType::Short.saturation_range(),
            Some((-32768.0, 32767.0))
        );
        assert_eq!(ScalarType::Float.saturation_range(), None);
        assert_eq!(ScalarType::Int.saturation_range(), None);
    }

    #[test]
    fn c_names() {
        assert_eq!(ScalarType::Float.to_string(), "float");
        assert_eq!(ScalarType::UChar.to_string(), "unsigned char");
    }
}
