//! Ties the §3.4 analysis to reality: the overlap ratio the grouping
//! heuristic *predicts* from dependence vectors must equal the redundant
//! computation the executor *actually performs* (measured by counting
//! every computed point against the useful domain volumes).

use polymage_core::{compile, CompileOptions};
use polymage_ir::*;
use polymage_poly::{group_overlap, solve_alignment, Rect};
use polymage_vm::{run_program_stats, Buffer};

/// A chain of `depth` 3×3 box stencils over an `n × n` image.
fn chain(depth: usize, n: i64) -> Pipeline {
    let mut p = PipelineBuilder::new("chain");
    let img = p.image("I", ScalarType::Float, vec![PAff::cst(n), PAff::cst(n)]);
    let (x, y) = (p.var("x"), p.var("y"));
    let mut prev: Source = img.into();
    let mut last = None;
    for i in 1..=depth as i64 {
        let d = Interval::cst(i, n - 1 - i);
        let f = p.func(
            format!("s{i}"),
            &[(x, d.clone()), (y, d)],
            ScalarType::Float,
        );
        p.define(
            f,
            vec![Case::always(stencil(
                prev,
                &[x, y],
                1.0 / 9.0,
                &[[1, 1, 1], [1, 1, 1], [1, 1, 1]],
            ))],
        )
        .unwrap();
        prev = f.into();
        last = Some(f);
    }
    p.finish(&[last.unwrap()]).unwrap()
}

#[test]
fn measured_redundancy_matches_predicted_overlap() {
    let depth = 4;
    let n = 512i64;
    let pipe = chain(depth, n);
    for tiles in [vec![32i64, 64], vec![64, 128], vec![32, 256]] {
        let mut opts = CompileOptions::optimized(vec![]);
        opts.tiles = polymage_core::TileSpec::Fixed(tiles.clone());
        opts.overlap_threshold = 10.0; // force full fusion
        let compiled = compile(&pipe, &opts).unwrap();
        assert_eq!(compiled.report.groups.len(), 1, "chain must fully fuse");

        // predicted redundancy from the §3.4 analysis
        let stages: Vec<FuncId> = pipe.func_ids().collect();
        let sink = *pipe.live_outs().first().unwrap();
        let al = solve_alignment(&pipe, &stages, sink).unwrap();
        let ov = group_overlap(&pipe, &stages, &al).unwrap();

        // measured: every computed point vs the useful domain volumes
        let input = Buffer::zeros(Rect::new(vec![(0, n - 1), (0, n - 1)]))
            .fill_with(|p| ((p[0] + p[1]) % 7) as f32);
        let (_, stats) = run_program_stats(&compiled.program, &[input], 2).unwrap();
        let useful: i64 = pipe
            .func_ids()
            .map(|f| {
                Rect::new(
                    pipe.func(f)
                        .var_dom
                        .dom
                        .iter()
                        .map(|iv| iv.eval(&[]))
                        .collect(),
                )
                .volume()
            })
            .sum();
        let measured = stats.points_computed as f64 / useful as f64 - 1.0;
        let predicted = ov.overlap_ratio(&tiles);
        // The §3.4 estimate bounds the *deepest* stage's extension (the
        // widest recompute cone) — deliberately conservative, since it
        // gates fusion. Actual redundancy averages over all stages, whose
        // extensions grow linearly from 0 at the sink to the maximum at
        // the deepest producer, so the measurement sits near half the
        // prediction and never above it.
        assert!(
            measured <= predicted * 1.05 + 0.01,
            "tiles {tiles:?}: measured redundancy {measured:.4} exceeds \
             prediction {predicted:.4} — the bound would be unsound"
        );
        assert!(
            measured >= predicted * 0.3,
            "tiles {tiles:?}: measured redundancy {measured:.4} far below \
             prediction {predicted:.4} — the analysis would be meaningless"
        );
        // sanity on the other counters
        assert!(stats.tiles > 0 && stats.chunks > 0);
    }
}

#[test]
fn base_schedule_has_no_redundancy() {
    let pipe = chain(3, 256);
    let compiled = compile(&pipe, &CompileOptions::base(vec![])).unwrap();
    let input = Buffer::zeros(Rect::new(vec![(0, 255), (0, 255)])).fill_with(|p| (p[0] % 5) as f32);
    let (_, stats) = run_program_stats(&compiled.program, &[input], 2).unwrap();
    let useful: u64 = pipe
        .func_ids()
        .map(|f| {
            Rect::new(
                pipe.func(f)
                    .var_dom
                    .dom
                    .iter()
                    .map(|iv| iv.eval(&[]))
                    .collect(),
            )
            .volume() as u64
        })
        .sum();
    assert_eq!(
        stats.points_computed, useful,
        "unfused schedules compute every point exactly once"
    );
}
