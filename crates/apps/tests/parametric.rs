//! Parametric-compilation equivalence: a [`ParametricPlan`] built once
//! (with pinned parameter estimates) and instantiated at several sizes
//! must produce **bit-identical** outputs to a direct `compile` at each
//! size, for every benchmark, both schedule configurations, and thread
//! counts {1, 2, 4}. Two of the three sizes differ from the estimates, so
//! the symbolic geometry — not the estimate-time numbers — carries the
//! binding. At the largest (off-estimate) size the output is also checked
//! against the unfused reference implementation, pinning correctness and
//! not merely agreement between two compiler paths.

use polymage_apps::sizes::ALL;
use polymage_apps::{
    bilateral::BilateralGrid, camera::CameraPipe, harris::HarrisCorner,
    interpolate::MultiscaleInterp, laplacian::LocalLaplacian, pyramid::PyramidBlend,
    unsharp::Unsharp, Benchmark,
};
use polymage_core::{compile, instantiate, plan, CompileOptions};
use polymage_vm::{Buffer, Engine, EvalMode, RunRequest};

/// Size offsets from each app's tiny dims. `64` keeps every app's
/// constraint intact (pyramid apps need divisibility by at most
/// `2^5 = 32`, and the camera mosaic needs even dims).
const DELTAS: [(i64, i64); 3] = [(0, 0), (64, 64), (128, 64)];
/// The estimates are pinned at the middle size, so `DELTAS[0]` and
/// `DELTAS[2]` instantiate at sizes that differ from the estimates.
const ESTIMATE_DELTA: (i64, i64) = (64, 64);

/// Every benchmark at `tiny + delta`.
fn apps_at(delta: (i64, i64)) -> Vec<Box<dyn Benchmark>> {
    let dims: Vec<(i64, i64)> = ALL
        .iter()
        .map(|s| (s.tiny.0 + delta.0, s.tiny.1 + delta.1))
        .collect();
    vec![
        Box::new(Unsharp::with_size(dims[0].0, dims[0].1)),
        Box::new(BilateralGrid::with_size(dims[1].0, dims[1].1)),
        Box::new(HarrisCorner::with_size(dims[2].0, dims[2].1)),
        Box::new(CameraPipe::with_size(dims[3].0, dims[3].1)),
        Box::new(PyramidBlend::with_size(dims[4].0, dims[4].1)),
        Box::new(MultiscaleInterp::with_size(dims[5].0, dims[5].1)),
        Box::new(LocalLaplacian::with_size(dims[6].0, dims[6].1)),
    ]
}

fn bits(bufs: &[Buffer]) -> Vec<Vec<u32>> {
    bufs.iter()
        .map(|b| b.data.iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn close(a: &[Buffer], b: &[Buffer], tol: f32) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.data.len() == y.data.len()
                && x.data
                    .iter()
                    .zip(&y.data)
                    .all(|(u, v)| (u - v).abs() <= tol * (1.0 + v.abs()))
        })
}

#[test]
fn instantiate_matches_direct_compile_bit_exact() {
    let engine = Engine::with_threads(4);
    let estimate_apps = apps_at(ESTIMATE_DELTA);
    for (ai, est_app) in estimate_apps.iter().enumerate() {
        let est_params = est_app.params();
        for base in [false, true] {
            let mk_opts = |params: Vec<i64>| {
                let o = if base {
                    CompileOptions::base(params).with_mode(EvalMode::Scalar)
                } else {
                    CompileOptions::optimized(params)
                };
                o.with_estimates(est_params.clone())
            };
            // One plan, built from the estimate-size instance's pipeline
            // (pipelines are size-independent; sizes enter via params).
            let p = plan(est_app.pipeline(), &mk_opts(est_app.params()))
                .unwrap_or_else(|e| panic!("{}: plan: {e}", est_app.name()));
            for delta in DELTAS {
                let b = &apps_at(delta)[ai];
                let params = b.params();
                let via_plan = instantiate(&p, &params)
                    .unwrap_or_else(|e| panic!("{}: instantiate {params:?}: {e}", b.name()));
                let direct = compile(b.pipeline(), &mk_opts(params.clone()))
                    .unwrap_or_else(|e| panic!("{}: compile {params:?}: {e}", b.name()));
                assert_eq!(
                    via_plan.report.provenance.estimates,
                    est_params,
                    "{}: provenance records the plan's estimates",
                    b.name()
                );
                assert_eq!(
                    via_plan.report.provenance.params,
                    params,
                    "{}: provenance records the bound parameters",
                    b.name()
                );
                let inputs = b.make_inputs(7 + ai as u64);
                for nthreads in [1usize, 2, 4] {
                    let got = engine
                        .submit(RunRequest::new(&via_plan.program, &inputs).threads(nthreads))
                        .and_then(|h| h.join())
                        .unwrap_or_else(|e| panic!("{}: instantiated run: {e}", b.name()));
                    let want = engine
                        .submit(RunRequest::new(&direct.program, &inputs).threads(nthreads))
                        .and_then(|h| h.join())
                        .unwrap_or_else(|e| panic!("{}: direct run: {e}", b.name()));
                    assert_eq!(
                        bits(&got),
                        bits(&want),
                        "{}: instantiated output differs from direct compile \
                         (params {params:?}, base {base}, threads {nthreads})",
                        b.name()
                    );
                    // At the largest off-estimate size, also pin real
                    // correctness against the unfused reference.
                    if delta == DELTAS[2] && nthreads == 1 {
                        let reference = b.reference(&inputs);
                        assert!(
                            close(&got, &reference, b.tolerance()),
                            "{}: instantiated output diverges from reference \
                             (params {params:?}, base {base})",
                            b.name()
                        );
                    }
                }
            }
        }
    }
}
