//! End-to-end bit-exactness of the kernel optimizer on random *pipelines*:
//! for randomly generated two-stage stencil pipelines, the compiled
//! program with `kernel_opt` on must produce **bit identical** outputs to
//! the same schedule with the optimizer off, and both must match the
//! naive reference interpreter bit-for-bit (lowering is structural — the
//! evaluation tree, and therefore every f32 rounding step, is the same).

use polymage_core::interp::interpret;
use polymage_core::{compile, CompileOptions};
use polymage_ir::*;
use polymage_poly::Rect;
use polymage_vm::{run_program, Buffer, EvalMode};
use proptest::prelude::*;

/// A two-stage pipeline: a 3×3 border-guarded stencil with the given
/// coefficients (including division by a power of two, prime territory for
/// strength reduction), then a point-wise combine with the input. The
/// unary op index optionally wraps the stencil in abs/floor/sqrt∘abs.
fn stencil_pipeline(coeffs: [i64; 9], div: i64, unop: u8, scale: i64) -> Pipeline {
    let mut p = PipelineBuilder::new("prop");
    let (r, c) = (p.param("R"), p.param("C"));
    let img = p.image(
        "I",
        ScalarType::Float,
        vec![PAff::param(r) + 2, PAff::param(c) + 2],
    );
    let (x, y) = (p.var("x"), p.var("y"));
    let row = Interval::new(PAff::cst(0), PAff::param(r) + 1);
    let col = Interval::new(PAff::cst(0), PAff::param(c) + 1);
    let dom = [(x, row), (y, col)];
    let cond = Expr::from(x).ge(1)
        & Expr::from(x).le(Expr::Param(r))
        & Expr::from(y).ge(1)
        & Expr::from(y).le(Expr::Param(c));

    let mut sum: Option<Expr> = None;
    for dx in -1i64..=1 {
        for dy in -1i64..=1 {
            let w = coeffs[((dx + 1) * 3 + (dy + 1)) as usize];
            if w == 0 {
                continue;
            }
            let t = Expr::at(img, [x + dx, y + dy]) * (w as f64);
            sum = Some(match sum {
                None => t,
                Some(s) => s + t,
            });
        }
    }
    let body = sum.unwrap_or(Expr::Const(1.0)) / (div as f64);
    let body = match unop % 4 {
        1 => body.abs(),
        2 => body.floor(),
        3 => body.abs().sqrt(),
        _ => body,
    };
    let f = p.func("f", &dom, ScalarType::Float);
    p.define(f, vec![Case::new(cond.clone(), body)]).unwrap();

    let g = p.func("g", &dom, ScalarType::Float);
    p.define(
        g,
        vec![Case::new(
            cond,
            Expr::at(f, [Expr::from(x), Expr::from(y)]) * (scale as f64)
                + Expr::at(img, [Expr::from(x), Expr::from(y)]),
        )],
    )
    .unwrap();
    p.finish(&[g]).unwrap()
}

fn noise_image(rect: Rect, seed: i64) -> Buffer {
    Buffer::zeros(rect).fill_with(|p| {
        let mut h = seed;
        for &c in p {
            h = h
                .wrapping_mul(6364136223846793005)
                .wrapping_add(c.wrapping_mul(1442695040888963407));
        }
        (((h >> 33) & 0xff) as f32) / 16.0 - 4.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// kernel_opt on ≡ kernel_opt off ≡ interpreter, bit-exactly, across
    /// schedules (base, opt, opt+vec).
    #[test]
    fn optimized_pipelines_bit_exact(
        coeffs in proptest::collection::vec(-3i64..4, 9..10),
        divp in 0u32..3,
        unop in 0u8..4,
        scale in -2i64..=2,
        rr in 9i64..24,
        cc in 9i64..24,
        seed in 0i64..1000,
    ) {
        let mut cf = [0i64; 9];
        cf.copy_from_slice(&coeffs);
        let pipe = stencil_pipeline(cf, 1i64 << divp, unop, scale);
        let params = vec![rr, cc];
        let input = noise_image(Rect::new(vec![(0, rr + 1), (0, cc + 1)]), seed);
        let inputs = [input];
        let expect = interpret(&pipe, &params, &inputs).expect("interpreter");
        let schedules = [
            CompileOptions::base(params.clone()).with_mode(EvalMode::Scalar),
            CompileOptions::optimized(params.clone()).with_mode(EvalMode::Scalar),
            CompileOptions::optimized(params.clone()),
        ];
        for (si, on) in schedules.iter().enumerate() {
            let off = on.clone().with_kernel_opt(false);
            let c_on = compile(&pipe, on).expect("compile on");
            let c_off = compile(&pipe, &off).expect("compile off");
            let o_on = run_program(&c_on.program, &inputs, 1).expect("run on");
            let o_off = run_program(&c_off.program, &inputs, 1).expect("run off");
            for (b_on, (b_off, b_ref)) in
                o_on.iter().zip(o_off.iter().zip(&expect))
            {
                for (i, (a, b)) in b_on.data.iter().zip(&b_off.data).enumerate() {
                    prop_assert_eq!(
                        a.to_bits(), b.to_bits(),
                        "schedule {} elem {}: opt {} vs unopt {}", si, i, a, b);
                }
                for (i, (a, b)) in b_on.data.iter().zip(&b_ref.data).enumerate() {
                    prop_assert_eq!(
                        a.to_bits(), b.to_bits(),
                        "schedule {} elem {}: opt {} vs interp {}", si, i, a, b);
                }
            }
        }
    }
}
