//! The `Stencil` convenience constructor from the paper's DSL.

use crate::{Expr, Source, VarId};

/// Builds a 2-D weighted-stencil expression, the paper's
/// `Stencil(I(x,y), scale, [[w…]…])`.
///
/// The kernel is centered: for a `(2k+1)×(2m+1)` kernel, entry `[i][j]`
/// weights `src(x + i - k, y + j - m)`. Zero weights are skipped. The whole
/// sum is multiplied by `scale`.
///
/// # Panics
///
/// Panics if the kernel is empty or ragged.
pub fn stencil<S, const N: usize>(
    src: S,
    vars: &[VarId; 2],
    scale: f64,
    kernel: &[[i64; N]],
) -> Expr
where
    S: Into<Source>,
{
    assert!(
        !kernel.is_empty() && N > 0,
        "stencil kernel must be non-empty"
    );
    let src = src.into();
    let (kx, ky) = ((kernel.len() as i64 - 1) / 2, (N as i64 - 1) / 2);
    let mut sum: Option<Expr> = None;
    for (i, row) in kernel.iter().enumerate() {
        for (j, &w) in row.iter().enumerate() {
            if w == 0 {
                continue;
            }
            let access = Expr::at(src, [vars[0] + (i as i64 - kx), vars[1] + (j as i64 - ky)]);
            let term = if w == 1 { access } else { access * w as f64 };
            sum = Some(match sum {
                None => term,
                Some(s) => s + term,
            });
        }
    }
    let sum = sum.unwrap_or(Expr::Const(0.0));
    if scale == 1.0 {
        sum
    } else {
        sum * scale
    }
}

/// Builds a 1-D weighted stencil along one variable of a (possibly
/// multi-dimensional) function.
///
/// `vars` is the full index list; the stencil slides along `vars[axis]`.
/// Weights are floating point (Gaussian taps etc.); zero weights are skipped.
///
/// # Panics
///
/// Panics if `weights` is empty or `axis` is out of range.
pub fn stencil_1d<S>(src: S, vars: &[VarId], axis: usize, scale: f64, weights: &[f64]) -> Expr
where
    S: Into<Source>,
{
    assert!(!weights.is_empty(), "stencil weights must be non-empty");
    assert!(axis < vars.len(), "axis out of range");
    let src = src.into();
    let k = (weights.len() as i64 - 1) / 2;
    let mut sum: Option<Expr> = None;
    for (i, &w) in weights.iter().enumerate() {
        if w == 0.0 {
            continue;
        }
        let args: Vec<Expr> = vars
            .iter()
            .enumerate()
            .map(|(d, &v)| {
                if d == axis {
                    v + (i as i64 - k)
                } else {
                    Expr::Var(v)
                }
            })
            .collect();
        let access = Expr::at(src, args);
        let term = if w == 1.0 { access } else { access * w };
        sum = Some(match sum {
            None => term,
            Some(s) => s + term,
        });
    }
    let sum = sum.expect("at least one non-zero weight");
    if scale == 1.0 {
        sum
    } else {
        sum * scale
    }
}

/// Builds a separable 2-D stencil as the outer product of two tap vectors,
/// expanded into a single expression (used by reference kernels in tests).
///
/// # Panics
///
/// Panics if either tap vector is empty.
pub fn stencil_sep<S>(src: S, vars: &[VarId; 2], wx: &[f64], wy: &[f64]) -> Expr
where
    S: Into<Source>,
{
    assert!(
        !wx.is_empty() && !wy.is_empty(),
        "tap vectors must be non-empty"
    );
    let src = src.into();
    let (kx, ky) = ((wx.len() as i64 - 1) / 2, (wy.len() as i64 - 1) / 2);
    let mut sum: Option<Expr> = None;
    for (i, &a) in wx.iter().enumerate() {
        for (j, &b) in wy.iter().enumerate() {
            let w = a * b;
            if w == 0.0 {
                continue;
            }
            let access = Expr::at(src, [vars[0] + (i as i64 - kx), vars[1] + (j as i64 - ky)]);
            sum = Some(match sum {
                None => access * w,
                Some(s) => s + access * w,
            });
        }
    }
    sum.expect("at least one non-zero weight")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ImageId;

    fn count_calls(e: &Expr) -> usize {
        let mut n = 0;
        crate::visit_exprs(e, &mut |x| {
            if matches!(x, Expr::Call(..)) {
                n += 1;
            }
        });
        n
    }

    #[test]
    fn skips_zero_weights() {
        let img = ImageId::from_index(0);
        let vars = [VarId::from_index(0), VarId::from_index(1)];
        // Sobel-like kernel with a zero column
        let e = stencil(
            img,
            &vars,
            1.0 / 12.0,
            &[[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]],
        );
        assert_eq!(count_calls(&e), 6);
    }

    #[test]
    fn full_box_kernel() {
        let img = ImageId::from_index(0);
        let vars = [VarId::from_index(0), VarId::from_index(1)];
        let e = stencil(img, &vars, 1.0, &[[1, 1, 1], [1, 1, 1], [1, 1, 1]]);
        assert_eq!(count_calls(&e), 9);
    }

    #[test]
    fn one_dimensional_taps() {
        let img = ImageId::from_index(0);
        let vars = [VarId::from_index(0), VarId::from_index(1)];
        let e = stencil_1d(img, &vars, 1, 1.0, &[1.0, 4.0, 6.0, 4.0, 1.0]);
        assert_eq!(count_calls(&e), 5);
    }

    #[test]
    fn separable_product() {
        let img = ImageId::from_index(0);
        let vars = [VarId::from_index(0), VarId::from_index(1)];
        let e = stencil_sep(img, &vars, &[1.0, 2.0, 1.0], &[1.0, 2.0, 1.0]);
        assert_eq!(count_calls(&e), 9);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_kernel_panics() {
        let img = ImageId::from_index(0);
        let vars = [VarId::from_index(0), VarId::from_index(1)];
        let _ = stencil(img, &vars, 1.0, &[] as &[[i64; 3]]);
    }
}
