//! Kernel-optimizer equivalence on the real benchmark apps: for every
//! benchmark under {base, opt, opt+vec}, the program compiled with
//! `kernel_opt` on must produce **bit-identical** outputs to the same
//! schedule with the optimizer off — the optimizer's whole rewrite catalog
//! is restricted to bit-exact f32 transformations. Also pins down that the
//! optimizer actually *does* something on every multi-stage app: nonzero
//! folded/simplified ops and specialized (non-gather) loads.

use polymage_apps::{all_benchmarks, Scale};
use polymage_core::{compile, CompileOptions};
use polymage_vm::{run_program, EvalMode};

fn bits(bufs: &[polymage_vm::Buffer]) -> Vec<Vec<u32>> {
    bufs.iter()
        .map(|b| b.data.iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn kernel_opt_bit_exact_all_benchmarks_all_schedules() {
    for b in all_benchmarks(Scale::Tiny) {
        let inputs = b.make_inputs(42);
        let schedules = [
            (
                "base",
                CompileOptions::base(b.params()).with_mode(EvalMode::Scalar),
            ),
            (
                "opt",
                CompileOptions::optimized(b.params()).with_mode(EvalMode::Scalar),
            ),
            ("opt+vec", CompileOptions::optimized(b.params())),
        ];
        for (label, on) in schedules {
            let off = on.clone().with_kernel_opt(false);
            let c_on = compile(b.pipeline(), &on).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            let c_off = compile(b.pipeline(), &off).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            for threads in [1usize, 3] {
                let got = run_program(&c_on.program, &inputs, threads)
                    .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
                let want = run_program(&c_off.program, &inputs, threads)
                    .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
                assert_eq!(
                    bits(&want),
                    bits(&got),
                    "{}: kernel_opt changed output bits ({label}, threads {threads})",
                    b.name()
                );
            }
        }
    }
}

#[test]
fn optimizer_report_is_nontrivial_on_every_app() {
    for b in all_benchmarks(Scale::Tiny) {
        let compiled = compile(b.pipeline(), &CompileOptions::optimized(b.params()))
            .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        let r = &compiled.report;
        assert!(
            !r.kernels.is_empty(),
            "{}: optimizer produced no kernel reports",
            b.name()
        );
        let folded: usize = r.kernels.iter().map(|k| k.folded).sum();
        let simplified: usize = r.kernels.iter().map(|k| k.simplified).sum();
        assert!(
            folded + simplified > 0 && r.ops_eliminated() > 0,
            "{}: no ops folded/simplified/eliminated (folded {folded}, \
             simplified {simplified}, eliminated {})",
            b.name(),
            r.ops_eliminated()
        );
        let h = r.load_histogram();
        assert!(
            h.specialized() > 0,
            "{}: no specialized loads (histogram [{h}])",
            b.name()
        );
        // Uniform-op hoisting finds chunk-invariant work on every app.
        assert!(
            r.kernels.iter().any(|k| k.uniform_ops > 0),
            "{}: no chunk-invariant ops found",
            b.name()
        );
    }
}
