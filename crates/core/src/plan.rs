//! Phase 1 of parametric compilation: everything *size-independent*.
//!
//! [`plan`] runs the expensive analyses exactly once per pipeline
//! *structure* — front-end (cycle check, point-wise inlining), grouping
//! (Algorithm 1, steered by [`CompileOptions::estimates`]), alignment and
//! scaling, storage classification, schedule-space construction, kernel
//! lowering and SSA pre-optimization, SIMD level resolution — and captures
//! the result in a [`ParametricPlan`] whose geometry stays *symbolic*:
//! stage domains and image extents remain the `PAff`/`Interval` forms of
//! the specification, evaluated only when [`crate::instantiate`] binds
//! concrete parameter values (the paper keeps emitted loop bounds
//! parametric for the same reason; heuristic decisions use estimates).
//!
//! What is deliberately *not* here (because it genuinely depends on the
//! bound sizes): tile enumeration and backward region propagation, buffer
//! extents and scratch sizing, the storage-folding slot coloring, and the
//! single-point-dimension kernel specialization — all of which
//! [`crate::instantiate`] derives per binding, reusing the plan's
//! pre-optimized kernels whenever they are provably byte-identical.

use crate::grouping::{group_stages_with, Group, GroupKindTag, Grouping};
use crate::lower::{KernelBuilder, LowerEnv};
use crate::{CompileError, CompileOptions};
use polymage_diag::{Diag, Value};
use polymage_graph::{inline_pointwise, PipelineGraph};
use polymage_ir::{Cond, Expr, FuncBody, FuncId, Pipeline, ScalarType, Source, VarId};
use polymage_poly::{extract_accesses, narrow_rect_by_cond, solve_alignment, Access, DimMap, Rect};
use polymage_vm::{fixed_dims, optimize_kernel, sync_mask};
use polymage_vm::{BufId, CaseExec, Kernel, KernelOptReport, RegId, SimdLevel};
use std::collections::{HashMap, HashSet};

/// A size-independent compilation plan: phase 1's output, phase 2's input.
///
/// Produced by [`plan`]; bind concrete parameter values with
/// [`crate::instantiate`] to obtain an executable
/// [`polymage_vm::Program`]. One plan serves arbitrarily many bindings —
/// `Session` caches plans by `content_hash ×`
/// [`CompileOptions::cache_key_structural`] and instances per bound
/// params.
#[derive(Debug, Clone)]
pub struct ParametricPlan {
    /// The inlined pipeline (phase-1 front-end output). Domains and image
    /// extents in here are the plan's *symbolic* geometry.
    pub(crate) pipe: Pipeline,
    pub(crate) inlined: Vec<String>,
    pub(crate) dead: Vec<String>,
    /// Grouping decisions (Algorithm 1 at the estimates).
    pub(crate) grouping: Grouping,
    /// Per-group structural schedules, parallel to `grouping.groups`.
    pub(crate) groups: Vec<GroupPlan>,
    /// Buffer ids of the input images (`BufId(0)..`).
    pub(crate) image_bufs: Vec<BufId>,
    /// Full buffer of every full-stored stage.
    pub(crate) func_full: HashMap<FuncId, BufId>,
    /// Live-out `(name, buffer)` pairs.
    pub(crate) outputs: Vec<(String, BufId)>,
    /// Total number of buffers every instantiation declares.
    pub(crate) nbufs: usize,
    /// The options snapshot the plan was built with (`params` inside it is
    /// only the default binding; `instantiate` receives explicit values).
    pub(crate) opts: CompileOptions,
    /// The estimates the heuristics used.
    pub(crate) estimates: Vec<i64>,
    /// SIMD level, resolved once at plan time.
    pub(crate) simd: SimdLevel,
    /// Cache-model tile decisions, parallel to `grouping.groups`
    /// (`Some` only for Normal groups under [`crate::TileSpec::Auto`]).
    /// Made at the estimates; `instantiate` re-checks them against each
    /// binding's concrete bounds.
    pub(crate) tile_choices: Vec<Option<crate::TileChoice>>,
}

impl ParametricPlan {
    /// The inlined pipeline the plan schedules (its domains and image
    /// extents are the plan's symbolic geometry).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipe
    }

    /// The parameter estimates the size-dependent heuristics used.
    pub fn estimates(&self) -> &[i64] {
        &self.estimates
    }

    /// Number of scheduled groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The cache model's tile decision per group (parallel to the
    /// grouping): `Some` only for Normal groups planned under
    /// [`crate::TileSpec::Auto`].
    pub fn tile_choices(&self) -> &[Option<crate::TileChoice>] {
        &self.tile_choices
    }

    /// Renders the plan's *symbolic* geometry: parameter legend, image
    /// extents and per-stage domains as affine forms over the `ParamId`s
    /// (`p0`, `p1`, …), plus each group's structural schedule (storage
    /// class per stage, overlap vector). `bin/inspect` prints this next to
    /// one instantiated binding.
    pub fn describe_symbolic(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let names = self.pipe.params();
        for (i, n) in names.iter().enumerate() {
            let est = self.estimates.get(i).copied().unwrap_or(0);
            let _ = writeln!(s, "param p{i} = `{n}` (estimate {est})");
        }
        for (i, img) in self.pipe.images().iter().enumerate() {
            let exts: Vec<String> = img.extents.iter().map(|e| e.to_string()).collect();
            let _ = writeln!(s, "image {} [{}] -> buf{}", img.name, exts.join(" x "), i);
        }
        for ((gi, g), gp) in self.grouping.groups.iter().enumerate().zip(&self.groups) {
            let _ = writeln!(s, "group {} [{:?}]", gp.name(), g.kind);
            for f in gp.stage_ids() {
                let fd = self.pipe.func(f);
                let dom: Vec<String> = fd.var_dom.dom.iter().map(|iv| iv.to_string()).collect();
                let class = match &gp {
                    GroupPlan::Tiled(t) => {
                        let sp = t
                            .stages
                            .iter()
                            .find(|sp| sp.f == f)
                            .expect("stage in its own group");
                        if sp.direct {
                            "full(direct)"
                        } else if sp.needs_full {
                            "scratch+full"
                        } else {
                            "scratch"
                        }
                    }
                    GroupPlan::Reduction(_) => "full(reduce)",
                    GroupPlan::SelfRef(_) => "full(scan)",
                };
                let _ = writeln!(s, "  {}: {} {}", fd.name, dom.join(" x "), class);
            }
            if !g.overlap.is_empty() {
                let ov: Vec<String> = g.overlap.iter().map(|(l, r)| format!("{l}+{r}")).collect();
                let _ = writeln!(s, "  overlap: ({})", ov.join(","));
            }
            if let Some(Some(ch)) = self.tile_choices.get(gi) {
                let tiles: Vec<String> = ch
                    .tiles
                    .iter()
                    .map(|t| t.map_or("-".into(), |v| v.to_string()))
                    .collect();
                let _ = writeln!(
                    s,
                    "  tile model: ({}) ws={}B ratio={:.3}{}",
                    tiles.join(","),
                    ch.working_set,
                    ch.ratio,
                    if ch.fallback { " (fallback)" } else { "" }
                );
            }
        }
        s
    }
}

/// Structural schedule of one group (geometry left symbolic).
#[derive(Debug, Clone)]
pub(crate) enum GroupPlan {
    Tiled(TiledPlan),
    Reduction(ReductionPlan),
    SelfRef(SelfRefPlan),
}

impl GroupPlan {
    fn name(&self) -> &str {
        match self {
            GroupPlan::Tiled(t) => &t.name,
            GroupPlan::Reduction(r) => &r.group_name,
            GroupPlan::SelfRef(s) => &s.group_name,
        }
    }

    fn stage_ids(&self) -> Vec<FuncId> {
        match self {
            GroupPlan::Tiled(t) => t.stages.iter().map(|s| s.f).collect(),
            GroupPlan::Reduction(r) => vec![r.f],
            GroupPlan::SelfRef(s) => vec![s.f],
        }
    }
}

/// Structural schedule of a tiled (Normal) group.
#[derive(Debug, Clone)]
pub(crate) struct TiledPlan {
    pub(crate) name: String,
    pub(crate) sink: FuncId,
    /// Member stages, producers first.
    pub(crate) stages: Vec<StagePlanP>,
    /// Per sink dimension: the sink's own normalization scale (tile
    /// boundaries live in the scheduled space).
    pub(crate) sink_scales: Vec<i64>,
    /// Pre-extracted in-group accesses: consumer stage index → list of
    /// `(producer stage index, accesses)`.
    pub(crate) accesses_to: Vec<Vec<(usize, Vec<Access>)>>,
    /// Scratch buffer of each non-direct stage (for re-lowering).
    pub(crate) func_scratch: HashMap<FuncId, BufId>,
}

/// Structural plan for one stage of a tiled group.
#[derive(Debug, Clone)]
pub(crate) struct StagePlanP {
    pub(crate) f: FuncId,
    pub(crate) needs_full: bool,
    pub(crate) direct: bool,
    /// Alignment of each stage dimension to the group's schedule space.
    pub(crate) maps: Vec<DimMap>,
    pub(crate) scratch: BufId,
    pub(crate) full: Option<BufId>,
    pub(crate) sat: Option<(f32, f32)>,
    pub(crate) round: bool,
    pub(crate) cases: Vec<CasePlan>,
}

/// One lowered case: the structural narrowing outcome plus kernel protos.
///
/// `steps` and residual-mask presence depend only on the guard's
/// *structure* (parity strides and exactness never read parameter values —
/// see `polymage_poly::narrow_rect_by_cond`), so they are fixed at plan
/// time; only the rectangle is re-narrowed per binding.
#[derive(Debug, Clone)]
pub(crate) struct CasePlan {
    /// The original guard (`None` = always).
    pub(crate) cond: Option<Cond>,
    /// Stride/phase per dimension (structural).
    pub(crate) steps: Vec<(i64, i64)>,
    /// Residual guard after strided substitution (`Some` iff the guard was
    /// not captured exactly — structural).
    pub(crate) residual: Option<Cond>,
    /// The case expression after strided substitution (re-lowered per
    /// binding when `param_sensitive`).
    pub(crate) expr: Expr,
    /// Whether the lowered kernel embeds concrete parameter values
    /// (`Expr::Param` constants, parametric load offsets). Insensitive
    /// kernels are byte-identical across bindings and reused verbatim.
    pub(crate) param_sensitive: bool,
    /// Raw structural kernel, lowered at the estimates.
    pub(crate) kernel: Kernel,
    /// Store-mask register of the raw kernel (`Some` iff `residual`).
    pub(crate) mask: Option<RegId>,
    /// Pre-optimized kernel (present iff `kernel_opt`).
    pub(crate) opt: Option<OptProto>,
}

/// A kernel pre-optimized at plan time, with the geometry signature it was
/// specialized for. Reused verbatim at bind when the case is
/// parameter-insensitive and the bound rect's single-point-dimension
/// signature matches; otherwise `instantiate` re-runs the optimizer.
#[derive(Debug, Clone)]
pub(crate) struct OptProto {
    pub(crate) kernel: Kernel,
    pub(crate) mask: Option<RegId>,
    /// `fixed_dims` signature the optimization assumed.
    pub(crate) fixed: Vec<Option<i64>>,
    pub(crate) report: KernelOptReport,
}

/// Structural plan for a reduction group.
#[derive(Debug, Clone)]
pub(crate) struct ReductionPlan {
    pub(crate) group_name: String,
    pub(crate) f: FuncId,
    pub(crate) out: BufId,
    pub(crate) param_sensitive: bool,
    pub(crate) kernel: Kernel,
    pub(crate) opt: Option<OptProto>,
}

/// Structural plan for a self-referential (scan) group.
#[derive(Debug, Clone)]
pub(crate) struct SelfRefPlan {
    pub(crate) group_name: String,
    pub(crate) f: FuncId,
    pub(crate) out: BufId,
    pub(crate) chunked: bool,
    pub(crate) sat: Option<(f32, f32)>,
    pub(crate) round: bool,
    pub(crate) cases: Vec<CasePlan>,
}

pub(crate) fn sat_round(ty: ScalarType) -> (Option<(f32, f32)>, bool) {
    let sat = ty.saturation_range().map(|(lo, hi)| (lo as f32, hi as f32));
    (sat, ty.is_integral())
}

/// Builds a size-independent [`ParametricPlan`] (phase 1).
///
/// Runs the front-end, grouping (at [`CompileOptions::estimates`]),
/// alignment/scaling, storage classification, kernel lowering and SSA
/// pre-optimization. The bound `opts.params` are *not* consumed — pass
/// them to [`crate::instantiate`].
///
/// # Errors
///
/// Same structural conditions as [`crate::compile`] (cycles, unsupported
/// self-references, estimate-count mismatch). Bounds violations and empty
/// domains are only detectable per binding and surface from
/// [`crate::instantiate`].
pub fn plan(pipe: &Pipeline, opts: &CompileOptions) -> Result<ParametricPlan, CompileError> {
    plan_with(pipe, opts, &Diag::noop())
}

/// [`plan`] with diagnostics: emits the `phase.frontend` / `phase.grouping`
/// spans of the classic compiler plus a `phase.lower` span for structural
/// scheduling and kernel pre-optimization, all inside a `plan` span.
pub fn plan_with(
    pipe: &Pipeline,
    opts: &CompileOptions,
    diag: &Diag,
) -> Result<ParametricPlan, CompileError> {
    if opts.estimates().len() != pipe.params().len() {
        return Err(CompileError::param_mismatch(pipe, opts.estimates().len()));
    }
    crate::options::env::report(diag);
    let plan_span = diag.begin();

    // Front-end. Cycle detection runs on the user's specification (before
    // inlining, which could fold a cycle of point-wise stages into a
    // self-reference and misreport the error). The static bounds check is
    // *per binding* and lives in `instantiate`.
    let span = diag.begin();
    PipelineGraph::build(pipe)?;
    let (pipe2, inline_report) = if opts.inline_pointwise {
        inline_pointwise(pipe)?
    } else {
        (pipe.clone(), Default::default())
    };
    let graph = PipelineGraph::build(&pipe2)?;
    diag.end(
        span,
        "phase.frontend",
        if diag.enabled() {
            vec![
                ("inlined", Value::UInt(inline_report.inlined.len() as u64)),
                ("dead", Value::UInt(inline_report.dead.len() as u64)),
            ]
        } else {
            Vec::new()
        },
    );

    // Grouping (Algorithm 1) — size-dependent heuristics read the
    // estimates.
    let span = diag.begin();
    let grouping = group_stages_with(&pipe2, &graph, opts, diag);
    diag.end(
        span,
        "phase.grouping",
        if diag.enabled() {
            vec![
                ("groups", Value::UInt(grouping.groups.len() as u64)),
                ("stages", Value::UInt(pipe2.func_ids().count() as u64)),
            ]
        } else {
            Vec::new()
        },
    );

    // Cache-model tile selection (runs strictly after grouping so the
    // grouping structure never depends on the model's per-group shapes).
    let tile_choices = if matches!(opts.tiles, crate::TileSpec::Auto) {
        let span = diag.begin();
        let choices =
            crate::tilemodel::choose_group_tiles(&pipe2, &graph, &grouping.groups, opts, diag);
        diag.end(
            span,
            "phase.tilemodel",
            if diag.enabled() {
                vec![(
                    "modeled",
                    Value::UInt(choices.iter().filter(|c| c.is_some()).count() as u64),
                )]
            } else {
                Vec::new()
            },
        );
        choices
    } else {
        vec![None; grouping.groups.len()]
    };

    // Storage obligations: live-outs and cross-group values need full
    // arrays (structural).
    let mut needs_full: HashSet<FuncId> = pipe2.live_outs().iter().copied().collect();
    for f in pipe2.func_ids() {
        let gf = grouping.group_of(f);
        if graph
            .consumers(f)
            .iter()
            .any(|&c| grouping.group_of(c) != gf)
        {
            needs_full.insert(f);
        }
    }

    // Buffer ids are fully structural: images first, then per group (in
    // execution order) each stage's scratch and full slots in stage order.
    // `instantiate` re-declares them in exactly this order with concrete
    // sizes.
    let image_bufs: Vec<BufId> = (0..pipe2.images().len()).map(BufId).collect();

    let span = diag.begin();
    let estimates = opts.estimates().to_vec();
    let mut ctx = PlanCtx {
        pipe: &pipe2,
        graph: &graph,
        opts,
        est: &estimates,
        image_bufs: &image_bufs,
        func_full: HashMap::new(),
        needs_full,
        next_buf: image_bufs.len(),
    };
    let mut groups = Vec::with_capacity(grouping.groups.len());
    for g in &grouping.groups {
        groups.push(plan_group(&mut ctx, g)?);
    }
    diag.end(
        span,
        "phase.lower",
        if diag.enabled() {
            let kernels: usize = groups
                .iter()
                .map(|g| match g {
                    GroupPlan::Tiled(t) => t.stages.iter().map(|s| s.cases.len()).sum(),
                    GroupPlan::Reduction(_) => 1,
                    GroupPlan::SelfRef(s) => s.cases.len(),
                })
                .sum();
            vec![
                ("groups", Value::UInt(groups.len() as u64)),
                ("kernels", Value::UInt(kernels as u64)),
            ]
        } else {
            Vec::new()
        },
    );

    let outputs: Vec<(String, BufId)> = pipe2
        .live_outs()
        .iter()
        .map(|f| {
            let b = *ctx
                .func_full
                .get(f)
                .expect("live-out stages always receive full storage");
            (pipe2.func(*f).name.clone(), b)
        })
        .collect();

    let nbufs = ctx.next_buf;
    let func_full = std::mem::take(&mut ctx.func_full);
    let simd = polymage_vm::resolve_simd(opts.simd);
    diag.end(
        plan_span,
        "plan",
        if diag.enabled() {
            vec![
                ("pipeline", Value::from(pipe2.name())),
                ("groups", Value::UInt(groups.len() as u64)),
            ]
        } else {
            Vec::new()
        },
    );
    Ok(ParametricPlan {
        pipe: pipe2,
        inlined: inline_report.inlined,
        dead: inline_report.dead,
        grouping,
        groups,
        image_bufs,
        func_full,
        outputs,
        nbufs,
        opts: opts.clone(),
        estimates,
        simd,
        tile_choices,
    })
}

/// Mutable planning context shared across groups.
struct PlanCtx<'a> {
    pipe: &'a Pipeline,
    graph: &'a PipelineGraph,
    opts: &'a CompileOptions,
    est: &'a [i64],
    image_bufs: &'a [BufId],
    func_full: HashMap<FuncId, BufId>,
    needs_full: HashSet<FuncId>,
    next_buf: usize,
}

impl PlanCtx<'_> {
    fn alloc_buf(&mut self) -> BufId {
        let b = BufId(self.next_buf);
        self.next_buf += 1;
        b
    }

    fn dom_at_estimates(&self, f: FuncId) -> Rect {
        Rect::new(
            self.pipe
                .func(f)
                .var_dom
                .dom
                .iter()
                .map(|iv| iv.eval(self.est))
                .collect(),
        )
    }
}

fn plan_group(ctx: &mut PlanCtx<'_>, group: &Group) -> Result<GroupPlan, CompileError> {
    match group.kind {
        GroupKindTag::Reduction => plan_reduction(ctx, group.sink),
        GroupKindTag::SelfRef => plan_selfref(ctx, group.sink),
        GroupKindTag::Normal => plan_tiled(ctx, group),
    }
}

fn plan_tiled(ctx: &mut PlanCtx<'_>, group: &Group) -> Result<GroupPlan, CompileError> {
    // Producers first.
    let stages: Vec<FuncId> = ctx
        .graph
        .topo_order()
        .iter()
        .copied()
        .filter(|f| group.stages.contains(f))
        .collect();
    let sink = group.sink;
    let alignment =
        solve_alignment(ctx.pipe, &stages, sink).expect("grouping only forms alignable groups");

    // Storage classification (structural).
    struct Classified {
        f: FuncId,
        needs_full: bool,
        direct: bool,
        maps: Vec<DimMap>,
    }
    let classified: Vec<Classified> = stages
        .iter()
        .map(|&f| {
            let in_group_consumed = ctx.graph.consumers(f).iter().any(|c| stages.contains(c));
            let needs_full = ctx.needs_full.contains(&f) || !ctx.opts.storage_opt;
            let direct = needs_full && !in_group_consumed;
            Classified {
                f,
                needs_full,
                direct,
                maps: alignment.map(f).to_vec(),
            }
        })
        .collect();

    // Sink normalization scales (structural).
    let sink_ndim = ctx.pipe.func(sink).var_dom.dom.len();
    let sink_scales: Vec<i64> = (0..sink_ndim)
        .map(|g| alignment.scale_on(sink, g).map_or(1, |s| s.num().max(1)))
        .collect();

    // Pre-extracted in-group accesses: consumer stage index → producer →
    // accesses (structural).
    let accesses_to: Vec<Vec<(usize, Vec<Access>)>> = stages
        .iter()
        .map(|&c| {
            let mut per_prod: HashMap<usize, Vec<Access>> = HashMap::new();
            for acc in extract_accesses(ctx.pipe.func(c)) {
                if let Source::Func(p) = acc.src {
                    if let Some(pi) = stages.iter().position(|&s| s == p) {
                        if p != c {
                            per_prod.entry(pi).or_default().push(acc);
                        }
                    }
                }
            }
            per_prod.into_iter().collect()
        })
        .collect();

    // Buffer ids: per stage, scratch then full (matching `instantiate`'s
    // declaration order).
    let mut func_scratch: HashMap<FuncId, BufId> = HashMap::new();
    let mut stage_bufs: Vec<(BufId, Option<BufId>)> = Vec::with_capacity(classified.len());
    for c in &classified {
        let scratch = if c.direct {
            BufId(0) // placeholder, unused by direct stages
        } else {
            let b = ctx.alloc_buf();
            func_scratch.insert(c.f, b);
            b
        };
        let full = if c.needs_full {
            let b = ctx.alloc_buf();
            ctx.func_full.insert(c.f, b);
            Some(b)
        } else {
            None
        };
        stage_bufs.push((scratch, full));
    }

    // Kernel protos.
    let group_name = format!("{}+{}", ctx.pipe.func(sink).name, stages.len() - 1);
    let mut stage_plans: Vec<StagePlanP> = Vec::with_capacity(classified.len());
    for (k, c) in classified.iter().enumerate() {
        let fd = ctx.pipe.func(c.f);
        let (sat, round) = sat_round(fd.ty);
        let dom_est = ctx.dom_at_estimates(c.f);
        let cases = plan_cases(ctx, c.f, &dom_est, &func_scratch, &group_name)?;
        stage_plans.push(StagePlanP {
            f: c.f,
            needs_full: c.needs_full,
            direct: c.direct,
            maps: c.maps.clone(),
            scratch: stage_bufs[k].0,
            full: stage_bufs[k].1,
            sat,
            round,
            cases,
        });
    }

    Ok(GroupPlan::Tiled(TiledPlan {
        name: group_name,
        sink,
        stages: stage_plans,
        sink_scales,
        accesses_to,
        func_scratch,
    }))
}

/// Lowers every case of a stage into a [`CasePlan`] proto at the
/// estimates. Unlike the classic per-size scheduler, cases whose rectangle
/// is empty *at the estimates* are still lowered — they may be non-empty
/// at other bindings; `instantiate` filters per binding.
fn plan_cases(
    ctx: &PlanCtx<'_>,
    f: FuncId,
    dom_est: &Rect,
    func_scratch: &HashMap<FuncId, BufId>,
    group_name: &str,
) -> Result<Vec<CasePlan>, CompileError> {
    let fd = ctx.pipe.func(f);
    let cases = match &fd.body {
        FuncBody::Cases(cs) => cs,
        _ => unreachable!("tiled stages are case-defined"),
    };
    let vars: Vec<VarId> = fd.var_dom.vars.clone();
    let env = LowerEnv {
        pipe: ctx.pipe,
        params: ctx.est,
        image_bufs: ctx.image_bufs,
        func_scratch,
        func_full: &ctx.func_full,
        vars: &vars,
    };
    let mut out = Vec::with_capacity(cases.len());
    for (ci, case) in cases.iter().enumerate() {
        let (rect_est, steps, residual) = match &case.cond {
            None => (dom_est.clone(), vec![(1, 0); dom_est.ndim()], None),
            Some(c) => {
                // `steps` and `exact` are structural (strides and
                // exactness never read parameter values); only the rect
                // varies per binding.
                let nr = narrow_rect_by_cond(c, &vars, dom_est, ctx.est);
                (
                    nr.rect,
                    nr.steps,
                    if nr.exact { None } else { Some(c.clone()) },
                )
            }
        };
        // Strided cases (parity guards): lower the body in strided
        // coordinates by substituting v_d -> stride_d*v_d + phase_d — the
        // paper's domain splitting instead of inner-loop branching.
        let strided = steps.iter().any(|&(s, _)| s != 1);
        let (expr, residual) = if strided {
            let map: HashMap<_, _> = vars
                .iter()
                .enumerate()
                .filter(|(d, _)| steps[*d] != (1, 0))
                .map(|(d, &v)| {
                    let (s, ph) = steps[d];
                    (v, s * polymage_ir::Expr::Var(v) + ph as f64)
                })
                .collect();
            (
                polymage_graph::subst_vars(&case.expr, &map),
                residual.map(|c| polymage_graph::subst_vars_cond(&c, &map)),
            )
        } else {
            (case.expr.clone(), residual)
        };
        let mut b = KernelBuilder::new(&env);
        let val = b.value(&expr);
        let mask: Option<RegId> = residual.as_ref().map(|c| b.cond(c));
        let param_sensitive = b.param_sensitive();
        let mut outs = vec![val];
        if let Some(m) = mask {
            outs.push(m);
        }
        let (kernel, _reads) = b.finish(outs);

        // Pre-optimize at the estimate geometry; `instantiate` reuses the
        // result when the binding's fixed-dimension signature matches.
        let opt = if ctx.opts.kernel_opt {
            let mut tmp = CaseExec {
                rect: rect_est.clone(),
                steps: steps.clone(),
                kernel: kernel.clone(),
                mask,
            };
            let fixed = fixed_dims(&tmp.rect.intersect(dom_est), &tmp.steps);
            let name = format!("{}/{}#{}", group_name, fd.name, ci);
            let report = optimize_kernel(&mut tmp.kernel, dom_est.ndim(), &fixed, name);
            sync_mask(&mut tmp);
            Some(OptProto {
                kernel: tmp.kernel,
                mask: tmp.mask,
                fixed,
                report,
            })
        } else {
            None
        };
        out.push(CasePlan {
            cond: case.cond.clone(),
            steps,
            residual,
            expr,
            param_sensitive,
            kernel,
            mask,
            opt,
        });
    }
    Ok(out)
}

fn plan_reduction(ctx: &mut PlanCtx<'_>, f: FuncId) -> Result<GroupPlan, CompileError> {
    let fd = ctx.pipe.func(f);
    let acc = match &fd.body {
        FuncBody::Reduce(a) => a.clone(),
        _ => unreachable!("reduction group"),
    };
    let out = ctx.alloc_buf();
    ctx.func_full.insert(f, out);

    let empty_scratch = HashMap::new();
    let env = LowerEnv {
        pipe: ctx.pipe,
        params: ctx.est,
        image_bufs: ctx.image_bufs,
        func_scratch: &empty_scratch,
        func_full: &ctx.func_full,
        vars: &acc.red_vars,
    };
    let mut b = KernelBuilder::new(&env);
    let val = b.value(&acc.value);
    let mut outs = vec![val];
    for t in &acc.target {
        outs.push(b.index(t));
    }
    let param_sensitive = b.param_sensitive();
    let (kernel, _reads) = b.finish(outs);
    let group_name = format!("{}(reduce)", fd.name);

    let opt = if ctx.opts.kernel_opt {
        let red_dom_est = Rect::new(acc.red_dom.iter().map(|iv| iv.eval(ctx.est)).collect());
        let fixed = fixed_dims(&red_dom_est, &[]);
        let mut k = kernel.clone();
        let name = format!("{}/{}", group_name, fd.name);
        let report = optimize_kernel(&mut k, red_dom_est.ndim(), &fixed, name);
        Some(OptProto {
            kernel: k,
            mask: None,
            fixed,
            report,
        })
    } else {
        None
    };
    Ok(GroupPlan::Reduction(ReductionPlan {
        group_name,
        f,
        out,
        param_sensitive,
        kernel,
        opt,
    }))
}

fn plan_selfref(ctx: &mut PlanCtx<'_>, f: FuncId) -> Result<GroupPlan, CompileError> {
    let fd = ctx.pipe.func(f);
    let n = fd.var_dom.dom.len();

    // Validate self-access patterns (structural): pure constant offsets,
    // lexicographically negative.
    let mut chunked = true;
    for acc in extract_accesses(fd) {
        if acc.src != Source::Func(f) {
            continue;
        }
        let mut offsets: Vec<i64> = Vec::with_capacity(n);
        for (d, dim) in acc.dims.iter().enumerate() {
            let a = match dim {
                polymage_poly::AccessDim::Affine(a) => a,
                polymage_poly::AccessDim::Dynamic => {
                    return Err(CompileError::InvalidSelfReference {
                        func: fd.name.clone(),
                        reason: "data-dependent self access".into(),
                    })
                }
            };
            let ok = a.den == 1
                && a.single_var()
                    .map(|(v, q)| q == 1 && v == fd.var_dom.vars[d])
                    == Some(true)
                && a.cst.as_const().is_some();
            if !ok {
                return Err(CompileError::InvalidSelfReference {
                    func: fd.name.clone(),
                    reason: format!("unsupported self index in dimension {d}"),
                });
            }
            offsets.push(a.cst.as_const().unwrap());
        }
        match offsets.iter().position(|&o| o != 0) {
            None => {
                return Err(CompileError::InvalidSelfReference {
                    func: fd.name.clone(),
                    reason: "stage reads its own current point".into(),
                })
            }
            Some(first) => {
                if offsets[first] > 0 {
                    return Err(CompileError::InvalidSelfReference {
                        func: fd.name.clone(),
                        reason: "self dependence points forward in scan order".into(),
                    });
                }
                if first == n - 1 {
                    chunked = false; // same-row backward dependence
                }
            }
        }
    }

    let out = ctx.alloc_buf();
    ctx.func_full.insert(f, out);

    let (sat, round) = sat_round(fd.ty);
    let dom_est = ctx.dom_at_estimates(f);
    let group_name = format!("{}(scan)", fd.name);
    let empty_scratch = HashMap::new();
    let cases = plan_cases_inner(ctx, f, &dom_est, &empty_scratch, &group_name)?;
    Ok(GroupPlan::SelfRef(SelfRefPlan {
        group_name,
        f,
        out,
        chunked,
        sat,
        round,
        cases,
    }))
}

/// `plan_cases` callable after `ctx.func_full` was already extended for
/// the current group (scan stages read their own output buffer).
fn plan_cases_inner(
    ctx: &PlanCtx<'_>,
    f: FuncId,
    dom_est: &Rect,
    func_scratch: &HashMap<FuncId, BufId>,
    group_name: &str,
) -> Result<Vec<CasePlan>, CompileError> {
    plan_cases(ctx, f, dom_est, func_scratch, group_name)
}
