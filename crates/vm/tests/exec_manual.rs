//! End-to-end executor tests on hand-assembled programs (no compiler).
//!
//! These pin down the executor's semantics independently of the
//! `polymage-core` lowering: overlapped-tile scratch handling, slab
//! partitioning of full buffers, direct stores, reductions, and the
//! sequential scan path.

use polymage_ir::Reduction;
use polymage_poly::Rect;
use polymage_vm::*;

/// in(x) for x∈[0,63]; blur(x) = in(x−1)+in(x)+in(x+1) on [1,62];
/// out(x) = blur(x−1)+blur(x+1) on [2,61]. Fused into one tiled group with
/// 4 strips of 16, blur in scratch, out direct to full.
fn two_stage_program(mode: EvalMode) -> Program {
    let img = BufId(0);
    let blur_s = BufId(1);
    let out_f = BufId(2);
    let buffers = vec![
        BufDecl {
            name: "in".into(),
            kind: BufKind::Full,
            sizes: vec![64],
            origin: vec![0],
        },
        BufDecl {
            name: "blur".into(),
            kind: BufKind::Scratch,
            // worst-case region: 16 + 2 of overlap
            sizes: vec![18],
            origin: vec![0],
        },
        BufDecl {
            name: "out".into(),
            kind: BufKind::Full,
            sizes: vec![60],
            origin: vec![2],
        },
    ];

    let load = |buf: BufId, o: i64| Op::Load {
        dst: RegId(0),
        buf,
        plan: vec![IdxPlan::Affine {
            dim: Some(0),
            q: 1,
            o,
            m: 1,
        }],
    };
    let blur_kernel = Kernel {
        ops: vec![
            load(img, -1),
            Op::Load {
                dst: RegId(1),
                buf: img,
                plan: vec![IdxPlan::Affine {
                    dim: Some(0),
                    q: 1,
                    o: 0,
                    m: 1,
                }],
            },
            Op::Load {
                dst: RegId(2),
                buf: img,
                plan: vec![IdxPlan::Affine {
                    dim: Some(0),
                    q: 1,
                    o: 1,
                    m: 1,
                }],
            },
            Op::BinF {
                op: BinF::Add,
                dst: RegId(3),
                a: RegId(0),
                b: RegId(1),
            },
            Op::BinF {
                op: BinF::Add,
                dst: RegId(4),
                a: RegId(3),
                b: RegId(2),
            },
        ],
        nregs: 5,
        meta: None,
        outs: vec![RegId(4)],
    };
    let out_kernel = Kernel {
        ops: vec![
            load(blur_s, -1),
            Op::Load {
                dst: RegId(1),
                buf: blur_s,
                plan: vec![IdxPlan::Affine {
                    dim: Some(0),
                    q: 1,
                    o: 1,
                    m: 1,
                }],
            },
            Op::BinF {
                op: BinF::Add,
                dst: RegId(2),
                a: RegId(0),
                b: RegId(1),
            },
        ],
        nregs: 3,
        meta: None,
        outs: vec![RegId(2)],
    };

    let blur_stage = StageExec {
        name: "blur".into(),
        scratch: blur_s,
        full: None,
        direct: false,
        sat: None,
        round: false,
        cases: vec![CaseExec {
            steps: vec![(1, 0)],
            rect: Rect::new(vec![(1, 62)]),
            kernel: blur_kernel,
            mask: None,
        }],
        dom: Rect::new(vec![(1, 62)]),
        reads: vec![img],
    };
    let out_stage = StageExec {
        name: "out".into(),
        scratch: BufId(1), // unused (direct)
        full: Some(out_f),
        direct: true,
        sat: None,
        round: false,
        cases: vec![CaseExec {
            steps: vec![(1, 0)],
            rect: Rect::new(vec![(2, 61)]),
            kernel: out_kernel,
            mask: None,
        }],
        dom: Rect::new(vec![(2, 61)]),
        reads: vec![blur_s],
    };

    // 4 tiles of 16 over out's domain [2,61]: [2,17],[18,33],[34,49],[50,61]
    let mut tiles = Vec::new();
    for (s, (lo, hi)) in [(2i64, 17i64), (18, 33), (34, 49), (50, 61)]
        .into_iter()
        .enumerate()
    {
        // out region = tile; blur region = tile dilated by 1 ∩ blur dom
        let blur_lo = (lo - 1).max(1);
        let blur_hi = (hi + 1).min(62);
        tiles.push(TileWork {
            strip: s,
            regions: vec![
                Rect::new(vec![(blur_lo, blur_hi)]),
                Rect::new(vec![(lo, hi)]),
            ],
            stores: vec![None, Some(Rect::new(vec![(lo, hi)]))],
        });
    }

    let tg = TiledGroup::new(vec![blur_stage, out_stage], tiles, 4, &buffers);
    Program {
        name: "two-stage".into(),
        buffers,
        image_bufs: vec![img],
        groups: vec![GroupExec {
            name: "g0".into(),
            kind: GroupKind::Tiled(tg),
        }],
        outputs: vec![("out".into(), out_f)],
        mode,
        simd: polymage_vm::process_simd_level(),
        storage: StoragePlan::run_scoped(3),
    }
}

fn reference_two_stage(input: &[f32]) -> Vec<f32> {
    let blur: Vec<f32> = (0..64)
        .map(|x| {
            if (1..=62).contains(&x) {
                input[x - 1] + input[x] + input[x + 1]
            } else {
                0.0
            }
        })
        .collect();
    (2..=61).map(|x: usize| blur[x - 1] + blur[x + 1]).collect()
}

#[test]
fn tiled_two_stage_matches_reference_all_modes_and_threads() {
    let input =
        Buffer::zeros(Rect::new(vec![(0, 63)])).fill_with(|p| ((p[0] * 7919 + 13) % 101) as f32);
    let expect = reference_two_stage(&input.data);
    for mode in [EvalMode::Vector, EvalMode::Scalar] {
        for threads in [1, 2, 4, 7] {
            let prog = two_stage_program(mode);
            let outs = run_program(&prog, std::slice::from_ref(&input), threads).unwrap();
            assert_eq!(outs.len(), 1);
            assert_eq!(outs[0].rect, Rect::new(vec![(2, 61)]));
            for (i, (&got, &want)) in outs[0].data.iter().zip(&expect).enumerate() {
                assert!(
                    (got - want).abs() < 1e-4,
                    "mode {mode:?} threads {threads} x={} got {got} want {want}",
                    i + 2
                );
            }
        }
    }
}

#[test]
fn input_validation_errors() {
    let prog = two_stage_program(EvalMode::Vector);
    let err = run_program(&prog, &[], 1).unwrap_err();
    assert!(matches!(
        err,
        VmError::InputCountMismatch {
            expected: 1,
            got: 0
        }
    ));
    let bad = Buffer::zeros(Rect::new(vec![(0, 10)]));
    let err = run_program(&prog, &[bad], 1).unwrap_err();
    assert!(matches!(err, VmError::InputShapeMismatch { index: 0, .. }));
}

#[test]
fn histogram_reduction_parallel_matches_serial() {
    // hist(b) over b∈[0,9]: count input values.
    let img = BufId(0);
    let hist = BufId(1);
    let prog = |_threads_hint: usize| Program {
        name: "hist".into(),
        buffers: vec![
            BufDecl {
                name: "in".into(),
                kind: BufKind::Full,
                sizes: vec![32, 32],
                origin: vec![0, 0],
            },
            BufDecl {
                name: "hist".into(),
                kind: BufKind::Full,
                sizes: vec![10],
                origin: vec![0],
            },
        ],
        image_bufs: vec![img],
        groups: vec![GroupExec {
            name: "hist".into(),
            kind: GroupKind::Reduction(ReductionExec {
                name: "hist".into(),
                out: hist,
                red_dom: Rect::new(vec![(0, 31), (0, 31)]),
                kernel: Kernel {
                    ops: vec![
                        Op::ConstF {
                            dst: RegId(0),
                            val: 1.0,
                        },
                        Op::Load {
                            dst: RegId(1),
                            buf: img,
                            plan: vec![
                                IdxPlan::Affine {
                                    dim: Some(0),
                                    q: 1,
                                    o: 0,
                                    m: 1,
                                },
                                IdxPlan::Affine {
                                    dim: Some(1),
                                    q: 1,
                                    o: 0,
                                    m: 1,
                                },
                            ],
                        },
                    ],
                    nregs: 2,
                    meta: None,
                    outs: vec![RegId(0), RegId(1)],
                },
                op: Reduction::Sum,
                reads: vec![img],
            }),
        }],
        outputs: vec![("hist".into(), hist)],
        mode: EvalMode::Vector,
        simd: polymage_vm::process_simd_level(),
        storage: StoragePlan::run_scoped(2),
    };
    let input = Buffer::zeros(Rect::new(vec![(0, 31), (0, 31)]))
        .fill_with(|p| ((p[0] * 31 + p[1] * 17) % 10) as f32);
    let serial = run_program(&prog(1), std::slice::from_ref(&input), 1).unwrap();
    let par = run_program(&prog(4), std::slice::from_ref(&input), 4).unwrap();
    assert_eq!(serial[0].data, par[0].data);
    let total: f32 = serial[0].data.iter().sum();
    assert_eq!(total, 1024.0);
}

#[test]
fn sequential_scan_prefix_sum() {
    // f(x) = f(x−1) + in(x) for x ≥ 1; f(0) = in(0): a prefix sum.
    let img = BufId(0);
    let out = BufId(1);
    let kernel_rec = Kernel {
        ops: vec![
            Op::Load {
                dst: RegId(0),
                buf: out,
                plan: vec![IdxPlan::Affine {
                    dim: Some(0),
                    q: 1,
                    o: -1,
                    m: 1,
                }],
            },
            Op::Load {
                dst: RegId(1),
                buf: img,
                plan: vec![IdxPlan::Affine {
                    dim: Some(0),
                    q: 1,
                    o: 0,
                    m: 1,
                }],
            },
            Op::BinF {
                op: BinF::Add,
                dst: RegId(2),
                a: RegId(0),
                b: RegId(1),
            },
        ],
        nregs: 3,
        meta: None,
        outs: vec![RegId(2)],
    };
    let kernel_base = Kernel {
        ops: vec![Op::Load {
            dst: RegId(0),
            buf: img,
            plan: vec![IdxPlan::Affine {
                dim: Some(0),
                q: 1,
                o: 0,
                m: 1,
            }],
        }],
        nregs: 1,
        meta: None,
        outs: vec![RegId(0)],
    };
    let prog = Program {
        name: "scan".into(),
        buffers: vec![
            BufDecl {
                name: "in".into(),
                kind: BufKind::Full,
                sizes: vec![100],
                origin: vec![0],
            },
            BufDecl {
                name: "f".into(),
                kind: BufKind::Full,
                sizes: vec![100],
                origin: vec![0],
            },
        ],
        image_bufs: vec![img],
        groups: vec![GroupExec {
            name: "scan".into(),
            kind: GroupKind::Sequential(SeqExec {
                name: "f".into(),
                out,
                dom: Rect::new(vec![(0, 99)]),
                cases: vec![
                    CaseExec {
                        steps: vec![(1, 0)],
                        rect: Rect::new(vec![(0, 0)]),
                        kernel: kernel_base,
                        mask: None,
                    },
                    CaseExec {
                        steps: vec![(1, 0)],
                        rect: Rect::new(vec![(1, 99)]),
                        kernel: kernel_rec,
                        mask: None,
                    },
                ],
                sat: None,
                round: false,
                chunked: false, // same-row self-dependence
                reads: vec![img, out],
            }),
        }],
        outputs: vec![("f".into(), out)],
        mode: EvalMode::Vector,
        simd: polymage_vm::process_simd_level(),
        storage: StoragePlan::run_scoped(2),
    };
    let input = Buffer::zeros(Rect::new(vec![(0, 99)])).fill_with(|p| (p[0] % 7) as f32);
    let outs = run_program(&prog, std::slice::from_ref(&input), 1).unwrap();
    let mut acc = 0.0;
    for (x, &v) in outs[0].data.iter().enumerate() {
        acc += input.data[x];
        assert_eq!(v, acc, "prefix sum mismatch at {x}");
    }
}

#[test]
fn saturating_stores() {
    // out(x) = in(x) * 3 stored as UChar-saturated.
    let img = BufId(0);
    let out = BufId(1);
    let buffers = vec![
        BufDecl {
            name: "in".into(),
            kind: BufKind::Full,
            sizes: vec![16],
            origin: vec![0],
        },
        BufDecl {
            name: "out".into(),
            kind: BufKind::Full,
            sizes: vec![16],
            origin: vec![0],
        },
    ];
    let tg = TiledGroup::new(
        vec![StageExec {
            name: "out".into(),
            scratch: BufId(1),
            full: Some(out),
            direct: true,
            sat: Some((0.0, 255.0)),
            round: true,
            cases: vec![CaseExec {
                steps: vec![(1, 0)],
                rect: Rect::new(vec![(0, 15)]),
                kernel: Kernel {
                    ops: vec![
                        Op::Load {
                            dst: RegId(0),
                            buf: img,
                            plan: vec![IdxPlan::Affine {
                                dim: Some(0),
                                q: 1,
                                o: 0,
                                m: 1,
                            }],
                        },
                        Op::ConstF {
                            dst: RegId(1),
                            val: 3.0,
                        },
                        Op::BinF {
                            op: BinF::Mul,
                            dst: RegId(2),
                            a: RegId(0),
                            b: RegId(1),
                        },
                    ],
                    nregs: 3,
                    meta: None,
                    outs: vec![RegId(2)],
                },
                mask: None,
            }],
            dom: Rect::new(vec![(0, 15)]),
            reads: vec![img],
        }],
        vec![TileWork {
            strip: 0,
            regions: vec![Rect::new(vec![(0, 15)])],
            stores: vec![Some(Rect::new(vec![(0, 15)]))],
        }],
        1,
        &buffers,
    );
    let prog = Program {
        name: "sat".into(),
        buffers,
        image_bufs: vec![img],
        groups: vec![GroupExec {
            name: "g".into(),
            kind: GroupKind::Tiled(tg),
        }],
        outputs: vec![("out".into(), out)],
        mode: EvalMode::Vector,
        simd: polymage_vm::process_simd_level(),
        storage: StoragePlan::run_scoped(2),
    };
    let input = Buffer::zeros(Rect::new(vec![(0, 15)])).fill_with(|p| (p[0] * 20) as f32);
    let outs = run_program(&prog, std::slice::from_ref(&input), 1).unwrap();
    assert_eq!(outs[0].data[0], 0.0);
    assert_eq!(outs[0].data[4], 240.0);
    assert_eq!(outs[0].data[5], 255.0); // 300 saturates
    assert_eq!(outs[0].data[15], 255.0);
}

#[test]
fn min_max_reductions_and_untouched_cells() {
    // min/max over scattered targets; untouched cells read as 0.
    for (op, expect_touched) in [(Reduction::Min, -9.0f32), (Reduction::Max, 9.0f32)] {
        let img = BufId(0);
        let out = BufId(1);
        let prog = Program {
            name: "mm".into(),
            buffers: vec![
                BufDecl {
                    name: "in".into(),
                    kind: BufKind::Full,
                    sizes: vec![20],
                    origin: vec![0],
                },
                BufDecl {
                    name: "mm".into(),
                    kind: BufKind::Full,
                    sizes: vec![4],
                    origin: vec![0],
                },
            ],
            image_bufs: vec![img],
            groups: vec![GroupExec {
                name: "mm".into(),
                kind: GroupKind::Reduction(ReductionExec {
                    name: "mm".into(),
                    out,
                    red_dom: Rect::new(vec![(0, 19)]),
                    kernel: Kernel {
                        ops: vec![
                            Op::Load {
                                dst: RegId(0),
                                buf: img,
                                plan: vec![IdxPlan::Affine {
                                    dim: Some(0),
                                    q: 1,
                                    o: 0,
                                    m: 1,
                                }],
                            },
                            // target = x mod 2 (never touches cells 2, 3)
                            Op::CoordF {
                                dst: RegId(1),
                                dim: 0,
                            },
                            Op::ConstF {
                                dst: RegId(2),
                                val: 2.0,
                            },
                            Op::BinF {
                                op: BinF::Mod,
                                dst: RegId(3),
                                a: RegId(1),
                                b: RegId(2),
                            },
                        ],
                        nregs: 4,
                        meta: None,
                        outs: vec![RegId(0), RegId(3)],
                    },
                    op,
                    reads: vec![img],
                }),
            }],
            outputs: vec![("mm".into(), out)],
            mode: EvalMode::Vector,
            simd: polymage_vm::process_simd_level(),
            storage: StoragePlan::run_scoped(2),
        };
        // values −9..10 alternating over even/odd positions
        let input = Buffer::zeros(Rect::new(vec![(0, 19)]))
            .fill_with(|p| (p[0] - 10) as f32 + if p[0] % 2 == 0 { 0.5 } else { 0.0 });
        for threads in [1, 3] {
            let got = run_program(&prog, std::slice::from_ref(&input), threads).unwrap();
            // cell 0: evens; cell 1: odds; cells 2/3 untouched → 0
            let evens: Vec<f32> = (0..20)
                .filter(|i| i % 2 == 0)
                .map(|i| input.data[i])
                .collect();
            let odds: Vec<f32> = (0..20)
                .filter(|i| i % 2 == 1)
                .map(|i| input.data[i])
                .collect();
            let fold = |v: &[f32]| match op {
                Reduction::Min => v.iter().fold(f32::MAX, |a, &b| a.min(b)),
                Reduction::Max => v.iter().fold(f32::MIN, |a, &b| a.max(b)),
                Reduction::Sum => v.iter().sum(),
            };
            assert_eq!(
                got[0].data[0],
                fold(&evens),
                "{op:?} cell 0 threads {threads}"
            );
            assert_eq!(
                got[0].data[1],
                fold(&odds),
                "{op:?} cell 1 threads {threads}"
            );
            assert_eq!(got[0].data[2], 0.0, "untouched cell stays 0");
            assert_eq!(got[0].data[3], 0.0);
            let _ = expect_touched;
        }
    }
}

#[test]
fn engine_reuse_matches_static_executor_bit_exact() {
    // One Engine, many runs, varied thread counts and inputs: every result
    // must be bit-identical to the legacy static executor.
    let engine = Engine::with_threads(4);
    for mode in [EvalMode::Vector, EvalMode::Scalar] {
        let prog = std::sync::Arc::new(two_stage_program(mode));
        for round in 0..3 {
            let input = Buffer::zeros(Rect::new(vec![(0, 63)]))
                .fill_with(|p| ((p[0] * 7919 + 13 * (round + 1)) % 101) as f32);
            for threads in [1, 2, 4, 7] {
                let legacy =
                    run_program_static(&prog, std::slice::from_ref(&input), threads).unwrap();
                let pooled = engine
                    .submit(RunRequest::new(&prog, std::slice::from_ref(&input)).threads(threads))
                    .unwrap()
                    .join()
                    .unwrap();
                assert_eq!(legacy.len(), pooled.len());
                for (l, p) in legacy.iter().zip(&pooled) {
                    assert_eq!(l.rect, p.rect);
                    let lb: Vec<u32> = l.data.iter().map(|v| v.to_bits()).collect();
                    let pb: Vec<u32> = p.data.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(lb, pb, "mode {mode:?} threads {threads} round {round}");
                }
            }
        }
    }
}

#[test]
fn engine_stats_report_group_times() {
    let prog = std::sync::Arc::new(two_stage_program(EvalMode::Vector));
    let input = Buffer::zeros(Rect::new(vec![(0, 63)])).fill_with(|p| p[0] as f32);
    let engine = Engine::with_threads(2);
    let (outs, stats) = engine
        .submit(RunRequest::new(&prog, std::slice::from_ref(&input)))
        .unwrap()
        .join_stats()
        .unwrap();
    assert_eq!(outs.len(), 1);
    assert_eq!(stats.tiles, 4);
    assert!(stats.points_computed > 0);
    assert_eq!(stats.group_times.len(), 1);
    assert_eq!(stats.group_times[0].0, "g0");
}
