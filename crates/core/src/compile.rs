//! The compiler driver: front-end → grouping → scheduling → program.

use crate::grouping::{effective_tiles, group_stages_with, GroupKindTag};
use crate::report::{CompileReport, GroupReport};
use crate::schedule::{schedule_group, Ctx};
use crate::{CompileError, CompileOptions};
use polymage_diag::{Counter, Diag, Value};
use polymage_graph::{check_bounds, inline_pointwise, PipelineGraph};
use polymage_ir::{FuncId, Pipeline};
use polymage_vm::{BufDecl, BufId, BufKind, Program, StoragePlan};
use std::collections::{HashMap, HashSet};

/// A compiled pipeline: the executable program and the structural report.
///
/// The program is behind an [`Arc`](std::sync::Arc) so cached `Compiled` values (see
/// `Session`) can be shared with a running [`polymage_vm::Engine`] without
/// copying; `&compiled.program` still coerces to `&Program` everywhere.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Executable program for a [`polymage_vm::Engine`] (or the
    /// [`polymage_vm::run_program`] shim).
    pub program: std::sync::Arc<Program>,
    /// Structural report (grouping, storage, overlaps).
    pub report: CompileReport,
}

/// Compiles a pipeline specification with the given options.
///
/// This runs the paper's full flow (Fig. 4): graph construction, static
/// bounds checking, point-wise inlining, grouping (Algorithm 1), overlapped
/// tile construction, storage optimization, and lowering to the execution
/// engine.
///
/// # Errors
///
/// Returns a [`CompileError`] for invalid specifications (cycles,
/// out-of-bounds accesses, unsupported self-references) or mismatched
/// parameter counts.
pub fn compile(pipe: &Pipeline, opts: &CompileOptions) -> Result<Compiled, CompileError> {
    compile_with(pipe, opts, &Diag::noop())
}

/// [`compile`] with diagnostics: each compiler phase (`frontend`,
/// `grouping`, `schedule`, `kernel-opt`) becomes a span, every candidate
/// merge becomes a `grouping.merge` event (see
/// [`crate::grouping::group_stages_with`]), and each scheduled group emits a
/// `group.scheduled` event with its tile shape and storage footprint.
pub fn compile_with(
    pipe: &Pipeline,
    opts: &CompileOptions,
    diag: &Diag,
) -> Result<Compiled, CompileError> {
    if opts.params.len() != pipe.params().len() {
        return Err(CompileError::MissingParams {
            expected: pipe.params().len(),
            got: opts.params.len(),
        });
    }
    let compile_span = diag.begin();

    // Front-end. Cycle detection runs on the user's specification (before
    // inlining, which could fold a cycle of point-wise stages into a
    // self-reference and misreport the error).
    let span = diag.begin();
    PipelineGraph::build(pipe)?;
    let (pipe2, inline_report) = if opts.inline_pointwise {
        inline_pointwise(pipe)?
    } else {
        (pipe.clone(), Default::default())
    };
    let graph = PipelineGraph::build(&pipe2)?;
    if !opts.skip_bounds_check {
        let violations = check_bounds(&pipe2, &opts.params);
        if !violations.is_empty() {
            return Err(CompileError::Bounds(violations));
        }
    }
    diag.end(
        span,
        "phase.frontend",
        if diag.enabled() {
            vec![
                ("inlined", Value::UInt(inline_report.inlined.len() as u64)),
                ("dead", Value::UInt(inline_report.dead.len() as u64)),
            ]
        } else {
            Vec::new()
        },
    );

    // Grouping.
    let span = diag.begin();
    let grouping = group_stages_with(&pipe2, &graph, opts, diag);
    diag.end(
        span,
        "phase.grouping",
        if diag.enabled() {
            vec![
                ("groups", Value::UInt(grouping.groups.len() as u64)),
                ("stages", Value::UInt(pipe2.func_ids().count() as u64)),
            ]
        } else {
            Vec::new()
        },
    );

    // Storage obligations: live-outs and cross-group values need full
    // arrays.
    let mut needs_full: HashSet<FuncId> = pipe2.live_outs().iter().copied().collect();
    for f in pipe2.func_ids() {
        let gf = grouping.group_of(f);
        if graph
            .consumers(f)
            .iter()
            .any(|&c| grouping.group_of(c) != gf)
        {
            needs_full.insert(f);
        }
    }

    // Image buffers.
    let mut buffers: Vec<BufDecl> = Vec::new();
    let mut image_bufs: Vec<BufId> = Vec::new();
    for img in pipe2.images() {
        let sizes: Vec<i64> = img
            .extents
            .iter()
            .map(|e| e.eval(&opts.params).max(0))
            .collect();
        if sizes.contains(&0) {
            return Err(CompileError::EmptyDomain {
                name: img.name.clone(),
            });
        }
        buffers.push(BufDecl {
            name: img.name.clone(),
            kind: BufKind::Full,
            sizes: sizes.clone(),
            origin: vec![0; sizes.len()],
        });
        image_bufs.push(BufId(buffers.len() - 1));
    }

    let mut ctx = Ctx {
        pipe: &pipe2,
        graph: &graph,
        opts,
        buffers,
        image_bufs,
        func_full: HashMap::new(),
        needs_full,
    };

    // Schedule groups in execution order; collect per-group byte accounting
    // for the report.
    let sched_span = diag.begin();
    let mut groups = Vec::with_capacity(grouping.groups.len());
    let mut group_reports = Vec::with_capacity(grouping.groups.len());
    for g in &grouping.groups {
        let bufs_before = ctx.buffers.len();
        let ge = schedule_group(&mut ctx, g)?;
        let (mut scratch_bytes, mut full_bytes) = (0usize, 0usize);
        for b in &ctx.buffers[bufs_before..] {
            match b.kind {
                BufKind::Scratch => scratch_bytes += b.len() * 4,
                BufKind::Full => full_bytes += b.len() * 4,
            }
        }
        groups.push(ge);
        let gr = make_group_report(&pipe2, opts, g, scratch_bytes, full_bytes);
        if diag.enabled() {
            let tiles: Vec<String> = gr
                .tile_sizes
                .iter()
                .map(|t| t.map_or("-".to_string(), |v| v.to_string()))
                .collect();
            diag.event(
                "group.scheduled",
                vec![
                    ("sink", Value::from(gr.sink.as_str())),
                    ("sink_uid", Value::UInt(pipe2.stage_uid(g.sink))),
                    ("stages", Value::UInt(gr.stages.len() as u64)),
                    ("kind", Value::from(format!("{:?}", gr.kind))),
                    ("tiles", Value::from(tiles.join("x"))),
                    ("overlap_ratio", Value::Float(gr.overlap_ratio)),
                    ("scratch_bytes", Value::UInt(gr.scratch_bytes as u64)),
                    ("full_bytes", Value::UInt(gr.full_bytes as u64)),
                ],
            );
        }
        group_reports.push(gr);
    }
    diag.end(
        sched_span,
        "phase.schedule",
        if diag.enabled() {
            vec![("groups", Value::UInt(group_reports.len() as u64))]
        } else {
            Vec::new()
        },
    );

    // Live-out outputs.
    let outputs: Vec<(String, BufId)> = pipe2
        .live_outs()
        .iter()
        .map(|f| {
            let b = *ctx
                .func_full
                .get(f)
                .expect("live-out stages always receive full storage");
            (pipe2.func(*f).name.clone(), b)
        })
        .collect();

    let nbufs = ctx.buffers.len();
    let mut program = Program {
        name: pipe2.name().to_string(),
        buffers: ctx.buffers,
        image_bufs: ctx.image_bufs,
        groups,
        outputs,
        mode: opts.mode,
        simd: polymage_vm::resolve_simd(opts.simd),
        storage: StoragePlan::run_scoped(nbufs),
    };

    // Storage optimization (§3.6): fold scratchpads of non-interfering
    // stages onto shared arena slots and narrow full-buffer lifetimes to
    // their last consumer group.
    let span = diag.begin();
    let storage = crate::storage::optimize_storage(&mut program, opts.storage_fold);
    for (gr, gs) in group_reports.iter_mut().zip(&storage.groups) {
        gr.scratch_folded_bytes = gs.folded_bytes;
        gr.scratch_slots = gs.slots;
    }
    diag.count(Counter::StorageFoldedBytes, storage.folded_bytes as u64);
    diag.end(
        span,
        "phase.storage",
        if diag.enabled() {
            vec![
                ("enabled", Value::UInt(opts.storage_fold as u64)),
                ("folded_bytes", Value::UInt(storage.folded_bytes as u64)),
                (
                    "peak_full_bytes",
                    Value::UInt(storage.peak_full_bytes as u64),
                ),
            ]
        } else {
            Vec::new()
        },
    );

    // Kernel optimization: rewrite each kernel in place (bit-exact) and
    // attach uniformity metadata so the evaluator takes the fast paths.
    let span = diag.begin();
    let kernels = if opts.kernel_opt {
        polymage_vm::optimize_program(&mut program)
    } else {
        Vec::new()
    };
    diag.end(
        span,
        "phase.kernel-opt",
        if diag.enabled() {
            let ops: usize = kernels.iter().map(|k| k.eliminated_ops()).sum();
            vec![
                ("kernels", Value::UInt(kernels.len() as u64)),
                ("ops_eliminated", Value::UInt(ops as u64)),
            ]
        } else {
            Vec::new()
        },
    );

    let report = CompileReport {
        inlined: inline_report.inlined,
        dead: inline_report.dead,
        groups: group_reports,
        kernels,
        simd: program.simd,
        peak_full_bytes: storage.peak_full_bytes,
    };
    diag.end(
        compile_span,
        "compile",
        if diag.enabled() {
            vec![
                ("pipeline", Value::from(pipe2.name())),
                ("groups", Value::UInt(report.groups.len() as u64)),
                (
                    "predicted_overlap",
                    Value::Float(report.predicted_overlap()),
                ),
            ]
        } else {
            Vec::new()
        },
    );
    Ok(Compiled {
        program: std::sync::Arc::new(program),
        report,
    })
}

fn make_group_report(
    pipe: &Pipeline,
    opts: &CompileOptions,
    g: &crate::grouping::Group,
    scratch_bytes: usize,
    full_bytes: usize,
) -> GroupReport {
    let sink_extents: Vec<i64> = pipe
        .func(g.sink)
        .var_dom
        .dom
        .iter()
        .map(|iv| {
            let (lo, hi) = iv.eval(&opts.params);
            (hi - lo + 1).max(0)
        })
        .collect();
    // The grouping pass already solved alignment and cached the overlap
    // vector and ratio on the group — no need to re-run the solver here.
    let tile_sizes = if g.kind == GroupKindTag::Normal {
        effective_tiles(&sink_extents, opts)
    } else {
        Vec::new()
    };
    GroupReport {
        sink: pipe.func(g.sink).name.clone(),
        stages: g
            .stages
            .iter()
            .map(|&f| pipe.func(f).name.clone())
            .collect(),
        kind: g.kind,
        tile_sizes,
        overlap: g.overlap.clone(),
        overlap_ratio: g.overlap_ratio,
        scratch_bytes,
        full_bytes,
        // Filled in by the storage pass once slots are assigned.
        scratch_folded_bytes: 0,
        scratch_slots: 0,
    }
}
