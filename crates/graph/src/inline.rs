//! Point-wise stage inlining (paper §3, front-end).
//!
//! "Inlining functions trades-off redundant computation for improved
//! locality. For point-wise functions … inlining is an obvious choice since
//! it introduces minimal or no redundant computation." We inline a stage
//! when it:
//!
//! - is defined by a single case whose accesses are all point-wise
//!   (identity index or constant index — e.g. `Ixx(x,y) = Ix(x,y)·Ix(x,y)`
//!   or `gray(x,y) = I(0,x,y)·…`),
//! - is not a live-out, not a reduction, not self-referential,
//! - is consumed point-wise by every consumer (a stage read through a
//!   stencil, sampling, or data-dependent index stays materialized — §3's
//!   restriction; lookup tables stay separate, matching the paper's
//!   camera-pipeline grouping), and
//! - stays under a body-size budget so chained inlining cannot blow up
//!   code size.
//!
//! A guarded single case inlines as `Select(guard, body, 0)`, which matches
//! the engine's undefined-value semantics. Stages that become unreachable
//! from the live-outs afterwards are dropped (dead-code elimination).

use crate::rewrite::{rewrite_calls, rewrite_calls_cond, subst_vars};
use polymage_ir::{
    visit_exprs, Case, Expr, FuncBody, FuncId, IrError, Pipeline, PipelineBuilder, ScalarType,
    Source,
};
use polymage_poly::{extract_accesses, AccessDim};
use std::collections::{HashMap, HashSet};

/// What [`inline_pointwise`] did.
#[derive(Debug, Clone, Default)]
pub struct InlineReport {
    /// Names of stages that were inlined away.
    pub inlined: Vec<String>,
    /// Names of stages dropped as dead code (unreachable from live-outs).
    pub dead: Vec<String>,
    /// Mapping from surviving old ids to ids in the new pipeline.
    pub func_map: HashMap<FuncId, FuncId>,
}

/// Maximum number of expression nodes an inlined stage may reach before we
/// stop inlining into it further.
const BODY_SIZE_BUDGET: usize = 512;

fn expr_size(e: &Expr) -> usize {
    let mut n = 0;
    visit_exprs(e, &mut |_| n += 1);
    n
}

/// Whether the stage's own accesses are all point-wise: every index is a
/// constant or the bare variable of the corresponding position.
fn is_pointwise(pipe: &Pipeline, f: FuncId) -> bool {
    let fd = pipe.func(f);
    let case = match &fd.body {
        FuncBody::Cases(cs) if cs.len() == 1 => &cs[0],
        _ => return false,
    };
    let _ = case;
    for acc in extract_accesses(fd) {
        for dim in &acc.dims {
            match dim {
                AccessDim::Dynamic => return false,
                AccessDim::Affine(a) => {
                    if a.den != 1 {
                        return false;
                    }
                    match a.single_var() {
                        None => {
                            // constant index: fine (channel selection)
                            if !a.is_const() {
                                return false;
                            }
                        }
                        Some((v, q)) => {
                            if q != 1
                                || a.cst.as_const() != Some(0)
                                || !fd.var_dom.vars.contains(&v)
                            {
                                return false;
                            }
                        }
                    }
                }
            }
        }
    }
    true
}

/// Whether every consumer reads `f` point-wise (identity or constant
/// indices). The paper restricts inlining to point-wise *consumers*:
/// substituting a producer into a stencil or sampling consumer replicates
/// its computation once per tap ("the redundant computation introduced by
/// inlining can be quite significant", §3).
fn consumed_pointwise(pipe: &Pipeline, f: FuncId) -> bool {
    for c in pipe.func_ids() {
        for acc in extract_accesses(pipe.func(c)) {
            if acc.src != Source::Func(f) {
                continue;
            }
            for dim in &acc.dims {
                match dim {
                    AccessDim::Dynamic => return false,
                    AccessDim::Affine(a) => {
                        let identity = a.den == 1
                            && (a.is_const()
                                || (a.single_var().map(|(_, q)| q == 1) == Some(true)
                                    && a.cst.as_const() == Some(0)));
                        if !identity {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

/// Runs the inlining pass, returning the rewritten pipeline and a report.
///
/// # Errors
///
/// Propagates [`IrError`] from pipeline reconstruction (cannot happen for a
/// pipeline that already validated, but surfaced for robustness).
pub fn inline_pointwise(pipe: &Pipeline) -> Result<(Pipeline, InlineReport), IrError> {
    let live: HashSet<FuncId> = pipe.live_outs().iter().copied().collect();

    // Decide the inline set.
    let mut inline: HashSet<FuncId> = HashSet::new();
    for f in pipe.func_ids() {
        if live.contains(&f) {
            continue;
        }
        let fd = pipe.func(f);
        if fd.is_reduction() {
            continue;
        }
        if crate::bounds::has_self_reference(pipe, f) {
            continue;
        }
        if !is_pointwise(pipe, f) {
            continue;
        }
        if !consumed_pointwise(pipe, f) {
            continue;
        }
        inline.insert(f);
    }

    // Build replacement bodies in topological-ish order (declaration order
    // is topological for well-formed specs built through the DSL; for
    // robustness, iterate until fixpoint).
    let mut replacement: HashMap<FuncId, Expr> = HashMap::new();
    let mut changed = true;
    while changed {
        changed = false;
        for &f in &inline {
            let fd = pipe.func(f);
            let case = match &fd.body {
                FuncBody::Cases(cs) => &cs[0],
                _ => unreachable!("inline set holds single-case stages"),
            };
            // Materialized stages round/saturate on store per their declared
            // type; preserve that by casting the inlined body.
            let typed = if fd.ty.is_integral() {
                Expr::Cast(fd.ty, Box::new(case.expr.clone()))
            } else {
                case.expr.clone()
            };
            let base = match &case.cond {
                Some(g) => Expr::select(g.clone(), typed, 0.0),
                None => typed,
            };
            let new = inline_expr(&base, fd, &replacement, pipe);
            if replacement.get(&f) != Some(&new) {
                replacement.insert(f, new);
                changed = true;
            }
        }
    }

    // Drop over-budget replacements (keep those stages materialized).
    replacement.retain(|_, e| expr_size(e) <= BODY_SIZE_BUDGET);
    let inlined_ids: HashSet<FuncId> = replacement.keys().copied().collect();

    // Rewrite all surviving stages' bodies.
    let mut rewritten: HashMap<FuncId, FuncBody> = HashMap::new();
    for f in pipe.func_ids() {
        if inlined_ids.contains(&f) {
            continue;
        }
        let fd = pipe.func(f);
        let body = match &fd.body {
            FuncBody::Undefined => FuncBody::Undefined,
            FuncBody::Cases(cs) => FuncBody::Cases(
                cs.iter()
                    .map(|c| Case {
                        cond: c.cond.as_ref().map(|g| {
                            rewrite_calls_cond(g, &mut |src, args| {
                                substitute_call(pipe, &replacement, src, args)
                            })
                        }),
                        expr: rewrite_calls(&c.expr, &mut |src, args| {
                            substitute_call(pipe, &replacement, src, args)
                        }),
                    })
                    .collect(),
            ),
            FuncBody::Reduce(acc) => {
                let mut acc = acc.clone();
                acc.value = rewrite_calls(&acc.value, &mut |src, args| {
                    substitute_call(pipe, &replacement, src, args)
                });
                acc.target = acc
                    .target
                    .iter()
                    .map(|t| {
                        rewrite_calls(t, &mut |src, args| {
                            substitute_call(pipe, &replacement, src, args)
                        })
                    })
                    .collect();
                FuncBody::Reduce(acc)
            }
        };
        rewritten.insert(f, body);
    }

    // Dead-code elimination: keep stages reachable from live-outs.
    let mut reachable: HashSet<FuncId> = HashSet::new();
    let mut stack: Vec<FuncId> = pipe.live_outs().to_vec();
    while let Some(f) = stack.pop() {
        if !reachable.insert(f) {
            continue;
        }
        if let Some(body) = rewritten.get(&f) {
            let fake = polymage_ir::FuncDef {
                name: String::new(),
                var_dom: pipe.func(f).var_dom.clone(),
                ty: ScalarType::Float,
                body: body.clone(),
            };
            for acc in extract_accesses(&fake) {
                if let Source::Func(p) = acc.src {
                    if !inlined_ids.contains(&p) {
                        stack.push(p);
                    }
                }
            }
        }
    }

    // Rebuild the pipeline with survivors only, remapping ids.
    let mut b = PipelineBuilder::new(pipe.name());
    for name in pipe.params() {
        b.param(name.clone());
    }
    for img in pipe.images() {
        b.image(img.name.clone(), img.ty, img.extents.clone());
    }
    for name in pipe.vars() {
        b.var(name.clone());
    }
    let survivors: Vec<FuncId> = pipe
        .func_ids()
        .filter(|f| !inlined_ids.contains(f) && reachable.contains(f))
        .collect();
    // Precompute the id remapping: survivor ids are assigned sequentially,
    // and bodies may reference *any* survivor (including the stage itself,
    // for time-iterated definitions).
    let func_map: HashMap<FuncId, FuncId> = survivors
        .iter()
        .enumerate()
        .map(|(i, &f)| (f, FuncId::from_index(i)))
        .collect();
    for &f in &survivors {
        let fd = pipe.func(f);
        let vd: Vec<_> = fd
            .var_dom
            .vars
            .iter()
            .copied()
            .zip(fd.var_dom.dom.iter().cloned())
            .collect();
        let nf = match rewritten.remove(&f).expect("survivor body") {
            FuncBody::Cases(cs) => {
                let nf = b.func(fd.name.clone(), &vd, fd.ty);
                b.define(nf, remap_cases(cs, &func_map))?;
                nf
            }
            FuncBody::Reduce(acc) => {
                let acc = polymage_ir::Accumulate {
                    red_vars: acc.red_vars.clone(),
                    red_dom: acc.red_dom.clone(),
                    target: acc
                        .target
                        .iter()
                        .map(|t| remap_expr(t, &func_map))
                        .collect(),
                    value: remap_expr(&acc.value, &func_map),
                    op: acc.op,
                };
                b.accumulator(fd.name.clone(), &vd, fd.ty, acc)?
            }
            FuncBody::Undefined => unreachable!("validated pipeline"),
        };
        debug_assert_eq!(func_map[&f], nf, "survivor ids assigned in order");
    }
    let live_outs: Vec<FuncId> = pipe.live_outs().iter().map(|f| func_map[f]).collect();
    let new_pipe = b.finish(&live_outs)?;

    let mut inlined: Vec<String> = inlined_ids
        .iter()
        .map(|f| pipe.func(*f).name.clone())
        .collect();
    inlined.sort();
    let mut dead: Vec<String> = pipe
        .func_ids()
        .filter(|f| !inlined_ids.contains(f) && !reachable.contains(f))
        .map(|f| pipe.func(f).name.clone())
        .collect();
    dead.sort();
    let report = InlineReport {
        inlined,
        dead,
        func_map,
    };
    Ok((new_pipe, report))
}

/// Substitutes a call to an inlined stage with its body, with the stage's
/// variables bound to the call's (already rewritten) arguments.
fn substitute_call(
    pipe: &Pipeline,
    replacement: &HashMap<FuncId, Expr>,
    src: Source,
    args: Vec<Expr>,
) -> Expr {
    if let Source::Func(f) = src {
        if let Some(body) = replacement.get(&f) {
            let fd = pipe.func(f);
            let map: HashMap<_, _> = fd.var_dom.vars.iter().copied().zip(args).collect();
            return subst_vars(body, &map);
        }
    }
    Expr::Call(src, args)
}

/// Expands calls to already-replaced stages inside an inline candidate's
/// own body (handles chains of point-wise stages).
fn inline_expr(
    e: &Expr,
    _fd: &polymage_ir::FuncDef,
    replacement: &HashMap<FuncId, Expr>,
    pipe: &Pipeline,
) -> Expr {
    rewrite_calls(e, &mut |src, args| {
        substitute_call(pipe, replacement, src, args)
    })
}

fn remap_expr(e: &Expr, map: &HashMap<FuncId, FuncId>) -> Expr {
    rewrite_calls(e, &mut |src, args| {
        let src = match src {
            Source::Func(f) => Source::Func(*map.get(&f).unwrap_or(&f)),
            other => other,
        };
        Expr::Call(src, args)
    })
}

fn remap_cases(cs: Vec<Case>, map: &HashMap<FuncId, FuncId>) -> Vec<Case> {
    cs.into_iter()
        .map(|c| Case {
            cond: c.cond.map(|g| {
                rewrite_calls_cond(&g, &mut |src, args| {
                    let src = match src {
                        Source::Func(f) => Source::Func(*map.get(&f).unwrap_or(&f)),
                        other => other,
                    };
                    Expr::Call(src, args)
                })
            }),
            expr: remap_expr(&c.expr, map),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymage_ir::{Interval, PAff};

    /// a (stencil-ish) -> sq (pointwise, a²) -> out (stencil over sq).
    #[test]
    fn inlines_pointwise_between_stencils() {
        let mut p = PipelineBuilder::new("t");
        let img = p.image("I", ScalarType::Float, vec![PAff::cst(64)]);
        let x = p.var("x");
        let d = Interval::cst(1, 62);
        let a = p.func("a", &[(x, d.clone())], ScalarType::Float);
        p.define(a, vec![Case::always(Expr::at(img, [Expr::from(x)]))])
            .unwrap();
        let sq = p.func("sq", &[(x, d.clone())], ScalarType::Float);
        let ax = Expr::at(a, [Expr::from(x)]);
        p.define(sq, vec![Case::always(ax.clone() * ax)]).unwrap();
        let out = p.func("out", &[(x, Interval::cst(2, 61))], ScalarType::Float);
        p.define(
            out,
            vec![Case::always(Expr::at(sq, [x - 1]) + Expr::at(sq, [x + 1]))],
        )
        .unwrap();
        let pipe = p.finish(&[out]).unwrap();
        let (np, rep) = inline_pointwise(&pipe).unwrap();
        // `a` is consumed point-wise by `sq`, so it inlines; `sq` is read
        // through a stencil, so it stays materialized (§3's restriction).
        assert_eq!(rep.inlined, vec!["a".to_string()]);
        assert_eq!(np.funcs().len(), 2);
        // sq's body now reads the image directly.
        let sq_new = rep.func_map[&sq];
        let accs = extract_accesses(np.func(sq_new));
        assert!(accs.iter().all(|a| a.src.as_image().is_some()));
    }

    #[test]
    fn does_not_inline_stencils_liveouts_or_reductions() {
        let mut p = PipelineBuilder::new("t");
        let img = p.image("I", ScalarType::UChar, vec![PAff::cst(64)]);
        let (x, bin) = (p.var("x"), p.var("b"));
        let d = Interval::cst(1, 62);
        // stencil stage: not point-wise
        let st = p.func("st", &[(x, d.clone())], ScalarType::Float);
        p.define(
            st,
            vec![Case::always(
                Expr::at(img, [x - 1]) + Expr::at(img, [x + 1]),
            )],
        )
        .unwrap();
        // live-out point-wise stage: not inlined
        let out = p.func("out", &[(x, d.clone())], ScalarType::Float);
        p.define(out, vec![Case::always(Expr::at(st, [Expr::from(x)]) * 2.0)])
            .unwrap();
        // reduction
        let acc = polymage_ir::Accumulate {
            red_vars: vec![x],
            red_dom: vec![d.clone()],
            target: vec![Expr::at(img, [Expr::from(x)])],
            value: Expr::Const(1.0),
            op: polymage_ir::Reduction::Sum,
        };
        let h = p
            .accumulator(
                "hist",
                &[(bin, Interval::cst(0, 255))],
                ScalarType::Int,
                acc,
            )
            .unwrap();
        let pipe = p.finish(&[out, h]).unwrap();
        let (np, rep) = inline_pointwise(&pipe).unwrap();
        assert!(rep.inlined.is_empty());
        assert_eq!(np.funcs().len(), 3);
    }

    #[test]
    fn guarded_pointwise_inlines_as_select() {
        let mut p = PipelineBuilder::new("t");
        let img = p.image("I", ScalarType::Float, vec![PAff::cst(64)]);
        let x = p.var("x");
        let d = Interval::cst(0, 63);
        let g = p.func("g", &[(x, d.clone())], ScalarType::Float);
        p.define(
            g,
            vec![Case::new(
                Expr::from(x).ge(8),
                Expr::at(img, [Expr::from(x)]) * 2.0,
            )],
        )
        .unwrap();
        let out = p.func("out", &[(x, d)], ScalarType::Float);
        p.define(out, vec![Case::always(Expr::at(g, [Expr::from(x)]) + 1.0)])
            .unwrap();
        let pipe = p.finish(&[out]).unwrap();
        let (np, rep) = inline_pointwise(&pipe).unwrap();
        assert_eq!(rep.inlined, vec!["g".to_string()]);
        let out_new = rep.func_map[&out];
        let body = match &np.func(out_new).body {
            FuncBody::Cases(cs) => &cs[0].expr,
            _ => panic!(),
        };
        let mut selects = 0;
        visit_exprs(body, &mut |e| {
            if matches!(e, Expr::Select(..)) {
                selects += 1;
            }
        });
        assert_eq!(selects, 1);
    }

    #[test]
    fn body_size_budget_limits_chained_inlining() {
        // A long chain of point-wise stages whose fully-inlined body would
        // exceed the budget: the pass must keep some stages materialized
        // rather than building a gigantic expression.
        let mut p = PipelineBuilder::new("t");
        let img = p.image("I", ScalarType::Float, vec![PAff::cst(64)]);
        let x = p.var("x");
        let d = Interval::cst(0, 63);
        let mut prev: Source = img.into();
        let mut last = None;
        for i in 0..12 {
            let f = p.func(format!("s{i}"), &[(x, d.clone())], ScalarType::Float);
            // each stage doubles the body size: e = prev(x)*prev(x) + i
            let a = Expr::Call(prev, vec![Expr::from(x)]);
            p.define(f, vec![Case::always(a.clone() * a + i as f64)])
                .unwrap();
            prev = f.into();
            last = Some(f);
        }
        let pipe = p.finish(&[last.unwrap()]).unwrap();
        let (np, rep) = inline_pointwise(&pipe).unwrap();
        // some stages must survive (2^12 > budget), and the result still
        // references the image
        assert!(np.funcs().len() >= 2, "budget must stop runaway inlining");
        assert!(rep.inlined.len() < 11);
    }

    #[test]
    fn lut_consumed_dynamically_not_inlined() {
        let mut p = PipelineBuilder::new("t");
        let img = p.image("I", ScalarType::Float, vec![PAff::cst(64)]);
        let x = p.var("x");
        let lut = p.func("lut", &[(x, Interval::cst(0, 255))], ScalarType::Float);
        p.define(lut, vec![Case::always(Expr::from(x) * 0.5)])
            .unwrap();
        let out = p.func("out", &[(x, Interval::cst(0, 63))], ScalarType::Float);
        p.define(
            out,
            vec![Case::always(Expr::at(
                lut,
                [Expr::at(img, [Expr::from(x)])],
            ))],
        )
        .unwrap();
        let pipe = p.finish(&[out]).unwrap();
        let (np, rep) = inline_pointwise(&pipe).unwrap();
        assert!(rep.inlined.is_empty());
        assert_eq!(np.funcs().len(), 2);
    }

    #[test]
    fn chained_pointwise_inline_and_dce() {
        let mut p = PipelineBuilder::new("t");
        let img = p.image("I", ScalarType::Float, vec![PAff::cst(64)]);
        let x = p.var("x");
        let d = Interval::cst(0, 63);
        let a = p.func("a", &[(x, d.clone())], ScalarType::Float);
        p.define(a, vec![Case::always(Expr::at(img, [Expr::from(x)]) + 1.0)])
            .unwrap();
        let b = p.func("b", &[(x, d.clone())], ScalarType::Float);
        p.define(b, vec![Case::always(Expr::at(a, [Expr::from(x)]) * 2.0)])
            .unwrap();
        // unused stencil stage (not inlinable, so exercised by DCE)
        let dead = p.func("unused", &[(x, Interval::cst(1, 62))], ScalarType::Float);
        p.define(
            dead,
            vec![Case::always(
                Expr::at(img, [x - 1]) + Expr::at(img, [x + 1]),
            )],
        )
        .unwrap();
        let out = p.func("out", &[(x, d)], ScalarType::Float);
        p.define(out, vec![Case::always(Expr::at(b, [Expr::from(x)]) - 3.0)])
            .unwrap();
        let pipe = p.finish(&[out]).unwrap();
        let (np, rep) = inline_pointwise(&pipe).unwrap();
        assert_eq!(np.funcs().len(), 1);
        assert_eq!(rep.inlined.len(), 2);
        assert_eq!(rep.dead, vec!["unused".to_string()]);
        // the final expression computes ((I(x)+1)*2)-3
        let out_new = rep.func_map[&out];
        let accs = extract_accesses(np.func(out_new));
        assert_eq!(accs.len(), 1);
        assert!(accs[0].src.as_image().is_some());
    }
}
