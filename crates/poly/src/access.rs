//! Extraction and classification of value accesses from stage definitions.

use crate::VAff;
use polymage_ir::{visit_func_exprs, Expr, FuncDef, Source};

/// One dimension of an access: either an affine index expression or a
/// data-dependent (dynamic) index.
///
/// Dynamic dimensions arise from histogram targets (`hist(I(x,y))`), lookup
/// tables (`curve(val)`), and grid slicing (`grid(x/s, y/s, z(x,y))`). The
/// grouping heuristic treats a dynamic dimension as "the whole extent of the
/// producer along that dimension is needed".
#[derive(Debug, Clone, PartialEq)]
pub enum AccessDim {
    /// Index is affine in the consumer's domain variables and parameters.
    Affine(VAff),
    /// Index depends on data (or is otherwise non-affine).
    Dynamic,
}

impl AccessDim {
    /// The affine form, if this dimension is affine.
    pub fn as_affine(&self) -> Option<&VAff> {
        match self {
            AccessDim::Affine(a) => Some(a),
            AccessDim::Dynamic => None,
        }
    }
}

/// A value access `src(e₀, e₁, …)` found in a stage definition, with each
/// index expression classified.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    /// The producer being read.
    pub src: Source,
    /// One entry per producer dimension.
    pub dims: Vec<AccessDim>,
}

impl Access {
    /// Whether every dimension is affine.
    pub fn is_fully_affine(&self) -> bool {
        self.dims.iter().all(|d| matches!(d, AccessDim::Affine(_)))
    }
}

/// Extracts every access of `fd`, classifying each index dimension.
///
/// Accesses are deduplicated structurally: `Ix(x,y) * Ix(x,y)` yields one
/// access. Accesses nested inside index expressions of other accesses (e.g.
/// the `I(x,y)` inside `hist(I(x,y))`) are reported as separate accesses.
pub fn extract_accesses(fd: &FuncDef) -> Vec<Access> {
    let mut out: Vec<Access> = Vec::new();
    visit_func_exprs(fd, &mut |e| {
        if let Expr::Call(src, args) = e {
            let dims: Vec<AccessDim> = args
                .iter()
                .map(|a| match VAff::from_expr(a) {
                    Some(v) => AccessDim::Affine(v),
                    None => AccessDim::Dynamic,
                })
                .collect();
            let acc = Access { src: *src, dims };
            if !out.contains(&acc) {
                out.push(acc);
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymage_ir::{Case, Interval, PipelineBuilder, ScalarType};

    #[test]
    fn extracts_and_dedups() {
        let mut p = PipelineBuilder::new("t");
        let x = p.var("x");
        let img = p.image("I", ScalarType::Float, vec![polymage_ir::PAff::cst(100)]);
        let f = p.func("f", &[(x, Interval::cst(0, 99))], ScalarType::Float);
        let a = Expr::at(img, [x + 0]);
        p.define(f, vec![Case::always(a.clone() * a)]).unwrap();
        let pipe = p.finish(&[f]).unwrap();
        let accs = extract_accesses(pipe.func(f));
        assert_eq!(accs.len(), 1);
        assert!(accs[0].is_fully_affine());
    }

    #[test]
    fn classifies_dynamic_dims() {
        let mut p = PipelineBuilder::new("t");
        let x = p.var("x");
        let img = p.image("I", ScalarType::Float, vec![polymage_ir::PAff::cst(100)]);
        let lut = p.func("lut", &[(x, Interval::cst(0, 255))], ScalarType::Float);
        p.define(lut, vec![Case::always(Expr::from(x) * 2.0)])
            .unwrap();
        let f = p.func("f", &[(x, Interval::cst(0, 99))], ScalarType::Float);
        // data-dependent access: lut(I(x))
        let e = Expr::at(lut, [Expr::at(img, [Expr::from(x)])]);
        p.define(f, vec![Case::always(e)]).unwrap();
        let pipe = p.finish(&[f]).unwrap();
        let accs = extract_accesses(pipe.func(f));
        assert_eq!(accs.len(), 2);
        let lut_acc = accs.iter().find(|a| a.src.as_func().is_some()).unwrap();
        assert!(matches!(lut_acc.dims[0], AccessDim::Dynamic));
        assert!(!lut_acc.is_fully_affine());
        let img_acc = accs.iter().find(|a| a.src.as_image().is_some()).unwrap();
        assert!(img_acc.is_fully_affine());
    }

    #[test]
    fn extracts_from_guards_and_reductions() {
        let mut p = PipelineBuilder::new("t");
        let x = p.var("x");
        let b = p.var("b");
        let img = p.image("I", ScalarType::UChar, vec![polymage_ir::PAff::cst(100)]);
        let acc = polymage_ir::Accumulate {
            red_vars: vec![x],
            red_dom: vec![Interval::cst(0, 99)],
            target: vec![Expr::at(img, [Expr::from(x)])],
            value: Expr::Const(1.0),
            op: polymage_ir::Reduction::Sum,
        };
        let h = p
            .accumulator("hist", &[(b, Interval::cst(0, 255))], ScalarType::Int, acc)
            .unwrap();
        let pipe = p.finish(&[h]).unwrap();
        let accs = extract_accesses(pipe.func(h));
        assert_eq!(accs.len(), 1);
        assert!(accs[0].is_fully_affine());
    }
}
