//! Camera Pipeline — RAW-to-RGB processing (§4, the FCam-derived benchmark).
//!
//! Processes a synthetic 10-bit GRBG Bayer mosaic: hot-pixel suppression,
//! deinterleaving into four quarter-resolution color planes, bilinear
//! demosaicking (nine interpolation stages), full-resolution interleave,
//! 3×3 color-matrix correction, and a tone curve applied through a lookup
//! table. "Our best schedule fuses all stages except small lookup table
//! computations into a single group" — the LUT is consumed through a
//! data-dependent index, so the compiler keeps `curve` in its own group
//! automatically, matching the paper.
//!
//! The original uses Halide's gradient-aware demosaic (more helper stages —
//! the paper counts 32); ours is the classic bilinear one, which exercises
//! the same access patterns (downsampled deinterleave, cross-plane
//! stencils, parity-interleaved writes, dynamic LUT reads).

use crate::{Benchmark, Scale};
use polymage_ir::*;
use polymage_vm::Buffer;

/// Color correction matrix (row-major; applied to [r, g, b]).
pub const CCM: [[f64; 3]; 3] = [[1.4, -0.3, -0.1], [-0.2, 1.3, -0.1], [-0.1, -0.4, 1.5]];
/// Tone-curve gamma.
pub const GAMMA: f64 = 1.0 / 1.8;

/// The Camera Pipeline benchmark.
pub struct CameraPipe {
    pipeline: Pipeline,
    rows: i64,
    cols: i64,
}

/// Output margin in quarter-resolution pixels (keeps every read interior).
const QM: i64 = 2;

/// Builds the DSL specification. `R`, `C` are the RAW extents (even).
pub fn build() -> Pipeline {
    let mut p = PipelineBuilder::new("camera_pipe");
    let (r, c) = (p.param("R"), p.param("C"));
    let raw = p.image(
        "raw",
        ScalarType::Float,
        vec![PAff::param(r), PAff::param(c)],
    );
    let (x, y, ch, v) = (p.var("x"), p.var("y"), p.var("c"), p.var("v"));

    // --- hot-pixel suppression (denoise) over the interior ---
    let den_x = Interval::new(PAff::cst(2), PAff::param(r) - 3);
    let den_y = Interval::new(PAff::cst(2), PAff::param(c) - 3);
    let denoised = p.func("denoised", &[(x, den_x), (y, den_y)], ScalarType::Float);
    let at_raw = |dx: i64, dy: i64| Expr::at(raw, [x + dx, y + dy]);
    let neigh_max = at_raw(-2, 0)
        .max(at_raw(2, 0))
        .max(at_raw(0, -2).max(at_raw(0, 2)));
    let neigh_min = at_raw(-2, 0)
        .min(at_raw(2, 0))
        .min(at_raw(0, -2).min(at_raw(0, 2)));
    p.define(
        denoised,
        vec![Case::always(at_raw(0, 0).clamp(neigh_min, neigh_max))],
    )
    .unwrap();

    // --- deinterleave into quarter-resolution planes (GRBG) ---
    // plane domains: x ∈ [1, R/2 − 2], y ∈ [1, C/2 − 2]
    let qx = Interval::new(PAff::cst(1), PAff::param(r) / 2 - 2);
    let qy = Interval::new(PAff::cst(1), PAff::param(c) / 2 - 2);
    let qdom = [(x, qx.clone()), (y, qy.clone())];
    let mk_plane = |p: &mut PipelineBuilder, name: &str, dx: i64, dy: i64| {
        let f = p.func(name, &qdom, ScalarType::Float);
        p.define(
            f,
            vec![Case::always(Expr::at(
                denoised,
                [2i64 * Expr::from(x) + dx, 2i64 * Expr::from(y) + dy],
            ))],
        )
        .unwrap();
        f
    };
    let gr = mk_plane(&mut p, "gr", 0, 0); // G at (even, even)
    let rr = mk_plane(&mut p, "r", 0, 1); // R at (even, odd)
    let bb = mk_plane(&mut p, "b", 1, 0); // B at (odd, even)
    let gb = mk_plane(&mut p, "gb", 1, 1); // G at (odd, odd)

    // --- bilinear demosaic interpolants (quarter-res, inset by QM) ---
    let ix = Interval::new(PAff::cst(QM), PAff::param(r) / 2 - 1 - QM);
    let iy = Interval::new(PAff::cst(QM), PAff::param(c) / 2 - 1 - QM);
    let idom = [(x, ix.clone()), (y, iy.clone())];
    let at2 = |f: FuncId, dx: i64, dy: i64| Expr::at(f, [x + dx, y + dy]);
    let mk = |p: &mut PipelineBuilder, name: &str, e: Expr| {
        let f = p.func(name, &idom, ScalarType::Float);
        p.define(f, vec![Case::always(e)]).unwrap();
        f
    };
    // green at R site (2x, 2y+1): left/right gr, up gb(x−1,y), down gb(x,y)
    let g_r = mk(
        &mut p,
        "g_r",
        (at2(gr, 0, 0) + at2(gr, 0, 1) + at2(gb, -1, 0) + at2(gb, 0, 0)) * 0.25,
    );
    // green at B site (2x+1, 2y): left gb(x,y−1)/right gb, up gr(x,y), down gr(x+1,y)
    let g_b = mk(
        &mut p,
        "g_b",
        (at2(gb, 0, -1) + at2(gb, 0, 0) + at2(gr, 0, 0) + at2(gr, 1, 0)) * 0.25,
    );
    // red at GR site (2x,2y): horizontal R neighbors
    let r_gr = mk(&mut p, "r_gr", (at2(rr, 0, -1) + at2(rr, 0, 0)) * 0.5);
    // red at GB site (2x+1,2y+1): vertical
    let r_gb = mk(&mut p, "r_gb", (at2(rr, 0, 0) + at2(rr, 1, 0)) * 0.5);
    // red at B site (2x+1, 2y): diagonals
    let r_b = mk(
        &mut p,
        "r_b",
        (at2(rr, 0, -1) + at2(rr, 0, 0) + at2(rr, 1, -1) + at2(rr, 1, 0)) * 0.25,
    );
    // blue at GR site (2x,2y): vertical B neighbors
    let b_gr = mk(&mut p, "b_gr", (at2(bb, -1, 0) + at2(bb, 0, 0)) * 0.5);
    // blue at GB site (2x+1,2y+1): horizontal
    let b_gb = mk(&mut p, "b_gb", (at2(bb, 0, 0) + at2(bb, 0, 1)) * 0.5);
    // blue at R site (2x, 2y+1): diagonals
    let b_r = mk(
        &mut p,
        "b_r",
        (at2(bb, -1, 0) + at2(bb, -1, 1) + at2(bb, 0, 0) + at2(bb, 0, 1)) * 0.25,
    );

    // --- full-resolution demosaic interleave ---
    // output domain: x ∈ [2·QM, R − 2·QM − 1] etc.
    let fx = Interval::new(PAff::cst(2 * QM), PAff::param(r) - 2 * QM - 1);
    let fy = Interval::new(PAff::cst(2 * QM), PAff::param(c) - 2 * QM - 1);
    let chans = Interval::cst(0, 2);
    let demosaic = p.func(
        "demosaic",
        &[(x, fx.clone()), (y, fy.clone()), (ch, chans.clone())],
        ScalarType::Float,
    );
    // parities of the full-res coordinate — written with `%` so the
    // compiler captures them as stride constraints (strided domain
    // splitting) instead of per-pixel masks
    let even = |e: Expr| e.rem(2.0).eq_(0.0);
    let odd = |e: Expr| e.rem(2.0).eq_(1.0);
    let h = |f: FuncId| Expr::at(f, [Expr::from(x) / 2, Expr::from(y) / 2]);
    // per (site parity, channel): which plane/interpolant supplies the value
    let site = |pxe: bool, pye: bool, rgb: [FuncId; 3]| -> Vec<Case> {
        let px = if pxe {
            even(Expr::from(x))
        } else {
            odd(Expr::from(x))
        };
        let py = if pye {
            even(Expr::from(y))
        } else {
            odd(Expr::from(y))
        };
        (0..3)
            .map(|cc| {
                Case::new(
                    px.clone() & py.clone() & Expr::from(ch).eq_(cc as f64),
                    h(rgb[cc]),
                )
            })
            .collect()
    };
    let mut cases = Vec::new();
    cases.extend(site(true, true, [r_gr, gr, b_gr])); // G site (even,even)
    cases.extend(site(true, false, [rr, g_r, b_r])); // R site (even,odd)
    cases.extend(site(false, true, [r_b, g_b, bb])); // B site (odd,even)
    cases.extend(site(false, false, [r_gb, gb, b_gb])); // G site (odd,odd)
    p.define(demosaic, cases).unwrap();

    // --- color matrix correction ---
    let corrected = p.func(
        "corrected",
        &[(x, fx.clone()), (y, fy.clone()), (ch, chans.clone())],
        ScalarType::Float,
    );
    let dm = |cc: i64| Expr::at(demosaic, [Expr::from(x), Expr::from(y), Expr::i(cc)]);
    let ccm_row = |row: usize| dm(0) * CCM[row][0] + dm(1) * CCM[row][1] + dm(2) * CCM[row][2];
    p.define(
        corrected,
        vec![
            Case::new(Expr::from(ch).eq_(0.0), ccm_row(0)),
            Case::new(Expr::from(ch).eq_(1.0), ccm_row(1)),
            Case::new(Expr::from(ch).eq_(2.0), ccm_row(2)),
        ],
    )
    .unwrap();

    // --- tone curve LUT over [0, 1023] ---
    let curve = p.func("curve", &[(v, Interval::cst(0, 1023))], ScalarType::Float);
    p.define(
        curve,
        vec![Case::always(
            (Expr::from(v) * (1.0 / 1023.0)).pow(GAMMA) * 255.0,
        )],
    )
    .unwrap();

    // --- final: LUT application, 8-bit output ---
    let processed = p.func(
        "processed",
        &[(x, fx), (y, fy), (ch, chans)],
        ScalarType::UChar,
    );
    p.define(
        processed,
        vec![Case::always(Expr::at(
            curve,
            [
                Expr::at(corrected, [Expr::from(x), Expr::from(y), Expr::from(ch)])
                    .clamp(0.0, 1023.0),
            ],
        ))],
    )
    .unwrap();
    p.finish(&[processed]).unwrap()
}

impl CameraPipe {
    /// Instantiates at a given scale.
    pub fn new(scale: Scale) -> Self {
        let (rows, cols) = crate::sizes::CAMERA.at(scale);
        CameraPipe::with_size(rows, cols)
    }

    /// Instantiates with explicit RAW dimensions (even).
    ///
    /// # Panics
    ///
    /// Panics on odd dimensions.
    pub fn with_size(rows: i64, cols: i64) -> Self {
        assert!(
            rows % 2 == 0 && cols % 2 == 0,
            "raw dimensions must be even"
        );
        CameraPipe {
            pipeline: build(),
            rows,
            cols,
        }
    }
}

impl Benchmark for CameraPipe {
    fn name(&self) -> &str {
        "Camera Pipeline"
    }

    fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    fn params(&self) -> Vec<i64> {
        vec![self.rows, self.cols]
    }

    fn make_inputs(&self, seed: u64) -> Vec<Buffer> {
        vec![crate::inputs::bayer_raw(self.rows, self.cols, seed)]
    }

    fn reference(&self, inputs: &[Buffer]) -> Vec<Buffer> {
        let raw = &inputs[0];
        let (r, c) = (self.rows, self.cols);
        // denoise
        let mut den = vec![0.0f32; (r * c) as usize];
        let di = |x: i64, y: i64| (x * c + y) as usize;
        for x in 2..r - 2 {
            for y in 2..c - 2 {
                let v = raw.at(&[x, y]);
                let n = [
                    raw.at(&[x - 2, y]),
                    raw.at(&[x + 2, y]),
                    raw.at(&[x, y - 2]),
                    raw.at(&[x, y + 2]),
                ];
                let mx = n.iter().fold(f32::MIN, |a, &b| a.max(b));
                let mn = n.iter().fold(f32::MAX, |a, &b| a.min(b));
                den[di(x, y)] = v.clamp(mn, mx);
            }
        }
        // quarter planes
        let (qr, qc) = (r / 2, c / 2);
        let qi = |x: i64, y: i64| (x * qc + y) as usize;
        let mut planes = vec![vec![0.0f32; (qr * qc) as usize]; 4]; // gr r b gb
        for x in 1..qr - 1 {
            for y in 1..qc - 1 {
                planes[0][qi(x, y)] = den[di(2 * x, 2 * y)];
                planes[1][qi(x, y)] = den[di(2 * x, 2 * y + 1)];
                planes[2][qi(x, y)] = den[di(2 * x + 1, 2 * y)];
                planes[3][qi(x, y)] = den[di(2 * x + 1, 2 * y + 1)];
            }
        }
        let (gr, rr, bb, gb) = (&planes[0], &planes[1], &planes[2], &planes[3]);
        // full-res demosaic + correction + curve
        let rect = polymage_poly::Rect::new(vec![
            (2 * QM, r - 2 * QM - 1),
            (2 * QM, c - 2 * QM - 1),
            (0, 2),
        ]);
        let mut out = Buffer::zeros(rect);
        let mut i = 0;
        for x in 2 * QM..=r - 2 * QM - 1 {
            for y in 2 * QM..=c - 2 * QM - 1 {
                let (hx, hy) = (x / 2, y / 2);
                let rgb = match (x % 2, y % 2) {
                    (0, 0) => [
                        (rr[qi(hx, hy - 1)] + rr[qi(hx, hy)]) * 0.5,
                        gr[qi(hx, hy)],
                        (bb[qi(hx - 1, hy)] + bb[qi(hx, hy)]) * 0.5,
                    ],
                    (0, 1) => [
                        rr[qi(hx, hy)],
                        (gr[qi(hx, hy)] + gr[qi(hx, hy + 1)] + gb[qi(hx - 1, hy)] + gb[qi(hx, hy)])
                            * 0.25,
                        (bb[qi(hx - 1, hy)]
                            + bb[qi(hx - 1, hy + 1)]
                            + bb[qi(hx, hy)]
                            + bb[qi(hx, hy + 1)])
                            * 0.25,
                    ],
                    (1, 0) => [
                        (rr[qi(hx, hy - 1)]
                            + rr[qi(hx, hy)]
                            + rr[qi(hx + 1, hy - 1)]
                            + rr[qi(hx + 1, hy)])
                            * 0.25,
                        (gb[qi(hx, hy - 1)] + gb[qi(hx, hy)] + gr[qi(hx, hy)] + gr[qi(hx + 1, hy)])
                            * 0.25,
                        bb[qi(hx, hy)],
                    ],
                    _ => [
                        (rr[qi(hx, hy)] + rr[qi(hx + 1, hy)]) * 0.5,
                        gb[qi(hx, hy)],
                        (bb[qi(hx, hy)] + bb[qi(hx, hy + 1)]) * 0.5,
                    ],
                };
                for row in &CCM {
                    let corrected = (row[0] as f32) * rgb[0]
                        + (row[1] as f32) * rgb[1]
                        + (row[2] as f32) * rgb[2];
                    let idx = corrected.clamp(0.0, 1023.0).round();
                    let toned = ((idx / 1023.0) as f64).powf(GAMMA) as f32 * 255.0;
                    out.data[i] = toned.clamp(0.0, 255.0).round();
                    i += 1;
                }
            }
        }
        vec![out]
    }

    fn tolerance(&self) -> f32 {
        // the LUT index rounds, so compare on the 8-bit scale
        1.01
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_structure() {
        let p = build();
        // denoised + 4 planes + 8 interpolants + demosaic + corrected +
        // curve + processed = 17
        assert_eq!(p.funcs().len(), 17);
    }

    #[test]
    fn curve_is_kept_separate_by_grouping() {
        let app = CameraPipe::new(Scale::Tiny);
        let compiled = polymage_core::compile(
            app.pipeline(),
            &polymage_core::CompileOptions::optimized(app.params()),
        )
        .unwrap();
        let g = compiled
            .report
            .group_of("curve")
            .expect("curve stage survives inlining");
        assert_eq!(
            g.stages,
            vec!["curve".to_string()],
            "LUT must stay in its own group (paper §4)"
        );
    }
}
