//! Worker-panic recovery: a tile that panics must fail only its own run
//! (as a clean [`VmError`]), and the *same* engine instance must keep
//! serving later runs — the pool must not wedge and the `lock()` helpers
//! must shrug off any poisoned mutexes the unwind left behind.

use polymage_poly::Rect;
use polymage_vm::*;
use std::sync::Arc;

/// out(x) = in(x−1) + in(x+1) on [1,62], one direct stage, 4 strips.
/// With `poisoned`, the stage also claims to read its own group's written
/// full buffer — the executor panics on the first tile (deterministically,
/// on every strip), exercising the catch_unwind path.
fn program(poisoned: bool) -> Program {
    let img = BufId(0);
    let out_f = BufId(1);
    let buffers = vec![
        BufDecl {
            name: "in".into(),
            kind: BufKind::Full,
            sizes: vec![64],
            origin: vec![0],
        },
        BufDecl {
            name: "out".into(),
            kind: BufKind::Full,
            sizes: vec![62],
            origin: vec![1],
        },
    ];
    let load = |dst: u16, o: i64| Op::Load {
        dst: RegId(dst),
        buf: img,
        plan: vec![IdxPlan::Affine {
            dim: Some(0),
            q: 1,
            o,
            m: 1,
        }],
    };
    let kernel = Kernel {
        ops: vec![
            load(0, -1),
            load(1, 1),
            Op::BinF {
                op: BinF::Add,
                dst: RegId(2),
                a: RegId(0),
                b: RegId(1),
            },
        ],
        nregs: 3,
        meta: None,
        outs: vec![RegId(2)],
    };
    let mut reads = vec![img];
    if poisoned {
        // A full buffer written by the stage's own group is never readable
        // (its snapshot is withheld); the executor panics on lookup.
        reads.push(out_f);
    }
    let stage = StageExec {
        name: "out".into(),
        scratch: out_f, // unused (direct)
        full: Some(out_f),
        direct: true,
        sat: None,
        round: false,
        cases: vec![CaseExec {
            steps: vec![(1, 0)],
            rect: Rect::new(vec![(1, 62)]),
            kernel,
            mask: None,
        }],
        dom: Rect::new(vec![(1, 62)]),
        reads,
    };
    let mut tiles = Vec::new();
    for (s, (lo, hi)) in [(1i64, 16i64), (17, 32), (33, 48), (49, 62)]
        .into_iter()
        .enumerate()
    {
        tiles.push(TileWork {
            strip: s,
            regions: vec![Rect::new(vec![(lo, hi)])],
            stores: vec![Some(Rect::new(vec![(lo, hi)]))],
        });
    }
    let tg = TiledGroup::new(vec![stage], tiles, 4, &buffers);
    Program {
        name: if poisoned { "poisoned" } else { "good" }.into(),
        buffers,
        image_bufs: vec![img],
        groups: vec![GroupExec {
            name: "g0".into(),
            kind: GroupKind::Tiled(tg),
        }],
        outputs: vec![("out".into(), out_f)],
        mode: EvalMode::Vector,
        simd: polymage_vm::process_simd_level(),
        storage: StoragePlan::run_scoped(2),
    }
}

fn bits(bufs: &[Buffer]) -> Vec<Vec<u32>> {
    bufs.iter()
        .map(|b| b.data.iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn engine_survives_worker_panics() {
    let engine = Engine::with_threads(2);
    let good = Arc::new(program(false));
    let bad = Arc::new(program(true));
    let input =
        Buffer::zeros(Rect::new(vec![(0, 63)])).fill_with(|p| ((p[0] * 31 + 7) % 13) as f32);
    let inputs = std::slice::from_ref(&input);

    // The poisoned run fails with a clean error, not a hang or abort.
    let err = engine
        .submit(RunRequest::new(&bad, inputs))
        .unwrap()
        .join()
        .unwrap_err();
    match &err {
        VmError::Internal(msg) => assert!(
            msg.contains("panicked"),
            "expected a worker-panic error, got: {msg}"
        ),
        other => panic!("expected VmError::Internal, got {other:?}"),
    }

    // The same engine instance completes subsequent runs, bit-identical
    // to the static oracle — pool not wedged, no poisoned-lock fallout.
    for threads in [1, 2] {
        let oracle = run_program_static(&good, inputs, threads).unwrap();
        let got = engine
            .submit(RunRequest::new(&good, inputs).threads(threads))
            .unwrap()
            .join()
            .unwrap();
        assert_eq!(bits(&oracle), bits(&got), "threads {threads}");
    }

    // Panics stay survivable, run after run.
    let err2 = engine
        .submit(RunRequest::new(&bad, inputs))
        .unwrap()
        .join()
        .unwrap_err();
    assert!(matches!(err2, VmError::Internal(_)));
    let oracle = run_program_static(&good, inputs, 2).unwrap();
    let got = engine
        .submit(RunRequest::new(&good, inputs))
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(bits(&oracle), bits(&got));
}

#[test]
fn panicked_run_fails_while_concurrent_run_completes() {
    // A poisoned run submitted alongside a good run must not corrupt the
    // good run's result (per-run state is shared-nothing).
    let engine = Engine::with_threads(2);
    let good = Arc::new(program(false));
    let bad = Arc::new(program(true));
    let input = Buffer::zeros(Rect::new(vec![(0, 63)])).fill_with(|p| (p[0] % 9) as f32);
    let inputs = std::slice::from_ref(&input);
    let oracle = run_program_static(&good, inputs, 2).unwrap();

    for _ in 0..8 {
        let h_bad = engine.submit(RunRequest::new(&bad, inputs)).unwrap();
        let h_good = engine.submit(RunRequest::new(&good, inputs)).unwrap();
        assert!(h_bad.join().is_err());
        let got = h_good.join().unwrap();
        assert_eq!(bits(&oracle), bits(&got));
    }
}
