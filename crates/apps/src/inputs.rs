//! Deterministic synthetic input generators.
//!
//! The paper evaluates on photographs and camera RAW captures we cannot
//! ship. These generators produce images with comparable structure for
//! each benchmark's needs: smooth low-frequency content (so pyramids and
//! bilateral filtering have gradients to preserve), edges (so unsharp and
//! Harris have features), texture noise (realistic histograms), and a
//! Bayer mosaic for the camera pipeline. Everything is seeded and
//! reproducible.

use polymage_poly::Rect;
use polymage_vm::Buffer;

/// A tiny splittable PRNG (splitmix64) — keeps the crate free of heavyweight
/// dependencies in library code.
#[derive(Debug, Clone)]
pub struct SplitMix(u64);

impl SplitMix {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Smooth procedural luminance in `[0, 1]`: a few sinusoidal "blobs" plus an
/// edge and a touch of per-pixel noise.
pub fn luminance(x: i64, y: i64, rng_seed: u64) -> f32 {
    let (fx, fy) = (x as f32, y as f32);
    let base =
        0.5 + 0.25 * (fx * 0.013).sin() * (fy * 0.017).cos() + 0.15 * ((fx + fy) * 0.006).sin();
    // a hard edge band so sharpening/corner detection has features
    let edge = if ((fx * 0.031).sin() * (fy * 0.029).cos()) > 0.55 {
        0.2
    } else {
        0.0
    };
    let mut h = SplitMix::new(
        rng_seed ^ (x as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ (y as u64).rotate_left(17),
    );
    let noise = (h.next_f32() - 0.5) * 0.04;
    (base + edge + noise).clamp(0.0, 1.0)
}

/// Grayscale image in `[0, 1]`, extents `rows × cols`.
pub fn gray_image(rows: i64, cols: i64, seed: u64) -> Buffer {
    Buffer::zeros(Rect::new(vec![(0, rows - 1), (0, cols - 1)]))
        .fill_with(|p| luminance(p[0], p[1], seed))
}

/// Grayscale image with values in `[0, 255]` (8-bit range).
pub fn gray_image_u8(rows: i64, cols: i64, seed: u64) -> Buffer {
    Buffer::zeros(Rect::new(vec![(0, rows - 1), (0, cols - 1)]))
        .fill_with(|p| (luminance(p[0], p[1], seed) * 255.0).round())
}

/// RGB image in `[0, 255]`, layout `(rows, cols, 3)`.
pub fn rgb_image(rows: i64, cols: i64, seed: u64) -> Buffer {
    Buffer::zeros(Rect::new(vec![(0, rows - 1), (0, cols - 1), (0, 2)])).fill_with(|p| {
        let l = luminance(p[0], p[1], seed);
        let tint = match p[2] {
            0 => 1.0,
            1 => 0.8 + 0.2 * ((p[0] as f32) * 0.002).sin(),
            _ => 0.6 + 0.4 * ((p[1] as f32) * 0.003).cos(),
        };
        (l * tint * 255.0).round().clamp(0.0, 255.0)
    })
}

/// Synthetic 10-bit Bayer RAW (GRBG pattern), values in `[0, 1023]`,
/// substituting for the paper's camera capture.
pub fn bayer_raw(rows: i64, cols: i64, seed: u64) -> Buffer {
    Buffer::zeros(Rect::new(vec![(0, rows - 1), (0, cols - 1)])).fill_with(|p| {
        let l = luminance(p[0], p[1], seed);
        // simple scene color derived from position
        let r = l * (0.9 + 0.1 * ((p[0] as f32) * 0.004).sin());
        let g = l;
        let b = l * (0.7 + 0.3 * ((p[1] as f32) * 0.005).cos());
        let v = match (p[0] % 2, p[1] % 2) {
            (0, 0) => g, // G at (even, even)
            (0, 1) => r, // R
            (1, 0) => b, // B
            _ => g,      // G
        };
        (v * 1023.0).round().clamp(0.0, 1023.0)
    })
}

/// A soft vertical blend mask in `[0, 1]` (left half ≈ 1, right half ≈ 0),
/// the shape used by the paper's pyramid-blending figure.
pub fn blend_mask(rows: i64, cols: i64) -> Buffer {
    Buffer::zeros(Rect::new(vec![(0, rows - 1), (0, cols - 1)])).fill_with(|p| {
        let t = (p[1] as f32 - cols as f32 * 0.5) / (cols as f32 * 0.1);
        1.0 / (1.0 + t.exp())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = gray_image(16, 16, 7);
        let b = gray_image(16, 16, 7);
        assert_eq!(a.data, b.data);
        let c = gray_image(16, 16, 8);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn ranges() {
        let g = gray_image(32, 32, 1);
        assert!(g.data.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let u = gray_image_u8(32, 32, 1);
        assert!(u
            .data
            .iter()
            .all(|&v| (0.0..=255.0).contains(&v) && v.fract() == 0.0));
        let raw = bayer_raw(32, 32, 1);
        assert!(raw.data.iter().all(|&v| (0.0..=1023.0).contains(&v)));
        let rgb = rgb_image(8, 8, 1);
        assert_eq!(rgb.rect.ndim(), 3);
    }

    #[test]
    fn mask_transitions() {
        let m = blend_mask(4, 100);
        assert!(m.at(&[0, 0]) > 0.95);
        assert!(m.at(&[0, 99]) < 0.05);
        assert!((m.at(&[0, 50]) - 0.5).abs() < 0.1);
    }

    #[test]
    fn splitmix_uniformish() {
        let mut r = SplitMix::new(3);
        let mean: f32 = (0..1000).map(|_| r.next_f32()).sum::<f32>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "{mean}");
    }
}
