//! The multi-tenant execution engine: pooled workers shared by
//! concurrent runs, dynamic strip scheduling, and buffer reuse.
//!
//! Earlier revisions guarded the whole engine behind one `Mutex<Inner>`
//! held for the *entire* run, so concurrent callers of the same engine (or
//! of a `polymage_core::Session`) serialized: the pool accelerated one
//! frame, never a stream of requests. This engine inverts that ownership
//! model — mutable state moves from "the engine, guarded" to "the run,
//! shared-nothing":
//!
//! - [`Engine`] itself holds only immutable pool configuration, the shared
//!   [`SharedPool`] of recycled allocations, and the scheduler: the live
//!   [`RunContext`]s plus an admission cap (`max_inflight`) for
//!   backpressure.
//! - Each submitted run owns a `RunContext` with its full buffers, strip
//!   claims, and [`RunStats`]; two runs never contend on each other's
//!   state. Workers claim the next strip (or reduction chunk) from the
//!   most urgent run that has work — highest [`Priority`] first,
//!   earliest [`deadline`](RunRequest::deadline) within a band, FIFO as
//!   the tiebreak — so one pool drives many overlapping runs without a
//!   large batch run starving a small latency-sensitive one.
//! - [`Engine::submit`] takes a [`RunRequest`] (program, inputs, threads,
//!   priority, deadline, trace sink, overload policy) and returns a
//!   [`RunHandle`]; [`RunHandle::join`] blocks for the result,
//!   [`RunHandle::cancel`] (or a cloneable [`CancelToken`]) stops the run
//!   cooperatively within about one tile's worth of work, releasing its
//!   pooled buffers immediately and surfacing
//!   [`VmError::Cancelled`]. Deadline expiry cancels the same way. The
//!   historical `run*`/`submit_*` permutations survive as deprecated
//!   submit+join shims, bit-identical to their historical behavior.
//!
//! Determinism: results are bit-identical to the legacy static executor
//! ([`run_program_static`](crate::run_program_static)) for any thread
//! count, any pool size, and any number of concurrent runs. Strips write
//! disjoint slabs stitched by position (claim order cannot matter),
//! scratch arenas are re-zeroed exactly like fresh allocations, and
//! reduction partials use the requested thread count's chunk boundaries
//! and are combined in ascending chunk order regardless of which worker
//! computed them. Nothing a run computes ever reads another run's state.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};
use std::time::{Duration, Instant};

use crate::exec::{
    decl_rect, execute_reduction, execute_seq, fix_untouched_identities, reduction_views, row_size,
    run_tile, strip_layout, sweep_reduction, validate_inputs, written_stages, LocalStats, Slab,
    StripRows,
};
use crate::pool::{BufferPool, PoolStats, SharedPool};
use crate::{
    BufId, BufKind, Buffer, CancelReason, GroupKind, Program, RegFile, RunStats, TiledGroup,
    VmError,
};
use polymage_diag::{Counter, Diag, Span, Value};

/// Relative urgency of a run: workers always claim from the
/// highest-priority runnable run first. Within one priority band runs
/// order earliest-deadline-first, then FIFO by submission.
///
/// Priority changes *which run advances next*, never what a run computes:
/// completed runs stay bit-identical at every priority mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Background work; yields to everything else.
    Low,
    /// The default; equivalent to the historical FIFO behavior when every
    /// run uses it.
    #[default]
    Normal,
    /// Latency-sensitive work; claims workers ahead of all other bands.
    High,
}

impl Priority {
    /// Stable lower-case label (used in diag span fields and reports).
    pub fn label(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// What [`Engine::submit`] does when the engine is at its `max_inflight`
/// admission cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverloadPolicy {
    /// Wait for a slot (the historical behavior). A submission with a
    /// deadline gives up — `Err(Cancelled{Deadline})` — if the deadline
    /// expires while still blocked.
    #[default]
    Block,
    /// Return `Err(Cancelled{Shed})` immediately instead of waiting.
    FailFast,
    /// Cancel one inflight run to make room, then wait for the freed
    /// slot: preferably a run already past its deadline (any priority),
    /// otherwise the newest run of the lowest band strictly below the
    /// incoming priority. If no such victim exists this behaves like
    /// [`OverloadPolicy::Block`].
    Shed,
}

/// A typed, builder-style run submission: program and inputs plus every
/// per-run policy knob. This is the single entry point that replaced the
/// historical `submit*`/`run*`/`run_stats*` method permutations.
///
/// ```no_run
/// # use polymage_vm::{Engine, Priority, RunRequest, Program, Buffer};
/// # use std::sync::Arc;
/// # use std::time::Duration;
/// # fn demo(engine: &Engine, prog: &Arc<Program>, inputs: &[Buffer]) {
/// let handle = engine
///     .submit(
///         RunRequest::new(prog, inputs)
///             .threads(2)
///             .priority(Priority::High)
///             .deadline(Duration::from_millis(50)),
///     )
///     .unwrap();
/// let outputs = handle.join();
/// # let _ = outputs;
/// # }
/// ```
#[derive(Debug)]
pub struct RunRequest<'a> {
    prog: &'a Arc<Program>,
    inputs: &'a [Buffer],
    threads: Option<usize>,
    priority: Priority,
    deadline: Option<Instant>,
    diag: Diag,
    overload: OverloadPolicy,
    group_stats: bool,
}

impl<'a> RunRequest<'a> {
    /// A request with the defaults: all pooled workers, [`Priority::Normal`],
    /// no deadline, no tracing, blocking admission, per-group stats on.
    pub fn new(prog: &'a Arc<Program>, inputs: &'a [Buffer]) -> RunRequest<'a> {
        RunRequest {
            prog,
            inputs,
            threads: None,
            priority: Priority::default(),
            deadline: None,
            diag: Diag::noop(),
            overload: OverloadPolicy::default(),
            group_stats: true,
        }
    }

    /// Run as if the engine had `n` workers: reductions chunk for `n` and
    /// at most `min(n, pool size)` pooled workers participate, keeping
    /// results bit-identical to a dedicated `n`-thread engine.
    pub fn threads(mut self, n: usize) -> RunRequest<'a> {
        self.threads = Some(n.max(1));
        self
    }

    /// Scheduling urgency (default [`Priority::Normal`]).
    pub fn priority(mut self, p: Priority) -> RunRequest<'a> {
        self.priority = p;
        self
    }

    /// Cancel the run if it has not completed within `d` of submission.
    /// Expiry surfaces as `Err(Cancelled{reason: Deadline})` from join.
    pub fn deadline(self, d: Duration) -> RunRequest<'a> {
        self.deadline_at(Instant::now() + d)
    }

    /// Like [`RunRequest::deadline`] with an absolute expiry instant.
    pub fn deadline_at(mut self, at: Instant) -> RunRequest<'a> {
        self.deadline = Some(at);
        self
    }

    /// Structured diagnostics sink: the run's spans and events (run,
    /// groups, per-worker utilization) all carry this run's `run_id`, so
    /// traces from overlapping runs are separable.
    pub fn trace(mut self, diag: &Diag) -> RunRequest<'a> {
        self.diag = diag.clone();
        self
    }

    /// Behavior at the admission cap (default [`OverloadPolicy::Block`]).
    pub fn on_overload(mut self, policy: OverloadPolicy) -> RunRequest<'a> {
        self.overload = policy;
        self
    }

    /// Whether to record per-group wall-clock times and per-worker
    /// utilization into [`RunStats`] (default `true`). Opting out skips
    /// the per-group bookkeeping for latency-critical serving paths;
    /// scalar counters (tiles, points, caches) are collected regardless.
    pub fn group_stats(mut self, on: bool) -> RunRequest<'a> {
        self.group_stats = on;
        self
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Poisoning is benign everywhere this helper is used: every critical
    // section either only moves buffers between containers or is followed
    // by an explicit `failed`/`result` check, so a panicking holder cannot
    // leave state that a later holder would misread.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Shared state of one tiled-group execution (one run, one group).
struct TiledTask {
    /// Index of the [`GroupKind::Tiled`] group in the run's program.
    group: usize,
    /// Snapshot of every buffer the group does not write (read-only).
    reads: Vec<Option<Arc<Vec<f32>>>>,
    /// `(stage index, full buffer)` pairs the group writes.
    written: Vec<(usize, BufId)>,
    strip_rows: StripRows,
    tiles_by_strip: Vec<Vec<usize>>,
}

/// Shared state of one parallel-reduction execution.
struct ReduceTask {
    /// Index of the [`GroupKind::Reduction`] group in the run's program.
    group: usize,
    reads: Vec<Option<Arc<Vec<f32>>>>,
    /// Outer-dimension chunks, ascending; claimed by index.
    chunks: Vec<(i64, i64)>,
    out_len: usize,
    identity: f32,
}

/// One computed slab of a written full buffer (pool-backed).
struct SlabPart {
    buf: BufId,
    row_lo: i64,
    data: Vec<f32>,
}

/// What a run currently needs from the worker pool.
enum Phase {
    /// A worker must pick the run up and advance it (initial setup,
    /// sequential groups, group finalization).
    Advance,
    /// One worker is inside the advance logic; nobody else may touch it.
    Advancing,
    /// A tiled group is claimable strip-by-strip.
    Tiled(Arc<TiledTask>),
    /// A reduction is claimable chunk-by-chunk.
    Reduce(Arc<ReduceTask>),
    /// The run has a result; it is leaving (or has left) the scheduler.
    Complete,
}

/// Which kind of group just drained and awaits finalization.
enum Finalize {
    Tiled,
    Reduce,
}

/// The latched cancellation signal of one run: 0 = live, otherwise the
/// discriminant of the first [`CancelReason`] + 1. Written at most once
/// (first signal wins) and read lock-free at every cancellation point.
struct CancelCell(AtomicU8);

impl CancelCell {
    fn new() -> CancelCell {
        CancelCell(AtomicU8::new(0))
    }

    fn get(&self) -> Option<CancelReason> {
        match self.0.load(Ordering::Acquire) {
            0 => None,
            1 => Some(CancelReason::Caller),
            2 => Some(CancelReason::Deadline),
            3 => Some(CancelReason::Shutdown),
            _ => Some(CancelReason::Shed),
        }
    }

    /// Latches `reason` if no reason is set yet; returns whether this call
    /// was the one that set it.
    fn set(&self, reason: CancelReason) -> bool {
        let code = match reason {
            CancelReason::Caller => 1,
            CancelReason::Deadline => 2,
            CancelReason::Shutdown => 3,
            CancelReason::Shed => 4,
        };
        self.0
            .compare_exchange(0, code, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

/// The mutable half of a run — owned by the run, never by the engine.
struct RunState {
    fulls: Vec<Vec<f32>>,
    /// Index of the group being set up / executed.
    group: usize,
    phase: Phase,
    /// Set by the worker that drains the last claim; consumed by advance.
    finalize: Option<Finalize>,
    stats: RunStats,
    /// Pool worker id per participation slot (slot = index). At most
    /// `effective` distinct workers ever join a run.
    slots: Vec<usize>,
    /// Per-slot (tiles, busy) for the current group's diag worker events.
    group_worker: Vec<(u64, Duration)>,
    /// The coordinator-side handle on buffers snapshotted into the current
    /// task; recovered via `Arc::try_unwrap` at finalization.
    reads_keep: Vec<Option<Arc<Vec<f32>>>>,
    /// Next strip/chunk to hand out for the current task.
    next_claim: usize,
    /// Total strips/chunks of the current task.
    total_claims: usize,
    /// Claims handed out but not yet merged back.
    outstanding: usize,
    /// First failure (worker panic or internal error); claims stop.
    failed: Option<VmError>,
    /// Bytes of this run's full buffers currently resident (the peak goes
    /// to `stats.peak_full_bytes`).
    cur_full_bytes: u64,
    /// Reduction output being accumulated (identity-filled).
    red_out: Vec<f32>,
    /// Reduction partials by chunk index.
    red_parts: Vec<Option<Vec<f32>>>,
    group_start: Instant,
    group_span: Option<Span>,
    run_span: Option<Span>,
    /// Whether a worker has picked the run up yet; the first pickup
    /// records [`RunStats::sched_wait`].
    started: bool,
    result: Option<Result<Vec<Buffer>, VmError>>,
}

/// One concurrent run: its program, its thread policy, and all of its
/// mutable execution state.
struct RunContext {
    run_id: u64,
    prog: Arc<Program>,
    /// Requested thread count: fixes reduction chunk boundaries so results
    /// stay bit-identical to `run_program_static(.., req_threads)`.
    req_threads: usize,
    /// `min(req_threads, pool size)`: at most this many distinct pooled
    /// workers ever execute the run's tiles/chunks, and `RunStats`'
    /// per-worker vectors have exactly this length.
    effective: usize,
    /// Per buffer: provably overwritten in full before being read, so its
    /// (lazy or eager) acquisition may skip the zero-fill.
    overwritten: Vec<bool>,
    priority: Priority,
    deadline: Option<Instant>,
    /// When `Engine::submit` accepted the request (admission wait included
    /// — `sched_wait` measures the full submit-to-first-claim delay).
    submitted: Instant,
    /// Whether per-group times / per-worker utilization are recorded.
    group_stats: bool,
    cancel: CancelCell,
    diag: Diag,
    state: Mutex<RunState>,
    done_cv: Condvar,
}

impl RunContext {
    /// The run's live cancellation signal; converts deadline expiry into a
    /// latched [`CancelReason::Deadline`] on first observation, so every
    /// cancellation point doubles as a deadline check.
    fn cancel_reason(&self) -> Option<CancelReason> {
        if let Some(r) = self.cancel.get() {
            return Some(r);
        }
        if let Some(dl) = self.deadline {
            if Instant::now() >= dl {
                self.cancel.set(CancelReason::Deadline);
                return self.cancel.get();
            }
        }
        None
    }
}

/// The scheduler: live runs in submission order plus admission state.
struct Sched {
    /// Live runs in submission order. Present from submission until
    /// completion; workers scan them in policy order — highest priority
    /// first, earliest deadline within a band, submission order (run id)
    /// as the tiebreak — so equal-policy runs keep the historical FIFO
    /// service.
    runs: Vec<Arc<RunContext>>,
    inflight: usize,
    max_inflight: usize,
    shutdown: bool,
}

/// Everything workers and submitters share.
struct Shared {
    sched: Mutex<Sched>,
    /// Workers wait here for claimable work.
    work_cv: Condvar,
    /// Submitters wait here for an admission slot.
    admit_cv: Condvar,
    pool: SharedPool,
    next_run_id: AtomicU64,
    /// Bytes of full buffers currently held by live runs (engine-global;
    /// excludes slabs, partials, and scratch arenas).
    full_bytes: AtomicU64,
    /// High-water mark of [`Shared::full_bytes`] (monotone).
    full_peak: AtomicU64,
    /// Engine-global counters already flushed to diag; guards the flush
    /// deltas.
    flushed: Mutex<FlushedCounters>,
    /// Claim grants that jumped ahead of an earlier live submission.
    sched_preempts: AtomicU64,
    /// Admission sheds: fail-fast rejections + cancelled inflight victims.
    sched_sheds: AtomicU64,
    /// Runs completed as cancelled (any reason), plus deadline-expired
    /// submissions that never got past admission.
    sched_cancels: AtomicU64,
    /// Cancellations whose reason was a missed deadline.
    sched_deadline_misses: AtomicU64,
}

/// Snapshot of engine-global counters at the last diag flush.
#[derive(Default)]
struct FlushedCounters {
    pool: crate::PoolStats,
    peak_full_bytes: u64,
    sched_preempts: u64,
    sched_sheds: u64,
    sched_cancels: u64,
    sched_deadline_misses: u64,
}

/// Work handed to one worker for one step.
enum Work {
    Advance(Arc<RunContext>),
    Strip {
        run: Arc<RunContext>,
        task: Arc<TiledTask>,
        strip: usize,
        slot: usize,
    },
    Chunk {
        run: Arc<RunContext>,
        task: Arc<ReduceTask>,
        chunk: usize,
        slot: usize,
    },
}

/// A persistent multi-tenant execution engine.
///
/// Construction spawns the worker threads once; every run — submitted
/// asynchronously with [`Engine::submit`] or synchronously with
/// [`Engine::run`] — executes on them, together with recycled scratch
/// arenas and a size-class-sharded [`SharedPool`] of output/partial
/// allocations. Multiple runs execute **concurrently**: each owns its own
/// buffers, claims, and statistics, and workers interleave strips from
/// every live run (earliest submission first). Results are bit-identical
/// to a run that had the engine to itself.
///
/// Admission is capped: at most `max_inflight` runs are live at once and
/// further submissions block, bounding memory under load.
///
/// Dropping the engine completes every pending run, then shuts the
/// workers down and joins them.
pub struct Engine {
    nthreads: usize,
    shared: Arc<Shared>,
    joins: Vec<std::thread::JoinHandle<()>>,
}

/// A handle on a submitted run; redeem it with [`RunHandle::join`] (or
/// [`RunHandle::join_stats`]) for the outputs, or stop the run early with
/// [`RunHandle::cancel`]. The run makes progress whether or not anyone is
/// joining.
pub struct RunHandle {
    run: Arc<RunContext>,
    shared: Weak<Shared>,
}

impl std::fmt::Debug for RunHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunHandle")
            .field("run_id", &self.run.run_id)
            .finish()
    }
}

impl RunHandle {
    /// The engine-unique id of this run (also stamped on every diag span
    /// and event the run emits, as `run_id`).
    pub fn run_id(&self) -> u64 {
        self.run.run_id
    }

    /// Whether the run has finished (joining would not block).
    pub fn is_finished(&self) -> bool {
        lock(&self.run.state).result.is_some()
    }

    /// Requests cooperative cancellation: workers observe the signal at
    /// the next tile boundary (mid-strip), claim grant, or group advance —
    /// whichever comes first — so the run stops within about one tile's
    /// worth of work, releases its pooled buffers immediately, and joins
    /// as `Err(Cancelled{reason: Caller})`. Idempotent; a no-op once the
    /// run has completed (the first signal wins and completion latches the
    /// result).
    pub fn cancel(&self) {
        self.cancel_token().cancel();
    }

    /// A cloneable, `'static` token that cancels this run — hand it to a
    /// watchdog or timeout thread while another thread holds the handle
    /// to join.
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken {
            run: Arc::clone(&self.run),
            shared: self.shared.clone(),
        }
    }

    /// Blocks until the run completes and returns its live-out buffers, in
    /// [`Program::outputs`] order.
    ///
    /// # Errors
    ///
    /// Returns [`VmError`] when the run failed (worker panic or internal
    /// invariant violation) or was cancelled ([`VmError::Cancelled`]).
    pub fn join(self) -> Result<Vec<Buffer>, VmError> {
        self.join_stats().map(|(out, _)| out)
    }

    /// Like [`RunHandle::join`], additionally returning execution
    /// statistics.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RunHandle::join`].
    pub fn join_stats(self) -> Result<(Vec<Buffer>, RunStats), VmError> {
        let (result, stats) = self.join_outcome();
        result.map(|out| (out, stats))
    }

    /// Blocks until the run completes and returns its result *and* its
    /// statistics, even on failure — a cancelled run's
    /// [`RunStats::cancelled_tiles`] and [`RunStats::sched_wait`] are
    /// only reachable this way.
    pub fn join_outcome(self) -> (Result<Vec<Buffer>, VmError>, RunStats) {
        let mut st = lock(&self.run.state);
        while st.result.is_none() {
            st = self.run.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let result = st.result.take().expect("checked above");
        let stats = std::mem::take(&mut st.stats);
        (result, stats)
    }
}

/// Cancels one run cooperatively; obtained from
/// [`RunHandle::cancel_token`]. Cloneable and independent of the handle's
/// lifetime — it stays valid (and harmlessly inert) after the run
/// completes or the engine is dropped.
#[derive(Clone)]
pub struct CancelToken {
    run: Arc<RunContext>,
    shared: Weak<Shared>,
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("run_id", &self.run.run_id)
            .field("cancelled", &self.run.cancel.get())
            .finish()
    }
}

impl CancelToken {
    /// The id of the run this token cancels.
    pub fn run_id(&self) -> u64 {
        self.run.run_id
    }

    /// Whether a cancellation signal has been latched for the run.
    pub fn is_cancelled(&self) -> bool {
        self.run.cancel.get().is_some()
    }

    /// Signals cancellation (see [`RunHandle::cancel`]). Idempotent.
    pub fn cancel(&self) {
        if self.run.cancel.set(CancelReason::Caller) {
            // Wake sleeping workers so an idle engine notices immediately.
            if let Some(shared) = self.shared.upgrade() {
                notify_workers(&shared);
            }
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("nthreads", &self.nthreads)
            .field("max_inflight", &self.max_inflight())
            .finish()
    }
}

impl Engine {
    /// An engine with one worker per available hardware thread.
    pub fn new() -> Engine {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Engine::with_threads(n)
    }

    /// An engine with exactly `nthreads` pooled workers (minimum 1) and
    /// the default admission cap of `2 × nthreads` concurrent runs.
    pub fn with_threads(nthreads: usize) -> Engine {
        let nthreads = nthreads.max(1);
        Engine::with_threads_and_inflight(nthreads, 2 * nthreads)
    }

    /// An engine with exactly `nthreads` pooled workers and an explicit
    /// admission cap: at most `max_inflight` runs (minimum 1) are live at
    /// once; [`Engine::submit`] blocks past the cap until a run completes.
    pub fn with_threads_and_inflight(nthreads: usize, max_inflight: usize) -> Engine {
        let nthreads = nthreads.max(1);
        let shared = Arc::new(Shared {
            sched: Mutex::new(Sched {
                runs: Vec::new(),
                inflight: 0,
                max_inflight: max_inflight.max(1),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            admit_cv: Condvar::new(),
            pool: SharedPool::new(),
            next_run_id: AtomicU64::new(1),
            full_bytes: AtomicU64::new(0),
            full_peak: AtomicU64::new(0),
            flushed: Mutex::new(FlushedCounters::default()),
            sched_preempts: AtomicU64::new(0),
            sched_sheds: AtomicU64::new(0),
            sched_cancels: AtomicU64::new(0),
            sched_deadline_misses: AtomicU64::new(0),
        });
        let mut joins = Vec::with_capacity(nthreads);
        for i in 0..nthreads {
            let shared = Arc::clone(&shared);
            let join = std::thread::Builder::new()
                .name(format!("pm-worker-{i}"))
                .spawn(move || worker_main(i, shared))
                .expect("spawn engine worker");
            joins.push(join);
        }
        Engine {
            nthreads,
            shared,
            joins,
        }
    }

    /// Number of pooled workers.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// The admission cap: maximum concurrently live runs.
    pub fn max_inflight(&self) -> usize {
        lock(&self.shared.sched).max_inflight
    }

    /// Submits a [`RunRequest`] and returns immediately; the run executes
    /// on the pool, concurrently with any other live runs, scheduled by
    /// its priority and deadline.
    ///
    /// Blocks only while the engine is at its `max_inflight` admission cap
    /// and the request's [`OverloadPolicy`] says to wait. The admission
    /// slot is reserved *before* the run's buffers are allocated, so a
    /// backlog of blocked submitters holds no memory.
    ///
    /// # Errors
    ///
    /// Returns [`VmError`] when the inputs do not match the program's
    /// images, or [`VmError::Cancelled`] when admission rejected the run
    /// (fail-fast shed, deadline expired while blocked, engine shutting
    /// down). Execution-time failures surface from [`RunHandle::join`].
    pub fn submit(&self, req: RunRequest<'_>) -> Result<RunHandle, VmError> {
        let submitted = Instant::now();
        let prog = req.prog;
        validate_inputs(prog, req.inputs)?;
        let req_threads = req.threads.unwrap_or(self.nthreads).max(1);
        let effective = req_threads.min(self.nthreads);

        // Reserve an admission slot *before* allocating the run's buffers,
        // so a backlog of blocked submitters holds no memory.
        {
            let mut sched = lock(&self.shared.sched);
            let mut shed_attempted = false;
            loop {
                if sched.shutdown {
                    self.count_rejection(CancelReason::Shutdown);
                    return Err(VmError::Cancelled {
                        reason: CancelReason::Shutdown,
                    });
                }
                if sched.inflight < sched.max_inflight {
                    break;
                }
                if let Some(dl) = req.deadline {
                    if Instant::now() >= dl {
                        self.count_rejection(CancelReason::Deadline);
                        return Err(VmError::Cancelled {
                            reason: CancelReason::Deadline,
                        });
                    }
                }
                match req.overload {
                    OverloadPolicy::Block => {}
                    OverloadPolicy::FailFast => {
                        self.count_rejection(CancelReason::Shed);
                        return Err(VmError::Cancelled {
                            reason: CancelReason::Shed,
                        });
                    }
                    OverloadPolicy::Shed => {
                        // Shed at most one victim per submission, then wait
                        // for its slot like Block (the victim drains within
                        // about one tile).
                        if !shed_attempted {
                            shed_attempted = true;
                            if let Some(victim) = shed_victim(&sched.runs, req.priority) {
                                // A victim already past its deadline was
                                // doomed anyway; label it honestly.
                                let reason = if victim.deadline.is_some_and(|d| Instant::now() >= d)
                                {
                                    CancelReason::Deadline
                                } else {
                                    CancelReason::Shed
                                };
                                if victim.cancel.set(reason) {
                                    self.shared.sched_sheds.fetch_add(1, Ordering::Relaxed);
                                    self.shared.work_cv.notify_all();
                                }
                            }
                        }
                    }
                }
                // Deadline-bearing submitters sleep with a timeout so their
                // own expiry is noticed without external wakeups.
                sched = match req.deadline {
                    Some(dl) => {
                        let dur = dl.saturating_duration_since(Instant::now());
                        self.shared
                            .admit_cv
                            .wait_timeout(sched, dur)
                            .unwrap_or_else(|e| e.into_inner())
                            .0
                    }
                    None => self
                        .shared
                        .admit_cv
                        .wait(sched)
                        .unwrap_or_else(|e| e.into_inner()),
                };
            }
            sched.inflight += 1;
        }

        let diag = req.diag;
        let run_span = diag.begin();
        // Full buffers come from the shared pool. Buffers the run provably
        // overwrites in full skip the zero-fill: input images are copied
        // whole below, tiled sinks' tile stores exactly partition a buffer
        // sized exactly to the stage domain (the validator's coverage
        // invariant), and reduction outputs are filled with the identity
        // before combining. Sequential-scan outputs stay zero-filled —
        // they may write partially and read their own zero-for-undefined
        // border.
        let mut overwritten = vec![false; prog.buffers.len()];
        for &b in &prog.image_bufs {
            overwritten[b.0] = true;
        }
        for group in &prog.groups {
            match &group.kind {
                GroupKind::Tiled(tg) => {
                    for s in &tg.stages {
                        if let Some(b) = s.full {
                            overwritten[b.0] = true;
                        }
                    }
                }
                GroupKind::Reduction(red) => overwritten[red.out.0] = true,
                GroupKind::Sequential(_) => {}
            }
        }
        // Only buffers the storage plan scopes to the whole run (input
        // images, live-outs, and everything under the legacy run-scoped
        // plan) materialize here; the rest acquire lazily when the group
        // walk first reaches their `acquire_group`.
        let mut acquired_bytes = 0u64;
        let mut fulls: Vec<Vec<f32>> = prog
            .buffers
            .iter()
            .enumerate()
            .map(|(i, b)| match b.kind {
                BufKind::Full if prog.storage.acquire_group[i].is_none() => {
                    acquired_bytes += (b.len() * 4) as u64;
                    if overwritten[i] {
                        self.shared.pool.acquire(b.len())
                    } else {
                        self.shared.pool.acquire_zeroed(b.len())
                    }
                }
                BufKind::Full | BufKind::Scratch => Vec::new(),
            })
            .collect();
        for (&b, input) in prog.image_bufs.iter().zip(req.inputs) {
            fulls[b.0].copy_from_slice(&input.data);
        }
        let cur = self
            .shared
            .full_bytes
            .fetch_add(acquired_bytes, Ordering::Relaxed)
            + acquired_bytes;
        self.shared.full_peak.fetch_max(cur, Ordering::Relaxed);

        let nbufs = prog.buffers.len();
        let run = Arc::new(RunContext {
            run_id: self.shared.next_run_id.fetch_add(1, Ordering::Relaxed),
            prog: Arc::clone(prog),
            req_threads,
            effective,
            overwritten,
            priority: req.priority,
            deadline: req.deadline,
            submitted,
            group_stats: req.group_stats,
            cancel: CancelCell::new(),
            diag: diag.clone(),
            state: Mutex::new(RunState {
                fulls,
                group: 0,
                phase: Phase::Advance,
                finalize: None,
                stats: RunStats {
                    worker_tiles: vec![0; effective],
                    worker_busy: vec![Duration::ZERO; effective],
                    peak_full_bytes: acquired_bytes,
                    ..RunStats::default()
                },
                slots: Vec::new(),
                group_worker: vec![(0, Duration::ZERO); effective],
                reads_keep: vec![None; nbufs],
                next_claim: 0,
                total_claims: 0,
                outstanding: 0,
                failed: None,
                cur_full_bytes: acquired_bytes,
                red_out: Vec::new(),
                red_parts: Vec::new(),
                group_start: Instant::now(),
                group_span: None,
                run_span: Some(run_span),
                started: false,
                result: None,
            }),
            done_cv: Condvar::new(),
        });

        let mut sched = lock(&self.shared.sched);
        sched.runs.push(Arc::clone(&run));
        self.shared.work_cv.notify_all();
        drop(sched);
        Ok(RunHandle {
            run,
            shared: Arc::downgrade(&self.shared),
        })
    }

    /// Counts a submission the engine turned away at admission.
    fn count_rejection(&self, reason: CancelReason) {
        self.shared.sched_cancels.fetch_add(1, Ordering::Relaxed);
        match reason {
            CancelReason::Shed => {
                self.shared.sched_sheds.fetch_add(1, Ordering::Relaxed);
            }
            CancelReason::Deadline => {
                self.shared
                    .sched_deadline_misses
                    .fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    /// A snapshot of the shared buffer pool's counters
    /// ([`PoolStats::retained_bytes`] included) — the serving-layer leak
    /// check: after every handle resolves, retained bytes must equal what
    /// the pool actually holds (see
    /// [`Engine::pool_audit_retained_bytes`]).
    pub fn pool_stats(&self) -> PoolStats {
        self.shared.pool.stats()
    }

    /// Recounts the pooled bytes by walking the shards (O(free lists));
    /// equals [`PoolStats::retained_bytes`] unless accounting has leaked.
    pub fn pool_audit_retained_bytes(&self) -> usize {
        self.shared.pool.audit_retained_bytes()
    }

    /// Bytes of full buffers currently held by live runs (engine-global).
    /// Zero when the engine is idle — cancelled runs release their
    /// buffers at completion like finished ones.
    pub fn live_full_bytes(&self) -> u64 {
        self.shared.full_bytes.load(Ordering::Relaxed)
    }

    /// Submits a run using all pooled workers.
    #[deprecated(note = "use Engine::submit(RunRequest::new(prog, inputs))")]
    pub fn submit_default(
        &self,
        prog: &Arc<Program>,
        inputs: &[Buffer],
    ) -> Result<RunHandle, VmError> {
        self.submit(RunRequest::new(prog, inputs))
    }

    /// Submits a run that behaves as if the engine had `nthreads` workers.
    #[deprecated(note = "use Engine::submit(RunRequest::new(prog, inputs).threads(n))")]
    pub fn submit_with_threads(
        &self,
        prog: &Arc<Program>,
        inputs: &[Buffer],
        nthreads: usize,
    ) -> Result<RunHandle, VmError> {
        self.submit(RunRequest::new(prog, inputs).threads(nthreads))
    }

    /// Submits a run with an explicit thread count and diagnostics sink.
    #[deprecated(note = "use Engine::submit(RunRequest::new(prog, inputs).threads(n).trace(diag))")]
    pub fn submit_traced(
        &self,
        prog: &Arc<Program>,
        inputs: &[Buffer],
        nthreads: usize,
        diag: &Diag,
    ) -> Result<RunHandle, VmError> {
        self.submit(RunRequest::new(prog, inputs).threads(nthreads).trace(diag))
    }

    /// Runs a program using all pooled workers, blocking for the result.
    #[deprecated(note = "use Engine::submit(RunRequest::new(prog, inputs)) + RunHandle::join")]
    pub fn run(&self, prog: &Arc<Program>, inputs: &[Buffer]) -> Result<Vec<Buffer>, VmError> {
        self.submit(RunRequest::new(prog, inputs))?.join()
    }

    /// [`Engine::run`] with an explicit per-run thread count.
    #[deprecated(
        note = "use Engine::submit(RunRequest::new(prog, inputs).threads(n)) + RunHandle::join"
    )]
    pub fn run_with_threads(
        &self,
        prog: &Arc<Program>,
        inputs: &[Buffer],
        nthreads: usize,
    ) -> Result<Vec<Buffer>, VmError> {
        self.submit(RunRequest::new(prog, inputs).threads(nthreads))?
            .join()
    }

    /// [`Engine::run`] with execution statistics.
    #[deprecated(
        note = "use Engine::submit(RunRequest::new(prog, inputs)) + RunHandle::join_stats"
    )]
    pub fn run_stats(
        &self,
        prog: &Arc<Program>,
        inputs: &[Buffer],
    ) -> Result<(Vec<Buffer>, RunStats), VmError> {
        self.submit(RunRequest::new(prog, inputs))?.join_stats()
    }

    /// [`Engine::run_with_threads`] with statistics.
    #[deprecated(
        note = "use Engine::submit(RunRequest::new(prog, inputs).threads(n)) + RunHandle::join_stats"
    )]
    pub fn run_stats_with_threads(
        &self,
        prog: &Arc<Program>,
        inputs: &[Buffer],
        nthreads: usize,
    ) -> Result<(Vec<Buffer>, RunStats), VmError> {
        self.submit(RunRequest::new(prog, inputs).threads(nthreads))?
            .join_stats()
    }

    /// [`Engine::run_stats_with_threads`] with a diagnostics sink.
    #[deprecated(
        note = "use Engine::submit(RunRequest::new(prog, inputs).threads(n).trace(diag)) + RunHandle::join_stats"
    )]
    pub fn run_stats_traced(
        &self,
        prog: &Arc<Program>,
        inputs: &[Buffer],
        nthreads: usize,
        diag: &Diag,
    ) -> Result<(Vec<Buffer>, RunStats), VmError> {
        self.submit(RunRequest::new(prog, inputs).threads(nthreads).trace(diag))?
            .join_stats()
    }
}

/// Picks the run admission control sacrifices under
/// [`OverloadPolicy::Shed`]: a not-yet-cancelled run already past its
/// deadline (lowest priority first — it is pure waste either way), else
/// the *newest* run of the lowest priority band strictly below the
/// incoming submission (newest loses the least sunk work). `None` when
/// every inflight run is at or above the incoming priority and within its
/// deadline.
fn shed_victim(runs: &[Arc<RunContext>], incoming: Priority) -> Option<Arc<RunContext>> {
    let now = Instant::now();
    let live = || runs.iter().filter(|r| r.cancel.get().is_none());
    if let Some(expired) = live()
        .filter(|r| r.deadline.is_some_and(|d| now >= d))
        .min_by_key(|r| r.priority)
    {
        return Some(Arc::clone(expired));
    }
    live()
        .filter(|r| r.priority < incoming)
        .min_by_key(|r| (r.priority, std::cmp::Reverse(r.run_id)))
        .map(Arc::clone)
}

impl Drop for Engine {
    fn drop(&mut self) {
        {
            let mut sched = lock(&self.shared.sched);
            sched.shutdown = true;
            // Workers drain every pending run before exiting, so
            // outstanding `RunHandle`s stay redeemable.
            self.shared.work_cv.notify_all();
        }
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduling: how workers find and claim work.
// ---------------------------------------------------------------------------

/// Looks up (or assigns) this run's participation slot for a pool worker.
/// Returns `None` when the run's worker cap is exhausted by other workers.
fn slot_for(st: &mut RunState, worker: usize, effective: usize) -> Option<usize> {
    if let Some(i) = st.slots.iter().position(|&w| w == worker) {
        return Some(i);
    }
    if st.slots.len() < effective {
        st.slots.push(worker);
        return Some(st.slots.len() - 1);
    }
    None
}

/// Asks one run for a unit of work. Uses `try_lock` so a busy run (one
/// worker stitching or advancing) never blocks the scheduler scan — the
/// scan just moves on to the next run. A cancelled run hands out no new
/// claims; instead the poll drives it toward completion (claim-grant
/// granularity is the coarsest cancellation point).
fn poll(run: &Arc<RunContext>, worker: usize) -> Option<Work> {
    let mut st = match run.state.try_lock() {
        Ok(g) => g,
        Err(std::sync::TryLockError::WouldBlock) => return None,
        Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
    };
    if let Some(reason) = run.cancel_reason() {
        return poll_cancelled(run, st, reason);
    }
    match &st.phase {
        Phase::Advance => {
            st.phase = Phase::Advancing;
            Some(Work::Advance(Arc::clone(run)))
        }
        Phase::Tiled(task) => {
            if st.next_claim >= st.total_claims {
                return None;
            }
            let task = Arc::clone(task);
            let slot = slot_for(&mut st, worker, run.effective)?;
            let strip = st.next_claim;
            st.next_claim += 1;
            st.outstanding += 1;
            Some(Work::Strip {
                run: Arc::clone(run),
                task,
                strip,
                slot,
            })
        }
        Phase::Reduce(task) => {
            if st.next_claim >= st.total_claims {
                return None;
            }
            let task = Arc::clone(task);
            let slot = slot_for(&mut st, worker, run.effective)?;
            let chunk = st.next_claim;
            st.next_claim += 1;
            st.outstanding += 1;
            Some(Work::Chunk {
                run: Arc::clone(run),
                task,
                chunk,
                slot,
            })
        }
        Phase::Advancing | Phase::Complete => None,
    }
}

/// Drives a cancelled run toward completion without granting new claims:
/// latches the `Cancelled` failure, counts the work it skipped, and — once
/// nothing is outstanding — routes the run through the normal
/// finalize/advance path so buffers are recovered and released exactly
/// like on any other failure. In-flight strips notice the signal at their
/// next tile boundary; the last one to merge triggers finalization.
fn poll_cancelled(
    run: &Arc<RunContext>,
    mut st: MutexGuard<'_, RunState>,
    reason: CancelReason,
) -> Option<Work> {
    match &st.phase {
        Phase::Advance => {
            st.phase = Phase::Advancing;
            Some(Work::Advance(Arc::clone(run)))
        }
        Phase::Tiled(task) => {
            if st.next_claim < st.total_claims {
                let task = Arc::clone(task);
                let skipped: u64 = task.tiles_by_strip[st.next_claim..st.total_claims]
                    .iter()
                    .map(|tiles| tiles.len() as u64)
                    .sum();
                st.stats.cancelled_tiles += skipped;
                st.next_claim = st.total_claims;
                if st.failed.is_none() {
                    st.failed = Some(VmError::Cancelled { reason });
                }
            }
            drained_by_cancel(run, st, Finalize::Tiled)
        }
        Phase::Reduce(_) => {
            if st.next_claim < st.total_claims {
                st.stats.cancelled_tiles += (st.total_claims - st.next_claim) as u64;
                st.next_claim = st.total_claims;
                if st.failed.is_none() {
                    st.failed = Some(VmError::Cancelled { reason });
                }
            }
            drained_by_cancel(run, st, Finalize::Reduce)
        }
        Phase::Advancing | Phase::Complete => None,
    }
}

/// If halting the claims left nothing outstanding, the polling worker
/// itself finalizes the cancelled group (otherwise the last in-flight
/// claim's merge does, via `finish_claim`).
fn drained_by_cancel(
    run: &Arc<RunContext>,
    mut st: MutexGuard<'_, RunState>,
    fin: Finalize,
) -> Option<Work> {
    if st.outstanding == 0 && st.finalize.is_none() {
        st.finalize = Some(fin);
        st.phase = Phase::Advancing;
        return Some(Work::Advance(Arc::clone(run)));
    }
    None
}

/// The scan order of one run: priority band first (high before low),
/// earliest deadline within the band (deadline-less runs last), submission
/// order as the final tiebreak — so an all-default workload degenerates to
/// the historical FIFO.
fn sched_key(r: &RunContext) -> (std::cmp::Reverse<Priority>, bool, Instant, u64) {
    (
        std::cmp::Reverse(r.priority),
        r.deadline.is_none(),
        r.deadline.unwrap_or(r.submitted),
        r.run_id,
    )
}

fn find_work(runs: &[Arc<RunContext>], worker: usize, preempts: &AtomicU64) -> Option<Work> {
    if runs.len() <= 1 {
        return runs.first().and_then(|r| poll(r, worker));
    }
    let mut order: Vec<usize> = (0..runs.len()).collect();
    order.sort_by_key(|&i| sched_key(&runs[i]));
    for &i in &order {
        if let Some(w) = poll(&runs[i], worker) {
            // A grant "preempts" when the policy put the chosen run ahead
            // of an earlier-submitted live run.
            let chosen = &runs[i];
            if runs
                .iter()
                .any(|r| r.run_id < chosen.run_id && sched_key(r) > sched_key(chosen))
            {
                preempts.fetch_add(1, Ordering::Relaxed);
            }
            return Some(w);
        }
    }
    None
}

fn notify_workers(shared: &Shared) {
    // Taking the scheduler lock serializes the notification with any
    // worker's scan→wait transition, so wakeups are never lost.
    let _sched = lock(&shared.sched);
    shared.work_cv.notify_all();
}

/// Per-worker, per-run execution state: the scratch arena for the run's
/// current tiled group and a persistent register file. Keyed by `run_id`
/// so interleaving strips from different runs never share kernel state
/// (the register file's uniform-row cache is additionally epoch-guarded,
/// but keeping it per run makes the isolation structural).
struct WorkerRun {
    group: usize,
    /// Packed scratch arena for the run's current tiled group (slot
    /// offsets come from the group's [`crate::ScratchSlots`]).
    arena: Vec<f32>,
    regs: RegFile,
}

/// Worker-local per-run states are evicted wholesale past this count (a
/// worker rarely interleaves more than a handful of live runs; the cap
/// only bounds leakage from completed runs the worker never revisits).
const WORKER_RUN_CAP: usize = 16;

fn worker_main(index: usize, shared: Arc<Shared>) {
    // Worker-local arena freelist, reused across strips, groups, and runs.
    let mut arena_pool = BufferPool::new();
    let mut runs: HashMap<u64, WorkerRun> = HashMap::new();
    loop {
        let work = {
            let mut sched = lock(&shared.sched);
            loop {
                if sched.shutdown && sched.runs.is_empty() {
                    return;
                }
                if let Some(w) = find_work(&sched.runs, index, &shared.sched_preempts) {
                    break w;
                }
                // A queued run's deadline must fire even if no external
                // event wakes the pool: sleep no longer than the earliest
                // live deadline.
                let next_deadline = sched.runs.iter().filter_map(|r| r.deadline).min();
                sched = match next_deadline {
                    Some(dl) => {
                        let dur = dl
                            .saturating_duration_since(Instant::now())
                            .max(Duration::from_micros(100));
                        shared
                            .work_cv
                            .wait_timeout(sched, dur)
                            .unwrap_or_else(|e| e.into_inner())
                            .0
                    }
                    None => shared
                        .work_cv
                        .wait(sched)
                        .unwrap_or_else(|e| e.into_inner()),
                };
            }
        };
        match work {
            Work::Advance(run) => advance(&shared, &run),
            Work::Strip {
                run,
                task,
                strip,
                slot,
            } => exec_strip(&shared, &run, task, strip, slot, &mut runs, &mut arena_pool),
            Work::Chunk {
                run,
                task,
                chunk,
                slot,
            } => exec_chunk(&shared, &run, task, chunk, slot),
        }
    }
}

/// The per-worker scratch/register state for one run's current group,
/// (re)built on group change.
fn worker_run_state<'a>(
    runs: &'a mut HashMap<u64, WorkerRun>,
    arena_pool: &mut BufferPool,
    run: &RunContext,
    group: usize,
    tg: &TiledGroup,
) -> &'a mut WorkerRun {
    if runs.len() >= WORKER_RUN_CAP && !runs.contains_key(&run.run_id) {
        for (_, wr) in runs.drain() {
            arena_pool.release(wr.arena);
        }
    }
    let wr = runs.entry(run.run_id).or_insert_with(|| WorkerRun {
        group: usize::MAX,
        arena: Vec::new(),
        regs: RegFile::new(),
    });
    if wr.group != group {
        arena_pool.release(std::mem::take(&mut wr.arena));
        // Packed scratch arena, zero-filled exactly like a fresh
        // allocation (consumers may read the zeroed border of a producer's
        // region).
        wr.arena = arena_pool.acquire_zeroed(tg.slots.arena_len);
        wr.group = group;
    }
    wr
}

/// Executes one claimed strip: computes its slabs, then merges them (and
/// the strip's counters) into the run under the run's own lock. The last
/// merge of a drained group finalizes it inline.
fn exec_strip(
    shared: &Arc<Shared>,
    run: &Arc<RunContext>,
    task: Arc<TiledTask>,
    strip: usize,
    slot: usize,
    runs: &mut HashMap<u64, WorkerRun>,
    arena_pool: &mut BufferPool,
) {
    let start = Instant::now();
    let res = catch_unwind(AssertUnwindSafe(|| {
        run_strip(shared, run, &task, strip, runs, arena_pool)
    }));
    drop(task); // release the shared task before merging (see finalize)
    let busy = start.elapsed();

    let mut st = lock(&run.state);
    match res {
        Ok((parts, local)) => {
            let prog = &*run.prog;
            for part in parts {
                let decl = &prog.buffers[part.buf.0];
                let off = ((part.row_lo - decl.origin[0]) * row_size(decl)) as usize;
                st.fulls[part.buf.0][off..off + part.data.len()].copy_from_slice(&part.data);
                shared.pool.release(part.data);
            }
            absorb_local(&mut st, slot, &local, busy);
        }
        Err(p) => fail(&mut st, p),
    }
    finish_claim(shared, run, st);
}

/// Executes one claimed reduction chunk.
fn exec_chunk(
    shared: &Arc<Shared>,
    run: &Arc<RunContext>,
    task: Arc<ReduceTask>,
    chunk: usize,
    slot: usize,
) {
    let start = Instant::now();
    let res = catch_unwind(AssertUnwindSafe(|| run_chunk(shared, run, &task, chunk)));
    drop(task);
    let busy = start.elapsed();

    let mut st = lock(&run.state);
    match res {
        Ok(part) => {
            st.red_parts[chunk] = Some(part);
            absorb_local(&mut st, slot, &LocalStats::default(), busy);
        }
        Err(p) => fail(&mut st, p),
    }
    finish_claim(shared, run, st);
}

/// Records a strip/chunk failure: the run stops handing out claims and
/// completes with the first error once outstanding work drains.
fn fail(st: &mut RunState, p: Box<dyn std::any::Any + Send>) {
    if st.failed.is_none() {
        st.failed = Some(VmError::Internal(format!(
            "worker panicked: {}",
            panic_text(p)
        )));
    }
    st.next_claim = st.total_claims; // stop granting claims
}

/// Closes out one claim; the worker that drains the last one finalizes
/// the group (and keeps advancing the run) inline.
fn finish_claim(shared: &Arc<Shared>, run: &Arc<RunContext>, mut st: MutexGuard<'_, RunState>) {
    st.outstanding -= 1;
    let drained = st.next_claim >= st.total_claims && st.outstanding == 0;
    if drained {
        st.finalize = Some(match st.phase {
            Phase::Tiled(_) => Finalize::Tiled,
            Phase::Reduce(_) => Finalize::Reduce,
            _ => unreachable!("claims exist only in claimable phases"),
        });
        // Replacing the phase drops the run's task handle; together with
        // the workers' (already dropped), the read snapshots become
        // uniquely owned again for recovery.
        st.phase = Phase::Advancing;
    }
    drop(st);
    if drained {
        advance(shared, run);
    } else {
        // Wake scanners that skipped this run while we held its lock.
        notify_workers(shared);
    }
}

/// Computes one strip of a tiled group into pool-backed slabs.
fn run_strip(
    shared: &Shared,
    run: &RunContext,
    task: &TiledTask,
    strip: usize,
    runs: &mut HashMap<u64, WorkerRun>,
    arena_pool: &mut BufferPool,
) -> (Vec<SlabPart>, LocalStats) {
    let prog = &*run.prog;
    let GroupKind::Tiled(tg) = &prog.groups[task.group].kind else {
        panic!("strip work targets a non-tiled group");
    };
    let ws = worker_run_state(runs, arena_pool, run, task.group, tg);
    ws.regs.set_simd(prog.simd);
    let read_refs: Vec<Option<&[f32]>> = task
        .reads
        .iter()
        .map(|r| r.as_ref().map(|a| a.as_slice()))
        .collect();

    // Pool-backed slabs for every written stage this strip covers. Strips
    // are disjoint along dimension 0 and tile stores exactly partition the
    // stage domain, so every element of a strip's slab is written before
    // the run reads it — the zero-fill can be skipped. Exception: a
    // *direct* stage stores only at points its (possibly guarded) cases
    // cover, so unless one case spans the whole domain unconditionally its
    // slab must start zeroed (the zero-for-undefined border convention).
    let mut parts: Vec<SlabPart> = Vec::new();
    for &(k, b) in &task.written {
        if let Some((lo, hi)) = task.strip_rows[k][strip] {
            let len = ((hi - lo + 1) * row_size(&prog.buffers[b.0])) as usize;
            let stage = &tg.stages[k];
            let data = if stage.direct && !stage.covers_domain() {
                shared.pool.acquire_zeroed(len)
            } else {
                shared.pool.acquire(len)
            };
            parts.push(SlabPart {
                buf: b,
                row_lo: lo,
                data,
            });
        }
    }
    let mut local = LocalStats::default();
    {
        let mut slabs: Vec<Slab<'_>> = parts
            .iter_mut()
            .map(|p| {
                let k = task
                    .written
                    .iter()
                    .find(|&&(_, b)| b == p.buf)
                    .map(|&(k, _)| k)
                    .expect("slab for a written stage");
                Slab {
                    stage: k,
                    row_lo: p.row_lo,
                    data: p.data.as_mut_slice(),
                }
            })
            .collect();
        let tiles = &task.tiles_by_strip[strip];
        for (n, &ti) in tiles.iter().enumerate() {
            // Tile-boundary cancellation point: the finest-grained check.
            // A cancelled strip merges what it computed (the run's result
            // is discarded anyway) and reports the tiles it abandoned.
            if run.cancel_reason().is_some() {
                local.cancelled_tiles += (tiles.len() - n) as u64;
                break;
            }
            local.tiles += 1;
            run_tile(
                prog,
                tg,
                &tg.tiles[ti],
                &read_refs,
                &mut slabs,
                &mut ws.arena,
                &mut ws.regs,
                &mut local,
            );
        }
    }
    local.eval = ws.regs.take_counters();
    (parts, local)
}

/// Computes one reduction chunk into a pool-backed, identity-filled
/// partial.
fn run_chunk(shared: &Shared, run: &RunContext, task: &ReduceTask, chunk: usize) -> Vec<f32> {
    let prog = &*run.prog;
    let GroupKind::Reduction(red) = &prog.groups[task.group].kind else {
        panic!("chunk work targets a non-reduction group");
    };
    let read_refs: Vec<Option<&[f32]>> = task
        .reads
        .iter()
        .map(|r| r.as_ref().map(|a| a.as_slice()))
        .collect();
    let views = reduction_views(prog, red, &read_refs);
    let (lo, hi) = task.chunks[chunk];
    // The fill overwrites every element, so no zero-fill is needed.
    let mut part = shared.pool.acquire(task.out_len);
    part.fill(task.identity);
    // Chunk-level cancellation point: a cancelled run's combine step is
    // skipped anyway, so an identity-filled partial is as good as a swept
    // one and costs nothing.
    if run.cancel_reason().is_some() {
        return part;
    }
    let mut dom = red.red_dom.clone();
    *dom.range_mut(0) = (lo, hi);
    sweep_reduction(prog, red, &views, &dom, &mut part);
    part
}

/// Merges one strip's counters into the run statistics at its
/// participation slot.
fn absorb_local(st: &mut RunState, slot: usize, local: &LocalStats, busy: Duration) {
    st.stats.tiles += local.tiles;
    st.stats.cancelled_tiles += local.cancelled_tiles;
    st.stats.chunks += local.chunks;
    st.stats.points_computed += local.points;
    st.stats.uniform_hits += local.eval.uniform_hits;
    st.stats.uniform_misses += local.eval.uniform_misses;
    st.stats.loads.merge(&local.eval.loads);
    st.stats.simd_lanes_avx2 += local.eval.simd_lanes_avx2;
    st.stats.simd_lanes_sse2 += local.eval.simd_lanes_sse2;
    st.stats.simd_lanes_neon += local.eval.simd_lanes_neon;
    st.stats.simd_lanes_scalar += local.eval.simd_lanes_scalar;
    st.stats.worker_tiles[slot] += local.tiles;
    st.stats.worker_busy[slot] += busy;
    st.group_worker[slot].0 += local.tiles;
    st.group_worker[slot].1 += busy;
}

// ---------------------------------------------------------------------------
// The run state machine: setup, sequential groups, finalization, completion.
// ---------------------------------------------------------------------------

/// Advances a run: finalizes a drained group, executes sequential groups
/// inline, sets up the next claimable task, or completes the run. Exactly
/// one worker is ever inside this for a given run (`Phase::Advancing`).
fn advance(shared: &Arc<Shared>, run: &Arc<RunContext>) {
    let res = catch_unwind(AssertUnwindSafe(|| advance_inner(shared, run)));
    if let Err(p) = res {
        // A panic while advancing (sequential group, finalization) fails
        // the run; the state may be mid-transition but is never read again
        // past `complete_run`.
        let already_done = lock(&run.state).result.is_some();
        if !already_done {
            complete_run(
                shared,
                run,
                Err(VmError::Internal(format!(
                    "worker panicked: {}",
                    panic_text(p)
                ))),
            );
        }
    }
}

fn advance_inner(shared: &Arc<Shared>, run: &Arc<RunContext>) {
    let prog = Arc::clone(&run.prog);
    let mut st = lock(&run.state);
    debug_assert!(matches!(st.phase, Phase::Advancing));
    if !st.started {
        st.started = true;
        st.stats.sched_wait = run.submitted.elapsed();
    }

    // Finalize the group whose last claim just drained, if any.
    match st.finalize.take() {
        Some(Finalize::Tiled) => {
            if st.failed.is_none() {
                recover_reads(&mut st);
            }
            end_group(shared, run, &mut st);
        }
        Some(Finalize::Reduce) => {
            if st.failed.is_none() {
                let GroupKind::Reduction(red) = &prog.groups[st.group].kind else {
                    unreachable!("reduce finalize on a non-reduction group");
                };
                if st.red_parts.iter().any(Option::is_none) {
                    st.failed = Some(VmError::Internal("reduction chunk lost".into()));
                } else {
                    // Combine in ascending chunk order — the order the
                    // legacy executor joins its threads — for bit-identical
                    // float results.
                    let mut out_vec = std::mem::take(&mut st.red_out);
                    let parts: Vec<Vec<f32>> = st.red_parts.drain(..).flatten().collect();
                    for part in parts {
                        for (o, p) in out_vec.iter_mut().zip(&part) {
                            *o = red.op.combine(*o as f64, *p as f64) as f32;
                        }
                        shared.pool.release(part);
                    }
                    fix_untouched_identities(red.op, red.op.identity() as f32, &mut out_vec);
                    let out = red.out.0;
                    st.fulls[out] = out_vec;
                    recover_reads(&mut st);
                }
            }
            end_group(shared, run, &mut st);
        }
        None => {}
    }
    if let Some(err) = st.failed.take() {
        drop(st);
        complete_run(shared, run, Err(err));
        return;
    }

    // Walk groups until the run blocks on claimable work or completes.
    // Each iteration is a cancellation point (group-advance granularity):
    // a cancel or deadline signal stops the walk before the next group's
    // buffers are even acquired.
    loop {
        if let Some(reason) = run.cancel_reason() {
            drop(st);
            complete_run(shared, run, Err(VmError::Cancelled { reason }));
            return;
        }
        if st.group == prog.groups.len() {
            let outputs = prog
                .outputs
                .iter()
                .map(|(_, b)| {
                    Buffer::from_vec(decl_rect(&prog.buffers[b.0]), st.fulls[b.0].clone())
                })
                .collect();
            drop(st);
            complete_run(shared, run, Ok(outputs));
            return;
        }
        let gi = st.group;
        acquire_for_group(shared, run, &mut st, gi);
        match &prog.groups[gi].kind {
            GroupKind::Sequential(seq) => {
                begin_group(run, &mut st);
                // Execute outside the lock: polls see `Advancing` and skip.
                let mut fulls = std::mem::take(&mut st.fulls);
                drop(st);
                let r = execute_seq(&prog, seq, &mut fulls);
                st = lock(&run.state);
                st.fulls = fulls;
                end_group(shared, run, &mut st);
                if let Err(e) = r {
                    drop(st);
                    complete_run(shared, run, Err(e));
                    return;
                }
            }
            GroupKind::Reduction(red) => {
                let (rlo, rhi) = red.red_dom.range(0);
                let total = (rhi - rlo + 1).max(0);
                // Same chunking rule as the legacy executor (based on the
                // *requested* thread count, not pool size), so partial
                // boundaries — and therefore float combine order — match
                // `run_program_static` for the same thread count.
                let nth = run.req_threads.min(total.max(1) as usize).max(1);
                let chunk = total.div_euclid(nth as i64) + 1;
                let mut chunks = Vec::with_capacity(nth);
                if nth > 1 {
                    for t in 0..nth {
                        let lo = rlo + t as i64 * chunk;
                        let hi = (lo + chunk - 1).min(rhi);
                        if lo <= hi {
                            chunks.push((lo, hi));
                        }
                    }
                }
                if chunks.is_empty() {
                    // Single sweep straight into the output; no combine
                    // step (and no `0.0 + -0.0` rounding artifacts from
                    // merging partials).
                    begin_group(run, &mut st);
                    let mut fulls = std::mem::take(&mut st.fulls);
                    drop(st);
                    let r = execute_reduction(&prog, red, &mut fulls, 1);
                    st = lock(&run.state);
                    st.fulls = fulls;
                    end_group(shared, run, &mut st);
                    if let Err(e) = r {
                        drop(st);
                        complete_run(shared, run, Err(e));
                        return;
                    }
                } else {
                    begin_group(run, &mut st);
                    let identity = red.op.identity() as f32;
                    let mut out_vec = std::mem::take(&mut st.fulls[red.out.0]);
                    out_vec.fill(identity);
                    st.red_out = out_vec;
                    st.red_parts = {
                        let mut v: Vec<Option<Vec<f32>>> = Vec::new();
                        v.resize_with(chunks.len(), || None);
                        v
                    };
                    let reads = snapshot_reads(&mut st, &[red.out.0]);
                    let out_len = st.red_out.len();
                    st.next_claim = 0;
                    st.total_claims = chunks.len();
                    st.outstanding = 0;
                    st.phase = Phase::Reduce(Arc::new(ReduceTask {
                        group: gi,
                        reads,
                        chunks,
                        out_len,
                        identity,
                    }));
                    drop(st);
                    notify_workers(shared);
                    return;
                }
            }
            GroupKind::Tiled(tg) => {
                let written = match written_stages(tg) {
                    Ok(w) => w,
                    Err(e) => {
                        drop(st);
                        complete_run(shared, run, Err(e));
                        return;
                    }
                };
                begin_group(run, &mut st);
                let (strip_rows, tiles_by_strip) = strip_layout(tg);
                let written_bufs: Vec<usize> = written.iter().map(|&(_, b)| b.0).collect();
                let reads = snapshot_reads(&mut st, &written_bufs);
                st.next_claim = 0;
                st.total_claims = tg.nstrips;
                st.outstanding = 0;
                st.phase = Phase::Tiled(Arc::new(TiledTask {
                    group: gi,
                    reads,
                    written,
                    strip_rows,
                    tiles_by_strip,
                }));
                drop(st);
                notify_workers(shared);
                return;
            }
        }
    }
}

/// Materializes the full buffers whose narrowed lifetime starts at group
/// `gi` (the group walk visits each group index exactly once). Under the
/// run-scoped plan this is a no-op.
fn acquire_for_group(shared: &Shared, run: &RunContext, st: &mut RunState, gi: usize) {
    for (i, b) in run.prog.buffers.iter().enumerate() {
        if b.kind == BufKind::Full && run.prog.storage.acquire_group[i] == Some(gi) {
            debug_assert!(st.fulls[i].is_empty());
            st.fulls[i] = if run.overwritten[i] {
                shared.pool.acquire(b.len())
            } else {
                shared.pool.acquire_zeroed(b.len())
            };
            let bytes = (b.len() * 4) as u64;
            st.cur_full_bytes += bytes;
            st.stats.peak_full_bytes = st.stats.peak_full_bytes.max(st.cur_full_bytes);
            let cur = shared.full_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
            shared.full_peak.fetch_max(cur, Ordering::Relaxed);
        }
    }
}

/// Moves every full buffer the current task does not write behind an
/// `Arc` snapshot workers can read without the run lock; the run keeps a
/// second handle in `reads_keep` for recovery at finalization.
fn snapshot_reads(st: &mut RunState, written: &[usize]) -> Vec<Option<Arc<Vec<f32>>>> {
    let mut reads: Vec<Option<Arc<Vec<f32>>>> = vec![None; st.fulls.len()];
    for (i, v) in st.fulls.iter_mut().enumerate() {
        if !written.contains(&i) {
            let arc = Arc::new(std::mem::take(v));
            st.reads_keep[i] = Some(Arc::clone(&arc));
            reads[i] = Some(arc);
        }
    }
    reads
}

/// Recovers the read snapshots back into `fulls`. All task handles are
/// dropped by the time a group finalizes, so each `Arc` is uniquely owned
/// again; a still-shared buffer fails the run.
fn recover_reads(st: &mut RunState) {
    for i in 0..st.reads_keep.len() {
        if let Some(a) = st.reads_keep[i].take() {
            match Arc::try_unwrap(a) {
                Ok(v) => st.fulls[i] = v,
                Err(_) => {
                    st.failed = Some(VmError::Internal("buffer still shared after group".into()));
                    return;
                }
            }
        }
    }
}

/// Opens the current group: wall-clock start and (when tracing) its span.
fn begin_group(run: &RunContext, st: &mut RunState) {
    st.group_start = Instant::now();
    st.group_span = run.diag.enabled().then(|| run.diag.begin());
    for gw in st.group_worker.iter_mut() {
        *gw = (0, Duration::ZERO);
    }
}

/// Closes the current group: records its wall time, emits its span and
/// per-worker events (all stamped with the run id), releases full buffers
/// whose last consumer just ran, and moves to the next group.
fn end_group(shared: &Shared, run: &RunContext, st: &mut RunState) {
    let prog = &run.prog;
    let group = &prog.groups[st.group];
    if run.group_stats {
        st.stats
            .group_times
            .push((group.name.clone(), st.group_start.elapsed()));
    }
    if run.diag.enabled() {
        for (slot, &(tiles, busy)) in st.group_worker.iter().enumerate() {
            if tiles == 0 && busy.is_zero() {
                continue;
            }
            run.diag.event(
                "worker",
                vec![
                    ("run_id", Value::UInt(run.run_id)),
                    ("group", Value::Str(group.name.clone())),
                    ("worker", Value::UInt(slot as u64)),
                    ("tiles", Value::UInt(tiles)),
                    ("busy_us", Value::UInt(busy.as_micros() as u64)),
                ],
            );
        }
        if let Some(span) = st.group_span.take() {
            run.diag.end(
                span,
                "group",
                vec![
                    ("run_id", Value::UInt(run.run_id)),
                    ("name", Value::Str(group.name.clone())),
                    (
                        "kind",
                        Value::Str(
                            match &group.kind {
                                GroupKind::Tiled(_) => "tiled",
                                GroupKind::Reduction(_) => "reduction",
                                GroupKind::Sequential(_) => "sequential",
                            }
                            .to_string(),
                        ),
                    ),
                ],
            );
        }
    }
    // Liveness-driven early release: buffers whose last consumer was this
    // group go back to the pool now instead of at run completion. On a
    // failed run the snapshot entries are empty and skipped (the Arcs in
    // `reads_keep` are dropped unpooled at completion, as before).
    let gi = st.group;
    for (i, b) in prog.buffers.iter().enumerate() {
        if b.kind == BufKind::Full && prog.storage.release_group[i] == Some(gi) {
            let v = std::mem::take(&mut st.fulls[i]);
            if v.is_empty() {
                continue;
            }
            let bytes = (b.len() * 4) as u64;
            st.cur_full_bytes = st.cur_full_bytes.saturating_sub(bytes);
            shared.full_bytes.fetch_sub(bytes, Ordering::Relaxed);
            st.stats.early_releases += 1;
            shared.pool.release(v);
        }
    }
    st.group += 1;
}

/// Publishes a run's result, releases its buffers, flushes diagnostics,
/// and removes it from the scheduler (freeing an admission slot).
fn complete_run(shared: &Arc<Shared>, run: &Arc<RunContext>, result: Result<Vec<Buffer>, VmError>) {
    let mut st = lock(&run.state);
    st.phase = Phase::Complete;
    for v in st.fulls.drain(..) {
        shared.pool.release(v);
    }
    shared
        .full_bytes
        .fetch_sub(st.cur_full_bytes, Ordering::Relaxed);
    st.cur_full_bytes = 0;
    // A cancelled/failed run skips `recover_reads`, so its snapshot Arcs
    // still hold pool-sized buffers here. All task handles are gone by
    // completion, so each unwraps cleanly and recycles — cancellation
    // releases every pooled buffer immediately, not just the `fulls`.
    for slot in st.reads_keep.iter_mut() {
        if let Some(a) = slot.take() {
            if let Ok(v) = Arc::try_unwrap(a) {
                shared.pool.release(v);
            }
        }
    }
    st.reads_keep.clear();
    shared.pool.release(std::mem::take(&mut st.red_out));
    for part in st.red_parts.drain(..).flatten() {
        shared.pool.release(part);
    }
    if let Err(VmError::Cancelled { reason }) = &result {
        shared.sched_cancels.fetch_add(1, Ordering::Relaxed);
        if *reason == CancelReason::Deadline {
            shared.sched_deadline_misses.fetch_add(1, Ordering::Relaxed);
        }
    }
    if run.diag.enabled() {
        // Pool counters are engine-global: the delta since the previous
        // flush, which under concurrency includes overlapping (and
        // untraced) runs' pool traffic. Totals stay exact; attribution is
        // per completion. Per-run counters (tiles, evaluator) are exact.
        let now = shared.pool.stats();
        let mut fl = lock(&shared.flushed);
        run.diag
            .count(Counter::PoolAcquire, now.acquires - fl.pool.acquires);
        run.diag
            .count(Counter::PoolReuse, now.reuses - fl.pool.reuses);
        run.diag
            .count(Counter::PoolDrop, now.dropped - fl.pool.dropped);
        fl.pool = now;
        // The engine-global full-buffer peak is monotone; flushing the
        // delta keeps the summed counter equal to the final peak.
        let peak_now = shared.full_peak.load(Ordering::Relaxed);
        run.diag.count(
            Counter::StoragePeakBytes,
            peak_now.saturating_sub(fl.peak_full_bytes),
        );
        fl.peak_full_bytes = fl.peak_full_bytes.max(peak_now);
        // Scheduler counters are engine-global like the pool's: flushed as
        // the delta since the previous completion's flush.
        let pre = shared.sched_preempts.load(Ordering::Relaxed);
        run.diag
            .count(Counter::SchedPreempt, pre - fl.sched_preempts);
        fl.sched_preempts = pre;
        let shed = shared.sched_sheds.load(Ordering::Relaxed);
        run.diag.count(Counter::SchedShed, shed - fl.sched_sheds);
        fl.sched_sheds = shed;
        let canc = shared.sched_cancels.load(Ordering::Relaxed);
        run.diag
            .count(Counter::SchedCancel, canc - fl.sched_cancels);
        fl.sched_cancels = canc;
        let dlm = shared.sched_deadline_misses.load(Ordering::Relaxed);
        run.diag
            .count(Counter::SchedDeadlineMiss, dlm - fl.sched_deadline_misses);
        fl.sched_deadline_misses = dlm;
        drop(fl);
        run.diag
            .count(Counter::StorageEarlyRelease, st.stats.early_releases);
        run.diag.count(Counter::TileClaim, st.stats.tiles);
        run.diag.count(Counter::UniformHit, st.stats.uniform_hits);
        run.diag
            .count(Counter::UniformMiss, st.stats.uniform_misses);
        run.diag
            .count(Counter::LoadBroadcast, st.stats.loads.broadcast as u64);
        run.diag
            .count(Counter::LoadContiguous, st.stats.loads.contiguous as u64);
        run.diag
            .count(Counter::LoadStrided, st.stats.loads.strided as u64);
        run.diag
            .count(Counter::LoadGather, st.stats.loads.gather as u64);
        run.diag
            .count(Counter::SimdLanesAvx2, st.stats.simd_lanes_avx2);
        run.diag
            .count(Counter::SimdLanesSse2, st.stats.simd_lanes_sse2);
        run.diag
            .count(Counter::SimdLanesNeon, st.stats.simd_lanes_neon);
        run.diag
            .count(Counter::SimdLanesScalar, st.stats.simd_lanes_scalar);
        if let Some(span) = st.run_span.take() {
            let mut args = vec![
                ("run_id", Value::UInt(run.run_id)),
                ("program", Value::Str(run.prog.name.clone())),
                ("nthreads", Value::UInt(run.req_threads as u64)),
                ("tiles", Value::UInt(st.stats.tiles)),
                ("points", Value::UInt(st.stats.points_computed)),
                ("priority", Value::Str(run.priority.label().to_string())),
                (
                    "sched_wait_us",
                    Value::UInt(st.stats.sched_wait.as_micros() as u64),
                ),
            ];
            if let Some(dl) = run.deadline {
                // Relative to submission: the latency budget the caller
                // gave the run.
                args.push((
                    "deadline_us",
                    Value::UInt(dl.saturating_duration_since(run.submitted).as_micros() as u64),
                ));
            }
            match &result {
                Ok(_) => args.push(("status", Value::Str("ok".to_string()))),
                Err(VmError::Cancelled { reason }) => {
                    args.push(("status", Value::Str("cancelled".to_string())));
                    args.push(("cancel_reason", Value::Str(reason.label().to_string())));
                    args.push(("cancelled_tiles", Value::UInt(st.stats.cancelled_tiles)));
                }
                Err(_) => args.push(("status", Value::Str("failed".to_string()))),
            }
            run.diag.end(span, "run", args);
        }
    }
    st.result = Some(result);
    run.done_cv.notify_all();
    drop(st);

    let mut sched = lock(&shared.sched);
    sched.runs.retain(|r| r.run_id != run.run_id);
    sched.inflight -= 1;
    shared.admit_cv.notify_one();
    shared.work_cv.notify_all();
}
