//! A freelist allocator for `f32` working buffers.

/// Counters and occupancy of a [`BufferPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out (both acquire variants).
    pub acquires: u64,
    /// Acquisitions served by a retained allocation instead of a fresh one.
    pub reuses: u64,
    /// Releases dropped because the freelist was at its retention cap.
    pub dropped: u64,
    /// Bytes currently retained on the freelist (by capacity).
    pub retained_bytes: usize,
}

/// A bounded freelist of `Vec<f32>` allocations, shared by the
/// [`crate::Engine`] coordinator and its workers for full buffers, output
/// slabs, and reduction partials.
///
/// [`BufferPool::acquire_zeroed`] returns a zero-filled vector of exactly
/// the requested length; [`BufferPool::acquire`] skips the zero-fill for
/// buffers the caller provably overwrites in full before any read (see the
/// method contract). Both reuse the retained allocation with the smallest
/// sufficient capacity when one exists; [`BufferPool::release`] returns a
/// vector to the freelist. Retention is capped so pathological workloads
/// cannot hoard memory indefinitely.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<f32>>,
    stats: PoolStats,
}

/// Maximum number of free buffers retained for reuse.
pub(crate) const MAX_RETAINED: usize = 64;

impl BufferPool {
    /// An empty pool.
    pub fn new() -> BufferPool {
        BufferPool::default()
    }

    /// Pops the retained allocation with the smallest sufficient capacity,
    /// if any (best fit).
    fn pop_best_fit(&mut self, len: usize) -> Option<Vec<f32>> {
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, v) in self.free.iter().enumerate() {
            let cap = v.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        best.map(|(i, cap)| {
            self.stats.reuses += 1;
            self.stats.retained_bytes -= cap * std::mem::size_of::<f32>();
            self.free.swap_remove(i)
        })
    }

    /// A zero-filled vector of length `len`, reusing a retained allocation
    /// when one is large enough (best fit by capacity).
    pub fn acquire_zeroed(&mut self, len: usize) -> Vec<f32> {
        self.stats.acquires += 1;
        let mut v = self.pop_best_fit(len).unwrap_or_default();
        v.clear();
        v.resize(len, 0.0);
        v
    }

    /// A vector of length `len` with **arbitrary contents** (whatever the
    /// previous user left behind), reusing a retained allocation when one
    /// is large enough.
    ///
    /// Only for buffers the caller provably writes in full before any
    /// read — e.g. full-array group sinks, whose tile stores exactly
    /// partition a buffer sized exactly to the stage domain (the invariant
    /// `polymage_core`'s validator checks). Callers that may leave any
    /// element unwritten must use [`BufferPool::acquire_zeroed`].
    pub fn acquire(&mut self, len: usize) -> Vec<f32> {
        self.stats.acquires += 1;
        match self.pop_best_fit(len) {
            Some(mut v) => {
                if v.len() >= len {
                    v.truncate(len);
                } else {
                    // Only the tail beyond the previous length is
                    // zero-filled; the rest keeps stale contents.
                    v.resize(len, 0.0);
                }
                v
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a vector to the freelist for later reuse. At the retention
    /// cap (`MAX_RETAINED` buffers) the allocation is dropped instead.
    pub fn release(&mut self, v: Vec<f32>) {
        if v.capacity() == 0 {
            return;
        }
        if self.free.len() < MAX_RETAINED {
            self.stats.retained_bytes += v.capacity() * std::mem::size_of::<f32>();
            self.free.push(v);
        } else {
            self.stats.dropped += 1;
        }
    }

    /// Counters and occupancy since creation.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of currently retained free buffers.
    pub fn retained(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_capacity_and_zeroes() {
        let mut p = BufferPool::new();
        let mut v = p.acquire_zeroed(100);
        assert!(v.iter().all(|&x| x == 0.0));
        v.iter_mut().for_each(|x| *x = 7.0);
        let cap = v.capacity();
        p.release(v);
        assert_eq!(p.retained(), 1);
        assert_eq!(p.stats().retained_bytes, cap * 4);
        let v2 = p.acquire_zeroed(50);
        assert_eq!(v2.len(), 50);
        assert!(v2.capacity() >= cap.min(100));
        assert!(
            v2.iter().all(|&x| x == 0.0),
            "reused buffer must be re-zeroed"
        );
        let s = p.stats();
        assert_eq!((s.acquires, s.reuses), (2, 1));
        assert_eq!(s.retained_bytes, 0);
        assert_eq!(p.retained(), 0);
    }

    #[test]
    fn acquire_skips_zeroing_but_fixes_length() {
        let mut p = BufferPool::new();
        let mut v = p.acquire_zeroed(100);
        v.iter_mut().for_each(|x| *x = 3.0);
        p.release(v);

        // Shrinking reuse: stale contents are visible, length is exact.
        let v2 = p.acquire(40);
        assert_eq!(v2.len(), 40);
        assert!(v2.iter().all(|&x| x == 3.0), "acquire must not zero");
        p.release(v2);

        // Growing reuse within capacity: the tail past the previous length
        // is zero-filled, the prefix keeps stale contents.
        let v3 = p.acquire(60);
        assert_eq!(v3.len(), 60);
        assert!(v3[..40].iter().all(|&x| x == 3.0));
        assert!(v3[40..].iter().all(|&x| x == 0.0));

        // Fresh allocations are zeroed by construction.
        let v4 = p.acquire(10_000);
        assert!(v4.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut p = BufferPool::new();
        let big = p.acquire_zeroed(1000);
        let small = p.acquire_zeroed(10);
        p.release(big);
        p.release(small);
        let v = p.acquire_zeroed(8);
        assert!(v.capacity() < 1000, "should reuse the 10-element buffer");
        let v2 = p.acquire_zeroed(500);
        assert!(
            v2.capacity() >= 1000,
            "should reuse the 1000-element buffer"
        );
    }

    #[test]
    fn empty_vectors_are_not_retained() {
        let mut p = BufferPool::new();
        p.release(Vec::new());
        assert_eq!(p.retained(), 0);
        assert_eq!(p.stats().dropped, 0);
    }

    #[test]
    fn eviction_at_the_retention_cap() {
        let mut p = BufferPool::new();
        let bufs: Vec<Vec<f32>> = (0..MAX_RETAINED + 3).map(|_| vec![0.0; 16]).collect();
        let mut expected_bytes = 0;
        for (i, v) in bufs.into_iter().enumerate() {
            if i < MAX_RETAINED {
                expected_bytes += v.capacity() * 4;
            }
            p.release(v);
        }
        assert_eq!(p.retained(), MAX_RETAINED);
        let s = p.stats();
        assert_eq!(s.dropped, 3, "releases beyond the cap are dropped");
        assert_eq!(s.retained_bytes, expected_bytes);

        // Draining one slot re-opens retention for exactly one buffer.
        let v = p.acquire(16);
        assert_eq!(p.retained(), MAX_RETAINED - 1);
        p.release(v);
        p.release(vec![0.0; 16]);
        assert_eq!(p.retained(), MAX_RETAINED);
        assert_eq!(p.stats().dropped, 4);
    }
}
