//! Human-readable compilation reports (grouping structure, storage, tiles).
//!
//! The paper communicates its results partly through the *structure* the
//! compiler finds — e.g. Fig. 8's grouping of the Pyramid Blending pipeline.
//! [`CompileReport`] exposes that structure programmatically (tests pin it
//! down) and as text/dot renderings.

use crate::GroupKindTag;
use std::fmt;

/// Report for one scheduled group.
#[derive(Debug, Clone)]
pub struct GroupReport {
    /// Sink stage name.
    pub sink: String,
    /// All member stage names (pipeline order).
    pub stages: Vec<String>,
    /// Execution class.
    pub kind: GroupKindTag,
    /// Effective tile size per sink dimension (`None` = untiled).
    pub tile_sizes: Vec<Option<i64>>,
    /// Per group dimension: (left, right) overlap in scheduled units.
    pub overlap: Vec<(i64, i64)>,
    /// Estimated redundant-computation fraction for the effective tile
    /// sizes (`∏(τ+o)/∏τ − 1`); `0.0` for non-normal or untiled groups.
    pub overlap_ratio: f64,
    /// Scratchpad bytes allocated per thread for this group.
    pub scratch_bytes: usize,
    /// Full-array bytes allocated for this group's outputs.
    pub full_bytes: usize,
    /// Per-thread scratch arena bytes after liveness folding (equals the
    /// aligned sum of `scratch_bytes` when folding is off; `0` for
    /// non-tiled groups).
    pub scratch_folded_bytes: usize,
    /// Number of shared arena slots after folding (`0` for non-tiled
    /// groups).
    pub scratch_slots: usize,
    /// The cache model's predicted per-tile working set in bytes for the
    /// chosen tile shape (`0` when the group was not model-tiled, i.e.
    /// under `TileSpec::Fixed` or for non-normal groups).
    pub predicted_working_set: usize,
    /// `true` when the cache model found no shape satisfying every
    /// constraint and fell back to the fixed baseline.
    pub tile_model_fallback: bool,
}

/// Phase provenance of a compiled artifact: which parameter estimates the
/// size-independent plan (phase 1) was built with, which concrete values
/// the instantiation (phase 2) bound, and how many kernels the bind could
/// reuse verbatim from the plan versus re-specialize for the bound
/// geometry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Provenance {
    /// Parameter estimates the plan's heuristics (grouping, tile choice,
    /// kernel pre-optimization) used.
    pub estimates: Vec<i64>,
    /// Concrete parameter values this instance was bound to.
    pub params: Vec<i64>,
    /// Kernels taken verbatim from the plan's pre-optimized protos.
    pub kernels_reused: usize,
    /// Kernels re-optimized at bind time (parameter-sensitive, or the
    /// bound geometry's fixed-dimension signature diverged).
    pub kernels_respecialized: usize,
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_vec = |v: &[i64]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        write!(
            f,
            "plan@[{}] bound@[{}] kernels reused={} respecialized={}",
            fmt_vec(&self.estimates),
            fmt_vec(&self.params),
            self.kernels_reused,
            self.kernels_respecialized
        )
    }
}

/// The complete compilation report.
#[derive(Debug, Clone, Default)]
pub struct CompileReport {
    /// Stages inlined by the front-end.
    pub inlined: Vec<String>,
    /// Stages dropped as dead code.
    pub dead: Vec<String>,
    /// Scheduled groups, in execution order.
    pub groups: Vec<GroupReport>,
    /// Per-kernel optimizer statistics (empty when `kernel_opt` is off).
    pub kernels: Vec<polymage_vm::KernelOptReport>,
    /// The SIMD level the compiled program dispatches to (environment
    /// override and host clamping already applied).
    pub simd: polymage_vm::SimdLevel,
    /// Estimated peak bytes of concurrently resident full buffers under
    /// the program's acquire/release schedule (input images included).
    pub peak_full_bytes: usize,
    /// Which estimates planned this artifact, which values bound it, and
    /// the kernel reuse/respecialization split.
    pub provenance: Provenance,
}

impl CompileReport {
    /// Group sizes (number of stages per group).
    pub fn group_sizes(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g.stages.len()).collect()
    }

    /// Finds the group containing a stage by name.
    pub fn group_of(&self, stage: &str) -> Option<&GroupReport> {
        self.groups
            .iter()
            .find(|g| g.stages.iter().any(|s| s == stage))
    }

    /// Pairs each group report with its measured wall-clock duration from
    /// an execution's [`polymage_vm::RunStats`] (both are in execution
    /// order). Groups beyond the shorter list are dropped, so an empty
    /// `group_times` (e.g. from the legacy static executor) yields an
    /// empty profile.
    pub fn with_timings<'a>(
        &'a self,
        stats: &polymage_vm::RunStats,
    ) -> Vec<(&'a GroupReport, std::time::Duration)> {
        self.groups
            .iter()
            .zip(&stats.group_times)
            .map(|(g, (_, d))| (g, *d))
            .collect()
    }

    /// The model's predicted redundancy fraction for the whole pipeline:
    /// the maximum per-group overlap ratio (the group that dominates
    /// redundant recomputation). `0.0` when nothing fused.
    pub fn predicted_overlap(&self) -> f64 {
        self.groups
            .iter()
            .map(|g| g.overlap_ratio)
            .fold(0.0, f64::max)
    }

    /// Total ops removed by the kernel optimizer across all kernels.
    pub fn ops_eliminated(&self) -> usize {
        self.kernels.iter().map(|k| k.eliminated_ops()).sum()
    }

    /// Total registers removed by compaction across all kernels.
    pub fn regs_eliminated(&self) -> usize {
        self.kernels.iter().map(|k| k.eliminated_regs()).sum()
    }

    /// Load-class histogram merged over all kernels.
    pub fn load_histogram(&self) -> polymage_vm::LoadHistogram {
        let mut h = polymage_vm::LoadHistogram::default();
        for k in &self.kernels {
            h.merge(&k.loads);
        }
        h
    }

    /// Renders the grouping as Graphviz clusters (Fig. 8 style).
    pub fn grouping_dot(&self) -> String {
        let mut s = String::from("digraph grouping {\n");
        for (i, g) in self.groups.iter().enumerate() {
            s.push_str(&format!(
                "  subgraph cluster_{i} {{ label=\"{} ({:?})\";\n",
                g.sink, g.kind
            ));
            for st in &g.stages {
                s.push_str(&format!("    \"{st}\";\n"));
            }
            s.push_str("  }\n");
        }
        s.push_str("}\n");
        s
    }
}

impl fmt::Display for CompileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.inlined.is_empty() {
            writeln!(f, "inlined: {}", self.inlined.join(", "))?;
        }
        if !self.dead.is_empty() {
            writeln!(f, "dead: {}", self.dead.join(", "))?;
        }
        for (i, g) in self.groups.iter().enumerate() {
            let tiles: Vec<String> = g
                .tile_sizes
                .iter()
                .map(|t| t.map_or("-".to_string(), |v| v.to_string()))
                .collect();
            let ov: Vec<String> = g.overlap.iter().map(|(l, r)| format!("{l}+{r}")).collect();
            let model = if g.predicted_working_set > 0 {
                format!(
                    " model_ws={}B{}",
                    g.predicted_working_set,
                    if g.tile_model_fallback {
                        " (fallback)"
                    } else {
                        ""
                    }
                )
            } else {
                String::new()
            };
            writeln!(
                f,
                "group {i} [{:?}] sink={} tiles=({}) overlap=({}) \
                 scratch={}B folded={}B/{} slots full={}B{}: {}",
                g.kind,
                g.sink,
                tiles.join(","),
                ov.join(","),
                g.scratch_bytes,
                g.scratch_folded_bytes,
                g.scratch_slots,
                g.full_bytes,
                model,
                g.stages.join(" ")
            )?;
        }
        writeln!(f, "simd: {}", self.simd)?;
        writeln!(f, "peak full bytes: {}", self.peak_full_bytes)?;
        writeln!(f, "provenance: {}", self.provenance)?;
        if !self.kernels.is_empty() {
            writeln!(
                f,
                "kernel opt: {} ops / {} regs eliminated, loads [{}]",
                self.ops_eliminated(),
                self.regs_eliminated(),
                self.load_histogram()
            )?;
            for k in &self.kernels {
                writeln!(f, "  {k}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CompileReport {
        CompileReport {
            inlined: vec!["a".into()],
            dead: vec![],
            groups: vec![GroupReport {
                sink: "out".into(),
                stages: vec!["b".into(), "out".into()],
                kind: GroupKindTag::Normal,
                tile_sizes: vec![Some(32), Some(256)],
                overlap: vec![(2, 2), (2, 2)],
                overlap_ratio: 0.07,
                scratch_bytes: 1024,
                full_bytes: 4096,
                scratch_folded_bytes: 512,
                scratch_slots: 1,
                predicted_working_set: 98304,
                tile_model_fallback: false,
            }],
            kernels: vec![],
            simd: polymage_vm::SimdLevel::Scalar,
            peak_full_bytes: 8192,
            provenance: Provenance {
                estimates: vec![64, 64],
                params: vec![128, 128],
                kernels_reused: 3,
                kernels_respecialized: 1,
            },
        }
    }

    #[test]
    fn queries() {
        let r = sample();
        assert_eq!(r.group_sizes(), vec![2]);
        assert!(r.group_of("b").is_some());
        assert!(r.group_of("zzz").is_none());
        assert!((r.predicted_overlap() - 0.07).abs() < 1e-12);
    }

    #[test]
    fn renders() {
        let r = sample();
        let text = r.to_string();
        assert!(text.contains("inlined: a"));
        assert!(text.contains("sink=out"));
        assert!(text.contains("simd: scalar"));
        assert!(text.contains("folded=512B/1 slots"));
        assert!(text.contains("model_ws=98304B"));
        assert!(text.contains("peak full bytes: 8192"));
        assert!(text
            .contains("provenance: plan@[64,64] bound@[128,128] kernels reused=3 respecialized=1"));
        let dot = r.grouping_dot();
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("\"out\""));
    }
}
