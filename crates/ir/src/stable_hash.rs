//! Deterministic structural hashing of pipeline specifications.
//!
//! `polymage_core::Session` keys its compile cache by a content hash of the
//! `(Pipeline, params, CompileOptions)` triple, so the hash must be *stable*:
//! identical across processes, runs, and platforms. `std::hash::Hash` with
//! the default `RandomState` is per-process seeded and therefore unusable;
//! this module provides [`StableHasher`] (a fixed splitmix64-mixing hasher)
//! and the [`StableHash`] trait with implementations for every IR type that
//! can appear in a [`Pipeline`](crate::Pipeline).
//!
//! Conventions that make the hash well-defined:
//!
//! - enum variants contribute an explicit literal tag byte (never a compiler
//!   discriminant),
//! - `f64` constants hash by [`f64::to_bits`], so `0.0` and `-0.0` are
//!   distinct and NaNs hash by payload,
//! - every variable-length sequence hashes its length first, so adjacent
//!   collections cannot alias each other.

use crate::{
    Accumulate, Case, Cond, Expr, FuncBody, FuncDef, ImageDecl, Interval, PAff, Source, VarDom,
};

/// A deterministic 64-bit streaming hasher (no per-process seeding).
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

fn mix(mut z: u64) -> u64 {
    // splitmix64 finalizer
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StableHasher {
    /// A hasher with the fixed initial state.
    pub fn new() -> Self {
        StableHasher {
            state: 0x243F_6A88_85A3_08D3,
        } // pi digits
    }

    /// Absorbs 64 bits.
    pub fn write_u64(&mut self, v: u64) {
        self.state = mix(self.state.rotate_left(5) ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
    }

    /// Absorbs a tag / small integer.
    pub fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    /// Absorbs a signed integer.
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// Absorbs a length or index (usize hashed as u64 for portability).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a float by bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a string (length-prefixed).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        // Hash 8 bytes at a time; the length prefix disambiguates tails.
        let mut chunks = s.as_bytes().chunks_exact(8);
        for c in chunks.by_ref() {
            self.write_u64(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let mut tail = [0u8; 8];
        let rem = chunks.remainder();
        tail[..rem.len()].copy_from_slice(rem);
        if !rem.is_empty() {
            self.write_u64(u64::from_le_bytes(tail));
        }
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        mix(self.state)
    }
}

/// Types with a deterministic structural hash.
pub trait StableHash {
    /// Feeds this value's structure into the hasher.
    fn stable_hash(&self, h: &mut StableHasher);
}

impl StableHash for u64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(*self);
    }
}

impl StableHash for i64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_i64(*self);
    }
}

impl StableHash for f64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_f64(*self);
    }
}

impl StableHash for bool {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u8(*self as u8);
    }
}

impl StableHash for usize {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_usize(*self);
    }
}

impl StableHash for str {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl StableHash for String {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl<T: StableHash> StableHash for [T] {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_usize(self.len());
        for v in self {
            v.stable_hash(h);
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_slice().stable_hash(h);
    }
}

impl<T: StableHash> StableHash for Option<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            None => h.write_u8(0),
            Some(v) => {
                h.write_u8(1);
                v.stable_hash(h);
            }
        }
    }
}

impl<A: StableHash, B: StableHash> StableHash for (A, B) {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
    }
}

macro_rules! stable_hash_ids {
    ($($t:ty),+) => {$(
        impl StableHash for $t {
            fn stable_hash(&self, h: &mut StableHasher) {
                h.write_usize(self.index());
            }
        }
    )+};
}

stable_hash_ids!(crate::FuncId, crate::ImageId, crate::ParamId, crate::VarId);

macro_rules! stable_hash_tag_enums {
    ($($t:ty),+) => {$(
        impl StableHash for $t {
            fn stable_hash(&self, h: &mut StableHasher) {
                h.write_u8(*self as u8);
            }
        }
    )+};
}

stable_hash_tag_enums!(
    crate::UnOp,
    crate::BinOp,
    crate::CmpOp,
    crate::Reduction,
    crate::ScalarType
);

impl StableHash for Source {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            Source::Func(f) => {
                h.write_u8(0);
                f.stable_hash(h);
            }
            Source::Image(i) => {
                h.write_u8(1);
                i.stable_hash(h);
            }
        }
    }
}

impl StableHash for PAff {
    fn stable_hash(&self, h: &mut StableHasher) {
        // PAff is kept normalized, so structural hashing is semantic.
        h.write_i64(self.num_const());
        h.write_i64(self.denominator());
        let terms: Vec<_> = self.terms().collect();
        h.write_usize(terms.len());
        for (p, a) in terms {
            p.stable_hash(h);
            h.write_i64(a);
        }
    }
}

impl StableHash for Interval {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.lo.stable_hash(h);
        self.hi.stable_hash(h);
    }
}

impl StableHash for Expr {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            Expr::Const(v) => {
                h.write_u8(0);
                h.write_f64(*v);
            }
            Expr::Var(v) => {
                h.write_u8(1);
                v.stable_hash(h);
            }
            Expr::Param(p) => {
                h.write_u8(2);
                p.stable_hash(h);
            }
            Expr::Call(src, args) => {
                h.write_u8(3);
                src.stable_hash(h);
                args.stable_hash(h);
            }
            Expr::Unary(op, a) => {
                h.write_u8(4);
                op.stable_hash(h);
                a.stable_hash(h);
            }
            Expr::Binary(op, a, b) => {
                h.write_u8(5);
                op.stable_hash(h);
                a.stable_hash(h);
                b.stable_hash(h);
            }
            Expr::Select(c, a, b) => {
                h.write_u8(6);
                c.stable_hash(h);
                a.stable_hash(h);
                b.stable_hash(h);
            }
            Expr::Cast(ty, a) => {
                h.write_u8(7);
                ty.stable_hash(h);
                a.stable_hash(h);
            }
        }
    }
}

impl StableHash for Cond {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            Cond::Cmp(op, a, b) => {
                h.write_u8(0);
                op.stable_hash(h);
                a.stable_hash(h);
                b.stable_hash(h);
            }
            Cond::And(a, b) => {
                h.write_u8(1);
                a.stable_hash(h);
                b.stable_hash(h);
            }
            Cond::Or(a, b) => {
                h.write_u8(2);
                a.stable_hash(h);
                b.stable_hash(h);
            }
            Cond::Not(a) => {
                h.write_u8(3);
                a.stable_hash(h);
            }
        }
    }
}

impl<T: StableHash + ?Sized> StableHash for Box<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        (**self).stable_hash(h);
    }
}

impl StableHash for Case {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.cond.stable_hash(h);
        self.expr.stable_hash(h);
    }
}

impl StableHash for Accumulate {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.red_vars.stable_hash(h);
        self.red_dom.stable_hash(h);
        self.target.stable_hash(h);
        self.value.stable_hash(h);
        self.op.stable_hash(h);
    }
}

impl StableHash for FuncBody {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            FuncBody::Undefined => h.write_u8(0),
            FuncBody::Cases(cs) => {
                h.write_u8(1);
                cs.stable_hash(h);
            }
            FuncBody::Reduce(acc) => {
                h.write_u8(2);
                acc.stable_hash(h);
            }
        }
    }
}

impl StableHash for VarDom {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.vars.stable_hash(h);
        self.dom.stable_hash(h);
    }
}

impl StableHash for FuncDef {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.name.stable_hash(h);
        self.var_dom.stable_hash(h);
        self.ty.stable_hash(h);
        self.body.stable_hash(h);
    }
}

impl StableHash for ImageDecl {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.name.stable_hash(h);
        self.ty.stable_hash(h);
        self.extents.stable_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PipelineBuilder, ScalarType};

    fn tiny(weight: f64) -> crate::Pipeline {
        let mut p = PipelineBuilder::new("tiny");
        let img = p.image("in", ScalarType::Float, vec![PAff::cst(16)]);
        let x = p.var("x");
        let f = p.func("f", &[(x, Interval::cst(1, 14))], ScalarType::Float);
        let e = (Expr::at(img, [x - 1]) + Expr::at(img, [x + 1])) * weight;
        p.define(f, vec![Case::always(e)]).unwrap();
        p.finish(&[f]).unwrap()
    }

    #[test]
    fn identical_pipelines_hash_equal() {
        assert_eq!(tiny(0.5).content_hash(), tiny(0.5).content_hash());
    }

    #[test]
    fn constant_change_hash_differs() {
        assert_ne!(tiny(0.5).content_hash(), tiny(0.25).content_hash());
    }

    #[test]
    fn sign_of_zero_distinguished() {
        assert_ne!(tiny(0.0).content_hash(), tiny(-0.0).content_hash());
    }

    #[test]
    fn length_prefix_prevents_sequence_aliasing() {
        let mut a = StableHasher::new();
        vec!["ab".to_string(), "c".to_string()].stable_hash(&mut a);
        let mut b = StableHasher::new();
        vec!["a".to_string(), "bc".to_string()].stable_hash(&mut b);
        assert_ne!(a.finish(), b.finish());
    }
}
