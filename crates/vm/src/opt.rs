//! The kernel optimizer: a pass pipeline over [`Kernel`] SSA.
//!
//! `core::lower` emits kernels structurally — one op per expression node —
//! so they carry constants that are re-broadcast every chunk, duplicate
//! subexpressions across case lowering, guard arithmetic that never feeds a
//! result, and loads that walk a generic plan. This module rewrites kernels
//! between lowering and execution:
//!
//! 1. **Constant folding** — ops whose operands are all constants are
//!    evaluated at compile time with the *same scalar functions* the
//!    evaluator uses (`crate::eval`'s `scalar_*` helpers), so folded
//!    results are bit-identical to runtime results.
//! 2. **Identity / algebraic simplification and strength reduction** —
//!    restricted to rewrites that are **bit-exact** over all `f32` inputs
//!    (or over the values the operand can take, e.g. 0/1 masks). See
//!    `DESIGN.md` §3.2 for the catalog and the exactness arguments;
//!    notably `x + 0.0 → x` is *not* applied (wrong for `x = -0.0`) but
//!    `x + (-0.0) → x` is.
//! 3. **Common-subexpression elimination** — structural, like the
//!    `KernelBuilder`'s emit-time CSE, re-run because folding and renaming
//!    expose new duplicates.
//! 4. **Dead-code elimination** — ops whose results never reach `outs`
//!    (value, store mask, reduction indices) are dropped.
//! 5. **Register compaction** — registers are densely renumbered in
//!    definition order, shrinking the `RegFile` working set and restoring
//!    the strict operands-precede-destination SSA order the evaluator's
//!    disjoint borrows rely on.
//!
//! Finally the pass computes per-register *dimension dependence* masks
//! ([`OptMeta`]): which consumer loop dimensions each register's value can
//! vary with. The evaluator uses them to split the kernel into a scalar
//! per-row preamble (chunk-invariant ops) and a lane-varying body, and to
//! dispatch loads through `crate::loadclass`'s specialized forms.
//!
//! All rewrites preserve bit-exact results; `kernel_opt: false` in
//! `polymage_core::CompileOptions` skips this module entirely for ablation.

use crate::eval::{scalar_bin, scalar_cmp, scalar_round, scalar_un};
use crate::kernel::OptMeta;
use crate::loadclass::{classify, LoadHistogram};
use crate::{BinF, GroupKind, IdxPlan, Kernel, Op, Program, RegId, UnF};

/// Per-kernel optimization statistics, surfaced through
/// `polymage_core::CompileReport` and `bin/inspect`.
#[derive(Debug, Clone, Default)]
pub struct KernelOptReport {
    /// Kernel identifier: `group/stage#case`.
    pub name: String,
    /// Op count before optimization.
    pub ops_before: usize,
    /// Op count after optimization.
    pub ops_after: usize,
    /// Register count before optimization.
    pub regs_before: usize,
    /// Register count after compaction.
    pub regs_after: usize,
    /// Ops replaced by compile-time constants.
    pub folded: usize,
    /// Identity/strength-reduction/CSE rewrites applied.
    pub simplified: usize,
    /// Ops that are chunk-invariant under the nominal (innermost) chunk
    /// axis — evaluated once per row instead of per lane.
    pub uniform_ops: usize,
    /// Load classes under the nominal chunk axis.
    pub loads: LoadHistogram,
}

impl KernelOptReport {
    /// Ops removed by folding + DCE (before − after).
    pub fn eliminated_ops(&self) -> usize {
        self.ops_before.saturating_sub(self.ops_after)
    }

    /// Registers removed by compaction (before − after).
    pub fn eliminated_regs(&self) -> usize {
        self.regs_before.saturating_sub(self.regs_after)
    }
}

impl std::fmt::Display for KernelOptReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: ops {}→{} (folded {}, simplified {}), regs {}→{}, uniform {}, loads [{}]",
            self.name,
            self.ops_before,
            self.ops_after,
            self.folded,
            self.simplified,
            self.regs_before,
            self.regs_after,
            self.uniform_ops,
            self.loads
        )
    }
}

/// Optimizes every kernel of a compiled program in place, returning one
/// report per kernel. Store masks ([`crate::CaseExec::mask`]) and stage
/// read sets are re-synchronized after register renumbering.
pub fn optimize_program(prog: &mut Program) -> Vec<KernelOptReport> {
    let mut reports = Vec::new();
    for group in &mut prog.groups {
        match &mut group.kind {
            GroupKind::Tiled(tg) => {
                for stage in &mut tg.stages {
                    let ndims = stage.dom.ndim();
                    for (ci, case) in stage.cases.iter_mut().enumerate() {
                        let name = format!("{}/{}#{}", group.name, stage.name, ci);
                        let fixed = fixed_dims(&case.rect.intersect(&stage.dom), &case.steps);
                        reports.push(optimize_kernel(&mut case.kernel, ndims, &fixed, name));
                        sync_mask(case);
                    }
                    stage.reads = collect_reads(stage.cases.iter().map(|c| &c.kernel), None);
                }
            }
            GroupKind::Reduction(red) => {
                let ndims = red.red_dom.ndim();
                let name = format!("{}/{}", group.name, red.name);
                let fixed = fixed_dims(&red.red_dom, &[]);
                reports.push(optimize_kernel(&mut red.kernel, ndims, &fixed, name));
                red.reads = collect_reads(std::iter::once(&red.kernel), None);
            }
            GroupKind::Sequential(seq) => {
                let ndims = seq.dom.ndim();
                for (ci, case) in seq.cases.iter_mut().enumerate() {
                    let name = format!("{}/{}#{}", group.name, seq.name, ci);
                    let fixed = fixed_dims(&case.rect.intersect(&seq.dom), &case.steps);
                    reports.push(optimize_kernel(&mut case.kernel, ndims, &fixed, name));
                    sync_mask(case);
                }
                let out = seq.out;
                seq.reads = collect_reads(seq.cases.iter().map(|c| &c.kernel), Some(out));
            }
        }
    }
    reports
}

/// Virtual-coordinate values of dimensions the executed rect pins to a
/// single point. Every region a case runs over is a sub-rect of
/// `case.rect ∩ dom`, so a dimension that is a single point there is that
/// point in every execution and the kernel's `CoordF` for it folds to a
/// constant (per-channel cases of color pipelines are the typical source).
/// Points off a stride's phase lattice yield an empty virtual rect — the
/// case never runs — so the folded value is irrelevant there.
///
/// Public because `polymage-core`'s `instantiate` drives the optimizer
/// per-case: it compares the fixed-dimension signature of a freshly bound
/// rect against the one a plan's pre-optimized kernel was specialized for,
/// reusing the kernel verbatim when they match.
pub fn fixed_dims(rect: &polymage_poly::Rect, steps: &[(i64, i64)]) -> Vec<Option<i64>> {
    rect.ranges()
        .iter()
        .enumerate()
        .map(|(d, &(lo, hi))| {
            if lo == hi {
                let (s, ph) = steps.get(d).copied().unwrap_or((1, 0));
                Some((lo - ph).div_euclid(s))
            } else {
                None
            }
        })
        .collect()
}

/// Re-points a case's store mask after register renumbering, and drops it
/// entirely when the optimizer proved it a nonzero constant (every lane
/// stored — the unmasked path is bit-identical and takes the contiguous
/// store loop). Public for `polymage-core`'s per-case instantiation path.
pub fn sync_mask(case: &mut crate::CaseExec) {
    if case.mask.is_none() {
        return;
    }
    let m = case.kernel.outs[1];
    case.mask = Some(m);
    if let Some(Op::ConstF { val, .. }) = case.kernel.ops.iter().find(|op| op.dst() == m) {
        if *val != 0.0 {
            case.mask = None;
        }
    }
}

/// Buffers loaded by a set of kernels (first-seen order), optionally
/// excluding one buffer (a scan's own output, which is bound separately).
/// Public for `polymage-core`'s per-case instantiation path.
pub fn collect_reads<'a>(
    kernels: impl Iterator<Item = &'a Kernel>,
    exclude: Option<crate::BufId>,
) -> Vec<crate::BufId> {
    let mut reads: Vec<crate::BufId> = Vec::new();
    for k in kernels {
        for op in &k.ops {
            if let Op::Load { buf, .. } = op {
                if Some(*buf) != exclude && !reads.contains(buf) {
                    reads.push(*buf);
                }
            }
        }
    }
    reads
}

/// Optimizes one kernel in place. `ndims` is the dimensionality of the loop
/// domain the kernel is evaluated over (its `CoordF`/plan dims index it);
/// `fixed[d] = Some(v)` declares that coordinate `d` is always `v` (a
/// single-point dimension of the executed rect — pass `&[]` when nothing
/// is known).
///
/// The kernel must be in SSA form (as `core::lower` emits and
/// `core::validate` checks); the result is again strict SSA with densely
/// numbered registers and carries [`OptMeta`] so the evaluator takes the
/// optimized path.
pub fn optimize_kernel(
    k: &mut Kernel,
    ndims: usize,
    fixed: &[Option<i64>],
    name: String,
) -> KernelOptReport {
    let mut rpt = KernelOptReport {
        name,
        ops_before: k.ops.len(),
        ops_after: k.ops.len(),
        regs_before: k.nregs,
        regs_after: k.nregs,
        ..Default::default()
    };
    // The dependence masks are u32 bitsets; domains beyond 32 dims (never
    // produced by the DSL) run unoptimized.
    if ndims == 0 || ndims > 32 || k.nregs > u16::MAX as usize {
        return rpt;
    }
    let mut folded = 0usize;
    let mut simplified = 0usize;
    for _ in 0..8 {
        let c1 = fold_pass(k, fixed, &mut folded, &mut simplified);
        let c2 = cse_pass(k, &mut simplified);
        if !c1 && !c2 {
            break;
        }
    }
    dce_pass(k);
    compact_pass(k);
    let meta = build_meta(k, ndims);
    let inner = ndims - 1;
    let bit = 1u32 << inner.min(31);
    rpt.folded = folded;
    rpt.simplified = simplified;
    rpt.ops_after = k.ops.len();
    rpt.regs_after = k.nregs;
    for op in &k.ops {
        if meta.dep[op.dst().0 as usize] & bit == 0 {
            rpt.uniform_ops += 1;
        }
        if let Op::Load { plan, .. } = op {
            rpt.loads.add(classify(plan, &meta.dep, inner));
        }
    }
    k.meta = Some(meta);
    rpt
}

const POS_ZERO: u32 = 0.0f32.to_bits();
const NEG_ZERO: u32 = (-0.0f32).to_bits();
const ONE: u32 = 1.0f32.to_bits();

/// Whether `c` is a finite power of two whose reciprocal is also exactly
/// representable — then `x / c` and `x · (1/c)` are both the correctly
/// rounded value of the same real number, hence bit-equal.
fn exact_recip(c: f32) -> Option<f32> {
    if c == 0.0 || !c.is_finite() || c.to_bits() & 0x007f_ffff != 0 || c.abs() < f32::MIN_POSITIVE {
        return None; // not a normal power of two
    }
    let r = 1.0 / c;
    if r.is_finite() && r != 0.0 && 1.0 / r == c {
        Some(r)
    } else {
        None
    }
}

/// Per-register facts tracked by the fold/simplify pass.
struct Facts {
    /// Known constant value.
    cval: Vec<Option<f32>>,
    /// Value is exactly 0.0 or 1.0 (comparison/mask outputs, 0/1 consts).
    is_mask: Vec<bool>,
    /// Value is round-idempotent (`round(x)` is bit-identical to `x`):
    /// outputs of Floor/Ceil/CastRound/CastSat, integer coordinates, and
    /// closed arithmetic over them.
    int_valued: Vec<bool>,
    /// Defined as `UnF(op, src)`.
    unary: Vec<Option<(UnF, RegId)>>,
    /// Defined as `MaskNot(src)`.
    not_of: Vec<Option<RegId>>,
}

impl Facts {
    fn new(n: usize) -> Facts {
        Facts {
            cval: vec![None; n],
            is_mask: vec![false; n],
            int_valued: vec![false; n],
            unary: vec![None; n],
            not_of: vec![None; n],
        }
    }

    fn push_default(&mut self) {
        self.cval.push(None);
        self.is_mask.push(false);
        self.int_valued.push(false);
        self.unary.push(None);
        self.not_of.push(None);
    }

    fn record_const(&mut self, r: RegId, val: f32) {
        let i = r.0 as usize;
        self.cval[i] = Some(val);
        self.is_mask[i] = val.to_bits() == POS_ZERO || val.to_bits() == ONE;
        self.int_valued[i] = val.is_finite() && scalar_round(val).to_bits() == val.to_bits();
    }
}

/// One forward fold/simplify sweep. Returns whether anything changed.
///
/// Rewrites never copy values: an op that simplifies to one of its operands
/// is *renamed away* (later uses point at the operand), keeping SSA order
/// intact. Strength reduction may append fresh constant registers; the
/// final compaction restores dense numbering.
#[allow(clippy::too_many_lines)]
fn fold_pass(
    k: &mut Kernel,
    fixed: &[Option<i64>],
    folded: &mut usize,
    simplified: &mut usize,
) -> bool {
    let n = k.nregs;
    let mut rename: Vec<RegId> = (0..n).map(|i| RegId(i as u16)).collect();
    let mut facts = Facts::new(n);
    let mut out_ops: Vec<Op> = Vec::with_capacity(k.ops.len());
    let mut changed = false;
    let ops = std::mem::take(&mut k.ops);

    // Shorthand for "this op's result is register `t` already".
    macro_rules! alias {
        ($rename:ident, $dst:expr, $t:expr, $simplified:ident, $changed:ident) => {{
            $rename[$dst.0 as usize] = $t;
            *$simplified += 1;
            $changed = true;
            continue;
        }};
    }

    for mut op in ops {
        op.for_each_src_mut(|r| *r = rename[r.0 as usize]);
        let dst = op.dst();
        let di = dst.0 as usize;
        match op {
            Op::ConstF { val, .. } => {
                facts.record_const(dst, val);
                out_ops.push(op);
            }
            Op::CoordF { dim, .. } => {
                // A single-point dimension's coordinate is a constant
                // (CoordF materializes exactly `v as f32` in every lane).
                if let Some(Some(v)) = fixed.get(dim) {
                    let val = *v as f32;
                    facts.record_const(dst, val);
                    out_ops.push(Op::ConstF { dst, val });
                    *folded += 1;
                    changed = true;
                    continue;
                }
                facts.int_valued[di] = true;
                out_ops.push(op);
            }
            Op::BinF { op: bop, a, b, .. } => {
                let (ca, cb) = (facts.cval[a.0 as usize], facts.cval[b.0 as usize]);
                if let (Some(x), Some(y)) = (ca, cb) {
                    let val = scalar_bin(bop, x, y);
                    facts.record_const(dst, val);
                    out_ops.push(Op::ConstF { dst, val });
                    *folded += 1;
                    changed = true;
                    continue;
                }
                match bop {
                    // x + (-0.0) → x and (-0.0) + x → x are exact for every
                    // f32; x + 0.0 is not (x = -0.0 gives +0.0).
                    BinF::Add => {
                        if cb.map(f32::to_bits) == Some(NEG_ZERO) {
                            alias!(rename, dst, a, simplified, changed);
                        }
                        if ca.map(f32::to_bits) == Some(NEG_ZERO) {
                            alias!(rename, dst, b, simplified, changed);
                        }
                    }
                    // x − 0.0 → x is exact; x − (-0.0) is not (x = -0.0).
                    BinF::Sub => {
                        if cb.map(f32::to_bits) == Some(POS_ZERO) {
                            alias!(rename, dst, a, simplified, changed);
                        }
                    }
                    BinF::Mul => {
                        if cb.map(f32::to_bits) == Some(ONE) {
                            alias!(rename, dst, a, simplified, changed);
                        }
                        if ca.map(f32::to_bits) == Some(ONE) {
                            alias!(rename, dst, b, simplified, changed);
                        }
                    }
                    BinF::Div => {
                        if cb.map(f32::to_bits) == Some(ONE) {
                            alias!(rename, dst, a, simplified, changed);
                        }
                        // Strength-reduce division by an exact power of two.
                        if let Some(r) = cb.and_then(exact_recip) {
                            if k.nregs < u16::MAX as usize {
                                let c = RegId(k.nregs as u16);
                                k.nregs += 1;
                                rename.push(c);
                                facts.push_default();
                                facts.record_const(c, r);
                                out_ops.push(Op::ConstF { dst: c, val: r });
                                out_ops.push(Op::BinF {
                                    op: BinF::Mul,
                                    dst,
                                    a,
                                    b: c,
                                });
                                *simplified += 1;
                                changed = true;
                                continue;
                            }
                        }
                    }
                    // min/max of a register with itself is that register
                    // (bit-exact including -0.0 and NaN propagation).
                    BinF::Min | BinF::Max => {
                        if a == b {
                            alias!(rename, dst, a, simplified, changed);
                        }
                    }
                    BinF::Mod | BinF::Pow => {}
                }
                facts.int_valued[di] = matches!(
                    bop,
                    BinF::Add | BinF::Sub | BinF::Mul | BinF::Min | BinF::Max
                ) && facts.int_valued[a.0 as usize]
                    && facts.int_valued[b.0 as usize];
                out_ops.push(op);
            }
            Op::UnF { op: uop, a, .. } => {
                if let Some(x) = facts.cval[a.0 as usize] {
                    let val = scalar_un(uop, x);
                    facts.record_const(dst, val);
                    out_ops.push(Op::ConstF { dst, val });
                    *folded += 1;
                    changed = true;
                    continue;
                }
                let ua = facts.unary[a.0 as usize];
                match uop {
                    UnF::Neg => {
                        if let Some((UnF::Neg, x)) = ua {
                            alias!(rename, dst, x, simplified, changed);
                        }
                    }
                    UnF::Abs => {
                        if matches!(ua, Some((UnF::Abs, _))) {
                            alias!(rename, dst, a, simplified, changed);
                        }
                        // |−x| = |x| (sign-bit ops, bit-exact).
                        if let Some((UnF::Neg, x)) = ua {
                            op = Op::UnF {
                                op: UnF::Abs,
                                dst,
                                a: x,
                            };
                            *simplified += 1;
                            changed = true;
                        }
                    }
                    UnF::Floor | UnF::Ceil if facts.int_valued[a.0 as usize] => {
                        alias!(rename, dst, a, simplified, changed);
                    }
                    _ => {}
                }
                if let Op::UnF { op: uop, a, .. } = op {
                    facts.unary[di] = Some((uop, a));
                    facts.int_valued[di] = matches!(uop, UnF::Floor | UnF::Ceil);
                }
                out_ops.push(op);
            }
            Op::CmpMask { op: cop, a, b, .. } => {
                if let (Some(x), Some(y)) = (facts.cval[a.0 as usize], facts.cval[b.0 as usize]) {
                    let val = scalar_cmp(cop, x, y);
                    facts.record_const(dst, val);
                    out_ops.push(Op::ConstF { dst, val });
                    *folded += 1;
                    changed = true;
                    continue;
                }
                facts.is_mask[di] = true;
                facts.int_valued[di] = true;
                out_ops.push(op);
            }
            Op::MaskAnd { a, b, .. } => {
                let (ca, cb) = (facts.cval[a.0 as usize], facts.cval[b.0 as usize]);
                if let (Some(x), Some(y)) = (ca, cb) {
                    let val = x * y;
                    facts.record_const(dst, val);
                    out_ops.push(Op::ConstF { dst, val });
                    *folded += 1;
                    changed = true;
                    continue;
                }
                // m · 1 → m (1.0 is the exact multiplicative identity).
                if cb.map(f32::to_bits) == Some(ONE) {
                    alias!(rename, dst, a, simplified, changed);
                }
                if ca.map(f32::to_bits) == Some(ONE) {
                    alias!(rename, dst, b, simplified, changed);
                }
                // m · 0 → 0 only when m is a 0/1 mask (for general f32 the
                // product's sign/NaN could differ).
                if cb.map(f32::to_bits) == Some(POS_ZERO) && facts.is_mask[a.0 as usize]
                    || ca.map(f32::to_bits) == Some(POS_ZERO) && facts.is_mask[b.0 as usize]
                {
                    facts.record_const(dst, 0.0);
                    out_ops.push(Op::ConstF { dst, val: 0.0 });
                    *folded += 1;
                    changed = true;
                    continue;
                }
                if a == b && facts.is_mask[a.0 as usize] {
                    alias!(rename, dst, a, simplified, changed);
                }
                facts.is_mask[di] = facts.is_mask[a.0 as usize] && facts.is_mask[b.0 as usize];
                facts.int_valued[di] = facts.is_mask[di];
                out_ops.push(op);
            }
            Op::MaskOr { a, b, .. } => {
                let (ca, cb) = (facts.cval[a.0 as usize], facts.cval[b.0 as usize]);
                if let (Some(x), Some(y)) = (ca, cb) {
                    let val = x.max(y);
                    facts.record_const(dst, val);
                    out_ops.push(Op::ConstF { dst, val });
                    *folded += 1;
                    changed = true;
                    continue;
                }
                // max(m, m) → m is exact for every f32.
                if a == b {
                    alias!(rename, dst, a, simplified, changed);
                }
                // max(m, 1) → 1 and max(m, 0) → m when m ∈ {0, 1}.
                if (cb.map(f32::to_bits) == Some(ONE) && facts.is_mask[a.0 as usize])
                    || (ca.map(f32::to_bits) == Some(ONE) && facts.is_mask[b.0 as usize])
                {
                    facts.record_const(dst, 1.0);
                    out_ops.push(Op::ConstF { dst, val: 1.0 });
                    *folded += 1;
                    changed = true;
                    continue;
                }
                if cb.map(f32::to_bits) == Some(POS_ZERO) && facts.is_mask[a.0 as usize] {
                    alias!(rename, dst, a, simplified, changed);
                }
                if ca.map(f32::to_bits) == Some(POS_ZERO) && facts.is_mask[b.0 as usize] {
                    alias!(rename, dst, b, simplified, changed);
                }
                facts.is_mask[di] = facts.is_mask[a.0 as usize] && facts.is_mask[b.0 as usize];
                facts.int_valued[di] = facts.is_mask[di];
                out_ops.push(op);
            }
            Op::MaskNot { a, .. } => {
                if let Some(x) = facts.cval[a.0 as usize] {
                    let val = 1.0 - x;
                    facts.record_const(dst, val);
                    out_ops.push(Op::ConstF { dst, val });
                    *folded += 1;
                    changed = true;
                    continue;
                }
                // ¬¬m → m when m ∈ {0, 1} (1−(1−m) is exact there).
                if let Some(x) = facts.not_of[a.0 as usize] {
                    if facts.is_mask[x.0 as usize] {
                        alias!(rename, dst, x, simplified, changed);
                    }
                }
                facts.not_of[di] = Some(a);
                facts.is_mask[di] = facts.is_mask[a.0 as usize];
                facts.int_valued[di] = facts.is_mask[di];
                out_ops.push(op);
            }
            Op::SelectF { mask, a, b, .. } => {
                if let Some(c) = facts.cval[mask.0 as usize] {
                    let t = if c != 0.0 { a } else { b };
                    alias!(rename, dst, t, simplified, changed);
                }
                if a == b {
                    alias!(rename, dst, a, simplified, changed);
                }
                facts.is_mask[di] = facts.is_mask[a.0 as usize] && facts.is_mask[b.0 as usize];
                facts.int_valued[di] =
                    facts.int_valued[a.0 as usize] && facts.int_valued[b.0 as usize];
                out_ops.push(op);
            }
            Op::CastRound { a, .. } => {
                if let Some(x) = facts.cval[a.0 as usize] {
                    let val = scalar_round(x);
                    facts.record_const(dst, val);
                    out_ops.push(Op::ConstF { dst, val });
                    *folded += 1;
                    changed = true;
                    continue;
                }
                // round(x) → x when x is already round-idempotent.
                if facts.int_valued[a.0 as usize] {
                    alias!(rename, dst, a, simplified, changed);
                }
                facts.int_valued[di] = true;
                facts.is_mask[di] = facts.is_mask[a.0 as usize];
                out_ops.push(op);
            }
            Op::CastSat { a, lo, hi, .. } => {
                if let Some(x) = facts.cval[a.0 as usize] {
                    let val = scalar_round(x.clamp(lo, hi));
                    facts.record_const(dst, val);
                    out_ops.push(Op::ConstF { dst, val });
                    *folded += 1;
                    changed = true;
                    continue;
                }
                facts.int_valued[di] = true;
                out_ops.push(op);
            }
            Op::Load { .. } => out_ops.push(op),
        }
    }
    for o in &mut k.outs {
        *o = rename[o.0 as usize];
    }
    k.ops = out_ops;
    changed
}

/// Structural common-subexpression elimination (same keying as the
/// builder's emit-time CSE: the op with its destination zeroed).
fn cse_pass(k: &mut Kernel, simplified: &mut usize) -> bool {
    use std::collections::hash_map::Entry;
    use std::collections::HashMap;
    let mut rename: Vec<RegId> = (0..k.nregs).map(|i| RegId(i as u16)).collect();
    let mut seen: HashMap<String, RegId> = HashMap::new();
    let mut out_ops: Vec<Op> = Vec::with_capacity(k.ops.len());
    let mut changed = false;
    let ops = std::mem::take(&mut k.ops);
    for mut op in ops {
        op.for_each_src_mut(|r| *r = rename[r.0 as usize]);
        let dst = op.dst();
        let mut key_op = op.clone();
        *key_op.dst_mut() = RegId(u16::MAX);
        match seen.entry(format!("{key_op:?}")) {
            Entry::Occupied(e) => {
                rename[dst.0 as usize] = *e.get();
                *simplified += 1;
                changed = true;
            }
            Entry::Vacant(e) => {
                e.insert(dst);
                out_ops.push(op);
            }
        }
    }
    for o in &mut k.outs {
        *o = rename[o.0 as usize];
    }
    k.ops = out_ops;
    changed
}

/// Drops ops whose results never reach `outs` (directly or transitively).
fn dce_pass(k: &mut Kernel) {
    let mut live = vec![false; k.nregs];
    for o in &k.outs {
        live[o.0 as usize] = true;
    }
    let mut keep = vec![false; k.ops.len()];
    for (i, op) in k.ops.iter().enumerate().rev() {
        if live[op.dst().0 as usize] {
            keep[i] = true;
            op.for_each_src(|r| live[r.0 as usize] = true);
        }
    }
    let mut i = 0;
    k.ops.retain(|_| {
        let keep_it = keep[i];
        i += 1;
        keep_it
    });
}

/// Densely renumbers registers in definition order. Restores the strict
/// `operands < destination` SSA invariant the evaluator's disjoint borrows
/// (`RegFile::tri`/`quad`) rely on.
fn compact_pass(k: &mut Kernel) {
    let mut map: Vec<Option<u16>> = vec![None; k.nregs];
    let mut next: u16 = 0;
    for op in &mut k.ops {
        op.for_each_src_mut(|r| {
            r.0 = map[r.0 as usize].expect("register used before definition");
        });
        let d = op.dst_mut();
        map[d.0 as usize] = Some(next);
        d.0 = next;
        next += 1;
    }
    for o in &mut k.outs {
        o.0 = map[o.0 as usize].expect("undefined output register");
    }
    k.nregs = next as usize;
}

/// Computes per-register dimension-dependence masks: bit `d` set iff the
/// register can vary with consumer coordinate `d`.
fn build_meta(k: &Kernel, ndims: usize) -> OptMeta {
    debug_assert!(ndims <= 32);
    let mut dep = vec![0u32; k.nregs];
    for op in &k.ops {
        let mut d = 0u32;
        op.for_each_src(|r| d |= dep[r.0 as usize]);
        match op {
            Op::CoordF { dim, .. } => d |= 1 << dim,
            Op::Load { plan, .. } => {
                for p in plan {
                    if let IdxPlan::Affine {
                        dim: Some(dd), q, ..
                    } = p
                    {
                        if *q != 0 {
                            d |= 1 << dd;
                        }
                    }
                }
            }
            _ => {}
        }
        dep[op.dst().0 as usize] = d;
    }
    OptMeta { dep }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_kernel, ChunkCtx, RegFile};
    use crate::{BufId, CmpF};

    fn run(k: &Kernel, coords: &[i64], len: usize) -> Vec<f32> {
        let ctx = ChunkCtx {
            coords,
            len,
            inner: coords.len() - 1,
            bufs: &[],
        };
        let mut regs = RegFile::new();
        regs.begin_row();
        eval_kernel(k, &ctx, &mut regs);
        regs.reg(k.out())[..len].to_vec()
    }

    fn bin(op: BinF, dst: u16, a: u16, b: u16) -> Op {
        Op::BinF {
            op,
            dst: RegId(dst),
            a: RegId(a),
            b: RegId(b),
        }
    }

    fn cf(dst: u16, val: f32) -> Op {
        Op::ConstF {
            dst: RegId(dst),
            val,
        }
    }

    #[test]
    fn folds_constants_and_dces() {
        // (2 + 3) * x, plus a dead subtree
        let mut k = Kernel {
            ops: vec![
                cf(0, 2.0),
                cf(1, 3.0),
                bin(BinF::Add, 2, 0, 1),
                Op::CoordF {
                    dst: RegId(3),
                    dim: 0,
                },
                bin(BinF::Mul, 4, 2, 3),
                bin(BinF::Sub, 5, 0, 1), // dead
            ],
            nregs: 6,
            meta: None,
            outs: vec![RegId(4)],
        };
        let unopt = k.clone();
        let rpt = optimize_kernel(&mut k, 1, &[], "t".into());
        assert!(rpt.folded >= 1, "constant add folds");
        assert!(rpt.ops_after < rpt.ops_before, "dead op removed");
        assert!(k.meta.is_some());
        assert_eq!(run(&k, &[3], 4), run(&unopt, &[3], 4));
    }

    #[test]
    fn identity_rewrites_are_bit_exact() {
        // x * 1.0 → x; x / 2.0 → x * 0.5; min(x, x) → x
        let mut k = Kernel {
            ops: vec![
                Op::CoordF {
                    dst: RegId(0),
                    dim: 0,
                },
                cf(1, 1.0),
                bin(BinF::Mul, 2, 0, 1),
                cf(3, 2.0),
                bin(BinF::Div, 4, 2, 3),
                bin(BinF::Min, 5, 4, 4),
            ],
            nregs: 6,
            meta: None,
            outs: vec![RegId(5)],
        };
        let unopt = k.clone();
        let rpt = optimize_kernel(&mut k, 1, &[], "t".into());
        assert!(rpt.simplified >= 2);
        assert!(!k
            .ops
            .iter()
            .any(|o| matches!(o, Op::BinF { op: BinF::Div, .. })));
        for x0 in [-7i64, 0, 1000] {
            let a = run(&k, &[x0], 8);
            let b = run(&unopt, &[x0], 8);
            for (va, vb) in a.iter().zip(&b) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }

    #[test]
    fn unsafe_rewrites_not_applied() {
        // x + 0.0 must NOT fold to x (x = -0.0 ⇒ +0.0).
        let mut k = Kernel {
            ops: vec![cf(0, -0.0), cf(1, 0.0), bin(BinF::Add, 2, 0, 1)],
            nregs: 3,
            meta: None,
            outs: vec![RegId(2)],
        };
        optimize_kernel(&mut k, 1, &[], "t".into());
        // Folds (both const) — result must be +0.0, not -0.0.
        let out = run(&k, &[0], 1);
        assert_eq!(out[0].to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn mask_simplification() {
        // (x >= 0) & 1 → the compare; ¬¬m → m
        let mut k = Kernel {
            ops: vec![
                Op::CoordF {
                    dst: RegId(0),
                    dim: 0,
                },
                cf(1, 0.0),
                Op::CmpMask {
                    op: CmpF::Ge,
                    dst: RegId(2),
                    a: RegId(0),
                    b: RegId(1),
                },
                cf(3, 1.0),
                Op::MaskAnd {
                    dst: RegId(4),
                    a: RegId(2),
                    b: RegId(3),
                },
                Op::MaskNot {
                    dst: RegId(5),
                    a: RegId(4),
                },
                Op::MaskNot {
                    dst: RegId(6),
                    a: RegId(5),
                },
            ],
            nregs: 7,
            meta: None,
            outs: vec![RegId(6)],
        };
        let unopt = k.clone();
        let rpt = optimize_kernel(&mut k, 1, &[], "t".into());
        assert!(rpt.simplified >= 2);
        // The double-negated conjunction collapses to the compare itself.
        assert_eq!(k.ops.len(), 3);
        assert_eq!(run(&k, &[-2], 5), run(&unopt, &[-2], 5));
    }

    #[test]
    fn cse_merges_duplicates() {
        let mut k = Kernel {
            ops: vec![
                Op::CoordF {
                    dst: RegId(0),
                    dim: 0,
                },
                Op::CoordF {
                    dst: RegId(1),
                    dim: 0,
                },
                bin(BinF::Add, 2, 0, 1),
            ],
            nregs: 3,
            meta: None,
            outs: vec![RegId(2)],
        };
        let rpt = optimize_kernel(&mut k, 1, &[], "t".into());
        assert!(rpt.simplified >= 1);
        assert_eq!(k.ops.len(), 2);
    }

    #[test]
    fn compaction_renumbers_densely() {
        let mut k = Kernel {
            ops: vec![
                cf(5, 2.0),
                Op::CoordF {
                    dst: RegId(9),
                    dim: 0,
                },
                bin(BinF::Mul, 11, 5, 9),
            ],
            nregs: 12,
            meta: None,
            outs: vec![RegId(11)],
        };
        optimize_kernel(&mut k, 1, &[], "t".into());
        assert_eq!(k.nregs, 3);
        assert_eq!(k.outs[0], RegId(2));
    }

    #[test]
    fn dep_masks_track_dimensions() {
        // r0 = coord(0) (outer), r1 = coord(1) (inner), r2 = r0+r1
        let mut k = Kernel {
            ops: vec![
                Op::CoordF {
                    dst: RegId(0),
                    dim: 0,
                },
                Op::CoordF {
                    dst: RegId(1),
                    dim: 1,
                },
                bin(BinF::Add, 2, 0, 1),
            ],
            nregs: 3,
            meta: None,
            outs: vec![RegId(2)],
        };
        let rpt = optimize_kernel(&mut k, 2, &[], "t".into());
        let meta = k.meta.as_ref().unwrap();
        assert_eq!(meta.dep[0], 0b01);
        assert_eq!(meta.dep[1], 0b10);
        assert_eq!(meta.dep[2], 0b11);
        // one op (the outer coord) is uniform under the nominal inner axis
        assert_eq!(rpt.uniform_ops, 1);
    }

    #[test]
    fn load_histogram_reported() {
        let mut k = Kernel {
            ops: vec![Op::Load {
                dst: RegId(0),
                buf: BufId(0),
                plan: vec![
                    IdxPlan::Affine {
                        dim: Some(0),
                        q: 1,
                        o: 0,
                        m: 1,
                    },
                    IdxPlan::Affine {
                        dim: Some(1),
                        q: 1,
                        o: -1,
                        m: 1,
                    },
                ],
            }],
            nregs: 1,
            meta: None,
            outs: vec![RegId(0)],
        };
        let rpt = optimize_kernel(&mut k, 2, &[], "t".into());
        assert_eq!(rpt.loads.contiguous, 1);
        assert_eq!(rpt.loads.total(), 1);
    }
}
