//! Executor errors.

use std::error::Error;
use std::fmt;

/// Why a run was cancelled before producing its outputs.
///
/// Carried by [`VmError::Cancelled`]; every cancellation path through the
/// engine latches exactly one reason (first signal wins) so callers can
/// distinguish their own [`cancel`](crate::RunHandle::cancel) from policy
/// decisions the engine made for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// [`RunHandle::cancel`](crate::RunHandle::cancel) (or a
    /// [`CancelToken`](crate::CancelToken)) was invoked.
    Caller,
    /// The run's [`deadline`](crate::RunRequest::deadline) expired before
    /// it completed.
    Deadline,
    /// The engine was shutting down when the run was submitted.
    Shutdown,
    /// Admission control shed the run under
    /// [`OverloadPolicy`](crate::OverloadPolicy) — either this submission
    /// was rejected fast, or this inflight run was picked as the shed
    /// victim for a newer, higher-priority submission.
    Shed,
}

impl CancelReason {
    /// Stable lower-case label (used in diag span fields and messages).
    pub fn label(self) -> &'static str {
        match self {
            CancelReason::Caller => "caller",
            CancelReason::Deadline => "deadline",
            CancelReason::Shutdown => "shutdown",
            CancelReason::Shed => "shed",
        }
    }
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Errors reported when running a compiled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The number of input buffers differs from the program's image count.
    InputCountMismatch {
        /// Inputs the program expects.
        expected: usize,
        /// Inputs provided.
        got: usize,
    },
    /// An input buffer's rectangle does not match the declared image extent.
    InputShapeMismatch {
        /// Index of the offending input.
        index: usize,
        /// Expected shape description.
        expected: String,
        /// Provided shape description.
        got: String,
    },
    /// The run was stopped before completion; no outputs exist.
    Cancelled {
        /// What triggered the cancellation.
        reason: CancelReason,
    },
    /// Internal invariant violation (a compiler bug, not a user error).
    Internal(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::InputCountMismatch { expected, got } => {
                write!(f, "expected {expected} input image(s), got {got}")
            }
            VmError::InputShapeMismatch {
                index,
                expected,
                got,
            } => {
                write!(f, "input {index} has shape {got}, expected {expected}")
            }
            VmError::Cancelled { reason } => write!(f, "run cancelled ({reason})"),
            VmError::Internal(msg) => write!(f, "internal executor error: {msg}"),
        }
    }
}

impl Error for VmError {}
