//! Function and accumulator definitions — the stages of a pipeline.

use crate::{Cond, Expr, Interval, ScalarType, VarId};

/// A piecewise case: an optional guard condition and the value expression.
///
/// Matches the paper's `Case(condition, expression)`. All cases of a function
/// are expected to be mutually exclusive; the compiler checks the common
/// rectangular-guard case statically and the execution engine evaluates cases
/// in order (first matching case wins) so overlapping guards never produce
/// ambiguous results at run time.
#[derive(Debug, Clone, PartialEq)]
pub struct Case {
    /// Guard; `None` means the case applies on the whole domain.
    pub cond: Option<Cond>,
    /// Value when the guard holds.
    pub expr: Expr,
}

impl Case {
    /// A guarded case.
    pub fn new(cond: Cond, expr: impl Into<Expr>) -> Self {
        Case {
            cond: Some(cond),
            expr: expr.into(),
        }
    }

    /// An unguarded case covering the whole domain.
    pub fn always(expr: impl Into<Expr>) -> Self {
        Case {
            cond: None,
            expr: expr.into(),
        }
    }
}

/// Reduction operators for accumulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reduction {
    /// `+=`
    Sum,
    /// `min=`
    Min,
    /// `max=`
    Max,
}

impl Reduction {
    /// The identity element the accumulator buffer is initialized with.
    pub fn identity(self) -> f64 {
        match self {
            Reduction::Sum => 0.0,
            Reduction::Min => f64::INFINITY,
            Reduction::Max => f64::NEG_INFINITY,
        }
    }

    /// Combines an accumulated value with a new contribution.
    pub fn combine(self, acc: f64, v: f64) -> f64 {
        match self {
            Reduction::Sum => acc + v,
            Reduction::Min => acc.min(v),
            Reduction::Max => acc.max(v),
        }
    }
}

/// The update rule of an accumulator — the paper's
/// `Accumulate(hist(I(x,y)), 1, Sum)`.
///
/// For every point of the *reduction domain* (`red_vars` over `red_dom`),
/// the expressions in `target` (which may reference images/functions — this
/// is what makes histograms possible) are evaluated and rounded to produce an
/// index into the accumulator's *variable domain*, and `value` is combined
/// into that cell with `op`. Out-of-range targets are skipped, matching the
/// usual saturating-histogram convention.
#[derive(Debug, Clone, PartialEq)]
pub struct Accumulate {
    /// Variables of the reduction domain.
    pub red_vars: Vec<VarId>,
    /// Ranges of the reduction variables.
    pub red_dom: Vec<Interval>,
    /// Index expressions (one per variable-domain dimension), in reduction
    /// variables.
    pub target: Vec<Expr>,
    /// The contributed value, in reduction variables.
    pub value: Expr,
    /// How contributions combine.
    pub op: Reduction,
}

/// The body of a stage: either piecewise cases or a reduction.
#[derive(Debug, Clone, PartialEq)]
pub enum FuncBody {
    /// Declared but not yet defined (only valid while building).
    Undefined,
    /// Piecewise definition over the variable domain.
    Cases(Vec<Case>),
    /// Reduction over a separate reduction domain.
    Reduce(Accumulate),
}

/// A variable domain: the function's variables with their ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDom {
    /// Domain variables, outermost first.
    pub vars: Vec<VarId>,
    /// Range of each variable.
    pub dom: Vec<Interval>,
}

/// A fully-built pipeline stage (the paper's `Function` or `Accumulator`).
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Stage name (unique within the pipeline).
    pub name: String,
    /// Variable domain.
    pub var_dom: VarDom,
    /// Declared element type.
    pub ty: ScalarType,
    /// Definition.
    pub body: FuncBody,
}

impl FuncDef {
    /// Number of domain dimensions.
    pub fn dims(&self) -> usize {
        self.var_dom.vars.len()
    }

    /// Whether this stage is an accumulator (reduction).
    pub fn is_reduction(&self) -> bool {
        matches!(self.body, FuncBody::Reduce(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_identities() {
        assert_eq!(Reduction::Sum.identity(), 0.0);
        assert_eq!(Reduction::Min.identity(), f64::INFINITY);
        assert_eq!(Reduction::Max.identity(), f64::NEG_INFINITY);
    }

    #[test]
    fn reduction_combine() {
        assert_eq!(Reduction::Sum.combine(2.0, 3.0), 5.0);
        assert_eq!(Reduction::Min.combine(2.0, 3.0), 2.0);
        assert_eq!(Reduction::Max.combine(2.0, 3.0), 3.0);
    }

    #[test]
    fn case_constructors() {
        let c = Case::always(1.0);
        assert!(c.cond.is_none());
        let x = Expr::from(VarId::from_index(0));
        let c = Case::new(x.clone().ge(0), x);
        assert!(c.cond.is_some());
    }
}
