//! SIMD-backend equivalence on the real benchmark apps: for every
//! benchmark under {base, opt} schedules, every available SIMD level must
//! produce **bit-identical** outputs to the forced-scalar loops, across
//! thread counts — the backend's whole catalog (arithmetic, min/max,
//! comparisons, masks, select, round/saturate casts, strided gathers,
//! chunk stores) is restricted to bit-exact lane sequences.

use polymage_apps::{all_benchmarks, Scale};
use polymage_core::{compile, CompileOptions, SimdLevel, SimdOpt};
use polymage_vm::run_program;

fn bits(bufs: &[polymage_vm::Buffer]) -> Vec<Vec<u32>> {
    bufs.iter()
        .map(|b| b.data.iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn as_opt(level: SimdLevel) -> SimdOpt {
    match level {
        SimdLevel::Scalar => SimdOpt::Off,
        SimdLevel::Sse2 => SimdOpt::Sse2,
        SimdLevel::Avx2 => SimdOpt::Avx2,
        SimdLevel::Neon => SimdOpt::Neon,
    }
}

#[test]
fn simd_bit_exact_all_benchmarks_all_schedules() {
    // A POLYMAGE_SIMD override wins over `with_simd`, forcing every
    // compile to the same level and making the comparison vacuous —
    // skip rather than mislead. Detected by asking for each available
    // level and seeing whether it sticks.
    let forced = polymage_vm::available_simd_levels()
        .into_iter()
        .any(|l| polymage_vm::resolve_simd(as_opt(l)) != l);
    if forced {
        eprintln!("skipped: POLYMAGE_SIMD overrides per-compile levels");
        return;
    }
    for b in all_benchmarks(Scale::Tiny) {
        let inputs = b.make_inputs(42);
        let schedules = [
            ("base", CompileOptions::base(b.params())),
            ("opt", CompileOptions::optimized(b.params())),
        ];
        for (label, opts) in schedules {
            let scalar = opts.clone().with_simd(SimdOpt::Off);
            let c_scalar =
                compile(b.pipeline(), &scalar).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            assert_eq!(c_scalar.report.simd, SimdLevel::Scalar);
            let want: Vec<_> = [1usize, 2, 4]
                .map(|threads| {
                    bits(
                        &run_program(&c_scalar.program, &inputs, threads)
                            .unwrap_or_else(|e| panic!("{}: {e}", b.name())),
                    )
                })
                .into_iter()
                .collect();
            for level in polymage_vm::available_simd_levels() {
                let c = compile(b.pipeline(), &opts.clone().with_simd(as_opt(level)))
                    .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
                assert_eq!(c.report.simd, level);
                for (ti, threads) in [1usize, 2, 4].into_iter().enumerate() {
                    let got = bits(
                        &run_program(&c.program, &inputs, threads)
                            .unwrap_or_else(|e| panic!("{}: {e}", b.name())),
                    );
                    assert_eq!(
                        want[ti],
                        got,
                        "{}: SIMD level {level} changed output bits ({label}, threads {threads})",
                        b.name()
                    );
                }
            }
        }
    }
}
