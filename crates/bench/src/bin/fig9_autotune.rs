//! Reproduces **Figure 9**: the autotuner's scatter of single-thread vs
//! multi-thread execution time per configuration, for the three benchmarks
//! the paper shows (Pyramid Blending, Camera Pipeline, Multiscale
//! Interpolation) — plus the comparison against a random-search tuner over
//! an unrestricted space (the OpenTuner stand-in of Table 2's middle
//! column).
//!
//! By default the tuner is **model-pruned**: the cache model ranks the
//! paper's 7×7×3 space analytically and only the top-k candidates are
//! measured. Pass `--full` to run the exhaustive sweep as well and print
//! the quality gap (best-found time and configurations measured for each).
//! `--runs`/`--scale` trade fidelity for time, `--filter` tunes one
//! benchmark.

use polymage_bench::HarnessArgs;
use polymage_core::autotune::{
    autotune, autotune_pruned, random_search, TuneOutcome, PRUNED_TOP_K, THRESHOLDS,
    TILE_CANDIDATES,
};
use polymage_core::CompileOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn print_records(outcome: &TuneOutcome) {
    println!(
        "{:>10} {:>10} {:>8} {:>10} {:>12} {:>12}",
        "tile0", "tile1", "thresh", "model-ov", "t1(ms)", "tN(ms)"
    );
    for r in &outcome.records {
        println!(
            "{:>10} {:>10} {:>8.1} {:>9.1}% {:>12.2} {:>12.2}",
            r.tile[0],
            r.tile[1],
            r.threshold,
            r.predicted_overlap * 100.0,
            r.t1.as_secs_f64() * 1e3,
            r.tn.as_secs_f64() * 1e3
        );
    }
    let best = outcome.best_record();
    println!(
        "best: tiles {:?} thresh {} → t1 {:.2} ms, tN {:.2} ms \
         ({} of {} configs measured)",
        best.tile,
        best.threshold,
        best.t1.as_secs_f64() * 1e3,
        best.tn.as_secs_f64() * 1e3,
        outcome.records.len(),
        outcome.considered
    );
}

fn main() {
    let args = HarnessArgs::parse();
    let threads = args.threads.iter().copied().max().unwrap_or(1);
    let paper_apps = [
        "Pyramid Blending",
        "Camera Pipeline",
        "Multiscale Interpolate",
    ];
    for b in args.benchmarks() {
        if args.filter.is_none() && !paper_apps.contains(&b.name()) {
            continue;
        }
        println!("\n=== Fig. 9: {} (threads {}) ===", b.name(), threads);
        let inputs = b.make_inputs(42);
        let base = CompileOptions::optimized(b.params());

        println!("--- model-pruned (top {PRUNED_TOP_K}) ---");
        let pruned = autotune_pruned(
            b.pipeline(),
            &base,
            &inputs,
            threads,
            args.runs,
            &TILE_CANDIDATES,
            &THRESHOLDS,
            PRUNED_TOP_K,
        )
        .expect("pruned autotune");
        print_records(&pruned);
        let best = pruned.best_record().clone();

        if args.full {
            println!("--- exhaustive sweep (--full baseline) ---");
            let exhaustive = autotune(
                b.pipeline(),
                &base,
                &inputs,
                threads,
                args.runs,
                &TILE_CANDIDATES,
                &THRESHOLDS,
            )
            .expect("autotune");
            print_records(&exhaustive);
            let eb = exhaustive.best_record();
            println!(
                "pruned vs exhaustive: {:.2} ms vs {:.2} ms ({:+.1}% gap), \
                 {} vs {} configs measured",
                best.tn.as_secs_f64() * 1e3,
                eb.tn.as_secs_f64() * 1e3,
                (best.tn.as_secs_f64() / eb.tn.as_secs_f64() - 1.0) * 100.0,
                pruned.records.len(),
                exhaustive.records.len()
            );
        }

        // Random-space baseline at the pruned budget.
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let budget = pruned.records.len();
        let rnd = random_search(
            b.pipeline(),
            &base,
            &inputs,
            threads,
            args.runs,
            budget,
            &mut rng,
        )
        .expect("random search");
        let rbest = rnd.best_record();
        println!(
            "random-search best (same {budget}-config budget): tiles {:?} → tN {:.2} ms \
             ({:.2}x slower than model-driven best)",
            rbest.tile,
            rbest.tn.as_secs_f64() * 1e3,
            rbest.tn.as_secs_f64() / best.tn.as_secs_f64()
        );
    }
}
