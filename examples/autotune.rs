//! The §3.8 autotuner as a library API: sweep tile sizes and overlap
//! thresholds for a pipeline, inspect the measured landscape, and compare
//! the model-driven space against random search over an unrestricted space.
//!
//! ```sh
//! cargo run --release --example autotune
//! ```

use polymage::apps::pyramid::PyramidBlend;
use polymage::apps::{Benchmark, Scale};
use polymage::core::autotune::{autotune, random_search};
use polymage::core::CompileOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = PyramidBlend::new(Scale::Small);
    let inputs = app.make_inputs(7);
    let base = CompileOptions::optimized(app.params());
    let threads = 2;

    // A reduced model-driven sweep (the paper's full space is
    // TILE_CANDIDATES² × THRESHOLDS = 147 configurations; see the
    // fig9_autotune harness binary for the complete run).
    println!("model-driven sweep (tile0 × tile1 × threshold):");
    let outcome = autotune(
        app.pipeline(),
        &base,
        &inputs,
        threads,
        2,
        &[32, 128, 512],
        &[0.2, 0.5],
    )?;
    for r in &outcome.records {
        println!(
            "  tiles {:>3}×{:<3} thresh {:.1} → {:>7.2} ms",
            r.tile[0],
            r.tile[1],
            r.threshold,
            r.tn.as_secs_f64() * 1e3
        );
    }
    let best = outcome.best_record();
    println!(
        "best: tiles {:?} thresh {} → {:.2} ms\n",
        best.tile,
        best.threshold,
        best.tn.as_secs_f64() * 1e3
    );

    // Random search over the unrestricted space at the same budget.
    let mut rng = StdRng::seed_from_u64(42);
    let budget = outcome.records.len();
    let rnd = random_search(app.pipeline(), &base, &inputs, threads, 2, budget, &mut rng)?;
    let rbest = rnd.best_record();
    println!(
        "random search ({budget} configs): best tiles {:?} → {:.2} ms \
         ({:.2}× the model-driven best)",
        rbest.tile,
        rbest.tn.as_secs_f64() * 1e3,
        rbest.tn.as_secs_f64() / best.tn.as_secs_f64()
    );
    Ok(())
}
