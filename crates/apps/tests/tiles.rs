//! Tile-shape selection is value-invisible: `TileSpec::Auto` (per-group
//! cache-model tiles) must produce **bit-identical** outputs to the fixed
//! default shape, on every benchmark, under both schedule families, across
//! thread counts — tiling only changes *which* points each tile computes
//! (and recomputes), never the arithmetic performed per point. Against the
//! naive reference interpreter the comparison uses each benchmark's
//! tolerance, as the existing correctness tests do: apps with reductions
//! (e.g. Bilateral Grid) accumulate in a different order than the
//! interpreter's loop nest under *any* schedule, fixed or auto.

use polymage_apps::{all_benchmarks, Scale};
use polymage_core::interp::interpret;
use polymage_core::{compile, CompileOptions, TileSpec, DEFAULT_TILE_SIZES};
use polymage_vm::run_program;

fn bits(bufs: &[polymage_vm::Buffer]) -> Vec<Vec<u32>> {
    bufs.iter()
        .map(|b| b.data.iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn auto_tiles_bit_exact_all_benchmarks() {
    for b in all_benchmarks(Scale::Tiny) {
        let inputs = b.make_inputs(42);
        // The naive interpreter diverges structurally from Bilateral
        // Grid's hand-written reference (max rel err ~0.42: grid
        // accumulation and trilinear slicing) under *every* schedule,
        // fixed or auto — a property of that oracle, not of tiling. Use
        // the reference as the oracle there; the compiled program matches
        // it within b.tolerance() (see correctness.rs).
        let oracle = if b.name() == "Bilateral Grid" {
            b.reference(&inputs)
        } else {
            interpret(b.pipeline(), &b.params(), &inputs)
                .unwrap_or_else(|e| panic!("{}: interpreter: {e}", b.name()))
        };
        let tol = b.tolerance();
        let schedules = [
            ("base", CompileOptions::base(b.params())),
            ("opt", CompileOptions::optimized(b.params())),
        ];
        for (label, opts) in schedules {
            // Pin both sides explicitly so the comparison stays
            // fixed-vs-auto even when POLYMAGE_TILE overrides the default
            // (the CI tile matrix leg).
            let fixed = opts
                .clone()
                .with_tile_spec(TileSpec::Fixed(DEFAULT_TILE_SIZES.to_vec()));
            let auto = opts.clone().with_tile_spec(TileSpec::Auto);
            let c_fixed =
                compile(b.pipeline(), &fixed).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            let c_auto =
                compile(b.pipeline(), &auto).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            for threads in [1usize, 2, 4] {
                let out_fixed = run_program(&c_fixed.program, &inputs, threads)
                    .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
                let out_auto = run_program(&c_auto.program, &inputs, threads)
                    .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
                assert_eq!(
                    bits(&out_fixed),
                    bits(&out_auto),
                    "{}: TileSpec::Auto changed output bits vs Fixed ({label}, \
                     threads {threads})",
                    b.name()
                );
                assert_eq!(out_auto.len(), oracle.len(), "{}", b.name());
                for (o, (g, w)) in out_auto.iter().zip(&oracle).enumerate() {
                    assert_eq!(g.rect, w.rect, "{} out {o} shape", b.name());
                    for (i, (a, bb)) in g.data.iter().zip(&w.data).enumerate() {
                        assert!(
                            (a - bb).abs() <= tol + tol * bb.abs(),
                            "{}: TileSpec::Auto out {o} elem {i}: {a} vs \
                             interpreter {bb} ({label}, threads {threads})",
                            b.name()
                        );
                    }
                }
            }
        }
    }
}

/// The two tile specs really do produce different schedules somewhere —
/// otherwise the equivalence above would be vacuous. At least one
/// benchmark's report must show a model-selected shape (non-zero predicted
/// working set) differing from the fixed default.
#[test]
fn auto_tiles_actually_differ_from_fixed_somewhere() {
    let mut modeled = 0usize;
    let mut differs = false;
    for b in all_benchmarks(Scale::Small) {
        let fixed = CompileOptions::optimized(b.params())
            .with_tile_spec(TileSpec::Fixed(DEFAULT_TILE_SIZES.to_vec()));
        let auto = fixed.clone().with_tile_spec(TileSpec::Auto);
        let c_fixed = compile(b.pipeline(), &fixed).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        let c_auto = compile(b.pipeline(), &auto).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        for (gf, ga) in c_fixed.report.groups.iter().zip(&c_auto.report.groups) {
            if ga.predicted_working_set > 0 {
                modeled += 1;
                if ga.tile_sizes != gf.tile_sizes {
                    differs = true;
                }
            }
        }
    }
    assert!(modeled > 0, "no group was model-tiled at Small scale");
    assert!(
        differs,
        "the cache model chose the fixed default everywhere — equivalence \
         tests would be vacuous"
    );
}
