//! Property-based testing: randomly generated pipelines must compute the
//! same function under every schedule the compiler can produce —
//! fused/unfused, tiled/untiled, vector/scalar, 1 or several threads —
//! as the naive reference interpreter.
//!
//! The generator builds random DAGs out of the paper's computation
//! patterns (stencils, up/down-sampling, point-wise combinations, guarded
//! cases) with margin tracking so every access stays in bounds; the static
//! bounds checker double-checks the generator.

use proptest::prelude::*;

use polymage::core::interp::interpret;
use polymage::core::{compile, CompileOptions};
use polymage::ir::*;
use polymage::poly::Rect;
use polymage::vm::{run_program, Buffer, EvalMode};

const N: i64 = 64; // base 1-D size / 2-D side

/// One random pipeline-building step.
#[derive(Debug, Clone)]
enum Step {
    /// 3-tap stencil with the given integer weights, on the last stage.
    Stencil(i64, i64, i64),
    /// Point-wise arithmetic `a*v + b` on the last stage.
    Affine(i8, i8),
    /// 2× downsample of the last stage.
    Down,
    /// 2× upsample of the last stage (only if its level > 0).
    Up,
    /// Point-wise combination with an earlier stage (same level only).
    Combine(usize),
    /// Guard the last stage to an interior box (tests residual-free guards).
    Guarded,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (-2i64..3, -2i64..3, -2i64..3).prop_map(|(a, b, c)| Step::Stencil(a, b, c)),
        (-3i8..4, -3i8..4).prop_map(|(a, b)| Step::Affine(a, b)),
        Just(Step::Down),
        Just(Step::Up),
        (0usize..8).prop_map(Step::Combine),
        Just(Step::Guarded),
    ]
}

/// A built stage: id, level (size N/2^lvl), margins (lo, hi).
#[derive(Clone, Copy)]
struct StageInfo {
    f: FuncId,
    lvl: u32,
    mlo: i64,
    mhi: i64,
}

/// Materializes a random 1-D pipeline from the steps; returns `None` when
/// the steps lead to a degenerate (empty-domain) pipeline.
fn build_pipeline(steps: &[Step]) -> Option<Pipeline> {
    let mut p = PipelineBuilder::new("random");
    let img = p.image("in", ScalarType::Float, vec![PAff::cst(N)]);
    let x = p.var("x");
    let mut stages: Vec<StageInfo> = Vec::new();

    let dom = |lvl: u32, mlo: i64, mhi: i64| -> Option<Interval> {
        let size = N >> lvl;
        if mlo + mhi + 4 >= size {
            return None; // keep domains comfortably non-empty
        }
        Some(Interval::cst(mlo, size - 1 - mhi))
    };
    let access = |s: Option<&StageInfo>, e: Expr| -> Expr {
        match s {
            Some(s) => Expr::at(s.f, [e]),
            None => Expr::at(img, [e]),
        }
    };

    for (i, step) in steps.iter().enumerate() {
        let last = stages.last().copied();
        let (lvl, mlo, mhi) = last.map(|s| (s.lvl, s.mlo, s.mhi)).unwrap_or((0, 0, 0));
        let name = format!("s{i}");
        let next = match step {
            Step::Stencil(w0, w1, w2) => {
                let (nmlo, nmhi) = (mlo + 1, mhi + 1);
                let d = dom(lvl, nmlo, nmhi)?;
                let f = p.func(&name, &[(x, d)], ScalarType::Float);
                let e = access(last.as_ref(), x - 1) * *w0 as f64
                    + access(last.as_ref(), x + 0) * *w1 as f64
                    + access(last.as_ref(), x + 1) * *w2 as f64;
                p.define(f, vec![Case::always(e * 0.25)]).ok()?;
                StageInfo {
                    f,
                    lvl,
                    mlo: nmlo,
                    mhi: nmhi,
                }
            }
            Step::Affine(a, b) => {
                let d = dom(lvl, mlo, mhi)?;
                let f = p.func(&name, &[(x, d)], ScalarType::Float);
                let e = access(last.as_ref(), Expr::from(x)) * *a as f64 + *b as f64;
                p.define(f, vec![Case::always(e)]).ok()?;
                StageInfo { f, lvl, mlo, mhi }
            }
            Step::Down => {
                if lvl >= 3 {
                    return None;
                }
                let (nmlo, nmhi) = ((mlo + 2) / 2, (mhi + 2) / 2);
                let d = dom(lvl + 1, nmlo, nmhi)?;
                let f = p.func(&name, &[(x, d)], ScalarType::Float);
                let e = (access(last.as_ref(), 2i64 * Expr::from(x) - 1)
                    + access(last.as_ref(), 2i64 * Expr::from(x))
                    + access(last.as_ref(), 2i64 * Expr::from(x) + 1))
                    * (1.0 / 3.0);
                p.define(f, vec![Case::always(e)]).ok()?;
                StageInfo {
                    f,
                    lvl: lvl + 1,
                    mlo: nmlo,
                    mhi: nmhi,
                }
            }
            Step::Up => {
                if lvl == 0 || last.is_none() {
                    return None;
                }
                let (nmlo, nmhi) = (2 * mlo, 2 * mhi + 1);
                let d = dom(lvl - 1, nmlo, nmhi)?;
                let f = p.func(&name, &[(x, d)], ScalarType::Float);
                let e = (access(last.as_ref(), Expr::from(x) / 2)
                    + access(last.as_ref(), (x + 1) / 2))
                    * 0.5;
                p.define(f, vec![Case::always(e)]).ok()?;
                StageInfo {
                    f,
                    lvl: lvl - 1,
                    mlo: nmlo,
                    mhi: nmhi,
                }
            }
            Step::Combine(j) => {
                let last = last?;
                let other = stages.get(*j % stages.len()).copied()?;
                if other.lvl != last.lvl {
                    return None;
                }
                let (nmlo, nmhi) = (last.mlo.max(other.mlo), last.mhi.max(other.mhi));
                let d = dom(last.lvl, nmlo, nmhi)?;
                let f = p.func(&name, &[(x, d)], ScalarType::Float);
                let e =
                    Expr::at(last.f, [Expr::from(x)]) + Expr::at(other.f, [Expr::from(x)]) * 0.5;
                p.define(f, vec![Case::always(e)]).ok()?;
                StageInfo {
                    f,
                    lvl: last.lvl,
                    mlo: nmlo,
                    mhi: nmhi,
                }
            }
            Step::Guarded => {
                let d = dom(lvl, mlo, mhi)?;
                let (lo, hi) = (d.lo.as_const()?, d.hi.as_const()?);
                if hi - lo < 8 {
                    return None;
                }
                let f = p.func(&name, &[(x, d)], ScalarType::Float);
                let guard = Expr::from(x).ge((lo + 2) as f64) & Expr::from(x).le((hi - 2) as f64);
                let e = access(last.as_ref(), Expr::from(x)) + 1.0;
                p.define(f, vec![Case::new(guard, e)]).ok()?;
                StageInfo { f, lvl, mlo, mhi }
            }
        };
        stages.push(next);
    }
    let out = stages.last()?;
    p.finish(&[out.f]).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every schedule computes the interpreter's function.
    #[test]
    fn schedules_preserve_semantics(
        steps in proptest::collection::vec(step_strategy(), 1..7),
        seed in 0u64..1000,
    ) {
        let Some(pipe) = build_pipeline(&steps) else { return Ok(()) };
        let input = Buffer::zeros(Rect::new(vec![(0, N - 1)])).fill_with(|p| {
            let h = (p[0] as u64).wrapping_mul(seed.wrapping_add(7))
                % 97;
            h as f32 / 7.0 - 5.0
        });
        // generator guarantees in-bounds accesses; verify that claim too
        prop_assert!(polymage::graph::check_bounds(&pipe, &[]).is_empty());
        let expect = interpret(&pipe, &[], std::slice::from_ref(&input)).unwrap();
        let configs = [
            CompileOptions::optimized(vec![]),
            CompileOptions::optimized(vec![]).with_mode(EvalMode::Scalar),
            CompileOptions::optimized(vec![]).with_tiles(vec![8]),
            CompileOptions::base(vec![]),
        ];
        for opts in configs {
            let compiled = compile(&pipe, &opts).unwrap();
            for threads in [1usize, 3] {
                let got = run_program(&compiled.program, std::slice::from_ref(&input), threads)
                    .unwrap();
                for (g, w) in got.iter().zip(&expect) {
                    prop_assert_eq!(&g.rect, &w.rect);
                    for (a, b) in g.data.iter().zip(&w.data) {
                        prop_assert!(
                            (a - b).abs() <= 1e-3 + 1e-3 * b.abs(),
                            "compiled {} vs interpreted {}",
                            a,
                            b
                        );
                    }
                }
            }
        }
    }

    /// Tile-size invariance: results are identical across tile sizes.
    #[test]
    fn tile_size_invariance(
        steps in proptest::collection::vec(step_strategy(), 2..7),
        t0 in 2u32..6, // tile 4..32
        t1 in 2u32..6,
    ) {
        let Some(pipe) = build_pipeline(&steps) else { return Ok(()) };
        let input = Buffer::zeros(Rect::new(vec![(0, N - 1)]))
            .fill_with(|p| ((p[0] * 31) % 17) as f32);
        let a = compile(&pipe, &CompileOptions::optimized(vec![]).with_tiles(vec![1 << t0]))
            .unwrap();
        let b = compile(&pipe, &CompileOptions::optimized(vec![]).with_tiles(vec![1 << t1]))
            .unwrap();
        let ra = run_program(&a.program, std::slice::from_ref(&input), 2).unwrap();
        let rb = run_program(&b.program, std::slice::from_ref(&input), 2).unwrap();
        for (x, y) in ra.iter().zip(&rb) {
            // identical schedules up to tiling must agree bit-for-bit:
            // per-point evaluation order inside a stage does not change
            prop_assert_eq!(&x.data, &y.data);
        }
    }
}

// ---------- 2-D pipelines (stress tiling, strips, owned regions) ----------

/// One random 2-D pipeline-building step.
#[derive(Debug, Clone)]
enum Step2 {
    /// 3×3 stencil with given corner/edge/center weights.
    Stencil(i8, i8, i8),
    /// 2× downsample in both dimensions.
    Down,
    /// 2× upsample in both dimensions.
    Up,
    /// Point-wise combine with an earlier same-shape stage.
    Combine(usize),
    /// Parity-strided piecewise definition (`x%2`-split cases).
    Parity,
}

fn step2_strategy() -> impl Strategy<Value = Step2> {
    prop_oneof![
        (-2i8..3, -2i8..3, -2i8..3).prop_map(|(a, b, c)| Step2::Stencil(a, b, c)),
        Just(Step2::Down),
        Just(Step2::Up),
        (0usize..8).prop_map(Step2::Combine),
        Just(Step2::Parity),
    ]
}

#[derive(Clone, Copy)]
struct Stage2 {
    f: FuncId,
    lvl: u32,
    m: i64, // symmetric margin per dim
}

const N2: i64 = 96;

fn build_pipeline2(steps: &[Step2]) -> Option<Pipeline> {
    let mut p = PipelineBuilder::new("random2d");
    let img = p.image("in", ScalarType::Float, vec![PAff::cst(N2), PAff::cst(N2)]);
    let (x, y) = (p.var("x"), p.var("y"));
    let mut stages: Vec<Stage2> = Vec::new();
    let dom = |lvl: u32, m: i64| -> Option<[(VarId, Interval); 2]> {
        let size = N2 >> lvl;
        if 2 * m + 6 >= size {
            return None;
        }
        Some([
            (x, Interval::cst(m, size - 1 - m)),
            (y, Interval::cst(m, size - 1 - m)),
        ])
    };
    let access = |s: Option<&Stage2>, xe: Expr, ye: Expr| -> Expr {
        match s {
            Some(s) => Expr::at(s.f, [xe, ye]),
            None => Expr::at(img, [xe, ye]),
        }
    };
    for (i, step) in steps.iter().enumerate() {
        let last = stages.last().copied();
        let (lvl, m) = last.map(|s| (s.lvl, s.m)).unwrap_or((0, 0));
        let name = format!("t{i}");
        let next = match step {
            Step2::Stencil(a, b, c) => {
                let nm = m + 1;
                let d = dom(lvl, nm)?;
                let f = p.func(&name, &d, ScalarType::Float);
                let mut e: Option<Expr> = None;
                for dx in -1i64..=1 {
                    for dy in -1i64..=1 {
                        let w = if dx != 0 && dy != 0 {
                            *a
                        } else if dx == 0 && dy == 0 {
                            *c
                        } else {
                            *b
                        } as f64;
                        if w == 0.0 {
                            continue;
                        }
                        let t = access(last.as_ref(), x + dx, y + dy) * (w / 8.0);
                        e = Some(match e {
                            None => t,
                            Some(s) => s + t,
                        });
                    }
                }
                let e = e.unwrap_or(Expr::Const(1.0));
                p.define(f, vec![Case::always(e)]).ok()?;
                Stage2 { f, lvl, m: nm }
            }
            Step2::Down => {
                if lvl >= 2 {
                    return None;
                }
                let nm = m / 2 + 1;
                let d = dom(lvl + 1, nm)?;
                let f = p.func(&name, &d, ScalarType::Float);
                let e = (access(
                    last.as_ref(),
                    2i64 * Expr::from(x) - 1,
                    2i64 * Expr::from(y),
                ) + access(last.as_ref(), 2i64 * Expr::from(x), 2i64 * Expr::from(y))
                    + access(
                        last.as_ref(),
                        2i64 * Expr::from(x) + 1,
                        2i64 * Expr::from(y) + 1,
                    ))
                    * (1.0 / 3.0);
                p.define(f, vec![Case::always(e)]).ok()?;
                Stage2 {
                    f,
                    lvl: lvl + 1,
                    m: nm,
                }
            }
            Step2::Up => {
                if lvl == 0 || last.is_none() {
                    return None;
                }
                let nm = 2 * m + 2;
                let d = dom(lvl - 1, nm)?;
                let f = p.func(&name, &d, ScalarType::Float);
                let e = (access(last.as_ref(), Expr::from(x) / 2, Expr::from(y) / 2)
                    + access(last.as_ref(), (x + 1) / 2, (y + 1) / 2))
                    * 0.5;
                p.define(f, vec![Case::always(e)]).ok()?;
                Stage2 {
                    f,
                    lvl: lvl - 1,
                    m: nm,
                }
            }
            Step2::Combine(j) => {
                let last = last?;
                let other = stages.get(*j % stages.len()).copied()?;
                if other.lvl != last.lvl {
                    return None;
                }
                let nm = last.m.max(other.m);
                let d = dom(last.lvl, nm)?;
                let f = p.func(&name, &d, ScalarType::Float);
                let e = Expr::at(last.f, [Expr::from(x), Expr::from(y)])
                    - Expr::at(other.f, [Expr::from(x), Expr::from(y)]) * 0.25;
                p.define(f, vec![Case::always(e)]).ok()?;
                Stage2 {
                    f,
                    lvl: last.lvl,
                    m: nm,
                }
            }
            Step2::Parity => {
                let d = dom(lvl, m)?;
                let f = p.func(&name, &d, ScalarType::Float);
                let v = access(last.as_ref(), Expr::from(x), Expr::from(y));
                p.define(
                    f,
                    vec![
                        Case::new(Expr::from(x).rem(2.0).eq_(0.0), v.clone() + 1.0),
                        Case::new(Expr::from(x).rem(2.0).eq_(1.0), v * -1.0),
                    ],
                )
                .ok()?;
                Stage2 { f, lvl, m }
            }
        };
        stages.push(next);
    }
    let out = stages.last()?;
    p.finish(&[out.f]).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// 2-D random pipelines: compiled programs are structurally valid and
    /// agree with the interpreter under several schedules and thread counts.
    #[test]
    fn two_d_schedules_preserve_semantics(
        steps in proptest::collection::vec(step2_strategy(), 1..6),
        seed in 0u64..500,
    ) {
        let Some(pipe) = build_pipeline2(&steps) else { return Ok(()) };
        prop_assert!(polymage::graph::check_bounds(&pipe, &[]).is_empty());
        let input = Buffer::zeros(Rect::new(vec![(0, N2 - 1), (0, N2 - 1)]))
            .fill_with(|p| {
                let h = (p[0] as u64 * 31 + p[1] as u64 * 17 + seed) % 23;
                h as f32 / 3.0 - 3.0
            });
        let expect = interpret(&pipe, &[], std::slice::from_ref(&input)).unwrap();
        for opts in [
            CompileOptions::optimized(vec![]).with_tiles(vec![16, 16]),
            CompileOptions::optimized(vec![]).with_tiles(vec![8, 64]).with_threshold(2.0),
            CompileOptions::base(vec![]),
        ] {
            let compiled = compile(&pipe, &opts).unwrap();
            polymage::core::assert_valid(&compiled.program);
            for threads in [1usize, 4] {
                let got =
                    run_program(&compiled.program, std::slice::from_ref(&input), threads)
                        .unwrap();
                for (g, w) in got.iter().zip(&expect) {
                    prop_assert_eq!(&g.rect, &w.rect);
                    for (a, b) in g.data.iter().zip(&w.data) {
                        prop_assert!(
                            (a - b).abs() <= 1e-3 + 1e-3 * b.abs(),
                            "compiled {} vs interpreted {}",
                            a,
                            b
                        );
                    }
                }
            }
        }
    }
}
