//! Multiscale Interpolation — "interpolates pixel values at multiple
//! scales" (§4, the Halide `interpolate` benchmark).
//!
//! Fills in an image from sparse/weighted samples: level 0 carries
//! `(value·α, α)`; both channels are Gaussian-downsampled `LEVELS − 1`
//! times; the upsweep interpolates missing data coarse-to-fine
//! (`u_l = d_l + (1 − α_l)·up(u_{l+1})`, for the value and weight planes
//! alike) and the output normalizes `value/α`. Two 2-D chains stand in for
//! the original's channel dimension; the paper's 49 stages at 10 levels
//! correspond to ~40 stages here at 5 levels (deeper pyramids would consume
//! the whole margin at our image sizes — the original clamps borders
//! instead; see DESIGN.md).

use crate::pyr_util::{max_margin, ref_down, ref_up, Plane, PyrBuilder, St, M4};
use crate::{Benchmark, Scale};
use polymage_ir::*;
use polymage_vm::Buffer;

/// Number of pyramid levels.
pub const LEVELS: usize = 5;
const EPS: f64 = 1e-4;

/// Builds the DSL specification. Inputs: value image `I` and weight mask
/// `A`, both `(R, C)` divisible by `2^LEVELS`.
pub fn build() -> Pipeline {
    let mut pb = PipelineBuilder::new("multiscale_interpolate");
    let r = pb.param("R");
    let c = pb.param("C");
    let dims = vec![PAff::param(r), PAff::param(c)];
    let iv = pb.image("I", ScalarType::Float, dims.clone());
    let ia = pb.image("A", ScalarType::Float, dims);
    let x = pb.var("x");
    let y = pb.var("y");
    let mut b = PyrBuilder {
        p: pb,
        r,
        c,
        x,
        y,
        extra: None,
    };

    // level 0: premultiplied value and weight
    let d0 = b.dom(0, 0, (0, 0, 0, 0));
    let dv0 = b.p.func("dv0", &d0, ScalarType::Float);
    b.p.define(
        dv0,
        vec![Case::always(
            Expr::at(iv, [Expr::from(x), Expr::from(y)])
                * Expr::at(ia, [Expr::from(x), Expr::from(y)]),
        )],
    )
    .unwrap();
    let da0 = b.p.func("da0", &d0, ScalarType::Float);
    b.p.define(
        da0,
        vec![Case::always(Expr::at(ia, [Expr::from(x), Expr::from(y)]))],
    )
    .unwrap();

    // downsweep
    let mut dv = vec![St {
        f: dv0,
        lvl: 0,
        m: (0, 0, 0, 0),
    }];
    let mut da = vec![St {
        f: da0,
        lvl: 0,
        m: (0, 0, 0, 0),
    }];
    for l in 1..LEVELS {
        let v = b.downsample(&format!("dv{l}"), dv[l - 1]);
        dv.push(v);
        let a = b.downsample(&format!("da{l}"), da[l - 1]);
        da.push(a);
    }

    // upsweep: u_l = d_l + (1 − α_l)·up(u_{l+1})
    let mut uv = dv[LEVELS - 1];
    let mut ua = da[LEVELS - 1];
    for l in (0..LEVELS - 1).rev() {
        let upv = b.upsample(&format!("uv{l}"), uv);
        let upa = b.upsample(&format!("ua{l}"), ua);
        uv = b.combine(&format!("uv{l}"), &[dv[l], da[l], upv], |e| {
            e[0].clone() + (1.0 - e[1].clone()) * e[2].clone()
        });
        ua = b.combine(&format!("ua{l}"), &[da[l], da[l], upa], |e| {
            e[0].clone() + (1.0 - e[1].clone()) * e[2].clone()
        });
    }

    // normalize
    let out = b.combine("interpolated", &[uv, ua], |e| {
        e[0].clone() / (e[1].clone() + EPS)
    });
    let final_dom = b.dom(0, 0, out.m);
    let f = b.p.func("final", &final_dom, ScalarType::Float);
    b.p.define(
        f,
        vec![Case::always(
            Expr::at(out.f, [Expr::from(b.x), Expr::from(b.y)]).clamp(0.0, 1.0),
        )],
    )
    .unwrap();
    b.p.finish(&[f]).unwrap()
}

/// The Multiscale Interpolation benchmark.
pub struct MultiscaleInterp {
    pipeline: Pipeline,
    rows: i64,
    cols: i64,
}

impl MultiscaleInterp {
    /// Instantiates at a given scale.
    pub fn new(scale: Scale) -> Self {
        let (rows, cols) = crate::sizes::INTERPOLATE.at(scale);
        MultiscaleInterp::with_size(rows, cols)
    }

    /// Instantiates with explicit dimensions (divisible by `2^LEVELS`).
    ///
    /// # Panics
    ///
    /// Panics when the dimensions are not divisible by `2^LEVELS`.
    pub fn with_size(rows: i64, cols: i64) -> Self {
        assert!(
            rows % (1 << LEVELS) == 0 && cols % (1 << LEVELS) == 0,
            "dimensions must be divisible by 2^{LEVELS}"
        );
        MultiscaleInterp {
            pipeline: build(),
            rows,
            cols,
        }
    }
}

impl Benchmark for MultiscaleInterp {
    fn name(&self) -> &str {
        "Multiscale Interpolate"
    }

    fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    fn params(&self) -> Vec<i64> {
        vec![self.rows, self.cols]
    }

    fn make_inputs(&self, seed: u64) -> Vec<Buffer> {
        let img = crate::inputs::gray_image(self.rows, self.cols, seed);
        // sparse alpha: keep ~25% of pixels as "known" samples
        let alpha = Buffer::zeros(img.rect.clone()).fill_with(|p| {
            let h = (p[0].wrapping_mul(2654435761) ^ p[1].wrapping_mul(40503)).rem_euclid(97);
            if h < 24 {
                1.0
            } else {
                0.0
            }
        });
        vec![img, alpha]
    }

    fn reference(&self, inputs: &[Buffer]) -> Vec<Buffer> {
        let (img, alpha) = (&inputs[0], &inputs[1]);
        let m0: M4 = (0, 0, 0, 0);
        let mut v0 = Plane::zero(self.rows, self.cols);
        let mut a0 = Plane::zero(self.rows, self.cols);
        for x in 0..self.rows {
            for y in 0..self.cols {
                let a = alpha.at(&[x, y]);
                v0.set(x, y, img.at(&[x, y]) * a);
                a0.set(x, y, a);
            }
        }
        let mut dv = vec![(v0, m0)];
        let mut da = vec![(a0, m0)];
        for l in 1..LEVELS {
            let d = ref_down(&dv[l - 1].0, dv[l - 1].1);
            dv.push(d);
            let d = ref_down(&da[l - 1].0, da[l - 1].1);
            da.push(d);
        }
        let interp_level = |d: &(Plane, M4), a: &(Plane, M4), up: &(Plane, M4)| {
            let m = max_margin(d.1, max_margin(a.1, up.1));
            let mut o = Plane::zero(d.0.rows, d.0.cols);
            for x in m.0..=o.rows - 1 - m.1 {
                for y in m.2..=o.cols - 1 - m.3 {
                    o.set(x, y, d.0.at(x, y) + (1.0 - a.0.at(x, y)) * up.0.at(x, y));
                }
            }
            (o, m)
        };
        let mut uv = dv[LEVELS - 1].clone_pair();
        let mut ua = da[LEVELS - 1].clone_pair();
        for l in (0..LEVELS - 1).rev() {
            let upv = ref_up(&uv.0, uv.1);
            let upa = ref_up(&ua.0, ua.1);
            uv = interp_level(&dv[l], &da[l], &upv);
            ua = interp_level(&da[l], &da[l], &upa);
        }
        let final_rect = {
            let fd = self
                .pipeline
                .funcs()
                .iter()
                .find(|f| f.name == "final")
                .expect("final stage");
            polymage_poly::Rect::new(
                fd.var_dom
                    .dom
                    .iter()
                    .map(|iv| iv.eval(&self.params()))
                    .collect(),
            )
        };
        let mut res = Buffer::zeros(final_rect.clone());
        let mut i = 0;
        let (rx, ry) = (final_rect.range(0), final_rect.range(1));
        for xx in rx.0..=rx.1 {
            for yy in ry.0..=ry.1 {
                let v = uv.0.at(xx, yy) / (ua.0.at(xx, yy) + EPS as f32);
                res.data[i] = v.clamp(0.0, 1.0);
                i += 1;
            }
        }
        vec![res]
    }

    fn tolerance(&self) -> f32 {
        1e-3
    }
}

trait ClonePair {
    fn clone_pair(&self) -> (Plane, M4);
}

impl ClonePair for (Plane, M4) {
    fn clone_pair(&self) -> (Plane, M4) {
        (self.0.clone_plane(), self.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_count() {
        let p = build();
        // 2 + (L−1)·4 downs + (L−1)·6 ups/combines + normalize + final
        assert!(
            (30..=50).contains(&p.funcs().len()),
            "got {} stages",
            p.funcs().len()
        );
    }

    #[test]
    fn bounds_check_validates_margins() {
        let app = MultiscaleInterp::with_size(352, 320);
        let violations = polymage_graph::check_bounds(app.pipeline(), &[352, 320]);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
