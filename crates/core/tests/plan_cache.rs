//! Two-level session cache behavior: with pinned parameter estimates one
//! [`ParametricPlan`] serves every size (plan hits + instance misses),
//! racing binds at a fresh size never duplicate plan compilation, and the
//! diagnostics counters `session.plan_*` / `session.instance_*` mirror
//! [`CacheStats`].

use polymage_core::{CompileOptions, Session};
use polymage_diag::{Counter, Diag};
use polymage_ir::*;
use std::sync::Arc;

/// blur(x) = (in(x−1) + in(x) + in(x+1)) / 3 over the interior of `N`.
fn blur1d() -> Pipeline {
    let mut p = PipelineBuilder::new("blur1d");
    let n = p.param("N");
    let img = p.image("in", ScalarType::Float, vec![PAff::param(n)]);
    let x = p.var("x");
    let dom = Interval::new(PAff::cst(1), PAff::param(n) - 2);
    let blur = p.func("blur", &[(x, dom)], ScalarType::Float);
    let e =
        (Expr::at(img, [x - 1]) + Expr::at(img, [x + 0]) + Expr::at(img, [x + 1])) * (1.0 / 3.0);
    p.define(blur, vec![Case::always(e)]).unwrap();
    p.finish(&[blur]).unwrap()
}

/// Optimized options at size `n` with the plan's estimates pinned at 96,
/// so every size shares one structural key (and therefore one plan).
fn opts_at(n: i64) -> CompileOptions {
    CompileOptions::optimized(vec![n]).with_estimates(vec![96])
}

/// The ISSUE's acceptance scenario: compile at A, then run at B and C —
/// one plan compilation total, three instantiations, two plan hits.
#[test]
fn one_plan_serves_three_sizes() {
    let diag = Diag::recorder();
    let session = Session::with_threads(1).with_diag(diag.clone());
    let pipe = blur1d();

    session.compile(&pipe, &opts_at(64)).unwrap(); // A
    let s = session.cache_stats();
    assert_eq!((s.plan_misses, s.plan_hits, s.misses, s.hits), (1, 0, 1, 0));

    session.compile(&pipe, &opts_at(128)).unwrap(); // B
    session.compile(&pipe, &opts_at(200)).unwrap(); // C
    let s = session.cache_stats();
    assert_eq!(s.plan_misses, 1, "one plan compile serves all sizes");
    assert_eq!(s.plan_hits, 2, "B and C rebind the cached plan");
    assert_eq!(s.misses, 3, "each size is its own instantiation");
    assert_eq!(session.plan_cache_len(), 1);
    assert_eq!(session.cache_len(), 3);

    // An instance hit is served before the plan cache is even consulted.
    let first = session.compile(&pipe, &opts_at(128)).unwrap();
    let again = session.compile(&pipe, &opts_at(128)).unwrap();
    assert!(Arc::ptr_eq(&first, &again));
    let s = session.cache_stats();
    assert_eq!(
        (s.plan_misses, s.plan_hits),
        (1, 2),
        "hit skips plan lookup"
    );
    assert_eq!(s.hits, 2);

    // Diagnostics counters mirror the stats.
    let rec = diag.snapshot().expect("recording sink");
    assert_eq!(rec.counter(Counter::PlanMiss), 1);
    assert_eq!(rec.counter(Counter::PlanHit), 2);
    assert_eq!(rec.counter(Counter::InstanceMiss), 3);
    assert_eq!(rec.counter(Counter::InstanceHit), 2);
    assert_eq!(rec.counter(Counter::CacheMiss), 3);
    assert_eq!(rec.counter(Counter::CacheHit), 2);
}

/// Without pinned estimates the estimates default to the bound parameters,
/// so each size is a distinct structural key — the documented
/// one-plan-per-size fallback.
#[test]
fn default_estimates_follow_params() {
    let session = Session::with_threads(1);
    let pipe = blur1d();
    session
        .compile(&pipe, &CompileOptions::optimized(vec![64]))
        .unwrap();
    session
        .compile(&pipe, &CompileOptions::optimized(vec![128]))
        .unwrap();
    let s = session.cache_stats();
    assert_eq!(s.plan_misses, 2, "estimates follow params → two plans");
    assert_eq!(s.plan_hits, 0);
    assert_eq!(session.plan_cache_len(), 2);
}

/// `Session::plan` is cached and single-flighted on its own: repeated
/// calls return the same allocation with one planner run.
#[test]
fn plan_api_returns_cached_allocation() {
    let session = Session::with_threads(1);
    let pipe = blur1d();
    let a = session.plan(&pipe, &opts_at(64)).unwrap();
    let b = session.plan(&pipe, &opts_at(777)).unwrap();
    assert!(Arc::ptr_eq(&a, &b), "params don't affect the plan key");
    let s = session.cache_stats();
    assert_eq!((s.plan_misses, s.plan_hits), (1, 1));
    assert_eq!(s.misses, 0, "plan() alone never instantiates");
    assert_eq!(a.estimates(), &[96]);
}

/// Racing binds at a brand-new size: many threads compile the same
/// (pipeline, size) concurrently. Exactly one instantiation runs
/// (single-flight) and the plan cache is consulted exactly once — zero
/// extra plan compiles.
#[test]
fn racing_binds_never_duplicate_plan_compilation() {
    let session = Arc::new(Session::with_threads(1));
    let pipe = Arc::new(blur1d());
    // Seed the plan cache at size A.
    session.compile(&pipe, &opts_at(64)).unwrap();
    assert_eq!(session.cache_stats().plan_misses, 1);

    const RACERS: usize = 8;
    let barrier = Arc::new(std::sync::Barrier::new(RACERS));
    let compiled: Vec<_> = (0..RACERS)
        .map(|_| {
            let (session, pipe, barrier) = (
                Arc::clone(&session),
                Arc::clone(&pipe),
                Arc::clone(&barrier),
            );
            std::thread::spawn(move || {
                barrier.wait();
                session.compile(&pipe, &opts_at(300)).unwrap() // D
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();
    assert!(
        compiled.iter().all(|c| Arc::ptr_eq(c, &compiled[0])),
        "all racers share the leader's instantiation"
    );
    let s = session.cache_stats();
    assert_eq!(
        s.plan_misses, 1,
        "no extra plan compiles under racing binds"
    );
    assert_eq!(
        s.plan_hits, 1,
        "only the instance-flight leader binds the plan"
    );
    assert_eq!(s.misses, 2, "A's and D's instantiations only");
    assert_eq!(s.hits, RACERS as u64 - 1, "followers wait on the leader");
}
