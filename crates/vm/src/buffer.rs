//! Buffers: full arrays and per-tile scratchpads.

use polymage_poly::Rect;
use std::fmt;

/// Identifier of a buffer inside a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufId(pub usize);

/// Storage class of a buffer (paper §3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufKind {
    /// A full array covering the stage's whole domain; indexed by absolute
    /// coordinates. Used for inputs, live-outs, and stages consumed across
    /// group boundaries.
    Full,
    /// A per-thread scratchpad covering one overlapped tile's region of the
    /// stage; indexed relative to the tile-region origin, which the executor
    /// rebinds per tile.
    Scratch,
}

/// Declaration of a buffer in a compiled program.
#[derive(Debug, Clone)]
pub struct BufDecl {
    /// Stage or image name the buffer stores (diagnostics only).
    pub name: String,
    /// Storage class.
    pub kind: BufKind,
    /// Allocation size per dimension. For [`BufKind::Full`] this is the
    /// domain extent; for [`BufKind::Scratch`] the worst-case tile-region
    /// extent over all tiles.
    pub sizes: Vec<i64>,
    /// For [`BufKind::Full`]: the domain's lower corner (absolute index −
    /// origin = storage index). Scratch origins are bound per tile.
    pub origin: Vec<i64>,
}

impl BufDecl {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.sizes.iter().product::<i64>().max(0) as usize
    }

    /// Whether the allocation is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides for the declared sizes.
    pub fn strides(&self) -> Vec<i64> {
        let mut s = vec![1i64; self.sizes.len()];
        for d in (0..self.sizes.len().saturating_sub(1)).rev() {
            s[d] = s[d + 1] * self.sizes[d + 1];
        }
        s
    }
}

/// A concrete array of `f32` with its domain rectangle — the unit of data
/// exchanged with the user (input images and live-out results).
#[derive(Debug, Clone, PartialEq)]
pub struct Buffer {
    /// Element values, row-major over `rect`.
    pub data: Vec<f32>,
    /// The absolute coordinate box the data covers.
    pub rect: Rect,
}

impl Buffer {
    /// Allocates a zero-filled buffer over `rect`.
    pub fn zeros(rect: Rect) -> Buffer {
        let n = rect.volume().max(0) as usize;
        Buffer {
            data: vec![0.0; n],
            rect,
        }
    }

    /// Builds a buffer from data laid out row-major over `rect`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the rectangle's volume.
    pub fn from_vec(rect: Rect, data: Vec<f32>) -> Buffer {
        assert_eq!(
            data.len() as i64,
            rect.volume(),
            "buffer data length must match rect volume"
        );
        Buffer { data, rect }
    }

    /// Value at an absolute coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `pt` is outside the buffer's rectangle.
    pub fn at(&self, pt: &[i64]) -> f32 {
        assert!(self.rect.contains(pt), "point {pt:?} outside {}", self.rect);
        let mut idx = 0i64;
        let mut stride = 1i64;
        for d in (0..pt.len()).rev() {
            let (lo, hi) = self.rect.range(d);
            idx += (pt[d] - lo) * stride;
            stride *= hi - lo + 1;
        }
        self.data[idx as usize]
    }

    /// Fills the buffer with a function of the absolute coordinates
    /// (convenient for test inputs).
    pub fn fill_with(mut self, f: impl Fn(&[i64]) -> f32) -> Buffer {
        for (i, pt) in self.rect.points().enumerate() {
            self.data[i] = f(&pt);
        }
        self
    }

    /// Maximum absolute difference against another buffer of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the rectangles differ.
    pub fn max_abs_diff(&self, other: &Buffer) -> f32 {
        assert_eq!(
            self.rect, other.rect,
            "comparing buffers of different shape"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl fmt::Display for Buffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Buffer{} ({} elems)", self.rect, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decl_strides_and_len() {
        let d = BufDecl {
            name: "t".into(),
            kind: BufKind::Full,
            sizes: vec![4, 5, 6],
            origin: vec![0, 0, 0],
        };
        assert_eq!(d.len(), 120);
        assert_eq!(d.strides(), vec![30, 6, 1]);
        assert!(!d.is_empty());
    }

    #[test]
    fn buffer_indexing() {
        let r = Rect::new(vec![(2, 3), (10, 12)]);
        let b = Buffer::from_vec(r, (0..6).map(|i| i as f32).collect());
        assert_eq!(b.at(&[2, 10]), 0.0);
        assert_eq!(b.at(&[2, 12]), 2.0);
        assert_eq!(b.at(&[3, 10]), 3.0);
        assert_eq!(b.at(&[3, 12]), 5.0);
    }

    #[test]
    fn fill_with_coords() {
        let r = Rect::new(vec![(0, 1), (0, 1)]);
        let b = Buffer::zeros(r).fill_with(|p| (p[0] * 10 + p[1]) as f32);
        assert_eq!(b.at(&[1, 1]), 11.0);
        assert_eq!(b.at(&[0, 1]), 1.0);
    }

    #[test]
    fn diff() {
        let r = Rect::new(vec![(0, 3)]);
        let a = Buffer::from_vec(r.clone(), vec![1.0, 2.0, 3.0, 4.0]);
        let b = Buffer::from_vec(r, vec![1.0, 2.5, 3.0, 4.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn from_vec_checks_len() {
        let _ = Buffer::from_vec(Rect::new(vec![(0, 3)]), vec![0.0; 3]);
    }
}
