//! Compiler errors.

use polymage_graph::{BoundsViolation, GraphError};
use polymage_ir::IrError;
use std::error::Error;
use std::fmt;

/// Errors reported by [`crate::compile`].
#[derive(Debug, Clone)]
pub enum CompileError {
    /// Structural error in the specification.
    Ir(IrError),
    /// Graph construction failed (dependence cycle).
    Graph(GraphError),
    /// The static bounds check found out-of-range accesses.
    Bounds(Vec<BoundsViolation>),
    /// A self-referential stage's self-dependences are not lexicographically
    /// backward (the scan order cannot satisfy them), or use unsupported
    /// (scaled/dynamic) self-access patterns.
    InvalidSelfReference {
        /// Stage name.
        func: String,
        /// Explanation.
        reason: String,
    },
    /// The supplied parameter values do not match the pipeline's declared
    /// parameters: too few (the missing ones are named) or too many (the
    /// extra value indices have no declared `ParamId`).
    ParamMismatch {
        /// Pipeline name (as reported by `Pipeline::name`).
        pipeline: String,
        /// Parameters the pipeline declares.
        expected: usize,
        /// Values supplied.
        got: usize,
        /// `(ParamId index, name)` of every declared parameter without a
        /// supplied value.
        missing: Vec<(usize, String)>,
        /// Indices of supplied values beyond the declared parameters.
        extra: Vec<usize>,
    },
    /// A stage domain or image extent evaluated to an empty/negative size.
    EmptyDomain {
        /// Stage or image name.
        name: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Ir(e) => write!(f, "specification error: {e}"),
            CompileError::Graph(e) => write!(f, "pipeline graph error: {e}"),
            CompileError::Bounds(vs) => {
                writeln!(f, "static bounds check failed ({} violations):", vs.len())?;
                for v in vs.iter().take(5) {
                    writeln!(f, "  {v}")?;
                }
                if vs.len() > 5 {
                    writeln!(f, "  …")?;
                }
                Ok(())
            }
            CompileError::InvalidSelfReference { func, reason } => {
                write!(f, "invalid self-reference in `{func}`: {reason}")
            }
            CompileError::ParamMismatch {
                pipeline,
                expected,
                got,
                missing,
                extra,
            } => {
                write!(
                    f,
                    "pipeline `{pipeline}` declares {expected} parameter(s), got {got} value(s)"
                )?;
                if !missing.is_empty() {
                    let names: Vec<String> = missing
                        .iter()
                        .map(|(i, n)| format!("`{n}` (#{i})"))
                        .collect();
                    write!(f, "; missing: {}", names.join(", "))?;
                }
                if !extra.is_empty() {
                    let idxs: Vec<String> = extra.iter().map(|i| format!("#{i}")).collect();
                    write!(f, "; extra value(s) at: {}", idxs.join(", "))?;
                }
                Ok(())
            }
            CompileError::EmptyDomain { name } => {
                write!(f, "domain of `{name}` is empty for the given parameters")
            }
        }
    }
}

impl CompileError {
    /// Builds a [`CompileError::ParamMismatch`] naming the missing
    /// parameters (by `ParamId` index and pipeline name) and the indices
    /// of any extra values.
    pub(crate) fn param_mismatch(pipe: &polymage_ir::Pipeline, got: usize) -> CompileError {
        let names = pipe.params();
        CompileError::ParamMismatch {
            pipeline: pipe.name().to_string(),
            expected: names.len(),
            got,
            missing: names
                .iter()
                .enumerate()
                .skip(got)
                .map(|(i, n)| (i, n.clone()))
                .collect(),
            extra: (names.len()..got).collect(),
        }
    }
}

impl Error for CompileError {}

impl From<IrError> for CompileError {
    fn from(e: IrError) -> Self {
        CompileError::Ir(e)
    }
}

impl From<GraphError> for CompileError {
    fn from(e: GraphError) -> Self {
        CompileError::Graph(e)
    }
}
