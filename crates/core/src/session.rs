//! Long-lived compile-and-run sessions: a persistent [`Engine`] plus a
//! two-level LRU compile cache (size-independent plans × bound instances).
//!
//! [`compile`](crate::compile) is cheap (microseconds) but not free, and
//! [`polymage_vm::run_program`] spins up a fresh engine per call. Code
//! that executes pipelines repeatedly — frame loops, autotuners,
//! benchmarks — should hold a [`Session`]: compiled programs are cached by
//! a *stable content hash* of the `(Pipeline, CompileOptions)` pair, and
//! every run reuses the session's pooled workers and recycled buffers.
//!
//! The cache has two levels, mirroring the phase split of
//! [`plan`](crate::plan) / [`instantiate`](crate::instantiate):
//!
//! - **plans** are keyed by `content_hash ×`
//!   [`CompileOptions::cache_key_structural`] — everything *except* the
//!   bound parameter values. Pin the heuristics with
//!   [`CompileOptions::with_estimates`] and one
//!   [`ParametricPlan`](crate::ParametricPlan) serves every size: a serving
//!   loop that sees a new image resolution pays only the cheap bind.
//! - **instances** (the executable [`Compiled`]s) are keyed by the full
//!   [`CompileOptions::cache_key`], i.e. structural key plus the bound
//!   params.
//!
//! Both levels are single-flight: N threads racing a cold key run phase 1
//! once and phase 2 once. Instance hits/misses surface as the legacy
//! `cache.hit`/`cache.miss` diagnostics counters *and* the explicit
//! `session.instance_{hit,miss}`; plan lookups as `session.plan_{hit,miss}`.
//!
//! Cache keying rules:
//!
//! - the pipeline participates via [`polymage_ir::Pipeline::content_hash`]
//!   (deterministic structural hash — names, domains, expressions,
//!   live-outs);
//! - the options participate via [`CompileOptions::cache_key`], which
//!   includes every knob that can change the produced program (params,
//!   estimates, tile sizes, threshold bits, mode, fuse/tile/inline/storage
//!   flags, strip count, and `kernel_opt` — the optimizer rewrites
//!   kernels) and excludes `skip_bounds_check` (it only affects error
//!   reporting, never the produced program);
//! - errors are never cached — a failed compilation is retried on the
//!   next call.

use crate::options::{OptionsKey, StructuralKey};
use crate::plan::{plan_with, ParametricPlan};
use crate::{instantiate_with, CompileError, CompileOptions, Compiled};
use polymage_diag::{Counter, Diag};
use polymage_ir::Pipeline;
use polymage_vm::{Buffer, Engine, RunRequest, RunStats, VmError};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Default number of cached compilations per session (each level).
const DEFAULT_CACHE_CAPACITY: usize = 32;

/// An error from [`Session::run`]: compilation or execution failed.
#[derive(Debug)]
pub enum RunError {
    /// The pipeline failed to compile.
    Compile(CompileError),
    /// The compiled program failed to execute.
    Execute(VmError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Compile(e) => write!(f, "compilation failed: {e}"),
            RunError::Execute(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Compile(e) => Some(e),
            RunError::Execute(e) => Some(e),
        }
    }
}

impl From<CompileError> for RunError {
    fn from(e: CompileError) -> Self {
        RunError::Compile(e)
    }
}

impl From<VmError> for RunError {
    fn from(e: VmError) -> Self {
        RunError::Execute(e)
    }
}

/// Hit/miss counters of a session's two-level compile cache.
///
/// `hits`/`misses`/`evictions` are the *instance* level (bound programs) —
/// the counters the cache has always reported. The `plan_*` fields count
/// the size-independent plan level underneath: a serving loop that binds
/// one pipeline at many sizes shows `plan_misses == 1` with
/// `plan_hits` growing, while `misses` ticks once per distinct size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Compilations served without running the compiler in the calling
    /// thread: cache hits, plus threads that blocked on another thread's
    /// in-flight compilation of the same key (single-flight followers).
    pub hits: u64,
    /// Compilations that actually ran phase 2 (instantiate) — exactly one
    /// per single-flight group, counted whether or not the compile
    /// succeeds.
    pub misses: u64,
    /// Cached instances evicted by the LRU policy.
    pub evictions: u64,
    /// Plan lookups served from the plan cache (including single-flight
    /// followers of an in-flight planning run).
    pub plan_hits: u64,
    /// Plan lookups that ran phase 1 (the expensive analyses) — exactly
    /// one per single-flight group.
    pub plan_misses: u64,
    /// Cached plans evicted by the LRU policy.
    pub plan_evictions: u64,
}

#[derive(Clone, PartialEq, Eq)]
struct CacheKey {
    pipe_hash: u64,
    opts: OptionsKey,
}

#[derive(Clone, PartialEq, Eq)]
struct PlanKey {
    pipe_hash: u64,
    structural: StructuralKey,
}

/// Rendezvous for racing computations of one key: the leader computes and
/// publishes; followers block here instead of computing again.
struct FlightSlot<T> {
    /// `None` = pending, `Some(None)` = leader failed (followers retry),
    /// `Some(Some(_))` = done.
    state: Mutex<Option<Option<T>>>,
    cv: std::sync::Condvar,
}

impl<T: Clone> FlightSlot<T> {
    fn new() -> FlightSlot<T> {
        FlightSlot {
            state: Mutex::new(None),
            cv: std::sync::Condvar::new(),
        }
    }

    fn resolve(&self, result: Option<T>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *state = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = &*state {
                return result.clone();
            }
            state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct Cache {
    /// Instance LRU: least recently used first, most recent last.
    entries: Vec<(CacheKey, Arc<Compiled>)>,
    /// Instance misses currently being bound, one slot per key.
    inflight: Vec<(CacheKey, Arc<FlightSlot<Arc<Compiled>>>)>,
    /// Plan LRU (size-independent level).
    plans: Vec<(PlanKey, Arc<ParametricPlan>)>,
    /// Plan misses currently being planned, one slot per key.
    plan_inflight: Vec<(PlanKey, Arc<FlightSlot<Arc<ParametricPlan>>>)>,
    /// Per-level entry capacity (shared setting).
    capacity: usize,
    stats: CacheStats,
}

/// A long-lived compile-and-run session.
///
/// Owns a persistent [`Engine`] (pooled worker threads, recycled buffers)
/// and a two-level LRU cache: size-independent
/// [`ParametricPlan`](crate::ParametricPlan)s keyed by the structural
/// options, and bound programs keyed by the full options (see the module
/// docs for the split).
///
/// Sessions are built for concurrent serving: every method takes `&self`,
/// so one `Session` (behind an `Arc` or a plain reference) can be shared
/// across request threads. Runs execute **concurrently** on the engine's
/// shared worker pool — each gets its own run context, and results are
/// bit-identical to an idle engine. Racing compilations of the same
/// pipeline are deduplicated (single-flight) at both levels, so a
/// thundering herd on a cold cache plans once and binds once.
pub struct Session {
    engine: Engine,
    cache: Mutex<Cache>,
    diag: Diag,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("nthreads", &self.engine.nthreads())
            .field("cache_stats", &self.cache_stats())
            .finish()
    }
}

impl Session {
    /// A session with one engine worker per available hardware thread.
    pub fn new() -> Session {
        Session::with_engine(Engine::new())
    }

    /// A session whose engine has exactly `nthreads` pooled workers.
    pub fn with_threads(nthreads: usize) -> Session {
        Session::with_engine(Engine::with_threads(nthreads))
    }

    /// Wraps an existing engine in a session.
    pub fn with_engine(engine: Engine) -> Session {
        Session {
            engine,
            cache: Mutex::new(Cache {
                entries: Vec::new(),
                inflight: Vec::new(),
                plans: Vec::new(),
                plan_inflight: Vec::new(),
                capacity: DEFAULT_CACHE_CAPACITY,
                stats: CacheStats::default(),
            }),
            diag: Diag::noop(),
        }
    }

    /// Attaches a diagnostics sink: every compilation (phase spans, merge
    /// decisions), cache lookup (hit/miss/evict counters, plan/instance
    /// counters) and engine run (group/worker spans, pool and evaluator
    /// counters) flows through it. The default is the zero-cost no-op
    /// sink.
    pub fn with_diag(mut self, diag: Diag) -> Session {
        self.diag = diag;
        self
    }

    /// The session's diagnostics handle (clones share the same sink).
    pub fn diag(&self) -> &Diag {
        &self.diag
    }

    /// Sets the cache capacity (entries per level; minimum 1). Shrinking
    /// evicts the least recently used entries immediately.
    pub fn with_cache_capacity(self, capacity: usize) -> Session {
        {
            let mut cache = self.lock_cache();
            cache.capacity = capacity.max(1);
            while cache.entries.len() > cache.capacity {
                cache.entries.remove(0);
                cache.stats.evictions += 1;
                self.diag.count(Counter::CacheEvict, 1);
            }
            while cache.plans.len() > cache.capacity {
                cache.plans.remove(0);
                cache.stats.plan_evictions += 1;
            }
        }
        self
    }

    /// The session's execution engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Number of pooled engine workers.
    pub fn nthreads(&self) -> usize {
        self.engine.nthreads()
    }

    /// Builds (or fetches) the size-independent
    /// [`ParametricPlan`](crate::ParametricPlan) for a pipeline — phase 1
    /// only. The key ignores `opts.params`: two option sets differing only
    /// in the bound values share one plan (provided the estimates agree —
    /// pin them with [`CompileOptions::with_estimates`]).
    ///
    /// Misses are **single-flight**: when N threads race the same key,
    /// exactly one runs the planner (one [`CacheStats::plan_misses`]
    /// tick); the others block and share its result, counting as plan
    /// hits. Errors are never cached.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::plan`]; errors are not cached.
    pub fn plan(
        &self,
        pipe: &Pipeline,
        opts: &CompileOptions,
    ) -> Result<Arc<ParametricPlan>, CompileError> {
        let key = PlanKey {
            pipe_hash: pipe.content_hash(),
            structural: opts.cache_key_structural(),
        };
        loop {
            let slot = {
                let mut cache = self.lock_cache();
                if let Some(i) = cache.plans.iter().position(|(k, _)| *k == key) {
                    let entry = cache.plans.remove(i);
                    let hit = Arc::clone(&entry.1);
                    cache.plans.push(entry); // most recently used
                    cache.stats.plan_hits += 1;
                    self.diag.count(Counter::PlanHit, 1);
                    return Ok(hit);
                }
                if let Some((_, slot)) = cache.plan_inflight.iter().find(|(k, _)| *k == key) {
                    Some(Arc::clone(slot))
                } else {
                    cache
                        .plan_inflight
                        .push((key.clone(), Arc::new(FlightSlot::new())));
                    cache.stats.plan_misses += 1;
                    self.diag.count(Counter::PlanMiss, 1);
                    None
                }
            };
            if let Some(slot) = slot {
                match slot.wait() {
                    Some(plan) => {
                        let mut cache = self.lock_cache();
                        cache.stats.plan_hits += 1;
                        self.diag.count(Counter::PlanHit, 1);
                        drop(cache);
                        return Ok(plan);
                    }
                    None => continue, // the leader failed; retry
                }
            }
            return self.plan_as_leader(pipe, opts, &key);
        }
    }

    /// Runs the planner for a key this thread holds the in-flight slot of,
    /// then publishes the result. The guard unwinds the slot on error
    /// *and* on panic, so followers never block on a dead flight.
    fn plan_as_leader(
        &self,
        pipe: &Pipeline,
        opts: &CompileOptions,
        key: &PlanKey,
    ) -> Result<Arc<ParametricPlan>, CompileError> {
        struct PlanGuard<'a> {
            session: &'a Session,
            key: Option<PlanKey>,
        }
        impl PlanGuard<'_> {
            fn finish(&mut self, result: Option<Arc<ParametricPlan>>) {
                let key = self.key.take().expect("plan flight finished twice");
                let slot = {
                    let mut cache = self.session.lock_cache();
                    if let Some(plan) = &result {
                        if cache.plans.len() >= cache.capacity {
                            cache.plans.remove(0);
                            cache.stats.plan_evictions += 1;
                        }
                        cache.plans.push((key.clone(), Arc::clone(plan)));
                    }
                    let i = cache
                        .plan_inflight
                        .iter()
                        .position(|(k, _)| *k == key)
                        .expect("leader's plan flight slot disappeared");
                    cache.plan_inflight.swap_remove(i).1
                };
                slot.resolve(result);
            }
        }
        impl Drop for PlanGuard<'_> {
            fn drop(&mut self) {
                if self.key.is_some() {
                    self.finish(None); // unwinding: fail the flight
                }
            }
        }

        // Plan outside every lock: a slow planning run must not block
        // cache hits (or other keys' flights).
        let mut guard = PlanGuard {
            session: self,
            key: Some(key.clone()),
        };
        match plan_with(pipe, opts, &self.diag) {
            Ok(p) => {
                let plan = Arc::new(p);
                guard.finish(Some(Arc::clone(&plan)));
                Ok(plan)
            }
            Err(e) => {
                guard.finish(None);
                Err(e)
            }
        }
    }

    /// Compiles a pipeline, consulting the cache first. On a hit the
    /// cached [`Compiled`] is returned (shared via [`Arc`]) and the
    /// compiler does not run at all. On an instance miss, the plan level
    /// is consulted next — with a cached plan only the cheap
    /// [`instantiate`](crate::instantiate) bind runs.
    ///
    /// Misses are **single-flight**: when N threads race the same key,
    /// exactly one runs the compiler (one [`CacheStats::misses`] tick);
    /// the others block on the in-flight entry and share its result,
    /// counting as hits. If the leader's compilation fails, followers
    /// retry — errors are never cached or shared.
    ///
    /// # Errors
    ///
    /// Same conditions as [`compile`](crate::compile); errors are not cached.
    pub fn compile(
        &self,
        pipe: &Pipeline,
        opts: &CompileOptions,
    ) -> Result<Arc<Compiled>, CompileError> {
        let key = CacheKey {
            pipe_hash: pipe.content_hash(),
            opts: opts.cache_key(),
        };
        loop {
            let slot = {
                let mut cache = self.lock_cache();
                if let Some(i) = cache.entries.iter().position(|(k, _)| *k == key) {
                    let entry = cache.entries.remove(i);
                    let hit = Arc::clone(&entry.1);
                    cache.entries.push(entry); // most recently used
                    cache.stats.hits += 1;
                    self.diag.count(Counter::CacheHit, 1);
                    self.diag.count(Counter::InstanceHit, 1);
                    return Ok(hit);
                }
                if let Some((_, slot)) = cache.inflight.iter().find(|(k, _)| *k == key) {
                    // Another thread is already compiling this key:
                    // follow its flight instead of compiling again.
                    Some(Arc::clone(slot))
                } else {
                    // Become the leader. The miss is counted here — one
                    // per single-flight group, hit or error.
                    cache
                        .inflight
                        .push((key.clone(), Arc::new(FlightSlot::new())));
                    cache.stats.misses += 1;
                    self.diag.count(Counter::CacheMiss, 1);
                    self.diag.count(Counter::InstanceMiss, 1);
                    None
                }
            };
            if let Some(slot) = slot {
                match slot.wait() {
                    Some(compiled) => {
                        // Served by the leader's compilation: a hit from
                        // this thread's perspective (no compiler run).
                        let mut cache = self.lock_cache();
                        cache.stats.hits += 1;
                        self.diag.count(Counter::CacheHit, 1);
                        self.diag.count(Counter::InstanceHit, 1);
                        drop(cache);
                        return Ok(compiled);
                    }
                    // The leader failed; retry (and possibly lead).
                    None => continue,
                }
            }
            return self.compile_as_leader(pipe, opts, &key);
        }
    }

    /// Runs phase 1 (via the plan cache) and phase 2 for a key this thread
    /// holds the in-flight slot of, then publishes the result to the cache
    /// and every follower. The guard unwinds the slot on error *and* on
    /// panic, so followers never block on a flight whose leader died.
    fn compile_as_leader(
        &self,
        pipe: &Pipeline,
        opts: &CompileOptions,
        key: &CacheKey,
    ) -> Result<Arc<Compiled>, CompileError> {
        struct FlightGuard<'a> {
            session: &'a Session,
            key: Option<CacheKey>,
        }
        impl FlightGuard<'_> {
            fn finish(&mut self, result: Option<Arc<Compiled>>) {
                let key = self.key.take().expect("flight finished twice");
                let slot = {
                    let mut cache = self.session.lock_cache();
                    if let Some(compiled) = &result {
                        if cache.entries.len() >= cache.capacity {
                            cache.entries.remove(0);
                            cache.stats.evictions += 1;
                            self.session.diag.count(Counter::CacheEvict, 1);
                        }
                        cache.entries.push((key.clone(), Arc::clone(compiled)));
                    }
                    let i = cache
                        .inflight
                        .iter()
                        .position(|(k, _)| *k == key)
                        .expect("leader's flight slot disappeared");
                    cache.inflight.swap_remove(i).1
                };
                slot.resolve(result);
            }
        }
        impl Drop for FlightGuard<'_> {
            fn drop(&mut self) {
                if self.key.is_some() {
                    self.finish(None); // unwinding: fail the flight
                }
            }
        }

        // Compile outside every lock: a slow compilation must not block
        // cache hits (or other keys' flights). The plan level has its own
        // single-flight, so racing binds of *different* sizes share one
        // planning run.
        let mut guard = FlightGuard {
            session: self,
            key: Some(key.clone()),
        };
        let result = self
            .plan(pipe, opts)
            .and_then(|plan| instantiate_with(&plan, &opts.params, &self.diag));
        match result {
            Ok(c) => {
                let compiled = Arc::new(c);
                guard.finish(Some(Arc::clone(&compiled)));
                Ok(compiled)
            }
            Err(e) => {
                guard.finish(None);
                Err(e)
            }
        }
    }

    /// Compiles (cached) and runs a pipeline on the session's engine.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Compile`] for invalid specifications and
    /// [`RunError::Execute`] for input mismatches or executor faults.
    pub fn run(
        &self,
        pipe: &Pipeline,
        opts: &CompileOptions,
        inputs: &[Buffer],
    ) -> Result<Vec<Buffer>, RunError> {
        let compiled = self.compile(pipe, opts)?;
        Ok(self.run_compiled(&compiled, inputs)?)
    }

    /// Like [`Session::run`], additionally returning execution statistics
    /// (tile/chunk/point counters and per-group wall-clock durations; pair
    /// them with the report via
    /// [`CompileReport::with_timings`](crate::CompileReport::with_timings)).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Session::run`].
    pub fn run_stats(
        &self,
        pipe: &Pipeline,
        opts: &CompileOptions,
        inputs: &[Buffer],
    ) -> Result<(Vec<Buffer>, RunStats), RunError> {
        let compiled = self.compile(pipe, opts)?;
        Ok(self
            .engine
            .submit(
                RunRequest::new(&compiled.program, inputs)
                    .threads(self.nthreads())
                    .trace(&self.diag),
            )?
            .join_stats()?)
    }

    /// Runs an already-compiled program on the session's engine.
    ///
    /// # Errors
    ///
    /// Returns [`VmError`] for input mismatches or executor faults.
    pub fn run_compiled(
        &self,
        compiled: &Compiled,
        inputs: &[Buffer],
    ) -> Result<Vec<Buffer>, VmError> {
        self.engine
            .submit(
                RunRequest::new(&compiled.program, inputs)
                    .threads(self.nthreads())
                    .trace(&self.diag)
                    .group_stats(false),
            )?
            .join()
    }

    /// Hit/miss/eviction counters of both cache levels.
    pub fn cache_stats(&self) -> CacheStats {
        self.lock_cache().stats
    }

    /// Number of currently cached instances (bound programs).
    pub fn cache_len(&self) -> usize {
        self.lock_cache().entries.len()
    }

    /// Number of currently cached size-independent plans.
    pub fn plan_cache_len(&self) -> usize {
        self.lock_cache().plans.len()
    }

    /// Drops every cached plan and instance (counters are kept).
    pub fn clear_cache(&self) {
        let mut cache = self.lock_cache();
        cache.entries.clear();
        cache.plans.clear();
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, Cache> {
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }
}
