//! Affine forms over domain variables — the index expressions of accesses.

use polymage_ir::{BinOp, Expr, PAff, UnOp, VarId};
use std::fmt;

/// An affine index expression `(Σ qᵢ·vᵢ + c(params)) / m` with floor
/// division, where `vᵢ` are domain variables and `c` is parameter-affine.
///
/// This is the normal form of every analyzable access dimension in the DSL:
/// stencil offsets (`x + 1`), downsampling (`2x + 1`), upsampling
/// (`(x + 1) / 2`), channel selection (`2`), and parameter-relative indices
/// (`x + R`). Index expressions in the DSL use *integer semantics*: division
/// is floor division.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VAff {
    /// Coefficients of the domain variables (sorted, non-zero).
    pub terms: Vec<(VarId, i64)>,
    /// Parameter-affine constant part of the numerator.
    pub cst: PAff,
    /// Positive floor-division denominator.
    pub den: i64,
}

impl VAff {
    /// The constant zero.
    pub fn zero() -> VAff {
        VAff {
            terms: Vec::new(),
            cst: PAff::cst(0),
            den: 1,
        }
    }

    /// A bare variable.
    pub fn var(v: VarId) -> VAff {
        VAff {
            terms: vec![(v, 1)],
            cst: PAff::cst(0),
            den: 1,
        }
    }

    /// A constant.
    pub fn cst(c: i64) -> VAff {
        VAff {
            terms: Vec::new(),
            cst: PAff::cst(c),
            den: 1,
        }
    }

    fn normalize(mut self) -> VAff {
        self.terms.sort_by_key(|&(v, _)| v);
        let mut out: Vec<(VarId, i64)> = Vec::with_capacity(self.terms.len());
        for (v, q) in self.terms.drain(..) {
            match out.last_mut() {
                Some((u, p)) if *u == v => *p += q,
                _ => out.push((v, q)),
            }
        }
        out.retain(|&(_, q)| q != 0);
        self.terms = out;
        self
    }

    /// The coefficient of variable `v` in the numerator.
    pub fn coeff(&self, v: VarId) -> i64 {
        self.terms
            .iter()
            .find(|&&(u, _)| u == v)
            .map_or(0, |&(_, q)| q)
    }

    /// Whether the expression mentions no variables (pure constant/param).
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    /// The single `(variable, coefficient)` pair if exactly one variable
    /// appears, else `None`.
    pub fn single_var(&self) -> Option<(VarId, i64)> {
        if self.terms.len() == 1 {
            Some(self.terms[0])
        } else {
            None
        }
    }

    /// Evaluates with concrete variable bindings (`vals[i]` is the value of
    /// `vars[i]`) and parameter values, using floor division.
    pub fn eval(&self, vars: &[VarId], vals: &[i64], params: &[i64]) -> i64 {
        let mut n = 0i64;
        for &(v, q) in &self.terms {
            let i = vars
                .iter()
                .position(|&u| u == v)
                .expect("VAff::eval: variable not bound");
            n += q * vals[i];
        }
        // cst is evaluated with its own denominator first (bounds like R/2
        // are exact in valid pipelines), then combined.
        n += self.cst.eval(params);
        n.div_euclid(self.den)
    }

    /// Attempts to put an index expression into affine normal form.
    ///
    /// Returns `None` when the expression is not affine (data-dependent
    /// indices such as histogram targets, LUT lookups, or products of
    /// variables).
    ///
    /// Recognized forms: variables, parameters, integer constants, `+`, `-`,
    /// unary negation, multiplication by integer constants, floor division by
    /// positive integer constants, and integer casts (identity here).
    pub fn from_expr(e: &Expr) -> Option<VAff> {
        match e {
            Expr::Const(c) => {
                if c.fract() != 0.0 {
                    return None;
                }
                Some(VAff::cst(*c as i64))
            }
            Expr::Var(v) => Some(VAff::var(*v)),
            Expr::Param(p) => Some(VAff {
                terms: Vec::new(),
                cst: PAff::param(*p),
                den: 1,
            }),
            Expr::Cast(ty, inner) if ty.is_integral() => VAff::from_expr(inner),
            Expr::Unary(UnOp::Neg, a) => {
                let a = VAff::from_expr(a)?;
                if a.den != 1 {
                    // -(x/2) under floor is not an affine floor form; reject.
                    return None;
                }
                Some(VAff {
                    terms: a.terms.into_iter().map(|(v, q)| (v, -q)).collect(),
                    cst: -a.cst,
                    den: 1,
                })
            }
            Expr::Binary(op, a, b) => {
                let (op, a, b) = (*op, a.as_ref(), b.as_ref());
                match op {
                    BinOp::Add | BinOp::Sub => {
                        let a = VAff::from_expr(a)?;
                        let b = VAff::from_expr(b)?;
                        // Addition under distinct floor denominators does not
                        // stay affine; require a common denominator of 1 on
                        // one side or equal denominators.
                        if a.den != b.den && a.den != 1 && b.den != 1 {
                            return None;
                        }
                        if a.den != b.den {
                            // Only allow when the non-trivial side is the
                            // whole expression: (x/2) + 1 is exactly
                            // (x + 2)/2 only when the addend is an integer —
                            // floor(x/2) + k == floor((x + 2k)/2). That holds
                            // for any integer k, so scale the integer side.
                            let (mut big, small, sign) = if a.den != 1 {
                                (a, b, if op == BinOp::Sub { -1 } else { 1 })
                            } else {
                                // a + (b with den) or a - (b with den): the
                                // subtraction case -(x/2) is not affine.
                                if op == BinOp::Sub {
                                    return None;
                                }
                                (b, a, 1)
                            };
                            if !small.terms.is_empty() {
                                // (x/2) + y: mixed denominators with
                                // variables do not normalize.
                                return None;
                            }
                            big.cst = big.cst + small.cst * (sign * big.den);
                            return Some(big.normalize());
                        }
                        let den = a.den;
                        let s = if op == BinOp::Sub { -1 } else { 1 };
                        if s == -1 && den != 1 {
                            // floor(u/m) - floor(w/m) ≠ floor((u-w)/m).
                            return None;
                        }
                        let mut terms = a.terms;
                        terms.extend(b.terms.into_iter().map(|(v, q)| (v, s * q)));
                        Some(
                            VAff {
                                terms,
                                cst: a.cst + b.cst * s,
                                den,
                            }
                            .normalize(),
                        )
                    }
                    BinOp::Mul => {
                        let (k, other) = match (VAff::from_expr(a), VAff::from_expr(b)) {
                            (Some(x), Some(y)) if x.is_const() && x.den == 1 => {
                                (x.cst.as_const(), Some(y))
                            }
                            (Some(x), Some(y)) if y.is_const() && y.den == 1 => {
                                (y.cst.as_const(), Some(x))
                            }
                            _ => (None, None),
                        };
                        let (k, other) = (k?, other?);
                        if other.den != 1 {
                            // k * floor(x/m) is not an affine floor form.
                            return None;
                        }
                        Some(
                            VAff {
                                terms: other.terms.into_iter().map(|(v, q)| (v, q * k)).collect(),
                                cst: other.cst * k,
                                den: 1,
                            }
                            .normalize(),
                        )
                    }
                    BinOp::Div => {
                        let x = VAff::from_expr(a)?;
                        let k = VAff::from_expr(b)?;
                        let k = if k.is_const() && k.den == 1 {
                            k.cst.as_const()?
                        } else {
                            return None;
                        };
                        if k <= 0 {
                            return None;
                        }
                        // floor(floor(u/m) / k) == floor(u / (m*k))
                        Some(VAff {
                            terms: x.terms,
                            cst: x.cst,
                            den: x.den * k,
                        })
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

impl fmt::Display for VAff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &(v, q) in &self.terms {
            if q >= 0 && !first {
                write!(f, "+")?;
            }
            match q {
                1 => write!(f, "{v}")?,
                -1 => write!(f, "-{v}")?,
                _ => write!(f, "{q}*{v}")?,
            }
            first = false;
        }
        if self.cst != PAff::cst(0) || first {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{}", self.cst)?;
        }
        if self.den != 1 {
            write!(f, "/{}", self.den)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymage_ir::ScalarType;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    #[test]
    fn recognizes_stencil_offset() {
        let e = v(0) + 1;
        let a = VAff::from_expr(&e).unwrap();
        assert_eq!(a.coeff(v(0)), 1);
        assert_eq!(a.cst, PAff::cst(1));
        assert_eq!(a.den, 1);
    }

    #[test]
    fn recognizes_downsample() {
        let e = 2i64 * Expr::from(v(0)) + 1;
        let a = VAff::from_expr(&e).unwrap();
        assert_eq!(a.coeff(v(0)), 2);
        assert_eq!(a.cst, PAff::cst(1));
    }

    #[test]
    fn recognizes_upsample() {
        let e = (v(0) + 1) / 2;
        let a = VAff::from_expr(&e).unwrap();
        assert_eq!(a.coeff(v(0)), 1);
        assert_eq!(a.den, 2);
        assert_eq!(a.eval(&[v(0)], &[3], &[]), 2);
        assert_eq!(a.eval(&[v(0)], &[2], &[]), 1);
    }

    #[test]
    fn div_plus_const_folds() {
        // x/2 + 3 == (x + 6)/2 under floor
        let e = Expr::from(v(0)) / 2 + 3;
        let a = VAff::from_expr(&e).unwrap();
        assert_eq!(a.den, 2);
        assert_eq!(a.eval(&[v(0)], &[5], &[]), 5);
        // const + x/2 also folds
        let e = 3i64 + Expr::from(v(0)) / 2;
        let b = VAff::from_expr(&e).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn nested_div_folds() {
        let e = Expr::from(v(0)) / 2 / 2;
        let a = VAff::from_expr(&e).unwrap();
        assert_eq!(a.den, 4);
    }

    #[test]
    fn rejects_nonaffine() {
        let x = Expr::from(v(0));
        assert!(VAff::from_expr(&(x.clone() * x.clone())).is_none());
        assert!(VAff::from_expr(&x.clone().sqrt()).is_none());
        assert!(VAff::from_expr(&Expr::Const(0.5)).is_none());
        // floor-div minus floor-div is rejected
        let e = Expr::from(v(0)) / 2 - Expr::from(v(1)) / 2;
        assert!(VAff::from_expr(&e).is_none());
        // scaling a floor is rejected
        let e = (Expr::from(v(0)) / 2) * 3;
        assert!(VAff::from_expr(&e).is_none());
    }

    #[test]
    fn param_and_cast() {
        let p = polymage_ir::ParamId::from_index(0);
        let e = (v(0) + p).cast(ScalarType::Int);
        let a = VAff::from_expr(&e).unwrap();
        assert_eq!(a.coeff(v(0)), 1);
        assert_eq!(a.eval(&[v(0)], &[4], &[10]), 14);
    }

    #[test]
    fn eval_floor_division_negative() {
        let e = Expr::from(v(0)) / 2;
        let a = VAff::from_expr(&e).unwrap();
        assert_eq!(a.eval(&[v(0)], &[-3], &[]), -2);
    }

    #[test]
    fn term_cancellation() {
        let e = v(0) + 1 - Expr::from(v(0));
        let a = VAff::from_expr(&e).unwrap();
        assert!(a.is_const());
        assert_eq!(a.cst, PAff::cst(1));
    }

    #[test]
    fn single_var_extraction() {
        let a = VAff::from_expr(&(2i64 * Expr::from(v(1)))).unwrap();
        assert_eq!(a.single_var(), Some((v(1), 2)));
        assert_eq!(VAff::cst(3).single_var(), None);
    }

    #[test]
    fn display() {
        let a = VAff::from_expr(&((v(0) + 1) / 2)).unwrap();
        assert_eq!(a.to_string(), "v0+1/2");
    }
}
