//! Executor errors.

use std::error::Error;
use std::fmt;

/// Errors reported when running a compiled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The number of input buffers differs from the program's image count.
    InputCountMismatch {
        /// Inputs the program expects.
        expected: usize,
        /// Inputs provided.
        got: usize,
    },
    /// An input buffer's rectangle does not match the declared image extent.
    InputShapeMismatch {
        /// Index of the offending input.
        index: usize,
        /// Expected shape description.
        expected: String,
        /// Provided shape description.
        got: String,
    },
    /// Internal invariant violation (a compiler bug, not a user error).
    Internal(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::InputCountMismatch { expected, got } => {
                write!(f, "expected {expected} input image(s), got {got}")
            }
            VmError::InputShapeMismatch {
                index,
                expected,
                got,
            } => {
                write!(f, "input {index} has shape {got}, expected {expected}")
            }
            VmError::Internal(msg) => write!(f, "internal executor error: {msg}"),
        }
    }
}

impl Error for VmError {}
