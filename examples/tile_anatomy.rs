//! Anatomy of an overlapped tile (the paper's Fig. 5/6): builds the 1-D
//! sampling chain of Fig. 6, shows the alignment/scaling the compiler
//! solves, the per-stage dependence extents (the tight tile shape), and the
//! exact regions one tile computes.
//!
//! ```sh
//! cargo run --example tile_anatomy
//! ```

use polymage::core::{compile, CompileOptions};
use polymage::ir::*;
use polymage::poly::{compare_tilings, group_overlap, solve_alignment, DimMap};
use polymage::vm::GroupKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 6: f(x)=in(x); g(x)=f(2x−1)·f(2x+1); h(x)=g(2x−1)·g(2x+1);
    // f↑(x)=h(x/2)·h(x/2+1); fout(x)=f↑(x/2).
    let mut p = PipelineBuilder::new("fig6");
    let n = p.param("N");
    let img = p.image("in", ScalarType::Float, vec![PAff::param(n)]);
    let x = p.var("x");
    let dom = |k: i64, m: i64| Interval::new(PAff::cst(m), PAff::param(n) / k - 1 - m);
    let f = p.func("f", &[(x, dom(1, 0))], ScalarType::Float);
    p.define(f, vec![Case::always(Expr::at(img, [x + 0]))])?;
    let g = p.func("g", &[(x, dom(2, 1))], ScalarType::Float);
    p.define(
        g,
        vec![Case::always(
            Expr::at(f, [2i64 * Expr::from(x) - 1]) * Expr::at(f, [2i64 * Expr::from(x) + 1]),
        )],
    )?;
    let h = p.func("h", &[(x, dom(4, 1))], ScalarType::Float);
    p.define(
        h,
        vec![Case::always(
            Expr::at(g, [2i64 * Expr::from(x) - 1]) * Expr::at(g, [2i64 * Expr::from(x) + 1]),
        )],
    )?;
    let fup = p.func("fup", &[(x, dom(2, 4))], ScalarType::Float);
    p.define(
        fup,
        vec![Case::always(
            Expr::at(h, [Expr::from(x) / 2]) * Expr::at(h, [Expr::from(x) / 2 + 1]),
        )],
    )?;
    let fout = p.func("fout", &[(x, dom(1, 8))], ScalarType::Float);
    p.define(fout, vec![Case::always(Expr::at(fup, [Expr::from(x) / 2]))])?;
    let pipe = p.finish(&[fout])?;

    // Alignment & scaling (§3.3): the schedule scales of Fig. 6's right side.
    let stages: Vec<FuncId> = pipe.func_ids().collect();
    let al = solve_alignment(&pipe, &stages, fout)?;
    println!("--- scaled schedules (paper Fig. 6: f→x, g→2x, h→4x, f↑→2x) ---");
    for &s in &stages {
        if let DimMap::Grouped { scale, .. } = al.map(s)[0] {
            println!("  {:>4}: (x) → {}x", pipe.func(s).name, scale);
        }
    }

    // Tile-shape analysis (§3.4): per-stage left/right extensions.
    let ov = group_overlap(&pipe, &stages, &al)?;
    println!("\n--- per-stage tile extensions (scheduled units) ---");
    for &s in &stages {
        let e = &ov.per_func[&s][0];
        println!(
            "  {:>4}: left {} right {}",
            pipe.func(s).name,
            e.left,
            e.right
        );
    }
    println!("total overlap: {}+{}", ov.dims[0].left, ov.dims[0].right);
    for tau in [16i64, 32, 64, 128] {
        println!(
            "  tile {tau}: overlap ratio {:.3}",
            ov.overlap_ratio(&[tau])
        );
    }

    // Fig. 5: the three tiling strategies on this group, quantified.
    println!("\n--- Fig. 5: tiling strategy trade-offs (tile 32, N=256) ---");
    let cmp = compare_tilings(&pipe, &stages, &al, &[32], &[240])?;
    print!("{}", cmp.table());

    // Concrete regions of one overlapped tile.
    let mut opts = CompileOptions::optimized(vec![256]);
    opts.tiles = polymage_core::TileSpec::Fixed(vec![32]);
    let compiled = compile(&pipe, &opts)?;
    for group in &compiled.program.groups {
        if let GroupKind::Tiled(tg) = &group.kind {
            if tg.stages.len() < 2 {
                continue;
            }
            let tile = &tg.tiles[tg.tiles.len() / 2];
            println!(
                "\n--- regions computed by one interior tile (group {}) ---",
                group.name
            );
            for (k, st) in tg.stages.iter().enumerate() {
                println!("  {:>6}: {}", st.name, tile.regions[k]);
            }
        }
    }
    Ok(())
}
