//! Unsharp Mask — "a simple pipeline used to sharpen image edges,
//! comprising a series of stencil operations" (§4).
//!
//! Four stages on an RGB image, matching the Halide benchmark the paper
//! uses: a separable 5-tap Gaussian blur (`blurx`, `blury`), a sharpened
//! combination, and a threshold mask selecting between the original and the
//! sharpened value. `sharpen` is point-wise, so the compiler inlines it;
//! `blurx`/`blury`/`masked` fuse into a single overlapped-tiled group.

use crate::{Benchmark, Scale};
use polymage_ir::*;
use polymage_vm::Buffer;

const WEIGHT: f32 = 1.0;
const THRESH: f32 = 2.5; // on the 0..255 scale
const K: [f32; 5] = [1.0 / 16.0, 4.0 / 16.0, 6.0 / 16.0, 4.0 / 16.0, 1.0 / 16.0];

/// The Unsharp Mask benchmark.
pub struct Unsharp {
    pipeline: Pipeline,
    rows: i64,
    cols: i64,
}

/// Builds the DSL specification. The image has extents `(R, C, 3)`; the
/// output is defined on the interior `[2, R−3] × [2, C−3]` (the paper's
/// pipelines crop borders with case conditions rather than clamping).
pub fn build() -> Pipeline {
    let mut p = PipelineBuilder::new("unsharp_mask");
    let (r, c) = (p.param("R"), p.param("C"));
    let img = p.image(
        "I",
        ScalarType::Float,
        vec![PAff::param(r), PAff::param(c), PAff::cst(3)],
    );
    let (x, y, ch) = (p.var("x"), p.var("y"), p.var("c"));
    let rows_in = Interval::new(PAff::cst(2), PAff::param(r) - 3);
    let cols_all = Interval::new(PAff::cst(0), PAff::param(c) - 1);
    let cols_in = Interval::new(PAff::cst(2), PAff::param(c) - 3);
    let chans = Interval::cst(0, 2);

    let blurx = p.func(
        "blurx",
        &[(x, rows_in.clone()), (y, cols_all), (ch, chans.clone())],
        ScalarType::Float,
    );
    let mut bx: Option<Expr> = None;
    for (i, &w) in K.iter().enumerate() {
        let t = Expr::at(img, [x + (i as i64 - 2), Expr::from(y), Expr::from(ch)]) * w as f64;
        bx = Some(match bx {
            None => t,
            Some(s) => s + t,
        });
    }
    p.define(blurx, vec![Case::always(bx.unwrap())]).unwrap();

    let blury = p.func(
        "blury",
        &[
            (x, rows_in.clone()),
            (y, cols_in.clone()),
            (ch, chans.clone()),
        ],
        ScalarType::Float,
    );
    let mut by: Option<Expr> = None;
    for (i, &w) in K.iter().enumerate() {
        let t = Expr::at(blurx, [Expr::from(x), y + (i as i64 - 2), Expr::from(ch)]) * w as f64;
        by = Some(match by {
            None => t,
            Some(s) => s + t,
        });
    }
    p.define(blury, vec![Case::always(by.unwrap())]).unwrap();

    let orig = |x: VarId, y: VarId, ch: VarId| {
        Expr::at(img, [Expr::from(x), Expr::from(y), Expr::from(ch)])
    };
    let blurred = |x: VarId, y: VarId, ch: VarId| {
        Expr::at(blury, [Expr::from(x), Expr::from(y), Expr::from(ch)])
    };

    let sharpen = p.func(
        "sharpen",
        &[
            (x, rows_in.clone()),
            (y, cols_in.clone()),
            (ch, chans.clone()),
        ],
        ScalarType::Float,
    );
    p.define(
        sharpen,
        vec![Case::always(
            orig(x, y, ch) * (1.0 + WEIGHT) as f64 - blurred(x, y, ch) * WEIGHT as f64,
        )],
    )
    .unwrap();

    let masked = p.func(
        "masked",
        &[(x, rows_in), (y, cols_in), (ch, chans)],
        ScalarType::Float,
    );
    p.define(
        masked,
        vec![Case::always(Expr::select(
            (orig(x, y, ch) - blurred(x, y, ch)).abs().lt(THRESH as f64),
            orig(x, y, ch),
            Expr::at(sharpen, [Expr::from(x), Expr::from(y), Expr::from(ch)]),
        ))],
    )
    .unwrap();
    p.finish(&[masked]).unwrap()
}

impl Unsharp {
    /// Instantiates the benchmark at a given scale.
    pub fn new(scale: Scale) -> Self {
        let (rows, cols) = crate::sizes::UNSHARP.at(scale);
        Unsharp::with_size(rows, cols)
    }

    /// Instantiates with explicit image dimensions.
    pub fn with_size(rows: i64, cols: i64) -> Self {
        Unsharp {
            pipeline: build(),
            rows,
            cols,
        }
    }
}

impl Benchmark for Unsharp {
    fn name(&self) -> &str {
        "Unsharp Mask"
    }

    fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    fn params(&self) -> Vec<i64> {
        vec![self.rows, self.cols]
    }

    fn make_inputs(&self, seed: u64) -> Vec<Buffer> {
        vec![crate::inputs::rgb_image(self.rows, self.cols, seed)]
    }

    fn reference(&self, inputs: &[Buffer]) -> Vec<Buffer> {
        let img = &inputs[0];
        let (r, c) = (self.rows, self.cols);
        let at = |b: &Buffer, x: i64, y: i64, ch: i64| b.at(&[x, y, ch]);
        let rect_in = polymage_poly::Rect::new(vec![(2, r - 3), (2, c - 3), (0, 2)]);
        // blurx over full columns
        let mut blurx = Buffer::zeros(polymage_poly::Rect::new(vec![
            (2, r - 3),
            (0, c - 1),
            (0, 2),
        ]));
        {
            let mut i = 0;
            for x in 2..=r - 3 {
                for y in 0..c {
                    for ch in 0..3 {
                        let mut s = 0.0;
                        for (k, &w) in K.iter().enumerate() {
                            s += at(img, x + k as i64 - 2, y, ch) * w;
                        }
                        blurx.data[i] = s;
                        i += 1;
                    }
                }
            }
        }
        let mut blury = Buffer::zeros(rect_in.clone());
        {
            let mut i = 0;
            for x in 2..=r - 3 {
                for y in 2..=c - 3 {
                    for ch in 0..3 {
                        let mut s = 0.0;
                        for (k, &w) in K.iter().enumerate() {
                            s += at(&blurx, x, y + k as i64 - 2, ch) * w;
                        }
                        blury.data[i] = s;
                        i += 1;
                    }
                }
            }
        }
        let mut out = Buffer::zeros(rect_in);
        {
            let mut i = 0;
            for x in 2..=r - 3 {
                for y in 2..=c - 3 {
                    for ch in 0..3 {
                        let o = at(img, x, y, ch);
                        let b = at(&blury, x, y, ch);
                        let sharp = o * (1.0 + WEIGHT) - b * WEIGHT;
                        out.data[i] = if (o - b).abs() < THRESH { o } else { sharp };
                        i += 1;
                    }
                }
            }
        }
        vec![out]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_stages_declared() {
        let p = build();
        assert_eq!(p.funcs().len(), 4);
        assert_eq!(p.name(), "unsharp_mask");
    }

    #[test]
    fn reference_is_identity_on_flat_images() {
        let app = Unsharp::with_size(16, 16);
        let flat = Buffer::zeros(polymage_poly::Rect::new(vec![(0, 15), (0, 15), (0, 2)]))
            .fill_with(|_| 128.0);
        let out = app.reference(&[flat]);
        // blur of a constant is the constant → |o−b| = 0 < thresh → original
        assert!(out[0].data.iter().all(|&v| (v - 128.0).abs() < 1e-4));
    }
}
