//! Cache-model-driven per-group tile-size selection (the model side of the
//! paper's §3.8 autotuning story).
//!
//! The paper picks tile sizes so that each tile's working set fits in
//! cache while the redundant recomputation introduced by overlapped tiling
//! stays bounded; this reproduction historically applied one fixed shape
//! (`[32, 256]`) to every group. Under [`crate::TileSpec::Auto`] this
//! module runs once per *group*, after grouping (Algorithm 1) has settled
//! the structure, and chooses the largest tile shape such that
//!
//! 1. **cache budget** — the per-tile working set (scratch slot bytes
//!    after simulated liveness folding, plus streamed full-store bytes and
//!    input/full-buffer read footprints with the overlap halos of
//!    [`polymage_poly::group_overlap`]) fits a fraction of the detected L2
//!    ([`CacheModel`], `POLYMAGE_CACHE` override);
//! 2. **parallelism floor** — the strip dimension still yields at least
//!    [`min_strip_tiles`] tiles so the engine's dynamic strip claiming can
//!    balance load;
//! 3. **redundancy cap** — the predicted redundant-computation fraction
//!    `∏(τ_d + o_d)/∏ τ_d − 1` stays under the group's overlap threshold
//!    (the same quantity Algorithm 1 bounds when it merges).
//!
//! Decisions are recorded on the [`crate::ParametricPlan`] (symbolic, at
//! the parameter estimates) and re-checked against the concrete bounds at
//! instantiation time. The same model ranks autotuner candidates
//! (`autotune_pruned`), so only the few configurations the model cannot
//! separate are ever measured.

use crate::grouping::{effective_tiles_from, Group, GroupKindTag};
use crate::CompileOptions;
use polymage_diag::{Counter, Diag, Value};
use polymage_graph::PipelineGraph;
use polymage_ir::{FuncId, Pipeline, Source};
use polymage_poly::{
    extract_accesses, group_overlap, solve_alignment, AccessDim, DimMap, GroupOverlap,
};
use std::sync::OnceLock;

/// Ladder of candidate tile sizes per dimension — the paper's autotuning
/// candidates (§3.8), which the model selects among analytically.
pub const TILE_LADDER: [i64; 7] = [8, 16, 32, 64, 128, 256, 512];

/// Fraction of L2 the per-tile working set may occupy (numerator /
/// denominator): leave headroom for the engine's own state and the
/// streamed full-buffer traffic the model only approximates.
const WS_BUDGET_NUM: usize = 3;
const WS_BUDGET_DEN: usize = 4;

/// Tiles per worker the strip dimension must yield for dynamic strip
/// claiming to balance load (the `k` of constraint 2).
const STRIP_TILES_PER_WORKER: usize = 4;

/// Per-tile fixed overhead, expressed in sink points: tile setup (region
/// propagation state, scratch rebasing) costs roughly this many point
/// evaluations, so shapes with tiny tiles score worse in
/// [`predict_group_cost`].
const TILE_OVERHEAD_POINTS: f64 = 512.0;

/// Per-row overhead, in sink points: every strip-dim iteration of a tile
/// restarts the chunked inner loops and loads partial cache lines at the
/// tile edge, costing roughly this many point evaluations — so shapes
/// that are narrow in the inner dimensions score worse than wide bands
/// of the same volume.
const ROW_OVERHEAD_POINTS: f64 = 96.0;

/// The model must predict at least this fractional cost improvement over
/// the fixed baseline shape before its choice replaces the baseline. The
/// cost model's error bars are wider than a few percent, so deviations
/// inside this margin are noise — the baseline (when it is itself
/// feasible) is the better-tested bet.
const MODEL_MARGIN: f64 = 0.03;

/// The cache geometry the model plans against.
///
/// Detected once per process from sysfs on Linux (with conservative
/// defaults elsewhere); the `POLYMAGE_CACHE` environment variable
/// overrides detection with `l1:l2:line` byte counts, e.g.
/// `POLYMAGE_CACHE=32768:1048576:64` or with unit suffixes
/// `POLYMAGE_CACHE=48k:2m:64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheModel {
    /// L1 data-cache bytes.
    pub l1: usize,
    /// Per-core L2 bytes — the working-set budget base.
    pub l2: usize,
    /// Cache-line bytes (row footprints round up to line multiples).
    pub line: usize,
}

impl CacheModel {
    /// Conservative fallback when detection finds nothing: 32 KiB L1,
    /// 1 MiB L2, 64-byte lines.
    pub const FALLBACK: CacheModel = CacheModel {
        l1: 32 * 1024,
        l2: 1024 * 1024,
        line: 64,
    };

    /// The per-tile working-set budget this model allows (`3/4 · l2`).
    pub fn budget(&self) -> usize {
        self.l2 / WS_BUDGET_DEN * WS_BUDGET_NUM
    }

    /// The process-wide model: `POLYMAGE_CACHE` if set and parseable
    /// (via [`crate::options::env`], which reports malformed values),
    /// else sysfs detection, else [`CacheModel::FALLBACK`]. Resolved once
    /// (it participates in compile-cache keys, which must be stable).
    pub fn get() -> CacheModel {
        static MODEL: OnceLock<CacheModel> = OnceLock::new();
        *MODEL.get_or_init(|| {
            crate::options::env::get()
                .cache
                .unwrap_or_else(CacheModel::detect)
        })
    }

    /// Parses an `l1:l2:line` override (`:` or `,` separated; `k`/`m`/`g`
    /// suffixes allowed). `None` when malformed or non-positive.
    pub fn parse(s: &str) -> Option<CacheModel> {
        let parts: Vec<usize> = s
            .split([':', ','])
            .map(|t| parse_bytes(t.trim()))
            .collect::<Option<_>>()?;
        match parts[..] {
            [l1, l2, line] if l1 > 0 && l2 > 0 && line > 0 => Some(CacheModel { l1, l2, line }),
            _ => None,
        }
    }

    /// Detects the host cache geometry (Linux sysfs; anything missing
    /// keeps its [`CacheModel::FALLBACK`] value).
    pub fn detect() -> CacheModel {
        let mut m = CacheModel::FALLBACK;
        let base = "/sys/devices/system/cpu/cpu0/cache";
        let Ok(entries) = std::fs::read_dir(base) else {
            return m;
        };
        for e in entries.flatten() {
            let p = e.path();
            let read = |f: &str| std::fs::read_to_string(p.join(f)).ok();
            let level = read("level").and_then(|s| s.trim().parse::<u32>().ok());
            let ty = read("type").map(|s| s.trim().to_string());
            let size = read("size").and_then(|s| parse_bytes(s.trim()));
            let line = read("coherency_line_size").and_then(|s| s.trim().parse::<usize>().ok());
            match (level, ty.as_deref(), size) {
                (Some(1), Some("Data"), Some(sz)) if sz > 0 => m.l1 = sz,
                (Some(2), _, Some(sz)) if sz > 0 => m.l2 = sz,
                _ => {}
            }
            if let Some(l) = line.filter(|&l| l > 0) {
                m.line = l;
            }
        }
        m
    }
}

/// Parses a byte count with an optional `k`/`m`/`g` suffix (sysfs spells
/// sizes like `48K`).
fn parse_bytes(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1024),
        'm' | 'M' => (&s[..s.len() - 1], 1024 * 1024),
        'g' | 'G' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    digits.trim().parse::<usize>().ok().map(|v| v * mult)
}

/// The parallelism floor: the strip dimension must yield at least this
/// many tiles (`STRIP_TILES_PER_WORKER` × available workers, capped at
/// 128 — the untiled strip target). Resolved once per process; it
/// participates in compile-cache keys.
pub fn min_strip_tiles() -> usize {
    static FLOOR: OnceLock<usize> = OnceLock::new();
    *FLOOR.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        (STRIP_TILES_PER_WORKER * workers).min(128)
    })
}

/// One group's tile decision, recorded on the plan and re-checked per
/// binding.
#[derive(Debug, Clone, PartialEq)]
pub struct TileChoice {
    /// Chosen tile size per sink dimension (`None` = untiled), at the
    /// parameter estimates.
    pub tiles: Vec<Option<i64>>,
    /// Predicted per-tile working set (bytes) for the chosen shape.
    pub working_set: usize,
    /// Predicted redundancy fraction `∏(τ+o)/∏τ − 1` for the chosen
    /// shape.
    pub ratio: f64,
    /// `true` when no candidate satisfied every constraint and the choice
    /// fell back to the fixed baseline shape.
    pub fallback: bool,
}

/// Per-stage footprint geometry: how each stage dimension's per-tile
/// extent derives from the candidate tile shape.
#[derive(Debug, Clone)]
enum DimGeom {
    /// Aligned to group dimension `gdim` with schedule scale `num/den`:
    /// the per-tile extent is the scheduled span (sink span × sink scale,
    /// plus this stage's halo) divided back by the stage's own scale,
    /// clamped to the stage's full extent.
    Sched {
        gdim: usize,
        num: i64,
        den: i64,
        halo: i64,
        full: i64,
    },
    /// Free or unalignable: materialized whole.
    Fixed(i64),
}

/// One out-of-group read (input image or another group's full array):
/// per source dimension, either `(consumer_dim, q, m)` — the footprint
/// follows the consumer's per-tile extent through an affine access
/// `(q·x + o)/m` — or `None` (dynamic access, whole extent needed).
type ExtRead = (Source, Vec<Option<(usize, i64, i64)>>, Vec<i64>);

/// One stage of the group, reduced to what the working-set model needs.
#[derive(Debug, Clone)]
struct StageGeom {
    dims: Vec<DimGeom>,
    /// Whether the stage also stores to a full array (live-out or
    /// cross-group consumed, or `storage_opt` off).
    needs_full: bool,
    /// Full-stored with no in-group consumer: writes stream directly,
    /// no scratch slot exists.
    direct: bool,
    /// Indices (into the group's stage list) of in-group producers this
    /// stage reads — drives the liveness folding simulation.
    reads: Vec<usize>,
    /// Out-of-group read footprints, deduplicated by source.
    ext_reads: Vec<ExtRead>,
}

/// Everything [`select_tiles`] and [`predict_group_cost`] need about one
/// Normal group, computed once per group at the parameter estimates.
#[derive(Debug, Clone)]
pub struct GroupGeom {
    /// Sink domain extents at the estimates (defines the tile space).
    sink_extents: Vec<i64>,
    /// Sink schedule scale per group dimension (tile spans are in sink
    /// coordinates; overlap halos are in scheduled units).
    sink_scales: Vec<i64>,
    /// Per group dimension total overlap (left + right), scheduled units.
    overlap_total: Vec<i64>,
    stages: Vec<StageGeom>,
    /// Sum of stage domain volumes at the estimates (cost weight).
    points: f64,
    /// The executor's strip count for an untiled dim 0 (instantiation
    /// turns `None` into `⌈ext/par_strips⌉`-wide strips), so the model
    /// evaluates the shape that actually runs.
    par_strips: i64,
}

impl GroupGeom {
    /// Builds the geometry for a Normal group, or `None` when alignment
    /// or overlap analysis fails (the grouping pass only forms alignable
    /// groups, so this is defensive).
    pub fn build(
        pipe: &Pipeline,
        graph: &PipelineGraph,
        group: &Group,
        opts: &CompileOptions,
    ) -> Option<GroupGeom> {
        if group.kind != GroupKindTag::Normal {
            return None;
        }
        let est = opts.estimates();
        // Producers first, mirroring the executor's stage order.
        let stages: Vec<FuncId> = graph
            .topo_order()
            .iter()
            .copied()
            .filter(|f| group.stages.contains(f))
            .collect();
        let sink = group.sink;
        let alignment = solve_alignment(pipe, &stages, sink).ok()?;
        let overlap: GroupOverlap = group_overlap(pipe, &stages, &alignment).ok()?;

        let extents_at = |f: FuncId| -> Vec<i64> {
            pipe.func(f)
                .var_dom
                .dom
                .iter()
                .map(|iv| {
                    let (lo, hi) = iv.eval(est);
                    (hi - lo + 1).max(1)
                })
                .collect()
        };
        let sink_extents = extents_at(sink);
        let ndims = alignment.ndims;
        let sink_scales: Vec<i64> = (0..ndims)
            .map(|g| alignment.scale_on(sink, g).map_or(1, |s| s.num().max(1)))
            .collect();
        let overlap_total: Vec<i64> = (0..ndims)
            .map(|g| overlap.dims.get(g).map_or(0, |o| o.total()))
            .collect();

        let mut geoms = Vec::with_capacity(stages.len());
        let mut points = 0.0f64;
        for &f in &stages {
            let fd = pipe.func(f);
            let exts = extents_at(f);
            points += exts.iter().map(|&e| e as f64).product::<f64>();
            let fext = &overlap.per_func[&f];
            let dims: Vec<DimGeom> = alignment
                .map(f)
                .iter()
                .enumerate()
                .map(|(d, m)| match m {
                    DimMap::Grouped { gdim, scale }
                        if *gdim < ndims && scale.num() > 0 && scale.den() > 0 =>
                    {
                        DimGeom::Sched {
                            gdim: *gdim,
                            num: scale.num(),
                            den: scale.den(),
                            halo: fext.get(*gdim).map_or(0, |o| o.total()),
                            full: exts[d],
                        }
                    }
                    _ => DimGeom::Fixed(exts[d]),
                })
                .collect();

            let in_group_consumed = graph.consumers(f).iter().any(|c| stages.contains(c));
            let cross_group = graph.consumers(f).iter().any(|c| !stages.contains(c));
            let needs_full = pipe.live_outs().contains(&f) || cross_group || !opts.storage_opt;
            let direct = needs_full && !in_group_consumed;

            let mut reads: Vec<usize> = Vec::new();
            let mut ext_reads: Vec<ExtRead> = Vec::new();
            for acc in extract_accesses(fd) {
                match acc.src {
                    Source::Func(p) if stages.contains(&p) => {
                        if let Some(pi) = stages.iter().position(|&s| s == p) {
                            if p != f && !reads.contains(&pi) {
                                reads.push(pi);
                            }
                        }
                    }
                    src => {
                        // Out-of-group read: for an affine single-variable
                        // access `(q·x + o)/m` the footprint along the
                        // source dim follows consumer dim `x` scaled by
                        // `q/m`; anything else needs the whole extent.
                        let scales: Vec<Option<(usize, i64, i64)>> = acc
                            .dims
                            .iter()
                            .map(|dim| match dim {
                                AccessDim::Affine(a) => a.single_var().and_then(|(v, q)| {
                                    let cd = fd.var_dom.vars.iter().position(|&vv| vv == v)?;
                                    (q > 0 && a.den > 0).then_some((cd, q, a.den))
                                }),
                                AccessDim::Dynamic => None,
                            })
                            .collect();
                        let src_ext = source_extents(pipe, src, est);
                        match ext_reads.iter_mut().find(|(s, _, _)| *s == src) {
                            Some((_, sc, _)) => {
                                // Widen per dim toward the whole extent.
                                for (a, b) in sc.iter_mut().zip(&scales) {
                                    *a = match (*a, *b) {
                                        (Some((ca, qa, ma)), Some((cb, qb, mb))) if ca == cb => {
                                            // keep the larger ratio q/m
                                            if qa * mb >= qb * ma {
                                                Some((ca, qa, ma))
                                            } else {
                                                Some((cb, qb, mb))
                                            }
                                        }
                                        _ => None,
                                    };
                                }
                            }
                            None => ext_reads.push((src, scales, src_ext)),
                        }
                    }
                }
            }
            geoms.push(StageGeom {
                dims,
                needs_full,
                direct,
                reads,
                ext_reads,
            });
        }
        Some(GroupGeom {
            sink_extents,
            sink_scales,
            overlap_total,
            stages: geoms,
            points,
            par_strips: opts.par_strips.max(1),
        })
    }

    /// Sink extents at the estimates.
    pub fn sink_extents(&self) -> &[i64] {
        &self.sink_extents
    }

    /// Predicted redundancy fraction for a tile assignment — the same
    /// `∏(τ_d + o_d)/∏ τ_d − 1` Algorithm 1 bounds, evaluated on the
    /// *effective* shape: an untiled dim 0 still runs as
    /// `⌈ext/par_strips⌉`-wide strips that each recompute their halo,
    /// while untiled inner dims are materialized whole (one span, no
    /// recomputation). Overlaps are in scheduled units, so tile spans
    /// convert through the sink scale.
    pub fn redundancy(&self, tiles: &[Option<i64>]) -> f64 {
        let span = self.spans(tiles);
        let mut ratio = 1.0;
        for (d, &s) in span.iter().enumerate() {
            let ext = self.sink_extents.get(d).copied().unwrap_or(1);
            let stripped = tiles.get(d).copied().flatten().is_some() || d == 0;
            if !stripped || s >= ext {
                continue; // whole-extent span: nothing is recomputed
            }
            let sched = s.max(1) * self.sink_scales.get(d).copied().unwrap_or(1);
            let o = self.overlap_total.get(d).copied().unwrap_or(0);
            ratio *= (sched + o) as f64 / sched as f64;
        }
        ratio - 1.0
    }

    /// The per-stage per-tile extent along one stage dimension for tile
    /// spans `span` (sink coordinates per group dim).
    fn stage_extent(&self, g: &DimGeom, span: &[i64]) -> i64 {
        match *g {
            DimGeom::Fixed(e) => e,
            DimGeom::Sched {
                gdim,
                num,
                den,
                halo,
                full,
            } => {
                let sink_scale = self.sink_scales.get(gdim).copied().unwrap_or(1);
                let sched = span.get(gdim).copied().unwrap_or(1).max(1) * sink_scale + halo;
                // stage extent = scheduled extent / (num/den), rounded up
                let e = (sched * den + num - 1) / num;
                e.clamp(1, full.max(1))
            }
        }
    }

    /// The tile span per group dimension for a tile assignment: the tile
    /// size where tiled, the full extent where not — except dim 0, where
    /// instantiation turns `None` into `⌈ext/par_strips⌉`-wide strips, so
    /// that is the span that actually executes.
    fn spans(&self, tiles: &[Option<i64>]) -> Vec<i64> {
        self.sink_extents
            .iter()
            .enumerate()
            .map(|(d, &ext)| match tiles.get(d).copied().flatten() {
                Some(t) => t.min(ext),
                None if d == 0 => (ext + self.par_strips - 1) / self.par_strips,
                None => ext,
            })
            .collect()
    }

    /// Predicted per-tile working set in bytes for a tile assignment:
    /// scratch arena after simulated liveness folding, plus streamed full
    /// stores, plus out-of-group read footprints. An innermost extent
    /// that covers only part of its buffer's row rounds up to whole
    /// cache lines (each tile row starts mid-line in the full array);
    /// full-row extents are contiguous, so they carry no per-row line
    /// waste. Elements are 4 bytes (f32).
    pub fn working_set(&self, tiles: &[Option<i64>], model: &CacheModel) -> usize {
        let span = self.spans(tiles);
        let line_elems = (model.line / 4).max(1) as i64;
        let round_line = |e: i64| (e + line_elems - 1) / line_elems * line_elems;
        let footprint = |s: &StageGeom| -> usize {
            let mut elems = 1i64;
            let n = s.dims.len();
            for (d, g) in s.dims.iter().enumerate() {
                let mut e = self.stage_extent(g, &span);
                let partial_row = match *g {
                    DimGeom::Sched { full, .. } => e < full,
                    DimGeom::Fixed(_) => false,
                };
                if d + 1 == n && partial_row {
                    e = round_line(e);
                }
                elems = elems.saturating_mul(e.max(1));
            }
            elems as usize * 4
        };

        // Scratch arena: greedy interval coloring over estimated
        // footprints, mirroring `core::storage::fold_group` (a stage is
        // live from its own index to its last in-group reader).
        let n = self.stages.len();
        let mut last_use: Vec<usize> = (0..n).collect();
        for (j, s) in self.stages.iter().enumerate() {
            for &p in &s.reads {
                last_use[p] = last_use[p].max(j);
            }
        }
        let mut slots: Vec<(usize, usize)> = Vec::new(); // (size, busy_until)
        for (k, s) in self.stages.iter().enumerate() {
            if s.direct {
                continue;
            }
            let len = footprint(s);
            let mut best_fit: Option<usize> = None;
            let mut largest: Option<usize> = None;
            for (i, &(size, busy)) in slots.iter().enumerate() {
                if busy >= k {
                    continue;
                }
                if size >= len && best_fit.is_none_or(|b| size < slots[b].0) {
                    best_fit = Some(i);
                }
                if largest.is_none_or(|l| size > slots[l].0) {
                    largest = Some(i);
                }
            }
            match best_fit.or(largest) {
                Some(i) => {
                    slots[i].0 = slots[i].0.max(len);
                    slots[i].1 = last_use[k];
                }
                None => slots.push((len, last_use[k])),
            }
        }
        let mut ws: usize = slots.iter().map(|&(size, _)| size).sum();

        for s in &self.stages {
            // Streamed stores to full arrays touch the tile's own region.
            if s.needs_full {
                ws = ws.saturating_add(footprint(s));
            }
            // Out-of-group reads: the consumer's per-tile extent scaled
            // through the access (`q/m` per dim), clamped to the source.
            for (_, scales, src_ext) in &s.ext_reads {
                let mut elems = 1i64;
                let nd = scales.len();
                for (j, sc) in scales.iter().enumerate() {
                    let full = src_ext.get(j).copied().unwrap_or(1).max(1);
                    let mut e = match sc {
                        Some((cd, q, m)) => {
                            let ce = s
                                .dims
                                .get(*cd)
                                .map(|g| self.stage_extent(g, &span))
                                .unwrap_or(1);
                            (ce * q + m - 1) / m + 1
                        }
                        None => full,
                    };
                    e = e.clamp(1, full);
                    if j + 1 == nd && e < full {
                        e = round_line(e);
                    }
                    elems = elems.saturating_mul(e);
                }
                ws = ws.saturating_add(elems as usize * 4);
            }
        }
        ws
    }

    /// Tile count along the strip (outermost) dimension at the estimates
    /// (an untiled dim 0 strips by `par_strips`, so it never constrains
    /// parallelism).
    pub fn strip_tiles(&self, tiles: &[Option<i64>], par_strips: i64) -> i64 {
        let ext = self.sink_extents.first().copied().unwrap_or(1);
        match tiles.first().copied().flatten() {
            Some(t) if t > 0 => (ext + t - 1) / t,
            _ => ext.min(par_strips.max(1)),
        }
    }
}

/// Model cost of executing one group with a tile assignment: stage points
/// × (1 + redundancy) × cache penalty × per-tile overhead. The cache
/// penalty `1 + ws/L2` grows smoothly with the working set — a tile that
/// half-fills L2 evicts streamed lines and the other tiles' leftovers, so
/// smaller working sets win whenever the per-tile overhead term does not
/// say otherwise; past the budget the penalty steepens sharply. Used to
/// rank autotuner candidates and to order feasible shapes in
/// [`select_tiles`]. Lower is better; the absolute scale is arbitrary.
pub fn predict_group_cost(geom: &GroupGeom, tiles: &[Option<i64>], model: &CacheModel) -> f64 {
    let ratio = geom.redundancy(tiles).max(0.0);
    let ws = geom.working_set(tiles, model) as f64;
    let budget = model.budget() as f64;
    let cache_penalty = 1.0 + ws / model.l2 as f64 + (ws / budget - 1.0).max(0.0) * 4.0;
    let span = geom.spans(tiles);
    let tile_points: f64 = span.iter().map(|&s| s as f64).product::<f64>().max(1.0);
    let row_points: f64 = span
        .iter()
        .skip(1)
        .map(|&s| s as f64)
        .product::<f64>()
        .max(1.0);
    let overhead = 1.0 + TILE_OVERHEAD_POINTS / tile_points + ROW_OVERHEAD_POINTS / row_points;
    geom.points * (1.0 + ratio) * cache_penalty * overhead
}

/// Chooses a tile shape for one Normal group from the cache model: the
/// feasible candidate (cache budget, parallelism floor, redundancy cap)
/// with the lowest predicted cost, ties broken toward larger tiles and a
/// wider innermost dimension, then lexicographically for determinism.
/// The winner replaces the fixed baseline shape only when its predicted
/// cost beats the baseline's by `MODEL_MARGIN` (or the baseline is
/// itself infeasible); when nothing at all is feasible the baseline is
/// kept and recorded with `fallback: true`.
pub fn select_tiles(geom: &GroupGeom, opts: &CompileOptions, model: &CacheModel) -> TileChoice {
    let ndims = geom.sink_extents.len();
    let budget = model.budget();
    let min_strips = min_strip_tiles() as i64;

    // Candidate sizes per dimension: ladder entries the extent can hold
    // (the `ext ≥ 2τ` rule of `effective_tiles`), plus untiled.
    let cand: Vec<Vec<Option<i64>>> = geom
        .sink_extents
        .iter()
        .map(|&ext| {
            let mut c: Vec<Option<i64>> = TILE_LADDER
                .iter()
                .copied()
                .filter(|&t| ext >= 2 * t)
                .map(Some)
                .collect();
            c.push(None);
            c
        })
        .collect();

    // The strip floor can never demand more tiles than the best candidate
    // yields — relax it to the achievable maximum so small images stay
    // feasible.
    let max_strips = cand
        .first()
        .map(|c| {
            c.iter()
                .map(|t| geom.strip_tiles(&[*t], opts.par_strips))
                .max()
                .unwrap_or(1)
        })
        .unwrap_or(1);
    let floor = min_strips.min(max_strips);

    struct Best {
        cost: f64,
        volume: i64,
        inner: i64,
        tiles: Vec<Option<i64>>,
        ws: usize,
        ratio: f64,
    }
    let mut best: Option<Best> = None;
    let mut assign = vec![None; ndims];
    enumerate(&cand, 0, &mut assign, &mut |tiles| {
        let ratio = geom.redundancy(tiles);
        if ratio >= opts.overlap_threshold {
            return;
        }
        if geom.strip_tiles(tiles, opts.par_strips) < floor {
            return;
        }
        let ws = geom.working_set(tiles, model);
        if ws > budget {
            return;
        }
        let cost = predict_group_cost(geom, tiles, model);
        let span = geom.spans(tiles);
        let volume: i64 = span.iter().product();
        let inner = *span.last().unwrap_or(&1);
        let better = match &best {
            None => true,
            Some(b) => {
                // Lower cost wins; then larger volume, wider inner dim,
                // lexicographically smaller assignment.
                (cost, b.volume, b.inner)
                    .partial_cmp(&(b.cost, volume, inner))
                    .map(|o| {
                        o == std::cmp::Ordering::Less
                            || (o == std::cmp::Ordering::Equal && tiles < b.tiles.as_slice())
                    })
                    .unwrap_or(false)
            }
        };
        if better {
            best = Some(Best {
                cost,
                volume,
                inner,
                tiles: tiles.to_vec(),
                ws,
                ratio,
            });
        }
    });

    let baseline = effective_tiles_from(
        &geom.sink_extents,
        opts.tiles.baseline_sizes(),
        opts.tile,
        opts.par_strips,
    );
    let base_ws = geom.working_set(&baseline, model);
    let base_ratio = geom.redundancy(&baseline);
    let base_feasible = base_ratio < opts.overlap_threshold
        && geom.strip_tiles(&baseline, opts.par_strips) >= floor
        && base_ws <= budget;

    match best {
        // The model only overrides the baseline when it predicts a clear
        // win (`MODEL_MARGIN`); predicted near-ties keep the
        // better-tested fixed shape.
        Some(b)
            if !base_feasible
                || b.cost < predict_group_cost(geom, &baseline, model) * (1.0 - MODEL_MARGIN) =>
        {
            TileChoice {
                tiles: b.tiles,
                working_set: b.ws,
                ratio: b.ratio,
                fallback: false,
            }
        }
        Some(_) => TileChoice {
            tiles: baseline,
            working_set: base_ws,
            ratio: base_ratio,
            fallback: false,
        },
        None => TileChoice {
            tiles: baseline,
            working_set: base_ws,
            ratio: base_ratio,
            fallback: true,
        },
    }
}

/// Depth-first enumeration of the candidate product space.
fn enumerate(
    cand: &[Vec<Option<i64>>],
    d: usize,
    assign: &mut Vec<Option<i64>>,
    visit: &mut impl FnMut(&[Option<i64>]),
) {
    if d == cand.len() {
        visit(assign);
        return;
    }
    for i in 0..cand[d].len() {
        assign[d] = cand[d][i];
        enumerate(cand, d + 1, assign, visit);
    }
}

/// Runs the model for every group of a grouping: `Some(choice)` for
/// Normal groups under `opts.tile`, `None` otherwise. Emits a
/// `tilemodel.choice` event plus [`Counter::TileModelSelect`] /
/// [`Counter::TileModelFallback`] per modeled group.
pub(crate) fn choose_group_tiles(
    pipe: &Pipeline,
    graph: &PipelineGraph,
    groups: &[Group],
    opts: &CompileOptions,
    diag: &Diag,
) -> Vec<Option<TileChoice>> {
    let model = CacheModel::get();
    groups
        .iter()
        .map(|g| {
            if g.kind != GroupKindTag::Normal || !opts.tile {
                return None;
            }
            let geom = GroupGeom::build(pipe, graph, g, opts)?;
            let choice = select_tiles(&geom, opts, &model);
            diag.count(
                if choice.fallback {
                    Counter::TileModelFallback
                } else {
                    Counter::TileModelSelect
                },
                1,
            );
            if diag.enabled() {
                let tiles: Vec<String> = choice
                    .tiles
                    .iter()
                    .map(|t| t.map_or("-".into(), |v| v.to_string()))
                    .collect();
                diag.event(
                    "tilemodel.choice",
                    vec![
                        ("sink", Value::from(pipe.func(g.sink).name.as_str())),
                        ("tiles", Value::from(tiles.join("x"))),
                        ("working_set", Value::from(choice.working_set)),
                        ("ratio", Value::Float(choice.ratio)),
                        ("fallback", Value::from(choice.fallback)),
                        ("budget", Value::from(model.budget())),
                    ],
                );
            }
            Some(choice)
        })
        .collect()
}

/// Extents of an out-of-group source at the estimates.
fn source_extents(pipe: &Pipeline, src: Source, est: &[i64]) -> Vec<i64> {
    match src {
        Source::Image(i) => pipe.images()[i.index()]
            .extents
            .iter()
            .map(|e| e.eval(est).max(1))
            .collect(),
        Source::Func(f) => pipe
            .func(f)
            .var_dom
            .dom
            .iter()
            .map(|iv| {
                let (lo, hi) = iv.eval(est);
                (hi - lo + 1).max(1)
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_model_parse() {
        assert_eq!(
            CacheModel::parse("32768:1048576:64"),
            Some(CacheModel {
                l1: 32768,
                l2: 1048576,
                line: 64
            })
        );
        assert_eq!(
            CacheModel::parse("48k, 2m, 64"),
            Some(CacheModel {
                l1: 48 * 1024,
                l2: 2 * 1024 * 1024,
                line: 64
            })
        );
        assert_eq!(CacheModel::parse("48k:2m"), None);
        assert_eq!(CacheModel::parse("0:2m:64"), None);
        assert_eq!(CacheModel::parse("x:y:z"), None);
        let d = CacheModel::detect();
        assert!(d.l1 > 0 && d.l2 > 0 && d.line > 0);
        assert!(CacheModel::FALLBACK.budget() < CacheModel::FALLBACK.l2);
    }

    #[test]
    fn strip_floor_is_positive_and_capped() {
        let f = min_strip_tiles();
        assert!(f >= STRIP_TILES_PER_WORKER);
        assert!(f <= 128);
    }
}
