//! Table 1 of the paper: every computation pattern the DSL supports —
//! point-wise, stencil, upsample, downsample, histogram, time-iterated —
//! builds, passes the static checks, compiles, and computes the right
//! values under both the reference interpreter and the optimized program.

use polymage::core::interp::interpret;
use polymage::core::{compile, CompileOptions};
use polymage::ir::*;
use polymage::poly::Rect;
use polymage::vm::{run_program, Buffer};

fn run_both(pipe: &Pipeline, params: Vec<i64>, inputs: &[Buffer]) -> Vec<Buffer> {
    let expect = interpret(pipe, &params, inputs).expect("interpret");
    let compiled = compile(pipe, &CompileOptions::optimized(params)).expect("compile");
    let got = run_program(&compiled.program, inputs, 2).expect("run");
    for (g, w) in got.iter().zip(&expect) {
        assert_eq!(g.rect, w.rect);
        for (a, b) in g.data.iter().zip(&w.data) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }
    got
}

fn image_2d(n: i64) -> Buffer {
    Buffer::zeros(Rect::new(vec![(0, n - 1), (0, n - 1)]))
        .fill_with(|p| ((p[0] * 13 + p[1] * 7) % 32) as f32)
}

/// Point-wise: f(x, y) = g(x, y).
#[test]
fn pattern_pointwise() {
    let mut p = PipelineBuilder::new("pointwise");
    let img = p.image("g", ScalarType::Float, vec![PAff::cst(32), PAff::cst(32)]);
    let (x, y) = (p.var("x"), p.var("y"));
    let d = Interval::cst(0, 31);
    let f = p.func("f", &[(x, d.clone()), (y, d)], ScalarType::Float);
    p.define(
        f,
        vec![Case::always(Expr::at(img, [Expr::from(x), Expr::from(y)]))],
    )
    .unwrap();
    let pipe = p.finish(&[f]).unwrap();
    let input = image_2d(32);
    let out = run_both(&pipe, vec![], std::slice::from_ref(&input));
    assert_eq!(out[0].data, input.data);
}

/// Stencil: f(x, y) = Σ g(x+σx, y+σy).
#[test]
fn pattern_stencil() {
    let mut p = PipelineBuilder::new("stencil");
    let img = p.image("g", ScalarType::Float, vec![PAff::cst(32), PAff::cst(32)]);
    let (x, y) = (p.var("x"), p.var("y"));
    let d = Interval::cst(1, 30);
    let f = p.func("f", &[(x, d.clone()), (y, d)], ScalarType::Float);
    p.define(
        f,
        vec![Case::always(stencil(
            img,
            &[x, y],
            1.0,
            &[[1, 1, 1], [1, 1, 1], [1, 1, 1]],
        ))],
    )
    .unwrap();
    let pipe = p.finish(&[f]).unwrap();
    let input = image_2d(32);
    let out = run_both(&pipe, vec![], std::slice::from_ref(&input));
    // spot-check one 3×3 neighborhood sum
    let mut s = 0.0;
    for dx in -1i64..=1 {
        for dy in -1i64..=1 {
            s += input.at(&[5 + dx, 9 + dy]);
        }
    }
    assert!((out[0].at(&[5, 9]) - s).abs() < 1e-4);
}

/// Downsample: f(x, y) = Σ g(2x+σx, 2y+σy).
#[test]
fn pattern_downsample() {
    let mut p = PipelineBuilder::new("downsample");
    let img = p.image("g", ScalarType::Float, vec![PAff::cst(32), PAff::cst(32)]);
    let (x, y) = (p.var("x"), p.var("y"));
    let d = Interval::cst(1, 14);
    let f = p.func("f", &[(x, d.clone()), (y, d)], ScalarType::Float);
    let mut e: Option<Expr> = None;
    for sx in -1i64..=1 {
        for sy in -1i64..=1 {
            let t = Expr::at(img, [2i64 * Expr::from(x) + sx, 2i64 * Expr::from(y) + sy]);
            e = Some(match e {
                None => t,
                Some(s) => s + t,
            });
        }
    }
    p.define(f, vec![Case::always(e.unwrap())]).unwrap();
    let pipe = p.finish(&[f]).unwrap();
    let input = image_2d(32);
    run_both(&pipe, vec![], &[input]);
}

/// Upsample: f(x, y) = Σ g((x+σx)/2, (y+σy)/2).
#[test]
fn pattern_upsample() {
    let mut p = PipelineBuilder::new("upsample");
    let img = p.image("g", ScalarType::Float, vec![PAff::cst(16), PAff::cst(16)]);
    let (x, y) = (p.var("x"), p.var("y"));
    let d = Interval::cst(1, 28);
    let f = p.func("f", &[(x, d.clone()), (y, d)], ScalarType::Float);
    let mut e: Option<Expr> = None;
    for sx in -1i64..=1 {
        for sy in -1i64..=1 {
            let t = Expr::at(img, [(x + sx) / 2, (y + sy) / 2]);
            e = Some(match e {
                None => t,
                Some(s) => s + t,
            });
        }
    }
    p.define(f, vec![Case::always(e.unwrap())]).unwrap();
    let pipe = p.finish(&[f]).unwrap();
    let input = image_2d(16);
    run_both(&pipe, vec![], &[input]);
}

/// Histogram: f(g(x)) += 1 (Fig. 3 of the paper).
#[test]
fn pattern_histogram() {
    let mut p = PipelineBuilder::new("histogram");
    let (r, c) = (p.param("R"), p.param("C"));
    let img = p.image("I", ScalarType::UChar, vec![PAff::param(r), PAff::param(c)]);
    let (x, y, b) = (p.var("x"), p.var("y"), p.var("b"));
    let acc = Accumulate {
        red_vars: vec![x, y],
        red_dom: vec![
            Interval::new(PAff::cst(0), PAff::param(r) - 1),
            Interval::new(PAff::cst(0), PAff::param(c) - 1),
        ],
        target: vec![Expr::at(img, [Expr::from(x), Expr::from(y)])],
        value: Expr::Const(1.0),
        op: Reduction::Sum,
    };
    let hist = p
        .accumulator("hist", &[(b, Interval::cst(0, 255))], ScalarType::Int, acc)
        .unwrap();
    let pipe = p.finish(&[hist]).unwrap();
    let input = Buffer::zeros(Rect::new(vec![(0, 31), (0, 31)]))
        .fill_with(|p| ((p[0] * 13 + p[1] * 7) % 256) as f32);
    let out = run_both(&pipe, vec![32, 32], std::slice::from_ref(&input));
    let total: f32 = out[0].data.iter().sum();
    assert_eq!(total, 1024.0);
}

/// Time-iterated: f(t, x, y) = φ(f(t−1, x, y)).
#[test]
fn pattern_time_iterated() {
    let mut p = PipelineBuilder::new("time_iterated");
    let img = p.image("g", ScalarType::Float, vec![PAff::cst(16), PAff::cst(16)]);
    let (t, x, y) = (p.var("t"), p.var("x"), p.var("y"));
    let d = Interval::cst(0, 15);
    let f = p.func(
        "f",
        &[(t, Interval::cst(0, 3)), (x, d.clone()), (y, d)],
        ScalarType::Float,
    );
    // base case covers the whole plane; the iterated stencil case is
    // guarded to the interior so its reads stay inside the domain
    let interior = Expr::from(t).ge(1)
        & Expr::from(x).ge(1)
        & Expr::from(x).le(14)
        & Expr::from(y).ge(1)
        & Expr::from(y).le(14);
    p.define(
        f,
        vec![
            Case::new(
                Expr::from(t).le(0),
                Expr::at(img, [Expr::from(x), Expr::from(y)]),
            ),
            Case::new(
                interior,
                (Expr::at(f, [t - 1, x - 1, Expr::from(y)])
                    + Expr::at(f, [t - 1, x + 1, Expr::from(y)])
                    + Expr::at(f, [t - 1, Expr::from(x), y - 1])
                    + Expr::at(f, [t - 1, Expr::from(x), y + 1]))
                    * 0.25,
            ),
        ],
    )
    .unwrap();
    let pipe = p.finish(&[f]).unwrap();
    let input = image_2d(16);
    run_both(&pipe, vec![], &[input]);
}

/// Summed-area table (the paper cites Crow's SAT as expressible): a
/// self-referential scan with same-row dependences.
#[test]
fn pattern_summed_area_table() {
    let mut p = PipelineBuilder::new("sat");
    let img = p.image("g", ScalarType::Float, vec![PAff::cst(16), PAff::cst(16)]);
    let (x, y) = (p.var("x"), p.var("y"));
    let d = Interval::cst(0, 15);
    let f = p.func("f", &[(x, d.clone()), (y, d)], ScalarType::Float);
    let g_at = Expr::at(img, [Expr::from(x), Expr::from(y)]);
    p.define(
        f,
        vec![
            Case::new(
                Expr::from(x).eq_(0.0) & Expr::from(y).eq_(0.0),
                g_at.clone(),
            ),
            Case::new(
                Expr::from(x).eq_(0.0) & Expr::from(y).ge(1),
                g_at.clone() + Expr::at(f, [Expr::from(x), y - 1]),
            ),
            Case::new(
                Expr::from(x).ge(1) & Expr::from(y).eq_(0.0),
                g_at.clone() + Expr::at(f, [x - 1, Expr::from(y)]),
            ),
            Case::new(
                Expr::from(x).ge(1) & Expr::from(y).ge(1),
                g_at + Expr::at(f, [Expr::from(x), y - 1]) + Expr::at(f, [x - 1, Expr::from(y)])
                    - Expr::at(f, [x - 1, y - 1]),
            ),
        ],
    )
    .unwrap();
    let pipe = p.finish(&[f]).unwrap();
    let input = image_2d(16);
    let out = run_both(&pipe, vec![], std::slice::from_ref(&input));
    // SAT(15,15) = sum of all pixels
    let total: f32 = input.data.iter().sum();
    assert!((out[0].at(&[15, 15]) - total).abs() < 1e-2);
}
