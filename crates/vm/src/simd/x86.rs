//! x86-64 chunk loops: 256-bit AVX2 and 128-bit SSE2 variants.
//!
//! Every function here is `#[target_feature]`-gated and reached only via
//! the dispatch wrappers in [`super`], which guarantee the feature was
//! runtime-detected. Register operands (`&[f32; CHUNK]`) live inside
//! [`super::Lanes`] (64-byte aligned), so in-register loops use aligned
//! loads/stores; buffer-side stores use unaligned accesses.
//!
//! # Bit-exactness notes (empirically verified against the scalar path)
//!
//! * `min`/`max`: `minps`/`maxps` are asymmetric — on NaN or `(±0, ∓0)`
//!   they return the *second* operand. Rust's `f32::min(a, b)` returns `b`
//!   when `a` is NaN, otherwise behaves like `minps(b, a)` (second operand
//!   `a` wins ties, NaN `b` yields `a`). So the exact form is
//!   `blend(minps(b, a), b, isnan(a))`, and symmetrically for `max`.
//! * round-half-away-from-zero (`f32::round`): computed as
//!   `trunc(|x|) + (frac ≥ 0.5)` with the sign bit reapplied, valid for
//!   `|x| < 2²³` where `cvttps` is exact. Lanes with `|x| ≥ 2²³` (already
//!   integral) *and* NaN lanes instead take `x + 0.0`, which is bit-exact
//!   for every finite/infinite value in that range (no signed zeros occur
//!   there) and quiets signaling NaNs exactly like `roundf` does.
//! * comparisons: ordered predicates (`LT_OQ`, …) except `NEQ_UQ` for `!=`
//!   match Rust's `<`/`<=`/`==`/`!=` on NaN; `>`/`>=` swap operands.
//! * clamp: two `select`s (`v < lo → lo`, then `> hi → hi`) reproduce
//!   `f32::clamp` including NaN passthrough and `-0.0 < 0.0 == false`.
//! * No FMA is ever emitted: multiplies and adds are separate intrinsics.

use crate::eval::{round_ties_away, scalar_bin, scalar_cmp, CHUNK};
use crate::{BinF, CmpF};
use std::arch::x86_64::*;

// ---------------------------------------------------------------------------
// AVX2 (8 lanes)
// ---------------------------------------------------------------------------

/// Rust `x.min(y)` semantics, 8 lanes. See module docs.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn min8(x: __m256, y: __m256) -> __m256 {
    let m = _mm256_min_ps(y, x);
    let xnan = _mm256_cmp_ps::<_CMP_UNORD_Q>(x, x);
    _mm256_blendv_ps(m, y, xnan)
}

/// Rust `x.max(y)` semantics, 8 lanes.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn max8(x: __m256, y: __m256) -> __m256 {
    let m = _mm256_max_ps(y, x);
    let xnan = _mm256_cmp_ps::<_CMP_UNORD_Q>(x, x);
    _mm256_blendv_ps(m, y, xnan)
}

/// `f32::round` (ties away from zero) semantics, 8 lanes.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn round8(x: __m256) -> __m256 {
    let sign_mask = _mm256_set1_ps(-0.0);
    let abs = _mm256_andnot_ps(sign_mask, x);
    // !(|x| < 2^23): true for already-integral magnitudes, infinities, NaN.
    let big = _mm256_cmp_ps::<_CMP_NLT_UQ>(abs, _mm256_set1_ps(8388608.0));
    let tr = _mm256_cvtepi32_ps(_mm256_cvttps_epi32(abs));
    let frac = _mm256_sub_ps(abs, tr);
    let half = _mm256_cmp_ps::<_CMP_GE_OQ>(frac, _mm256_set1_ps(0.5));
    let rounded = _mm256_add_ps(tr, _mm256_and_ps(half, _mm256_set1_ps(1.0)));
    let signed = _mm256_or_ps(rounded, _mm256_and_ps(sign_mask, x));
    // `x + 0.0` is bit-exact for big lanes and quiets sNaN like `roundf`.
    let quieted = _mm256_add_ps(x, _mm256_set1_ps(0.0));
    _mm256_blendv_ps(signed, quieted, big)
}

/// `f32::clamp(v, lo, hi)` semantics, 8 lanes (NaN passes through).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn clamp8(v: __m256, lo: __m256, hi: __m256) -> __m256 {
    let below = _mm256_cmp_ps::<_CMP_LT_OQ>(v, lo);
    let c = _mm256_blendv_ps(v, lo, below);
    let above = _mm256_cmp_ps::<_CMP_GT_OQ>(c, hi);
    _mm256_blendv_ps(c, hi, above)
}

/// Lane-exact `BinF` over register chunks (Mod/Pow never dispatched here).
#[target_feature(enable = "avx2")]
pub(super) unsafe fn bin_avx2(
    op: BinF,
    d: &mut [f32; CHUNK],
    a: &[f32; CHUNK],
    b: &[f32; CHUNK],
    len: usize,
) {
    let n = len & !7;
    let (ap, bp, dp) = (a.as_ptr(), b.as_ptr(), d.as_mut_ptr());
    macro_rules! lanes {
        ($ins:path) => {{
            let mut i = 0;
            while i < n {
                let r = $ins(_mm256_load_ps(ap.add(i)), _mm256_load_ps(bp.add(i)));
                _mm256_store_ps(dp.add(i), r);
                i += 8;
            }
        }};
    }
    match op {
        BinF::Add => lanes!(_mm256_add_ps),
        BinF::Sub => lanes!(_mm256_sub_ps),
        BinF::Mul => lanes!(_mm256_mul_ps),
        BinF::Div => lanes!(_mm256_div_ps),
        BinF::Min => lanes!(min8),
        BinF::Max => lanes!(max8),
        BinF::Mod | BinF::Pow => debug_assert!(false, "Mod/Pow are scalar-only"),
    }
    for i in n..len {
        d[i] = scalar_bin(op, a[i], b[i]);
    }
}

/// Comparison masks (1.0 / 0.0) over register chunks.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn cmp_avx2(
    op: CmpF,
    d: &mut [f32; CHUNK],
    a: &[f32; CHUNK],
    b: &[f32; CHUNK],
    len: usize,
) {
    let n = len & !7;
    let (ap, bp, dp) = (a.as_ptr(), b.as_ptr(), d.as_mut_ptr());
    let one = _mm256_set1_ps(1.0);
    macro_rules! lanes {
        ($x:expr, $y:expr, $p:ident) => {{
            let mut i = 0;
            while i < n {
                let r = _mm256_cmp_ps::<$p>(_mm256_load_ps($x.add(i)), _mm256_load_ps($y.add(i)));
                _mm256_store_ps(dp.add(i), _mm256_and_ps(r, one));
                i += 8;
            }
        }};
    }
    match op {
        CmpF::Lt => lanes!(ap, bp, _CMP_LT_OQ),
        CmpF::Le => lanes!(ap, bp, _CMP_LE_OQ),
        CmpF::Gt => lanes!(bp, ap, _CMP_LT_OQ),
        CmpF::Ge => lanes!(bp, ap, _CMP_LE_OQ),
        CmpF::Eq => lanes!(ap, bp, _CMP_EQ_OQ),
        CmpF::Ne => lanes!(ap, bp, _CMP_NEQ_UQ),
    }
    for i in n..len {
        d[i] = scalar_cmp(op, a[i], b[i]);
    }
}

/// Mask negation `d = 1.0 − a`.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn not_avx2(d: &mut [f32; CHUNK], a: &[f32; CHUNK], len: usize) {
    let n = len & !7;
    let one = _mm256_set1_ps(1.0);
    let mut i = 0;
    while i < n {
        _mm256_store_ps(
            d.as_mut_ptr().add(i),
            _mm256_sub_ps(one, _mm256_load_ps(a.as_ptr().add(i))),
        );
        i += 8;
    }
    for i in n..len {
        d[i] = 1.0 - a[i];
    }
}

/// Lane select `d[i] = if m[i] != 0.0 { a[i] } else { b[i] }`.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn select_avx2(
    d: &mut [f32; CHUNK],
    m: &[f32; CHUNK],
    a: &[f32; CHUNK],
    b: &[f32; CHUNK],
    len: usize,
) {
    let n = len & !7;
    let zero = _mm256_setzero_ps();
    let mut i = 0;
    while i < n {
        let vm = _mm256_load_ps(m.as_ptr().add(i));
        let va = _mm256_load_ps(a.as_ptr().add(i));
        let vb = _mm256_load_ps(b.as_ptr().add(i));
        // NaN != 0.0 is true, -0.0 != 0.0 is false — matches the scalar test.
        let take_a = _mm256_cmp_ps::<_CMP_NEQ_UQ>(vm, zero);
        _mm256_store_ps(d.as_mut_ptr().add(i), _mm256_blendv_ps(vb, va, take_a));
        i += 8;
    }
    for i in n..len {
        d[i] = if m[i] != 0.0 { a[i] } else { b[i] };
    }
}

/// `CastRound`: round half away from zero.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn round_avx2(d: &mut [f32; CHUNK], a: &[f32; CHUNK], len: usize) {
    let n = len & !7;
    let mut i = 0;
    while i < n {
        _mm256_store_ps(
            d.as_mut_ptr().add(i),
            round8(_mm256_load_ps(a.as_ptr().add(i))),
        );
        i += 8;
    }
    for i in n..len {
        d[i] = round_ties_away(a[i]);
    }
}

/// `CastSat`: clamp to `[lo, hi]`, then round half away from zero.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn sat_avx2(
    d: &mut [f32; CHUNK],
    a: &[f32; CHUNK],
    lo: f32,
    hi: f32,
    len: usize,
) {
    let n = len & !7;
    let vlo = _mm256_set1_ps(lo);
    let vhi = _mm256_set1_ps(hi);
    let mut i = 0;
    while i < n {
        let c = clamp8(_mm256_load_ps(a.as_ptr().add(i)), vlo, vhi);
        _mm256_store_ps(d.as_mut_ptr().add(i), round8(c));
        i += 8;
    }
    for i in n..len {
        d[i] = round_ties_away(a[i].clamp(lo, hi));
    }
}

/// Chunk store with optional saturation/rounding into an output buffer
/// slice (unaligned destination).
#[target_feature(enable = "avx2")]
pub(super) unsafe fn store_avx2(
    dst: &mut [f32],
    src: &[f32],
    sat: Option<(f32, f32)>,
    round: bool,
) {
    let len = dst.len().min(src.len());
    let n = len & !7;
    let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
    match (sat, round) {
        (Some((lo, hi)), true) => {
            let (vlo, vhi) = (_mm256_set1_ps(lo), _mm256_set1_ps(hi));
            let mut i = 0;
            while i < n {
                let c = clamp8(_mm256_loadu_ps(sp.add(i)), vlo, vhi);
                _mm256_storeu_ps(dp.add(i), round8(c));
                i += 8;
            }
            for i in n..len {
                dst[i] = round_ties_away(src[i].clamp(lo, hi));
            }
        }
        (Some((lo, hi)), false) => {
            let (vlo, vhi) = (_mm256_set1_ps(lo), _mm256_set1_ps(hi));
            let mut i = 0;
            while i < n {
                let c = clamp8(_mm256_loadu_ps(sp.add(i)), vlo, vhi);
                _mm256_storeu_ps(dp.add(i), c);
                i += 8;
            }
            for i in n..len {
                dst[i] = src[i].clamp(lo, hi);
            }
        }
        (None, true) => {
            let mut i = 0;
            while i < n {
                _mm256_storeu_ps(dp.add(i), round8(_mm256_loadu_ps(sp.add(i))));
                i += 8;
            }
            for i in n..len {
                dst[i] = round_ties_away(src[i]);
            }
        }
        (None, false) => dst.copy_from_slice(&src[..len]),
    }
}

/// Constant-stride load via hardware gather: `d[i] = data[start + i·step]`.
/// The caller has proven every index in-bounds and within `i32` range, so
/// the gather reads exactly the elements the scalar loop would.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn strided_avx2(
    d: &mut [f32; CHUNK],
    data: &[f32],
    start: i64,
    step: i64,
    len: usize,
) {
    let n = len & !7;
    let base = data.as_ptr();
    let vstep = _mm256_set1_epi32(step as i32);
    let mut idx = _mm256_add_epi32(
        _mm256_set1_epi32(start as i32),
        _mm256_mullo_epi32(_mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7), vstep),
    );
    // The post-loop advance may wrap in lanes past the end; those indices
    // are never used for a gather.
    let advance = _mm256_slli_epi32::<3>(vstep);
    let mut i = 0;
    while i < n {
        let v = _mm256_i32gather_ps::<4>(base, idx);
        _mm256_store_ps(d.as_mut_ptr().add(i), v);
        idx = _mm256_add_epi32(idx, advance);
        i += 8;
    }
    for i in n..len {
        d[i] = data[(start + i as i64 * step) as usize];
    }
}

// ---------------------------------------------------------------------------
// SSE2 (4 lanes). Same sequences at 128-bit width; SSE2 has no `blendv`
// (that is SSE4.1), so selects use and/andnot/or on full-width masks.
// ---------------------------------------------------------------------------

/// Bitwise select: `mask ? t : f` (mask lanes are all-ones or all-zeros).
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn sel4(mask: __m128, t: __m128, f: __m128) -> __m128 {
    _mm_or_ps(_mm_and_ps(mask, t), _mm_andnot_ps(mask, f))
}

/// Rust `x.min(y)` semantics, 4 lanes.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn min4(x: __m128, y: __m128) -> __m128 {
    let m = _mm_min_ps(y, x);
    let xnan = _mm_cmpunord_ps(x, x);
    sel4(xnan, y, m)
}

/// Rust `x.max(y)` semantics, 4 lanes.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn max4(x: __m128, y: __m128) -> __m128 {
    let m = _mm_max_ps(y, x);
    let xnan = _mm_cmpunord_ps(x, x);
    sel4(xnan, y, m)
}

/// `f32::round` (ties away from zero) semantics, 4 lanes.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn round4(x: __m128) -> __m128 {
    let sign_mask = _mm_set1_ps(-0.0);
    let abs = _mm_andnot_ps(sign_mask, x);
    let big = _mm_cmpnlt_ps(abs, _mm_set1_ps(8388608.0));
    let tr = _mm_cvtepi32_ps(_mm_cvttps_epi32(abs));
    let frac = _mm_sub_ps(abs, tr);
    let half = _mm_cmpge_ps(frac, _mm_set1_ps(0.5));
    let rounded = _mm_add_ps(tr, _mm_and_ps(half, _mm_set1_ps(1.0)));
    let signed = _mm_or_ps(rounded, _mm_and_ps(sign_mask, x));
    let quieted = _mm_add_ps(x, _mm_set1_ps(0.0));
    sel4(big, quieted, signed)
}

/// `f32::clamp(v, lo, hi)` semantics, 4 lanes.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn clamp4(v: __m128, lo: __m128, hi: __m128) -> __m128 {
    let below = _mm_cmplt_ps(v, lo);
    let c = sel4(below, lo, v);
    let above = _mm_cmpgt_ps(c, hi);
    sel4(above, hi, c)
}

/// Lane-exact `BinF` over register chunks (Mod/Pow never dispatched here).
#[target_feature(enable = "sse2")]
pub(super) unsafe fn bin_sse2(
    op: BinF,
    d: &mut [f32; CHUNK],
    a: &[f32; CHUNK],
    b: &[f32; CHUNK],
    len: usize,
) {
    let n = len & !3;
    let (ap, bp, dp) = (a.as_ptr(), b.as_ptr(), d.as_mut_ptr());
    macro_rules! lanes {
        ($ins:path) => {{
            let mut i = 0;
            while i < n {
                let r = $ins(_mm_load_ps(ap.add(i)), _mm_load_ps(bp.add(i)));
                _mm_store_ps(dp.add(i), r);
                i += 4;
            }
        }};
    }
    match op {
        BinF::Add => lanes!(_mm_add_ps),
        BinF::Sub => lanes!(_mm_sub_ps),
        BinF::Mul => lanes!(_mm_mul_ps),
        BinF::Div => lanes!(_mm_div_ps),
        BinF::Min => lanes!(min4),
        BinF::Max => lanes!(max4),
        BinF::Mod | BinF::Pow => debug_assert!(false, "Mod/Pow are scalar-only"),
    }
    for i in n..len {
        d[i] = scalar_bin(op, a[i], b[i]);
    }
}

/// Comparison masks (1.0 / 0.0) over register chunks.
#[target_feature(enable = "sse2")]
pub(super) unsafe fn cmp_sse2(
    op: CmpF,
    d: &mut [f32; CHUNK],
    a: &[f32; CHUNK],
    b: &[f32; CHUNK],
    len: usize,
) {
    let n = len & !3;
    let (ap, bp, dp) = (a.as_ptr(), b.as_ptr(), d.as_mut_ptr());
    let one = _mm_set1_ps(1.0);
    macro_rules! lanes {
        ($x:expr, $y:expr, $ins:path) => {{
            let mut i = 0;
            while i < n {
                let r = $ins(_mm_load_ps($x.add(i)), _mm_load_ps($y.add(i)));
                _mm_store_ps(dp.add(i), _mm_and_ps(r, one));
                i += 4;
            }
        }};
    }
    match op {
        CmpF::Lt => lanes!(ap, bp, _mm_cmplt_ps),
        CmpF::Le => lanes!(ap, bp, _mm_cmple_ps),
        CmpF::Gt => lanes!(bp, ap, _mm_cmplt_ps),
        CmpF::Ge => lanes!(bp, ap, _mm_cmple_ps),
        CmpF::Eq => lanes!(ap, bp, _mm_cmpeq_ps),
        CmpF::Ne => lanes!(ap, bp, _mm_cmpneq_ps),
    }
    for i in n..len {
        d[i] = scalar_cmp(op, a[i], b[i]);
    }
}

/// Mask negation `d = 1.0 − a`.
#[target_feature(enable = "sse2")]
pub(super) unsafe fn not_sse2(d: &mut [f32; CHUNK], a: &[f32; CHUNK], len: usize) {
    let n = len & !3;
    let one = _mm_set1_ps(1.0);
    let mut i = 0;
    while i < n {
        _mm_store_ps(
            d.as_mut_ptr().add(i),
            _mm_sub_ps(one, _mm_load_ps(a.as_ptr().add(i))),
        );
        i += 4;
    }
    for i in n..len {
        d[i] = 1.0 - a[i];
    }
}

/// Lane select `d[i] = if m[i] != 0.0 { a[i] } else { b[i] }`.
#[target_feature(enable = "sse2")]
pub(super) unsafe fn select_sse2(
    d: &mut [f32; CHUNK],
    m: &[f32; CHUNK],
    a: &[f32; CHUNK],
    b: &[f32; CHUNK],
    len: usize,
) {
    let n = len & !3;
    let zero = _mm_setzero_ps();
    let mut i = 0;
    while i < n {
        let vm = _mm_load_ps(m.as_ptr().add(i));
        let va = _mm_load_ps(a.as_ptr().add(i));
        let vb = _mm_load_ps(b.as_ptr().add(i));
        let take_a = _mm_cmpneq_ps(vm, zero);
        _mm_store_ps(d.as_mut_ptr().add(i), sel4(take_a, va, vb));
        i += 4;
    }
    for i in n..len {
        d[i] = if m[i] != 0.0 { a[i] } else { b[i] };
    }
}

/// `CastRound`: round half away from zero.
#[target_feature(enable = "sse2")]
pub(super) unsafe fn round_sse2(d: &mut [f32; CHUNK], a: &[f32; CHUNK], len: usize) {
    let n = len & !3;
    let mut i = 0;
    while i < n {
        _mm_store_ps(
            d.as_mut_ptr().add(i),
            round4(_mm_load_ps(a.as_ptr().add(i))),
        );
        i += 4;
    }
    for i in n..len {
        d[i] = round_ties_away(a[i]);
    }
}

/// `CastSat`: clamp to `[lo, hi]`, then round half away from zero.
#[target_feature(enable = "sse2")]
pub(super) unsafe fn sat_sse2(
    d: &mut [f32; CHUNK],
    a: &[f32; CHUNK],
    lo: f32,
    hi: f32,
    len: usize,
) {
    let n = len & !3;
    let vlo = _mm_set1_ps(lo);
    let vhi = _mm_set1_ps(hi);
    let mut i = 0;
    while i < n {
        let c = clamp4(_mm_load_ps(a.as_ptr().add(i)), vlo, vhi);
        _mm_store_ps(d.as_mut_ptr().add(i), round4(c));
        i += 4;
    }
    for i in n..len {
        d[i] = round_ties_away(a[i].clamp(lo, hi));
    }
}

/// Chunk store with optional saturation/rounding into an output buffer
/// slice (unaligned destination).
#[target_feature(enable = "sse2")]
pub(super) unsafe fn store_sse2(
    dst: &mut [f32],
    src: &[f32],
    sat: Option<(f32, f32)>,
    round: bool,
) {
    let len = dst.len().min(src.len());
    let n = len & !3;
    let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
    match (sat, round) {
        (Some((lo, hi)), true) => {
            let (vlo, vhi) = (_mm_set1_ps(lo), _mm_set1_ps(hi));
            let mut i = 0;
            while i < n {
                let c = clamp4(_mm_loadu_ps(sp.add(i)), vlo, vhi);
                _mm_storeu_ps(dp.add(i), round4(c));
                i += 4;
            }
            for i in n..len {
                dst[i] = round_ties_away(src[i].clamp(lo, hi));
            }
        }
        (Some((lo, hi)), false) => {
            let (vlo, vhi) = (_mm_set1_ps(lo), _mm_set1_ps(hi));
            let mut i = 0;
            while i < n {
                let c = clamp4(_mm_loadu_ps(sp.add(i)), vlo, vhi);
                _mm_storeu_ps(dp.add(i), c);
                i += 4;
            }
            for i in n..len {
                dst[i] = src[i].clamp(lo, hi);
            }
        }
        (None, true) => {
            let mut i = 0;
            while i < n {
                _mm_storeu_ps(dp.add(i), round4(_mm_loadu_ps(sp.add(i))));
                i += 4;
            }
            for i in n..len {
                dst[i] = round_ties_away(src[i]);
            }
        }
        (None, false) => dst.copy_from_slice(&src[..len]),
    }
}
