//! Developer inspection tool: compiler report, generated C (Fig. 7 style),
//! and program statistics for any benchmark. Compilation goes through the
//! two-phase path explicitly, so the size-independent
//! [`ParametricPlan`](polymage_core::ParametricPlan)
//! (symbolic bounds) is shown alongside the geometry it instantiates at
//! the benchmark's concrete parameters.

use polymage_bench::HarnessArgs;
use polymage_core::{emit_c, instantiate, plan, CacheModel, CompileOptions, TileSpec};

fn main() {
    let args = HarnessArgs::parse();
    let model = CacheModel::get();
    println!(
        "cache model: L1 {} KiB, L2 {} KiB, {}-byte lines → per-tile budget \
         {} KiB, strip floor {} tiles (POLYMAGE_CACHE overrides)",
        model.l1 / 1024,
        model.l2 / 1024,
        model.line,
        model.budget() / 1024,
        polymage_core::tilemodel::min_strip_tiles()
    );
    for b in args.benchmarks() {
        let params = b.params();
        let p = plan(
            b.pipeline(),
            &CompileOptions::optimized(params.clone())
                .with_estimates(params.clone())
                .with_tile_spec(TileSpec::Auto),
        )
        .expect("plan");
        let compiled = instantiate(&p, &params).expect("instantiate");
        println!("\n================ {} ================", b.name());
        if args.filter.is_some() {
            println!("--- specification ---\n{}\n", b.pipeline().display());
        }
        println!("--- parametric plan (symbolic bounds) ---");
        println!("{}", p.describe_symbolic());
        println!("--- instantiated at {params:?} ---");
        println!("{}", compiled.report);
        println!(
            "simd: dispatching {} (host supports: {})",
            compiled.report.simd,
            polymage_vm::available_simd_levels()
                .iter()
                .map(|l| l.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!(
            "buffers: {} ({} full bytes, {} scratch bytes/thread), groups: {}",
            compiled.program.buffers.len(),
            compiled.program.full_bytes(),
            compiled.program.scratch_bytes(),
            compiled.program.group_count()
        );
        println!(
            "storage: {} arena bytes/worker after folding, {} peak full bytes",
            compiled.program.arena_bytes(),
            compiled.report.peak_full_bytes
        );
        for g in &compiled.program.groups {
            let polymage_vm::GroupKind::Tiled(tg) = &g.kind else {
                continue;
            };
            let map: Vec<String> = tg
                .stages
                .iter()
                .zip(&tg.slots.stage)
                .map(|(s, r)| match r {
                    Some(r) => format!("{}→slot{}@{}+{}", s.name, r.slot, r.offset, r.len),
                    None => format!("{}→direct", s.name),
                })
                .collect();
            println!(
                "  {}: {} slots, {} arena f32s [{}]",
                g.name,
                tg.slots.nslots,
                tg.slots.arena_len,
                map.join(", ")
            );
        }
        let r = &compiled.report;
        let folded: usize = r.kernels.iter().map(|k| k.folded).sum();
        let simplified: usize = r.kernels.iter().map(|k| k.simplified).sum();
        println!(
            "optimizer: {} kernels, {} ops eliminated ({} folded, {} simplified), \
             {} regs eliminated, loads [{}]",
            r.kernels.len(),
            r.ops_eliminated(),
            folded,
            simplified,
            r.regs_eliminated(),
            r.load_histogram()
        );
        if args.filter.is_some() {
            println!("--- emitted C (Fig. 7 style) ---");
            println!("{}", emit_c(b.pipeline(), &compiled.program));
        }
    }
}
