//! Bilateral Grid — fast approximate bilateral filtering (§4, citing Chen,
//! Paris & Durand).
//!
//! The pipeline is "a histogram operation followed by stencil and sampling
//! operations": two accumulators scatter value/weight sums into a coarse
//! (space × intensity) grid, three 5-tap blurs smooth the grid along each
//! axis, and a trilinear *slice* samples it back at full resolution,
//! normalizing by the sliced weight (homogeneous coordinates).
//!
//! The paper's grouping result reproduces here: the accumulators stay in
//! their own groups ("our current implementation does not attempt to fuse
//! reduction operations"), while the blurs + slicing + normalization fuse —
//! with big enough tiles, which is exactly what the autotuner discovers.
//! The original blurs one 4-D grid holding (value, weight) pairs; lacking
//! multi-valued accumulators, we run two parallel 3-D chains, which
//! performs the same arithmetic.

use crate::{Benchmark, Scale};
use polymage_ir::*;
use polymage_vm::Buffer;

/// Spatial sigma: one grid cell per 8×8 pixel block.
pub const S_SIGMA: i64 = 8;
/// Intensity bins for values in `[0, 1]` (range sigma 0.1).
pub const Z_BINS: i64 = 10;
/// Grid padding on every axis (room for one 5-tap blur per axis).
const PAD: i64 = 2;
const K: [f64; 5] = [1.0 / 16.0, 4.0 / 16.0, 6.0 / 16.0, 4.0 / 16.0, 1.0 / 16.0];

/// The Bilateral Grid benchmark.
pub struct BilateralGrid {
    pipeline: Pipeline,
    rows: i64,
    cols: i64,
}

/// Builds the DSL specification. `R`, `C` must be divisible by
/// [`S_SIGMA`]; input values lie in `[0, 1]`.
pub fn build() -> Pipeline {
    let mut p = PipelineBuilder::new("bilateral_grid");
    let (r, c) = (p.param("R"), p.param("C"));
    let img = p.image("I", ScalarType::Float, vec![PAff::param(r), PAff::param(c)]);
    let (x, y, z) = (p.var("x"), p.var("y"), p.var("z"));
    let (gx, gy) = (p.var("gx"), p.var("gy"));

    let grid_x = Interval::new(PAff::cst(0), PAff::param(r) / S_SIGMA + 2 * PAD);
    let grid_y = Interval::new(PAff::cst(0), PAff::param(c) / S_SIGMA + 2 * PAD);
    let grid_z = Interval::cst(0, Z_BINS + 2 * PAD);
    let img_x = Interval::new(PAff::cst(0), PAff::param(r) - 1);
    let img_y = Interval::new(PAff::cst(0), PAff::param(c) - 1);

    // Scatter: grid cell (x/s + PAD, y/s + PAD, round(I·Z) + PAD).
    let target = |x: VarId, y: VarId| -> Vec<Expr> {
        vec![
            (Expr::from(x) + PAD * S_SIGMA) / S_SIGMA,
            (Expr::from(y) + PAD * S_SIGMA) / S_SIGMA,
            (Expr::at(img, [Expr::from(x), Expr::from(y)]) * Z_BINS as f64).cast(ScalarType::Int)
                + PAD,
        ]
    };
    let grid_dom = [
        (gx, grid_x.clone()),
        (gy, grid_y.clone()),
        (z, grid_z.clone()),
    ];
    let gridv = p
        .accumulator(
            "gridv",
            &grid_dom,
            ScalarType::Float,
            Accumulate {
                red_vars: vec![x, y],
                red_dom: vec![img_x.clone(), img_y.clone()],
                target: target(x, y),
                value: Expr::at(img, [Expr::from(x), Expr::from(y)]),
                op: Reduction::Sum,
            },
        )
        .unwrap();
    let gridw = p
        .accumulator(
            "gridw",
            &grid_dom,
            ScalarType::Float,
            Accumulate {
                red_vars: vec![x, y],
                red_dom: vec![img_x.clone(), img_y],
                target: target(x, y),
                value: Expr::Const(1.0),
                op: Reduction::Sum,
            },
        )
        .unwrap();

    // Blur chains (z, then x, then y) for both grids.
    let blur_z_dom = Interval::new(PAff::cst(PAD), PAff::cst(Z_BINS + PAD));
    let blur_x_dom = Interval::new(PAff::cst(PAD), PAff::param(r) / S_SIGMA + PAD);
    let blur_y_dom = Interval::new(PAff::cst(PAD), PAff::param(c) / S_SIGMA + PAD);
    let mut blurred = Vec::new();
    for (suffix, grid) in [("v", gridv), ("w", gridw)] {
        let bz = p.func(
            format!("blurz_{suffix}"),
            &[
                (gx, grid_x.clone()),
                (gy, grid_y.clone()),
                (z, blur_z_dom.clone()),
            ],
            ScalarType::Float,
        );
        p.define(
            bz,
            vec![Case::always(stencil_1d(
                grid,
                &[gx, gy, z],
                2,
                1.0,
                &[K[0], K[1], K[2], K[3], K[4]],
            ))],
        )
        .unwrap();
        let bx = p.func(
            format!("blurx_{suffix}"),
            &[
                (gx, blur_x_dom.clone()),
                (gy, grid_y.clone()),
                (z, blur_z_dom.clone()),
            ],
            ScalarType::Float,
        );
        p.define(
            bx,
            vec![Case::always(stencil_1d(
                bz,
                &[gx, gy, z],
                0,
                1.0,
                &[K[0], K[1], K[2], K[3], K[4]],
            ))],
        )
        .unwrap();
        let by = p.func(
            format!("blury_{suffix}"),
            &[
                (gx, blur_x_dom.clone()),
                (gy, blur_y_dom.clone()),
                (z, blur_z_dom.clone()),
            ],
            ScalarType::Float,
        );
        p.define(
            by,
            vec![Case::always(stencil_1d(
                bx,
                &[gx, gy, z],
                1,
                1.0,
                &[K[0], K[1], K[2], K[3], K[4]],
            ))],
        )
        .unwrap();
        blurred.push(by);
    }

    // Trilinear slice of each blurred grid, then normalization.
    let zv = Expr::at(img, [Expr::from(x), Expr::from(y)]) * Z_BINS as f64 + PAD as f64;
    let zi = zv.clone().floor();
    let zf = zv - zi.clone();
    let xf = Expr::from(x) * (1.0 / S_SIGMA as f64) - (Expr::from(x) / S_SIGMA as f64).floor();
    let yf = Expr::from(y) * (1.0 / S_SIGMA as f64) - (Expr::from(y) / S_SIGMA as f64).floor();
    let trilinear = |grid: FuncId| -> Expr {
        let mut sum: Option<Expr> = None;
        for dx in 0..2i64 {
            for dy in 0..2i64 {
                for dz in 0..2i64 {
                    let wx = if dx == 0 {
                        1.0 - xf.clone()
                    } else {
                        xf.clone()
                    };
                    let wy = if dy == 0 {
                        1.0 - yf.clone()
                    } else {
                        yf.clone()
                    };
                    let wz = if dz == 0 {
                        1.0 - zf.clone()
                    } else {
                        zf.clone()
                    };
                    let access = Expr::at(
                        grid,
                        [
                            (Expr::from(x) + (PAD + dx) * S_SIGMA) / S_SIGMA,
                            (Expr::from(y) + (PAD + dy) * S_SIGMA) / S_SIGMA,
                            zi.clone() + dz as f64,
                        ],
                    );
                    let term = access * wx * wy * wz;
                    sum = Some(match sum {
                        None => term,
                        Some(s) => s + term,
                    });
                }
            }
        }
        sum.unwrap()
    };
    let out_dom = [
        (x, Interval::new(PAff::cst(0), PAff::param(r) - 1)),
        (y, Interval::new(PAff::cst(0), PAff::param(c) - 1)),
    ];
    let slice_v = p.func("slice_v", &out_dom, ScalarType::Float);
    p.define(slice_v, vec![Case::always(trilinear(blurred[0]))])
        .unwrap();
    let slice_w = p.func("slice_w", &out_dom, ScalarType::Float);
    p.define(slice_w, vec![Case::always(trilinear(blurred[1]))])
        .unwrap();
    let out = p.func("filtered", &out_dom, ScalarType::Float);
    p.define(
        out,
        vec![Case::always(
            Expr::at(slice_v, [Expr::from(x), Expr::from(y)])
                / (Expr::at(slice_w, [Expr::from(x), Expr::from(y)]) + 1e-6),
        )],
    )
    .unwrap();
    p.finish(&[out]).unwrap()
}

impl BilateralGrid {
    /// Instantiates at a given scale.
    pub fn new(scale: Scale) -> Self {
        let (rows, cols) = crate::sizes::BILATERAL.at(scale);
        BilateralGrid::with_size(rows, cols)
    }

    /// Instantiates with explicit dimensions (multiples of [`S_SIGMA`]).
    ///
    /// # Panics
    ///
    /// Panics if `rows`/`cols` are not multiples of the spatial sigma.
    pub fn with_size(rows: i64, cols: i64) -> Self {
        assert!(
            rows % S_SIGMA == 0 && cols % S_SIGMA == 0,
            "bilateral grid sizes must be multiples of {S_SIGMA}"
        );
        BilateralGrid {
            pipeline: build(),
            rows,
            cols,
        }
    }
}

impl Benchmark for BilateralGrid {
    fn name(&self) -> &str {
        "Bilateral Grid"
    }

    fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    fn params(&self) -> Vec<i64> {
        vec![self.rows, self.cols]
    }

    fn make_inputs(&self, seed: u64) -> Vec<Buffer> {
        vec![crate::inputs::gray_image(self.rows, self.cols, seed)]
    }

    fn reference(&self, inputs: &[Buffer]) -> Vec<Buffer> {
        let img = &inputs[0];
        let (r, c) = (self.rows, self.cols);
        let (nx, ny, nz) = (
            r / S_SIGMA + 2 * PAD + 1,
            c / S_SIGMA + 2 * PAD + 1,
            Z_BINS + 2 * PAD + 1,
        );
        let gi = |gx: i64, gy: i64, gz: i64| ((gx * ny + gy) * nz + gz) as usize;
        let mut gridv = vec![0.0f32; (nx * ny * nz) as usize];
        let mut gridw = vec![0.0f32; (nx * ny * nz) as usize];
        for x in 0..r {
            for y in 0..c {
                let v = img.at(&[x, y]);
                let gz = ((v * Z_BINS as f32).round() as i64 + PAD).clamp(0, nz - 1);
                let cell = gi(x / S_SIGMA + PAD, y / S_SIGMA + PAD, gz);
                gridv[cell] += v;
                gridw[cell] += 1.0;
            }
        }
        let blur_axis = |src: &[f32], axis: usize| -> Vec<f32> {
            let mut dst = vec![0.0f32; src.len()];
            let (bx0, bx1) = if axis == 0 {
                (PAD, nx - 1 - PAD)
            } else {
                (0, nx - 1)
            };
            let (by0, by1) = if axis == 1 {
                (PAD, ny - 1 - PAD)
            } else {
                (0, ny - 1)
            };
            let (bz0, bz1) = (PAD, nz - 1 - PAD);
            for gx in bx0..=bx1 {
                for gy in by0..=by1 {
                    for gz in bz0..=bz1 {
                        let mut s = 0.0;
                        for (k, &w) in K.iter().enumerate() {
                            let d = k as i64 - 2;
                            let (ax, ay, az) = match axis {
                                0 => (gx + d, gy, gz),
                                1 => (gx, gy + d, gz),
                                _ => (gx, gy, gz + d),
                            };
                            s += src[gi(ax, ay, az)] * w as f32;
                        }
                        dst[gi(gx, gy, gz)] = s;
                    }
                }
            }
            dst
        };
        // blur order: z, x, y (zero regions outside each stage's domain are
        // harmless: weights normalize)
        let bv = blur_axis(&blur_axis(&blur_axis(&gridv, 2), 0), 1);
        let bw = blur_axis(&blur_axis(&blur_axis(&gridw, 2), 0), 1);
        let mut out = Buffer::zeros(polymage_poly::Rect::new(vec![(0, r - 1), (0, c - 1)]));
        let mut i = 0;
        for x in 0..r {
            for y in 0..c {
                let v = img.at(&[x, y]);
                let zv = v * Z_BINS as f32 + PAD as f32;
                let zi0 = zv.floor();
                let zf = zv - zi0;
                let (xi, yi) = (x / S_SIGMA + PAD, y / S_SIGMA + PAD);
                let xf = x as f32 / S_SIGMA as f32 - (x / S_SIGMA) as f32;
                let yf = y as f32 / S_SIGMA as f32 - (y / S_SIGMA) as f32;
                let tri = |g: &[f32]| {
                    let mut s = 0.0;
                    for dx in 0..2i64 {
                        for dy in 0..2i64 {
                            for dz in 0..2i64 {
                                let wx = if dx == 0 { 1.0 - xf } else { xf };
                                let wy = if dy == 0 { 1.0 - yf } else { yf };
                                let wz = if dz == 0 { 1.0 - zf } else { zf };
                                let az = ((zi0 as i64) + dz).clamp(PAD, nz - 1 - PAD);
                                let ax = (xi + dx).clamp(PAD, nx - 1 - PAD);
                                let ay = (yi + dy).clamp(PAD, ny - 1 - PAD);
                                s += g[gi(ax, ay, az)] * wx * wy * wz;
                            }
                        }
                    }
                    s
                };
                out.data[i] = tri(&bv) / (tri(&bw) + 1e-6);
                i += 1;
            }
        }
        vec![out]
    }

    fn tolerance(&self) -> f32 {
        2e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_structure() {
        let p = build();
        // 2 accumulators + 6 blurs + 2 slices + 1 normalize = 11 stages
        assert_eq!(p.funcs().len(), 11);
        assert_eq!(p.funcs().iter().filter(|f| f.is_reduction()).count(), 2);
    }

    #[test]
    #[should_panic(expected = "multiples")]
    fn size_validation() {
        let _ = BilateralGrid::with_size(100, 48);
    }
}
