//! Engine edge cases: worker pools larger than the tile count, explicit
//! single-thread execution, and the per-worker utilization counters
//! (`RunStats::worker_tiles` / `worker_busy`) introduced with the
//! diagnostics layer — claims must always sum to the total tile count.

use polymage_apps::{harris::HarrisCorner, unsharp::Unsharp, Benchmark, Scale};
use polymage_core::{compile, CompileOptions};
use polymage_vm::{Engine, RunRequest};

#[test]
fn more_workers_than_tiles() {
    let b = Unsharp::new(Scale::Tiny);
    let compiled = compile(b.pipeline(), &CompileOptions::optimized(b.params())).unwrap();
    let inputs = b.make_inputs(7);

    // A pool far larger than the frame's tile count: most workers claim
    // nothing, and the run must still be complete and bit-exact.
    let wide = Engine::with_threads(64);
    let (out_wide, stats) = wide
        .submit(RunRequest::new(&compiled.program, &inputs))
        .unwrap()
        .join_stats()
        .unwrap();
    assert!(
        (stats.tiles as usize) < 64,
        "test premise: fewer tiles ({}) than workers",
        stats.tiles
    );
    assert_eq!(stats.worker_tiles.len(), 64);
    assert_eq!(
        stats.worker_tiles.iter().sum::<u64>(),
        stats.tiles,
        "claims must account for every tile exactly once"
    );

    let narrow = Engine::with_threads(1);
    let (out_narrow, _) = narrow
        .submit(RunRequest::new(&compiled.program, &inputs))
        .unwrap()
        .join_stats()
        .unwrap();
    for (a, b) in out_wide.iter().zip(&out_narrow) {
        assert_eq!(a.data, b.data, "thread count must not change results");
    }
}

#[test]
fn single_thread_claims_everything() {
    let b = HarrisCorner::new(Scale::Tiny);
    let compiled = compile(b.pipeline(), &CompileOptions::optimized(b.params())).unwrap();
    let inputs = b.make_inputs(11);

    let engine = Engine::with_threads(4);
    let (_, stats) = engine
        .submit(RunRequest::new(&compiled.program, &inputs).threads(1))
        .unwrap()
        .join_stats()
        .unwrap();
    assert!(stats.tiles > 0);
    // The per-worker vectors are sized to the run's *effective* worker
    // count — min(requested threads, pool size) — so a single-thread run
    // on a 4-worker pool reports exactly one participation slot, and that
    // slot claims everything.
    assert_eq!(stats.worker_tiles.len(), 1);
    assert_eq!(stats.worker_busy.len(), 1);
    assert_eq!(stats.worker_tiles[0], stats.tiles);
    assert!(!stats.worker_busy[0].is_zero());
}

#[test]
fn utilization_counters_sum_to_total_tiles() {
    let b = HarrisCorner::new(Scale::Tiny);
    let compiled = compile(b.pipeline(), &CompileOptions::optimized(b.params())).unwrap();
    let inputs = b.make_inputs(3);

    let engine = Engine::with_threads(4);
    for _ in 0..3 {
        let (_, stats) = engine
            .submit(RunRequest::new(&compiled.program, &inputs))
            .unwrap()
            .join_stats()
            .unwrap();
        assert_eq!(stats.worker_tiles.iter().sum::<u64>(), stats.tiles);
        // Work happened, so someone was busy.
        assert!(stats.worker_busy.iter().any(|d| !d.is_zero()));
        // A worker that claimed tiles must have nonzero busy time.
        for (t, d) in stats.worker_tiles.iter().zip(&stats.worker_busy) {
            if *t > 0 {
                assert!(
                    !d.is_zero(),
                    "worker with {t} tiles reported zero busy time"
                );
            }
        }
    }
}
