//! Multi-tenant throughput: runs/sec on one shared [`Engine`] as the
//! number of concurrent submitter threads grows. Each iteration pushes a
//! fixed batch of frames through the engine — one submitter drains it
//! serially, N submitters split it and overlap their runs on the shared
//! worker pool. Gains come from overlapping per-run setup/finalize and
//! scheduler gaps with another run's tiles, so they are modest on few
//! cores and disappear on a single-core container (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use polymage_apps::{harris::HarrisCorner, unsharp::Unsharp, Benchmark, Scale};
use polymage_core::{compile, CompileOptions};
use polymage_vm::{Buffer, Engine, Priority, Program, RunRequest};
use std::sync::Arc;

const BATCH: usize = 16;

/// Split a `BATCH`-frame batch across `submitters` threads, each running
/// its share on the shared engine at 1 thread per run (tenant-style:
/// parallelism comes from run concurrency, not intra-run fan-out).
fn drain_batch(engine: &Engine, prog: &Arc<Program>, inputs: &[Buffer], submitters: usize) {
    let share = BATCH / submitters;
    std::thread::scope(|s| {
        for _ in 0..submitters {
            s.spawn(move || {
                for _ in 0..share {
                    engine
                        .submit(RunRequest::new(prog, inputs).threads(1))
                        .unwrap()
                        .join()
                        .unwrap();
                }
            });
        }
    });
}

/// Drain the batch with 4 submitters under a priority mix: submitter 0
/// runs its share at [`Priority::High`], the rest at [`Priority::Low`].
/// Compared against the all-[`Priority::Normal`] (FIFO-equivalent) drain:
/// batch throughput must stay within noise — priority changes *who waits*,
/// not how much total work the pool does — while the high submitter's
/// per-run latency drops (see `bin/schedlat.rs` for the percentiles).
fn drain_batch_mixed(engine: &Engine, prog: &Arc<Program>, inputs: &[Buffer], mixed: bool) {
    let submitters = 4;
    let share = BATCH / submitters;
    std::thread::scope(|s| {
        for submitter in 0..submitters {
            let prio = match (mixed, submitter) {
                (false, _) => Priority::Normal,
                (true, 0) => Priority::High,
                (true, _) => Priority::Low,
            };
            s.spawn(move || {
                for _ in 0..share {
                    engine
                        .submit(RunRequest::new(prog, inputs).threads(1).priority(prio))
                        .unwrap()
                        .join()
                        .unwrap();
                }
            });
        }
    });
}

fn bench_throughput(c: &mut Criterion) {
    let apps: Vec<Box<dyn Benchmark>> = vec![
        Box::new(HarrisCorner::new(Scale::Tiny)),
        Box::new(Unsharp::new(Scale::Tiny)),
    ];
    let engine = Engine::with_threads(4);
    for b in &apps {
        let inputs = b.make_inputs(42);
        let compiled = compile(b.pipeline(), &CompileOptions::optimized(b.params()))
            .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        let prog = Arc::clone(&compiled.program);
        let mut g = c.benchmark_group(format!("throughput_{}_tiny", b.name().replace(' ', "_")));
        g.sample_size(15);
        g.throughput(Throughput::Elements(BATCH as u64));
        for submitters in [1usize, 4] {
            g.bench_function(
                BenchmarkId::from_parameter(format!("{submitters}-submitters")),
                |bench| bench.iter(|| drain_batch(&engine, &prog, &inputs, submitters)),
            );
        }
        // Mixed-priority vs FIFO on the same 4-submitter batch: the
        // acceptance bar is geomean batch throughput within 3% of FIFO.
        for (label, mixed) in [("4-fifo-all-normal", false), ("4-mixed-1high-3low", true)] {
            g.bench_function(BenchmarkId::from_parameter(label), |bench| {
                bench.iter(|| drain_batch_mixed(&engine, &prog, &inputs, mixed))
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
