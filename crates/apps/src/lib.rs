//! # polymage-apps
//!
//! The seven benchmark applications of the PolyMage paper (§4, Table 2),
//! each exposed three ways:
//!
//! 1. a **PolyMage DSL specification** (`build_*`) compiled and run through
//!    `polymage-core` / `polymage-vm`;
//! 2. a **reference implementation** — straightforward Rust loops, one full
//!    buffer per logical operation, no fusion across operations. This is
//!    the stand-in for the paper's OpenCV library baseline *and* the
//!    correctness oracle for the compiled pipelines;
//! 3. **synthetic input generators** replacing the paper's photographs and
//!    camera RAWs (deterministic, covering the same value ranges and
//!    frequency content the algorithms exercise).
//!
//! | Benchmark | Paper size | Stages (paper) | Module |
//! |---|---|---|---|
//! | Unsharp Mask | 2048×2048×3 | 4 | [`unsharp`] |
//! | Bilateral Grid | 2560×1536 | 7 | [`bilateral`] |
//! | Harris Corner | 6400×6400 | 11 | [`harris`] |
//! | Camera Pipeline | 2528×1920 | 32 | [`camera`] |
//! | Pyramid Blending | 2048×2048×3 | 44 | [`pyramid`] |
//! | Multiscale Interpolate | 2560×1536×3 | 49 | [`interpolate`] |
//! | Local Laplacian | 2560×1536×3 | 99 | [`laplacian`] |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bilateral;
pub mod camera;
pub mod harris;
pub mod inputs;
pub mod interpolate;
pub mod laplacian;
pub mod pyr_util;
pub mod pyramid;
pub mod sizes;
pub mod unsharp;

use polymage_ir::Pipeline;
use polymage_vm::Buffer;

/// Workload scale for a benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's image sizes (Table 2).
    Paper,
    /// Quarter-linear-size images for fast test/CI runs.
    Small,
    /// Tiny images for exhaustive correctness sweeps.
    Tiny,
}

/// A benchmark application: specification, parameters, inputs, reference.
pub trait Benchmark {
    /// Benchmark name as used in Table 2.
    fn name(&self) -> &str;
    /// The DSL specification.
    fn pipeline(&self) -> &Pipeline;
    /// Concrete parameter values for this instance.
    fn params(&self) -> Vec<i64>;
    /// Deterministic synthetic inputs.
    fn make_inputs(&self, seed: u64) -> Vec<Buffer>;
    /// Library-style (per-operation, unfused) reference implementation.
    fn reference(&self, inputs: &[Buffer]) -> Vec<Buffer>;
    /// Relative/absolute tolerance when comparing against the compiled
    /// pipeline (accounts for f32 reassociation differences).
    fn tolerance(&self) -> f32 {
        1e-3
    }
}

/// Instantiates all seven paper benchmarks at the given scale.
pub fn all_benchmarks(scale: Scale) -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(unsharp::Unsharp::new(scale)),
        Box::new(bilateral::BilateralGrid::new(scale)),
        Box::new(harris::HarrisCorner::new(scale)),
        Box::new(camera::CameraPipe::new(scale)),
        Box::new(pyramid::PyramidBlend::new(scale)),
        Box::new(interpolate::MultiscaleInterp::new(scale)),
        Box::new(laplacian::LocalLaplacian::new(scale)),
    ]
}
