//! The compiler's central correctness property: for every pipeline and
//! every schedule configuration (fused/unfused, tiled/untiled, vector/
//! scalar, any thread count), the compiled program computes the same
//! function as the naive reference interpreter.

use polymage_core::interp::interpret;
use polymage_core::{compile, CompileOptions};
use polymage_ir::*;
use polymage_poly::Rect;
use polymage_vm::{run_program, Buffer, EvalMode};

fn check_all_configs(pipe: &Pipeline, params: Vec<i64>, inputs: &[Buffer], tol: f32) {
    let expect = interpret(pipe, &params, inputs).expect("interpreter");
    let configs = [
        CompileOptions::optimized(params.clone()),
        CompileOptions::optimized(params.clone()).with_mode(EvalMode::Scalar),
        CompileOptions::optimized(params.clone()).with_tiles(vec![8, 8]),
        CompileOptions::optimized(params.clone())
            .with_tiles(vec![16, 64])
            .with_threshold(0.2),
        CompileOptions::base(params.clone()),
        CompileOptions::base(params.clone()).with_mode(EvalMode::Scalar),
        {
            let mut o = CompileOptions::optimized(params.clone());
            o.inline_pointwise = false;
            o
        },
        {
            let mut o = CompileOptions::optimized(params.clone());
            o.fuse = false; // tiling without fusion
            o
        },
    ];
    for (ci, opts) in configs.iter().enumerate() {
        let compiled = compile(pipe, opts)
            .unwrap_or_else(|e| panic!("config {ci} failed to compile {}: {e}", pipe.name()));
        for threads in [1, 3] {
            let got = run_program(&compiled.program, inputs, threads)
                .unwrap_or_else(|e| panic!("config {ci} run: {e}"));
            assert_eq!(got.len(), expect.len());
            for (o, (g, w)) in got.iter().zip(&expect).enumerate() {
                assert_eq!(g.rect, w.rect, "output {o} shape");
                for (i, (a, b)) in g.data.iter().zip(&w.data).enumerate() {
                    assert!(
                        (a - b).abs() <= tol + tol * b.abs(),
                        "pipeline {} config {ci} threads {threads} output {o} \
                         elem {i}: compiled {a} vs interpreted {b}",
                        pipe.name()
                    );
                }
            }
        }
    }
}

fn noise_image(rect: Rect, seed: i64) -> Buffer {
    Buffer::zeros(rect).fill_with(|p| {
        let mut h = seed;
        for &c in p {
            h = h
                .wrapping_mul(6364136223846793005)
                .wrapping_add(c.wrapping_mul(1442695040888963407));
        }
        ((h >> 33) & 0xff) as f32
    })
}

/// Fig. 1: full Harris corner detection at a reduced size.
#[test]
fn harris_corner_detection() {
    let mut p = PipelineBuilder::new("harris");
    let (r, c) = (p.param("R"), p.param("C"));
    let img = p.image(
        "I",
        ScalarType::Float,
        vec![PAff::param(r) + 2, PAff::param(c) + 2],
    );
    let (x, y) = (p.var("x"), p.var("y"));
    let row = Interval::new(PAff::cst(0), PAff::param(r) + 1);
    let col = Interval::new(PAff::cst(0), PAff::param(c) + 1);
    let dom = [(x, row.clone()), (y, col.clone())];
    let cond = Expr::from(x).ge(1)
        & Expr::from(x).le(Expr::Param(r))
        & Expr::from(y).ge(1)
        & Expr::from(y).le(Expr::Param(c));
    let condb = Expr::from(x).ge(2)
        & Expr::from(x).le(Expr::Param(r) - 1.0)
        & Expr::from(y).ge(2)
        & Expr::from(y).le(Expr::Param(c) - 1.0);

    let iy = p.func("Iy", &dom, ScalarType::Float);
    p.define(
        iy,
        vec![Case::new(
            cond.clone(),
            stencil(
                img,
                &[x, y],
                1.0 / 12.0,
                &[[-1, -2, -1], [0, 0, 0], [1, 2, 1]],
            ),
        )],
    )
    .unwrap();
    let ix = p.func("Ix", &dom, ScalarType::Float);
    p.define(
        ix,
        vec![Case::new(
            cond.clone(),
            stencil(
                img,
                &[x, y],
                1.0 / 12.0,
                &[[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]],
            ),
        )],
    )
    .unwrap();
    let at = |f: FuncId| Expr::at(f, [Expr::from(x), Expr::from(y)]);
    let ixx = p.func("Ixx", &dom, ScalarType::Float);
    p.define(ixx, vec![Case::new(cond.clone(), at(ix) * at(ix))])
        .unwrap();
    let iyy = p.func("Iyy", &dom, ScalarType::Float);
    p.define(iyy, vec![Case::new(cond.clone(), at(iy) * at(iy))])
        .unwrap();
    let ixy = p.func("Ixy", &dom, ScalarType::Float);
    p.define(ixy, vec![Case::new(cond.clone(), at(ix) * at(iy))])
        .unwrap();
    let box3 = [[1i64, 1, 1], [1, 1, 1], [1, 1, 1]];
    let sxx = p.func("Sxx", &dom, ScalarType::Float);
    p.define(
        sxx,
        vec![Case::new(condb.clone(), stencil(ixx, &[x, y], 1.0, &box3))],
    )
    .unwrap();
    let syy = p.func("Syy", &dom, ScalarType::Float);
    p.define(
        syy,
        vec![Case::new(condb.clone(), stencil(iyy, &[x, y], 1.0, &box3))],
    )
    .unwrap();
    let sxy = p.func("Sxy", &dom, ScalarType::Float);
    p.define(
        sxy,
        vec![Case::new(condb.clone(), stencil(ixy, &[x, y], 1.0, &box3))],
    )
    .unwrap();
    let det = p.func("det", &dom, ScalarType::Float);
    p.define(
        det,
        vec![Case::new(
            condb.clone(),
            at(sxx) * at(syy) - at(sxy) * at(sxy),
        )],
    )
    .unwrap();
    let trace = p.func("trace", &dom, ScalarType::Float);
    p.define(trace, vec![Case::new(condb.clone(), at(sxx) + at(syy))])
        .unwrap();
    let harris = p.func("harris", &dom, ScalarType::Float);
    p.define(
        harris,
        vec![Case::new(condb, at(det) - 0.04 * at(trace) * at(trace))],
    )
    .unwrap();
    let pipe = p.finish(&[harris]).unwrap();

    let (rr, cc) = (61i64, 67i64);
    let input = noise_image(Rect::new(vec![(0, rr + 1), (0, cc + 1)]), 42);
    // Values up to ~255; products of sums of squares reach ~1e9 — scale the
    // input down to keep f32 reassociation error in check.
    let input = Buffer::from_vec(
        input.rect.clone(),
        input.data.iter().map(|v| v / 255.0).collect(),
    );
    check_all_configs(&pipe, vec![rr, cc], &[input], 2e-4);
}

/// Up/down-sampling chain (Fig. 6 pattern), exercising scaled alignment.
#[test]
fn sampling_pyramid_chain() {
    let mut p = PipelineBuilder::new("pyr1d");
    let n = p.param("N");
    let img = p.image("in", ScalarType::Float, vec![PAff::param(n)]);
    let x = p.var("x");
    let full = Interval::new(PAff::cst(0), PAff::param(n) - 1);
    let f = p.func("f", &[(x, full.clone())], ScalarType::Float);
    p.define(f, vec![Case::always(Expr::at(img, [x + 0]))])
        .unwrap();
    // down(x) = (f(2x) + f(2x+1)) / 2 over [0, N/2 - 1]
    let half = Interval::new(PAff::cst(0), PAff::param(n) / 2 - 1);
    let down = p.func("down", &[(x, half.clone())], ScalarType::Float);
    p.define(
        down,
        vec![Case::always(
            (Expr::at(f, [2i64 * Expr::from(x)]) + Expr::at(f, [2i64 * Expr::from(x) + 1])) * 0.5,
        )],
    )
    .unwrap();
    // down2 over [0, N/4 - 1]
    let quarter = Interval::new(PAff::cst(0), PAff::param(n) / 4 - 1);
    let down2 = p.func("down2", &[(x, quarter)], ScalarType::Float);
    p.define(
        down2,
        vec![Case::always(
            (Expr::at(down, [2i64 * Expr::from(x)]) + Expr::at(down, [2i64 * Expr::from(x) + 1]))
                * 0.5,
        )],
    )
    .unwrap();
    // up(x) = down2(x/2) over [0, N/2 - 1]
    let up = p.func("up", &[(x, half)], ScalarType::Float);
    p.define(up, vec![Case::always(Expr::at(down2, [Expr::from(x) / 2]))])
        .unwrap();
    // out(x) = f-ish(x) − up(x/2): laplacian-like over full domain
    let out = p.func("out", &[(x, full)], ScalarType::Float);
    p.define(
        out,
        vec![Case::always(
            Expr::at(f, [x + 0]) - Expr::at(up, [Expr::from(x) / 2]),
        )],
    )
    .unwrap();
    let pipe = p.finish(&[out]).unwrap();
    let input = noise_image(Rect::new(vec![(0, 255)]), 7);
    check_all_configs(&pipe, vec![256], &[input], 1e-5);
}

/// Histogram + LUT consumption (dynamic indices on both sides).
#[test]
fn histogram_equalization_like() {
    let mut p = PipelineBuilder::new("histeq");
    let (r, c) = (p.param("R"), p.param("C"));
    let img = p.image("I", ScalarType::UChar, vec![PAff::param(r), PAff::param(c)]);
    let (x, y, b) = (p.var("x"), p.var("y"), p.var("b"));
    let row = Interval::new(PAff::cst(0), PAff::param(r) - 1);
    let col = Interval::new(PAff::cst(0), PAff::param(c) - 1);
    let bins = Interval::cst(0, 255);
    let acc = Accumulate {
        red_vars: vec![x, y],
        red_dom: vec![row.clone(), col.clone()],
        target: vec![Expr::at(img, [Expr::from(x), Expr::from(y)])],
        value: Expr::Const(1.0),
        op: Reduction::Sum,
    };
    let hist = p
        .accumulator("hist", &[(b, bins.clone())], ScalarType::Int, acc)
        .unwrap();
    // a tiny "lut" derived from the histogram (not a real CDF — enough to
    // exercise dynamic reads of a reduction's output)
    let lut = p.func("lut", &[(b, bins)], ScalarType::Float);
    p.define(
        lut,
        vec![Case::always(
            Expr::at(hist, [Expr::from(b)]) * 0.5 + Expr::from(b),
        )],
    )
    .unwrap();
    let out = p.func("out", &[(x, row), (y, col)], ScalarType::Float);
    p.define(
        out,
        vec![Case::always(Expr::at(
            lut,
            [Expr::at(img, [Expr::from(x), Expr::from(y)])],
        ))],
    )
    .unwrap();
    let pipe = p.finish(&[out]).unwrap();
    let input = noise_image(Rect::new(vec![(0, 59), (0, 77)]), 3);
    check_all_configs(&pipe, vec![60, 78], &[input], 1e-4);
}

/// Multiple live-outs from one fused group.
#[test]
fn multiple_live_outs() {
    let mut p = PipelineBuilder::new("multi");
    let img = p.image("I", ScalarType::Float, vec![PAff::cst(64), PAff::cst(64)]);
    let (x, y) = (p.var("x"), p.var("y"));
    let d = Interval::cst(1, 62);
    let blur = p.func("blur", &[(x, d.clone()), (y, d.clone())], ScalarType::Float);
    p.define(
        blur,
        vec![Case::always(stencil(
            img,
            &[x, y],
            1.0 / 9.0,
            &[[1, 1, 1], [1, 1, 1], [1, 1, 1]],
        ))],
    )
    .unwrap();
    let d2 = Interval::cst(2, 61);
    let edge = p.func("edge", &[(x, d2.clone()), (y, d2)], ScalarType::Float);
    p.define(
        edge,
        vec![Case::always(
            Expr::at(img, [Expr::from(x), Expr::from(y)])
                - Expr::at(blur, [Expr::from(x), Expr::from(y)]),
        )],
    )
    .unwrap();
    let pipe = p.finish(&[blur, edge]).unwrap();
    let input = noise_image(Rect::new(vec![(0, 63), (0, 63)]), 11);
    check_all_configs(&pipe, vec![], &[input], 1e-4);
}

/// Color image: 3-D stages with a small innermost channel dimension.
#[test]
fn color_pipeline_three_dims() {
    let mut p = PipelineBuilder::new("color");
    let (r, c) = (p.param("R"), p.param("C"));
    let img = p.image(
        "I",
        ScalarType::Float,
        vec![PAff::param(r), PAff::param(c), PAff::cst(3)],
    );
    let (x, y, ch) = (p.var("x"), p.var("y"), p.var("ch"));
    let row = Interval::new(PAff::cst(1), PAff::param(r) - 2);
    let col = Interval::new(PAff::cst(1), PAff::param(c) - 2);
    let chans = Interval::cst(0, 2);
    let blur = p.func(
        "blur",
        &[(x, row.clone()), (y, col.clone()), (ch, chans.clone())],
        ScalarType::Float,
    );
    // 3×3 spatial box per channel
    let mut sum = None;
    for dx in -1i64..=1 {
        for dy in -1i64..=1 {
            let t = Expr::at(img, [x + dx, y + dy, Expr::from(ch)]);
            sum = Some(match sum {
                None => t,
                Some(s) => s + t,
            });
        }
    }
    p.define(blur, vec![Case::always(sum.unwrap() * (1.0 / 9.0))])
        .unwrap();
    let sharp = p.func(
        "sharp",
        &[(x, row), (y, col), (ch, chans)],
        ScalarType::Float,
    );
    p.define(
        sharp,
        vec![Case::always(
            Expr::at(img, [Expr::from(x), Expr::from(y), Expr::from(ch)]) * 1.5
                - Expr::at(blur, [Expr::from(x), Expr::from(y), Expr::from(ch)]) * 0.5,
        )],
    )
    .unwrap();
    let pipe = p.finish(&[sharp]).unwrap();
    let input = noise_image(Rect::new(vec![(0, 47), (0, 53), (0, 2)]), 23);
    check_all_configs(&pipe, vec![48, 54], &[input], 1e-4);
}

/// Time-iterated stage (sequential scan) feeding a stencil.
#[test]
fn time_iterated_then_stencil() {
    let mut p = PipelineBuilder::new("jacobi");
    let img = p.image("I", ScalarType::Float, vec![PAff::cst(64)]);
    let (t, x) = (p.var("t"), p.var("x"));
    let it = p.func(
        "iter",
        &[(t, Interval::cst(0, 4)), (x, Interval::cst(0, 63))],
        ScalarType::Float,
    );
    p.define(
        it,
        vec![
            Case::new(Expr::from(t).le(0), Expr::at(img, [Expr::from(x)])),
            Case::new(
                Expr::from(t).ge(1) & Expr::from(x).ge(1) & Expr::from(x).le(62),
                (Expr::at(it, [t - 1, x - 1]) + Expr::at(it, [t - 1, x + 1])) * 0.5,
            ),
        ],
    )
    .unwrap();
    let out = p.func("out", &[(x, Interval::cst(1, 62))], ScalarType::Float);
    p.define(
        out,
        vec![Case::always(
            Expr::at(it, [Expr::i(4), x - 1]) + Expr::at(it, [Expr::i(4), x + 1]),
        )],
    )
    .unwrap();
    let pipe = p.finish(&[out]).unwrap();
    let input = noise_image(Rect::new(vec![(0, 63)]), 99);
    check_all_configs(&pipe, vec![], &[input], 1e-4);
}

/// Saturating UChar stores along the pipeline.
#[test]
fn uchar_saturation_pipeline() {
    let mut p = PipelineBuilder::new("sat");
    let img = p.image("I", ScalarType::UChar, vec![PAff::cst(64)]);
    let x = p.var("x");
    let d = Interval::cst(0, 63);
    let boost = p.func("boost", &[(x, d.clone())], ScalarType::UChar);
    p.define(boost, vec![Case::always(Expr::at(img, [x + 0]) * 2.0)])
        .unwrap();
    let out = p.func("out", &[(x, d)], ScalarType::Float);
    p.define(out, vec![Case::always(Expr::at(boost, [x + 0]) + 0.5)])
        .unwrap();
    let pipe = p.finish(&[out]).unwrap();
    let input = noise_image(Rect::new(vec![(0, 63)]), 5);
    check_all_configs(&pipe, vec![], &[input], 0.0);
}

/// The compiler rejects out-of-bounds specifications.
#[test]
fn bounds_violation_rejected() {
    let mut p = PipelineBuilder::new("bad");
    let img = p.image("I", ScalarType::Float, vec![PAff::cst(16)]);
    let x = p.var("x");
    let f = p.func("f", &[(x, Interval::cst(0, 15))], ScalarType::Float);
    p.define(f, vec![Case::always(Expr::at(img, [x + 1]))])
        .unwrap();
    let pipe = p.finish(&[f]).unwrap();
    let err = compile(&pipe, &CompileOptions::optimized(vec![])).unwrap_err();
    assert!(matches!(err, polymage_core::CompileError::Bounds(_)));
}

/// Wrong parameter count is a compile error.
#[test]
fn missing_params_rejected() {
    let mut p = PipelineBuilder::new("params");
    let n = p.param("N");
    let x = p.var("x");
    let f = p.func(
        "f",
        &[(x, Interval::new(PAff::cst(0), PAff::param(n)))],
        ScalarType::Float,
    );
    p.define(f, vec![Case::always(Expr::from(x))]).unwrap();
    let pipe = p.finish(&[f]).unwrap();
    let err = compile(&pipe, &CompileOptions::optimized(vec![])).unwrap_err();
    match err {
        polymage_core::CompileError::ParamMismatch {
            ref pipeline,
            expected,
            got,
            ref missing,
            ref extra,
        } => {
            assert_eq!(pipeline, "params");
            assert_eq!((expected, got), (1, 0));
            assert_eq!(missing, &[(0, "N".to_string())]);
            assert!(extra.is_empty());
            assert!(err.to_string().contains("`N` (#0)"));
        }
        other => panic!("expected ParamMismatch, got {other:?}"),
    }
}
