//! The parallel executor: tiled groups, reductions, sequential scans.

use crate::eval::{eval_kernel, BufView, ChunkCtx};
use crate::{
    BufDecl, BufId, Buffer, CaseExec, EvalMode, GroupKind, Program, ReductionExec, RegFile,
    SeqExec, StageExec, TiledGroup, VmError, CHUNK,
};
use polymage_poly::Rect;

/// Execution statistics of one program run (all tiled groups).
///
/// `points_computed` counts every point evaluated, including the redundant
/// recomputation at overlapped-tile borders — comparing it against the sum
/// of stage domain volumes measures the *actual* redundancy, which tests
/// check against the §3.4 analysis' prediction.
///
/// `group_times` attributes wall-clock time to groups (in execution order);
/// it is populated by [`crate::Engine`] runs and left empty by the legacy
/// static executor — as are the per-worker and evaluator-cache fields
/// below, which only engine runs collect.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Overlapped tiles executed.
    pub tiles: u64,
    /// Kernel chunk evaluations.
    pub chunks: u64,
    /// Points computed (lanes stored), including redundant recomputation.
    pub points_computed: u64,
    /// Per-group wall-clock durations, in execution order.
    pub group_times: Vec<(String, std::time::Duration)>,
    /// Chunks that reused a cached uniform preamble (optimized kernels).
    pub uniform_hits: u64,
    /// Chunks that (re)computed the uniform preamble.
    pub uniform_misses: u64,
    /// Load-class histogram of runtime row resolutions (optimized
    /// kernels; one tally per row per lane-varying load).
    pub loads: crate::LoadHistogram,
    /// Tiles executed per participating worker. Sized to the run's
    /// *effective* worker count — `min(requested threads, engine pool
    /// size)` — and indexed by participation slot: slot `i` is the
    /// `i`-th distinct pooled worker (in first-claim order) that executed
    /// work for this run, not a pool-wide worker id. At most `effective`
    /// distinct workers ever join one run, so trailing slots of lightly
    /// parallel runs stay zero. The sum equals `tiles` for engine runs.
    pub worker_tiles: Vec<u64>,
    /// Busy wall-clock per participating worker (time spent inside strip
    /// and reduction-chunk execution), indexed like [`RunStats::worker_tiles`].
    /// Subtracting from the run's group time gives idle time.
    pub worker_busy: Vec<std::time::Duration>,
    /// Lanes evaluated while dispatching AVX2 chunk loops.
    pub simd_lanes_avx2: u64,
    /// Lanes evaluated while dispatching SSE2 chunk loops.
    pub simd_lanes_sse2: u64,
    /// Lanes evaluated while dispatching NEON chunk loops.
    pub simd_lanes_neon: u64,
    /// Lanes evaluated on the portable scalar path.
    pub simd_lanes_scalar: u64,
    /// Full buffers returned to the pool before run completion (engine
    /// runs under a narrowed [`crate::StoragePlan`]; 0 on the static path
    /// and for run-scoped plans).
    pub early_releases: u64,
    /// Peak bytes of this run's full buffers resident at once (engine
    /// runs; 0 on the static path).
    pub peak_full_bytes: u64,
    /// Time between submission and the first worker picking the run up
    /// (engine runs; zero on the static path). Under load this is the
    /// scheduling delay the run's priority/deadline bought — or cost — it.
    pub sched_wait: std::time::Duration,
    /// Tiles (or reduction chunks) the run skipped because it was
    /// cancelled: claims never granted after the cancel signal plus the
    /// remainder of any strip a worker abandoned mid-flight. Zero for runs
    /// that completed. A positive value proves the run stopped early.
    pub cancelled_tiles: u64,
}

impl RunStats {
    /// The uniform-preamble cache hit rate over optimized-kernel chunks,
    /// or `None` when no optimized kernels ran.
    pub fn uniform_hit_rate(&self) -> Option<f64> {
        let total = self.uniform_hits + self.uniform_misses;
        (total > 0).then(|| self.uniform_hits as f64 / total as f64)
    }
}

#[derive(Default)]
struct StatCells {
    tiles: std::sync::atomic::AtomicU64,
    chunks: std::sync::atomic::AtomicU64,
    points: std::sync::atomic::AtomicU64,
}

use std::sync::atomic::Ordering::Relaxed;

/// Runs a compiled program on the given input images.
///
/// `nthreads` is the number of worker threads for tiled groups and
/// reductions (the paper's core count). The returned buffers are the
/// program's live-outs, in [`Program::outputs`] order.
///
/// This is a compatibility shim: it builds a one-shot [`crate::Engine`]
/// with `nthreads` pooled workers and runs the program through it. Code
/// that executes a program more than once should hold a long-lived
/// [`crate::Engine`] (or a `polymage_core::Session`) instead, so worker
/// threads, scratch arenas, and buffers are reused across runs.
///
/// # Errors
///
/// Returns [`VmError`] when the inputs do not match the program's images or
/// an internal invariant is violated.
pub fn run_program(
    prog: &Program,
    inputs: &[Buffer],
    nthreads: usize,
) -> Result<Vec<Buffer>, VmError> {
    let engine = crate::Engine::with_threads(nthreads.max(1));
    let prog = std::sync::Arc::new(prog.clone());
    engine.submit(crate::RunRequest::new(&prog, inputs))?.join()
}

/// Like [`run_program`], additionally returning execution statistics.
///
/// # Errors
///
/// Same conditions as [`run_program`].
pub fn run_program_stats(
    prog: &Program,
    inputs: &[Buffer],
    nthreads: usize,
) -> Result<(Vec<Buffer>, RunStats), VmError> {
    let engine = crate::Engine::with_threads(nthreads.max(1));
    let prog = std::sync::Arc::new(prog.clone());
    engine
        .submit(crate::RunRequest::new(&prog, inputs))?
        .join_stats()
}

/// Runs a program with the legacy static executor: per-group scoped
/// threads and a fixed `strip % nthreads` assignment.
///
/// Kept as the reference implementation — the pooled [`crate::Engine`] is
/// required to be bit-identical to this path (the equivalence suite in
/// `crates/apps` asserts it), and tests use it as the differential oracle.
///
/// # Errors
///
/// Same conditions as [`run_program`].
pub fn run_program_static(
    prog: &Program,
    inputs: &[Buffer],
    nthreads: usize,
) -> Result<Vec<Buffer>, VmError> {
    run_inner(prog, inputs, nthreads, None)
}

/// Like [`run_program_static`], additionally returning execution
/// statistics (with empty `group_times`; the static path does not time
/// groups).
///
/// # Errors
///
/// Same conditions as [`run_program`].
pub fn run_program_static_stats(
    prog: &Program,
    inputs: &[Buffer],
    nthreads: usize,
) -> Result<(Vec<Buffer>, RunStats), VmError> {
    let cells = StatCells::default();
    let out = run_inner(prog, inputs, nthreads, Some(&cells))?;
    Ok((
        out,
        RunStats {
            tiles: cells.tiles.load(Relaxed),
            chunks: cells.chunks.load(Relaxed),
            points_computed: cells.points.load(Relaxed),
            ..RunStats::default()
        },
    ))
}

/// Checks that `inputs` matches the program's declared images (count and
/// shape).
pub(crate) fn validate_inputs(prog: &Program, inputs: &[Buffer]) -> Result<(), VmError> {
    if inputs.len() != prog.image_bufs.len() {
        return Err(VmError::InputCountMismatch {
            expected: prog.image_bufs.len(),
            got: inputs.len(),
        });
    }
    for (i, (&b, input)) in prog.image_bufs.iter().zip(inputs).enumerate() {
        let decl = &prog.buffers[b.0];
        let want = decl_rect(decl);
        if input.rect != want {
            return Err(VmError::InputShapeMismatch {
                index: i,
                expected: want.to_string(),
                got: input.rect.to_string(),
            });
        }
    }
    Ok(())
}

fn run_inner(
    prog: &Program,
    inputs: &[Buffer],
    nthreads: usize,
    stats: Option<&StatCells>,
) -> Result<Vec<Buffer>, VmError> {
    let nthreads = nthreads.max(1);
    validate_inputs(prog, inputs)?;
    // Allocate full buffers; scratch entries stay empty (they live in
    // per-thread arenas).
    let mut fulls: Vec<Vec<f32>> = prog
        .buffers
        .iter()
        .map(|b| match b.kind {
            crate::BufKind::Full => vec![0.0f32; b.len()],
            crate::BufKind::Scratch => Vec::new(),
        })
        .collect();
    for (&b, input) in prog.image_bufs.iter().zip(inputs) {
        fulls[b.0].copy_from_slice(&input.data);
    }

    for group in &prog.groups {
        match &group.kind {
            GroupKind::Tiled(tg) => execute_tiled(prog, tg, &mut fulls, nthreads, stats)?,
            GroupKind::Reduction(red) => execute_reduction(prog, red, &mut fulls, nthreads)?,
            GroupKind::Sequential(seq) => execute_seq(prog, seq, &mut fulls)?,
        }
    }

    Ok(prog
        .outputs
        .iter()
        .map(|(_, b)| Buffer::from_vec(decl_rect(&prog.buffers[b.0]), fulls[b.0].clone()))
        .collect())
}

pub(crate) fn decl_rect(decl: &BufDecl) -> Rect {
    Rect::new(
        decl.origin
            .iter()
            .zip(&decl.sizes)
            .map(|(&o, &s)| (o, o + s - 1))
            .collect(),
    )
}

/// Where stores land: a flat array addressed as `offset + Σ coordᵈ·strideᵈ`
/// (strided cases fold their `(stride, phase)` into these).
struct StoreDest<'a> {
    data: &'a mut [f32],
    offset: i64,
    strides: Vec<i64>,
}

impl<'a> StoreDest<'a> {
    /// Builds a destination for buffer storage with the given origin,
    /// buffer strides, and per-dim case steps.
    fn new(
        data: &'a mut [f32],
        origin: &[i64],
        buf_strides: &[i64],
        steps: &[(i64, i64)],
    ) -> StoreDest<'a> {
        let mut offset = 0i64;
        let mut strides = Vec::with_capacity(buf_strides.len());
        for d in 0..buf_strides.len() {
            let (s, ph) = steps.get(d).copied().unwrap_or((1, 0));
            offset += (ph - origin[d]) * buf_strides[d];
            strides.push(s * buf_strides[d]);
        }
        StoreDest {
            data,
            offset,
            strides,
        }
    }

    fn flat(&self, coords: &[i64]) -> usize {
        let mut idx = self.offset;
        for (c, s) in coords.iter().zip(&self.strides) {
            idx += c * s;
        }
        idx as usize
    }
}

/// Converts a concrete rectangle into strided ("virtual") coordinates:
/// dimension `d` keeps only points `≡ phase (mod stride)`, renumbered
/// consecutively.
fn virtual_rect(rect: &Rect, steps: &[(i64, i64)]) -> Rect {
    Rect::new(
        rect.ranges()
            .iter()
            .enumerate()
            .map(|(d, &(lo, hi))| {
                let (s, ph) = steps.get(d).copied().unwrap_or((1, 0));
                if s == 1 {
                    (lo - ph, hi - ph) // ph is 0 for identity steps
                } else {
                    // ceil((lo − ph)/s) ..= floor((hi − ph)/s)
                    (-(-(lo - ph)).div_euclid(s), (hi - ph).div_euclid(s))
                }
            })
            .collect(),
    )
}

/// Iterates the coordinates of `rect` over every dimension except `axis`
/// (the chunked one), invoking `f` with the coordinate buffer whose `axis`
/// entry is reset to the range start.
fn for_each_row(rect: &Rect, axis: usize, f: &mut dyn FnMut(&mut [i64])) {
    if rect.is_empty() {
        return;
    }
    let n = rect.ndim();
    let mut coords: Vec<i64> = rect.ranges().iter().map(|&(lo, _)| lo).collect();
    if n == 1 {
        f(&mut coords);
        return;
    }
    // iteration order over the non-axis dims, outermost first
    let dims: Vec<usize> = (0..n).filter(|&d| d != axis).collect();
    loop {
        coords[axis] = rect.range(axis).0;
        f(&mut coords);
        // advance odometer over the non-axis dims
        let mut i = dims.len();
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            let d = dims[i];
            coords[d] += 1;
            if coords[d] <= rect.range(d).1 {
                break;
            }
            coords[d] = rect.range(d).0;
        }
    }
}

/// Chooses the chunk axis for a rectangle: the last dimension unless it is
/// short and another dimension is substantially longer (small innermost
/// dimensions — color channels, grid depth — would otherwise cap chunks at
/// a few lanes).
fn chunk_axis(rect: &Rect) -> usize {
    let n = rect.ndim();
    if n <= 1 {
        return 0;
    }
    // Innermost dimension with a worthwhile extent (smallest load/store
    // stride wins ties), else the longest dimension overall.
    for d in (0..n).rev() {
        if rect.extent(d) >= 32 {
            return d;
        }
    }
    (0..n).max_by_key(|&d| rect.extent(d)).unwrap_or(n - 1)
}

/// Evaluates all cases of a stage over `region`, storing into a flat
/// buffer addressed by `origin`/`buf_strides`.
#[allow(clippy::too_many_arguments)]
fn eval_cases_into(
    cases: &[CaseExec],
    region: &Rect,
    sat: Option<(f32, f32)>,
    round: bool,
    mode: EvalMode,
    views: &[Option<BufView<'_>>],
    regs: &mut RegFile,
    data: &mut [f32],
    origin: &[i64],
    buf_strides: &[i64],
    local: &mut LocalStats,
) {
    let step = match mode {
        EvalMode::Vector => CHUNK,
        EvalMode::Scalar => 1,
    };
    for case in cases {
        let rect = case.rect.intersect(region);
        if rect.is_empty() {
            continue;
        }
        // Strided cases iterate compressed coordinates; their kernels were
        // lowered in that space.
        let vrect = virtual_rect(&rect, &case.steps);
        if vrect.is_empty() {
            continue;
        }
        // Chunk along the most profitable dimension (kernels resolve the
        // chunk axis at run time).
        let axis = chunk_axis(&vrect);
        let dest = StoreDest::new(&mut *data, origin, buf_strides, &case.steps);
        let axis_contig = dest.strides[axis] == 1;
        let (xlo, xhi) = vrect.range(axis);
        for_each_row(&vrect, axis, &mut |coords| {
            regs.begin_row();
            let mut x = xlo;
            while x <= xhi {
                let len = ((xhi - x + 1) as usize).min(step);
                coords[axis] = x;
                let ctx = ChunkCtx {
                    coords,
                    len,
                    inner: axis,
                    bufs: views,
                };
                eval_kernel(&case.kernel, &ctx, regs);
                local.chunks += 1;
                local.points += len as u64;
                let base = dest.flat(coords);
                let lvl = regs.simd_level();
                let out = &regs.reg(case.kernel.out())[..len];
                match case.mask {
                    None if axis_contig => {
                        let dst = &mut dest.data[base..base + len];
                        store_lanes(lvl, dst, out, sat, round);
                    }
                    None => {
                        let st = dest.strides[axis] as usize;
                        for (i, &v) in out.iter().enumerate().take(len) {
                            dest.data[base + i * st] = transform(v, sat, round);
                        }
                    }
                    Some(m) => {
                        let st = dest.strides[axis];
                        // Borrow only the live lanes — lanes at or beyond
                        // `len` may hold stale values from earlier chunks.
                        let mask = &regs.reg(m)[..len];
                        for (i, (&mv, &v)) in mask.iter().zip(out).enumerate() {
                            if mv != 0.0 {
                                dest.data[(base as i64 + i as i64 * st) as usize] =
                                    transform(v, sat, round);
                            }
                        }
                    }
                }
                x += len as i64;
            }
        });
    }
}

#[inline]
fn transform(v: f32, sat: Option<(f32, f32)>, round: bool) -> f32 {
    let v = match sat {
        Some((lo, hi)) => v.clamp(lo, hi),
        None => v,
    };
    if round {
        v.round()
    } else {
        v
    }
}

fn store_lanes(
    lvl: crate::SimdLevel,
    dst: &mut [f32],
    src: &[f32],
    sat: Option<(f32, f32)>,
    round: bool,
) {
    if let (None, false) = (sat, round) {
        dst.copy_from_slice(src);
        return;
    }
    if crate::simd::store(lvl, dst, src, sat, round) {
        return;
    }
    match (sat, round) {
        (None, false) => unreachable!("handled above"),
        (Some((lo, hi)), true) => {
            for (d, s) in dst.iter_mut().zip(src) {
                *d = s.clamp(lo, hi).round();
            }
        }
        (Some((lo, hi)), false) => {
            for (d, s) in dst.iter_mut().zip(src) {
                *d = s.clamp(lo, hi);
            }
        }
        (None, true) => {
            for (d, s) in dst.iter_mut().zip(src) {
                *d = s.round();
            }
        }
    }
}

/// A slab of a full buffer owned by one strip: rows `[row_lo, row_hi]`.
pub(crate) struct Slab<'a> {
    pub(crate) stage: usize,
    pub(crate) row_lo: i64,
    pub(crate) data: &'a mut [f32],
}

/// The full buffers a tiled group writes, as `(stage index, buffer)` pairs.
///
/// # Errors
///
/// Rejects groups where two stages store to the same full buffer (slab
/// partitioning assumes one writer per buffer).
pub(crate) fn written_stages(tg: &TiledGroup) -> Result<Vec<(usize, BufId)>, VmError> {
    let written: Vec<(usize, BufId)> = tg
        .stages
        .iter()
        .enumerate()
        .filter_map(|(k, s)| s.full.map(|b| (k, b)))
        .collect();
    let mut seen = std::collections::HashSet::new();
    for &(_, b) in &written {
        if !seen.insert(b) {
            return Err(VmError::Internal(format!(
                "buffer {b:?} written by two stages in one group"
            )));
        }
    }
    Ok(written)
}

/// Per-strip layout of a tiled group: the row range each strip owns per
/// stage (from the precomputed tile stores) and the tile indices grouped by
/// strip.
pub(crate) type StripRows = Vec<Vec<Option<(i64, i64)>>>;

pub(crate) fn strip_layout(tg: &TiledGroup) -> (StripRows, Vec<Vec<usize>>) {
    // Row ranges each strip owns per written stage (from precomputed stores).
    let mut strip_rows: StripRows = vec![vec![None; tg.nstrips]; tg.stages.len()];
    for t in &tg.tiles {
        for (k, st) in t.stores.iter().enumerate() {
            if let Some(r) = st {
                if r.is_empty() {
                    continue;
                }
                let (lo, hi) = r.range(0);
                let e = &mut strip_rows[k][t.strip];
                *e = Some(match *e {
                    None => (lo, hi),
                    Some((a, b)) => (a.min(lo), b.max(hi)),
                });
            }
        }
    }

    // Tiles grouped by strip.
    let mut tiles_by_strip: Vec<Vec<usize>> = vec![Vec::new(); tg.nstrips];
    for (i, t) in tg.tiles.iter().enumerate() {
        tiles_by_strip[t.strip].push(i);
    }
    (strip_rows, tiles_by_strip)
}

/// Rows-per-unit size of a buffer's trailing dimensions (elements per row
/// of dimension 0).
pub(crate) fn row_size(decl: &BufDecl) -> i64 {
    if decl.sizes.len() > 1 {
        decl.sizes[1..].iter().product::<i64>()
    } else {
        1
    }
}

fn execute_tiled(
    prog: &Program,
    tg: &TiledGroup,
    fulls: &mut [Vec<f32>],
    nthreads: usize,
    stats: Option<&StatCells>,
) -> Result<(), VmError> {
    // Which full buffers this group writes, by stage.
    let written = written_stages(tg)?;
    let (strip_rows, tiles_by_strip) = strip_layout(tg);

    // Split written buffers out of `fulls`; everything else is read-only.
    let writes: std::collections::HashMap<usize, usize> =
        written.iter().map(|&(k, b)| (b.0, k)).collect();
    let mut read_refs: Vec<Option<&[f32]>> = vec![None; fulls.len()];
    let mut writers: Vec<(usize, BufId, &mut Vec<f32>)> = Vec::new();
    for (i, v) in fulls.iter_mut().enumerate() {
        if let Some(&k) = writes.get(&i) {
            writers.push((k, BufId(i), v));
        } else {
            read_refs[i] = Some(&v[..]);
        }
    }

    // Partition each written buffer into per-strip slabs.
    let mut slabs_per_strip: Vec<Vec<Slab<'_>>> = Vec::with_capacity(tg.nstrips);
    for _ in 0..tg.nstrips {
        slabs_per_strip.push(Vec::new());
    }
    for (k, b, buf) in writers {
        let decl = &prog.buffers[b.0];
        let rsz = row_size(decl);
        let mut rest: &mut [f32] = buf.as_mut_slice();
        let mut consumed = 0i64; // rows consumed so far (relative to origin)
        for s in 0..tg.nstrips {
            let Some((lo, hi)) = strip_rows[k][s] else {
                continue;
            };
            let start_row = lo - decl.origin[0];
            if start_row < consumed {
                return Err(VmError::Internal(format!(
                    "strip rows overlap for stage {k} (`{}`)",
                    tg.stages[k].name
                )));
            }
            let skip = ((start_row - consumed) * rsz) as usize;
            let take = ((hi - lo + 1) * rsz) as usize;
            let (_, r) = rest.split_at_mut(skip);
            let (slab, r2) = r.split_at_mut(take);
            rest = r2;
            consumed = start_row + (hi - lo + 1);
            slabs_per_strip[s].push(Slab {
                stage: k,
                row_lo: lo,
                data: slab,
            });
        }
    }

    // Distribute strips round-robin over workers.
    let mut tasks: Vec<Vec<(usize, Vec<Slab<'_>>)>> = Vec::with_capacity(nthreads);
    for _ in 0..nthreads {
        tasks.push(Vec::new());
    }
    for (s, slabs) in slabs_per_strip.into_iter().enumerate() {
        tasks[s % nthreads].push((s, slabs));
    }

    let read_refs = &read_refs; // shared across workers
    let tiles_by_strip = &tiles_by_strip;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for task in tasks {
            if task.is_empty() {
                continue;
            }
            handles.push(scope.spawn(move || {
                worker_strips(prog, tg, read_refs, tiles_by_strip, task, stats);
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
    });
    Ok(())
}

/// Process-wide pool for the static path's per-thread scratch arenas, so
/// repeated one-shot runs stop re-allocating what the engine already pools.
pub(crate) fn static_arena_pool() -> &'static crate::SharedPool {
    static POOL: std::sync::OnceLock<crate::SharedPool> = std::sync::OnceLock::new();
    POOL.get_or_init(crate::SharedPool::new)
}

/// Processes a set of strips (with their slabs) on one worker thread.
fn worker_strips(
    prog: &Program,
    tg: &TiledGroup,
    read_refs: &[Option<&[f32]>],
    tiles_by_strip: &[Vec<usize>],
    mut task: Vec<(usize, Vec<Slab<'_>>)>,
    stats: Option<&StatCells>,
) {
    // Per-thread packed scratch arena (one slot range per non-direct
    // stage), pooled across runs. `acquire_zeroed` matches a fresh
    // zero-filled allocation bit-for-bit.
    let mut arena = static_arena_pool().acquire_zeroed(tg.slots.arena_len);
    let mut regs = RegFile::new();
    regs.set_simd(prog.simd);

    let mut local = LocalStats::default();
    for (strip, slabs) in task.iter_mut() {
        for &ti in &tiles_by_strip[*strip] {
            let tile = &tg.tiles[ti];
            local.tiles += 1;
            run_tile(
                prog, tg, tile, read_refs, slabs, &mut arena, &mut regs, &mut local,
            );
        }
    }
    static_arena_pool().release(arena);
    if let Some(cells) = stats {
        cells.tiles.fetch_add(local.tiles, Relaxed);
        cells.chunks.fetch_add(local.chunks, Relaxed);
        cells.points.fetch_add(local.points, Relaxed);
    }
}

/// Per-worker counters, flushed to the coordinator once per group.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct LocalStats {
    pub(crate) tiles: u64,
    pub(crate) chunks: u64,
    pub(crate) points: u64,
    /// Tiles of a claimed strip abandoned because the run was cancelled.
    pub(crate) cancelled_tiles: u64,
    /// Drained evaluator counters (uniform cache, load classes).
    pub(crate) eval: crate::EvalCounters,
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run_tile(
    prog: &Program,
    tg: &TiledGroup,
    tile: &crate::TileWork,
    read_refs: &[Option<&[f32]>],
    slabs: &mut [Slab<'_>],
    arena: &mut [f32],
    regs: &mut RegFile,
    local: &mut LocalStats,
) {
    debug_assert_eq!(arena.len(), tg.slots.arena_len);
    for (k, stage) in tg.stages.iter().enumerate() {
        let region = &tile.regions[k];
        if region.is_empty() {
            continue;
        }

        if stage.direct {
            let views = build_views(prog, tg, tile, read_refs, arena, &[], arena.len(), stage);
            let b = stage.full.expect("direct stage stores to a full buffer");
            let decl = &prog.buffers[b.0];
            let store = tile.stores[k].clone().unwrap_or_else(|| region.clone());
            if store.is_empty() {
                continue;
            }
            let si = slabs
                .iter()
                .position(|s| s.stage == k)
                .expect("slab for direct stage");
            let mut origin = decl.origin.clone();
            origin[0] = slabs[si].row_lo;
            eval_cases_into(
                &stage.cases,
                &store,
                stage.sat,
                stage.round,
                prog.mode,
                &views,
                regs,
                slabs[si].data,
                &origin,
                &decl.strides(),
                local,
            );
        } else {
            let decl = &prog.buffers[stage.scratch.0];
            // Carve the stage's own slot range out of the packed arena;
            // producer slots resolve from the remaining `lo`/`hi` halves
            // (slot sharing guarantees live producers never overlap it).
            let own = tg.slots.stage[k].expect("non-direct stage has a slot");
            let (lo, rest) = arena.split_at_mut(own.offset);
            let (target, hi) = rest.split_at_mut(own.len);
            let views = build_views(
                prog,
                tg,
                tile,
                read_refs,
                lo,
                hi,
                own.offset + own.len,
                stage,
            );
            // Reset the whole slot: undefined values must read as 0, and a
            // previous occupant (or this stage's previous tile) may have
            // left residue anywhere in it.
            target.fill(0.0);
            let origin: Vec<i64> = region.ranges().iter().map(|&(lo, _)| lo).collect();
            eval_cases_into(
                &stage.cases,
                region,
                stage.sat,
                stage.round,
                prog.mode,
                &views,
                regs,
                target,
                &origin,
                &decl.strides(),
                local,
            );
            // Copy-out to the full buffer if required.
            if let Some(b) = stage.full {
                if let Some(store) = &tile.stores[k] {
                    if !store.is_empty() {
                        let fdecl = &prog.buffers[b.0];
                        let si = slabs
                            .iter()
                            .position(|s| s.stage == k)
                            .expect("slab for stored stage");
                        copy_region(
                            target,
                            decl,
                            region,
                            slabs[si].data,
                            fdecl,
                            slabs[si].row_lo,
                            store,
                        );
                    }
                }
            }
        }
    }
}

/// Builds the buffer views a stage's kernels need.
///
/// The packed arena arrives as the two halves around the current stage's
/// own slot (`lo` = `[0, hi_start − own.len)` … actually `[0, lo.len())`,
/// `hi` = `[hi_start, arena_len)`); a producer's slot always falls entirely
/// inside one half because live ranges that intersect are assigned
/// disjoint slot bytes.
#[allow(clippy::too_many_arguments)]
fn build_views<'a>(
    prog: &Program,
    tg: &TiledGroup,
    tile: &crate::TileWork,
    read_refs: &[Option<&'a [f32]>],
    lo: &'a [f32],
    hi: &'a [f32],
    hi_start: usize,
    stage: &StageExec,
) -> Vec<Option<BufView<'a>>> {
    let mut views: Vec<Option<BufView<'a>>> = vec![None; prog.buffers.len()];
    for &b in &stage.reads {
        let decl = &prog.buffers[b.0];
        match decl.kind {
            crate::BufKind::Full => {
                let data = read_refs[b.0].unwrap_or_else(|| {
                    panic!(
                        "stage `{}` reads full buffer `{}` written by its own group",
                        stage.name, decl.name
                    )
                });
                views[b.0] = Some(BufView {
                    data,
                    origin: decl.origin.clone(),
                    strides: decl.strides(),
                    sizes: decl.sizes.clone(),
                });
            }
            crate::BufKind::Scratch => {
                let j = tg
                    .stages
                    .iter()
                    .position(|s| !s.direct && s.scratch == b)
                    .expect("scratch owner in group");
                let r = tg.slots.stage[j].expect("producer has a slot");
                let data: &'a [f32] = if r.offset + r.len <= lo.len() {
                    &lo[r.offset..r.offset + r.len]
                } else if r.offset >= hi_start {
                    &hi[r.offset - hi_start..r.offset - hi_start + r.len]
                } else {
                    panic!(
                        "stage `{}` reads scratch `{}` whose slot aliases its own (liveness violation)",
                        stage.name, decl.name
                    )
                };
                let region = &tile.regions[j];
                views[b.0] = Some(BufView {
                    data,
                    origin: region.ranges().iter().map(|&(lo, _)| lo).collect(),
                    strides: decl.strides(),
                    sizes: decl.sizes.clone(),
                });
            }
        }
    }
    views
}

/// Copies `store` rows from a scratch region to a full-buffer slab.
#[allow(clippy::too_many_arguments)]
fn copy_region(
    scratch: &[f32],
    sdecl: &BufDecl,
    region: &Rect,
    slab: &mut [f32],
    fdecl: &BufDecl,
    slab_row_lo: i64,
    store: &Rect,
) {
    let sstr = sdecl.strides();
    let fstr = fdecl.strides();
    let sorigin: Vec<i64> = region.ranges().iter().map(|&(lo, _)| lo).collect();
    let mut forigin = fdecl.origin.clone();
    forigin[0] = slab_row_lo;
    let n = store.ndim();
    let row_len = store.extent(n - 1) as usize;
    for_each_row(store, store.ndim() - 1, &mut |coords| {
        let mut sbase = 0i64;
        let mut fbase = 0i64;
        for d in 0..n {
            let c = if d == n - 1 {
                store.range(d).0
            } else {
                coords[d]
            };
            sbase += (c - sorigin[d]) * sstr[d];
            fbase += (c - forigin[d]) * fstr[d];
        }
        slab[fbase as usize..fbase as usize + row_len]
            .copy_from_slice(&scratch[sbase as usize..sbase as usize + row_len]);
    });
}

pub(crate) fn execute_reduction(
    prog: &Program,
    red: &ReductionExec,
    fulls: &mut [Vec<f32>],
    nthreads: usize,
) -> Result<(), VmError> {
    let decl = &prog.buffers[red.out.0];
    let identity = red.op.identity() as f32;

    // Views: everything the kernel reads (never its own output).
    let mut read_refs: Vec<Option<&[f32]>> = vec![None; fulls.len()];
    let mut out_vec: Vec<f32> = Vec::new();
    for (i, v) in fulls.iter_mut().enumerate() {
        if i == red.out.0 {
            out_vec = std::mem::take(v);
        } else {
            read_refs[i] = Some(&v[..]);
        }
    }
    out_vec.fill(identity);

    let views = reduction_views(prog, red, &read_refs);

    // Split the reduction domain's outer dimension across threads.
    let (rlo, rhi) = red.red_dom.range(0);
    let total = (rhi - rlo + 1).max(0);
    let nth = nthreads.min(total.max(1) as usize).max(1);
    if nth == 1 {
        sweep_reduction(prog, red, &views, &red.red_dom, &mut out_vec);
    } else {
        let chunk = total.div_euclid(nth as i64) + 1;
        let mut partials: Vec<Vec<f32>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..nth {
                let lo = rlo + t as i64 * chunk;
                let hi = (lo + chunk - 1).min(rhi);
                if lo > hi {
                    continue;
                }
                let views = &views;
                let sz = out_vec.len();
                handles.push(scope.spawn(move || {
                    let mut part = vec![identity; sz];
                    let mut dom = red.red_dom.clone();
                    *dom.range_mut(0) = (lo, hi);
                    sweep_reduction(prog, red, views, &dom, &mut part);
                    part
                }));
            }
            for h in handles {
                partials.push(h.join().expect("reduction worker panicked"));
            }
        });
        for part in partials {
            for (o, p) in out_vec.iter_mut().zip(part) {
                *o = red.op.combine(*o as f64, p as f64) as f32;
            }
        }
    }

    fix_untouched_identities(red.op, identity, &mut out_vec);

    fulls[red.out.0] = out_vec;
    let _ = decl;
    Ok(())
}

/// Cells never touched by a reduction keep the identity; for Min/Max that
/// would be ±∞ — replace with 0 to match the zero-for-undefined convention.
pub(crate) fn fix_untouched_identities(op: polymage_ir::Reduction, identity: f32, out: &mut [f32]) {
    if !matches!(op, polymage_ir::Reduction::Sum) {
        for v in out.iter_mut() {
            if !v.is_finite() && *v == identity {
                *v = 0.0;
            }
        }
    }
}

pub(crate) fn reduction_views<'a>(
    prog: &Program,
    red: &ReductionExec,
    read_refs: &[Option<&'a [f32]>],
) -> Vec<Option<BufView<'a>>> {
    let mut views: Vec<Option<BufView<'a>>> = vec![None; prog.buffers.len()];
    for &b in &red.reads {
        let decl = &prog.buffers[b.0];
        let data = read_refs[b.0].unwrap_or_else(|| {
            panic!(
                "reduction `{}` reads unavailable buffer `{}`",
                red.name, decl.name
            )
        });
        views[b.0] = Some(BufView {
            data,
            origin: decl.origin.clone(),
            strides: decl.strides(),
            sizes: decl.sizes.clone(),
        });
    }
    views
}

/// Sweeps (part of) the reduction domain, combining into `out`.
pub(crate) fn sweep_reduction(
    prog: &Program,
    red: &ReductionExec,
    views: &[Option<BufView<'_>>],
    dom: &Rect,
    out: &mut [f32],
) {
    if dom.is_empty() {
        return;
    }
    let decl = &prog.buffers[red.out.0];
    let strides = decl.strides();
    let n = dom.ndim();
    let ndim_out = decl.sizes.len();
    let step = match prog.mode {
        EvalMode::Vector => CHUNK,
        EvalMode::Scalar => 1,
    };
    let mut regs = RegFile::new();
    regs.set_simd(prog.simd);
    let (xlo, xhi) = dom.range(n - 1);
    for_each_row(dom, dom.ndim() - 1, &mut |coords| {
        regs.begin_row();
        let mut x = xlo;
        while x <= xhi {
            let len = ((xhi - x + 1) as usize).min(step);
            coords[n - 1] = x;
            let ctx = ChunkCtx {
                coords,
                len,
                inner: n - 1,
                bufs: views,
            };
            eval_kernel(&red.kernel, &ctx, &mut regs);
            // Borrow only the live lanes (stale lanes beyond `len` are
            // meaningless); the index registers below are read per-lane.
            let val = &regs.reg(red.kernel.outs[0])[..len];
            // Gather target indices and scatter-combine.
            for (i, &v) in val.iter().enumerate() {
                let mut flat = 0i64;
                let mut ok = true;
                for (d, &stride) in strides.iter().enumerate().take(ndim_out) {
                    let idx = regs.reg(red.kernel.outs[1 + d])[i].round() as i64;
                    let idx = idx.clamp(decl.origin[d], decl.origin[d] + decl.sizes[d] - 1);
                    if decl.sizes[d] == 0 {
                        ok = false;
                        break;
                    }
                    flat += (idx - decl.origin[d]) * stride;
                }
                if ok {
                    let cell = &mut out[flat as usize];
                    *cell = red.op.combine(*cell as f64, v as f64) as f32;
                }
            }
            x += len as i64;
        }
    });
}

pub(crate) fn execute_seq(
    prog: &Program,
    seq: &SeqExec,
    fulls: &mut [Vec<f32>],
) -> Result<(), VmError> {
    let decl = &prog.buffers[seq.out.0];
    let strides = decl.strides();
    let n = seq.dom.ndim();
    let step = match (seq.chunked, prog.mode) {
        (true, EvalMode::Vector) => CHUNK,
        _ => 1,
    };

    let mut read_refs: Vec<Option<&[f32]>> = vec![None; fulls.len()];
    let mut out_vec: Vec<f32> = Vec::new();
    for (i, v) in fulls.iter_mut().enumerate() {
        if i == seq.out.0 {
            out_vec = std::mem::take(v);
        } else {
            read_refs[i] = Some(&v[..]);
        }
    }

    let mut regs = RegFile::new();
    regs.set_simd(prog.simd);
    let mut tmp = [0.0f32; CHUNK];
    let mut tmp_mask = [0.0f32; CHUNK];
    for case in &seq.cases {
        let rect = case.rect.intersect(&seq.dom);
        if rect.is_empty() {
            continue;
        }
        let vrect = virtual_rect(&rect, &case.steps);
        if vrect.is_empty() {
            continue;
        }
        // strided store addressing: offset + Σ coordᵈ·vstrideᵈ
        let mut offset = 0i64;
        let mut vstrides = Vec::with_capacity(n);
        for (d, &stride) in strides.iter().enumerate().take(n) {
            let (s, ph) = case.steps.get(d).copied().unwrap_or((1, 0));
            offset += (ph - decl.origin[d]) * stride;
            vstrides.push(s * stride);
        }
        let (xlo, xhi) = vrect.range(n - 1);
        for_each_row(&vrect, vrect.ndim() - 1, &mut |coords| {
            let mut x = xlo;
            while x <= xhi {
                let len = ((xhi - x + 1) as usize).min(step);
                coords[n - 1] = x;
                {
                    // The scan's own output buffer mutates between chunks, so
                    // the uniform-row cache must be invalidated per chunk —
                    // within one chunk reads precede this chunk's writes,
                    // exactly matching the unoptimized evaluation order.
                    regs.begin_row();
                    // Build views including the (partially written) output.
                    let mut views = reduction_views_for_seq(prog, seq, &read_refs);
                    views[seq.out.0] = Some(BufView {
                        data: &out_vec[..],
                        origin: decl.origin.clone(),
                        strides: strides.clone(),
                        sizes: decl.sizes.clone(),
                    });
                    let ctx = ChunkCtx {
                        coords,
                        len,
                        inner: n - 1,
                        bufs: &views,
                    };
                    eval_kernel(&case.kernel, &ctx, &mut regs);
                    tmp[..len].copy_from_slice(&regs.reg(case.kernel.out())[..len]);
                    if let Some(m) = case.mask {
                        tmp_mask[..len].copy_from_slice(&regs.reg(m)[..len]);
                    }
                }
                let mut base = offset;
                for d in 0..n {
                    base += coords[d] * vstrides[d];
                }
                for i in 0..len {
                    if case.mask.is_none() || tmp_mask[i] != 0.0 {
                        out_vec[(base + i as i64 * vstrides[n - 1]) as usize] =
                            transform(tmp[i], seq.sat, seq.round);
                    }
                }
                x += len as i64;
            }
        });
    }

    fulls[seq.out.0] = out_vec;
    Ok(())
}

fn reduction_views_for_seq<'a>(
    prog: &Program,
    seq: &SeqExec,
    read_refs: &[Option<&'a [f32]>],
) -> Vec<Option<BufView<'a>>> {
    let mut views: Vec<Option<BufView<'a>>> = vec![None; prog.buffers.len()];
    for &b in &seq.reads {
        if b == seq.out {
            continue; // bound separately to the live output
        }
        let decl = &prog.buffers[b.0];
        let data = read_refs[b.0].unwrap_or_else(|| {
            panic!(
                "stage `{}` reads unavailable buffer `{}`",
                seq.name, decl.name
            )
        });
        views[b.0] = Some(BufView {
            data,
            origin: decl.origin.clone(),
            strides: decl.strides(),
            sizes: decl.sizes.clone(),
        });
    }
    views
}
