//! Pooled-engine equivalence: for every benchmark, the persistent
//! [`Engine`] (dynamic strip scheduling, recycled buffers, reused worker
//! threads) must produce **bit-identical** outputs to the legacy static
//! executor (`run_program_static`, fresh threads and static `s % nthreads`
//! strip assignment) at every thread count. The engine is reused across
//! all benchmarks and thread counts, so buffer-pool recycling between
//! heterogeneous programs is exercised too.

use polymage_apps::{all_benchmarks, Scale};
use polymage_core::{compile, CompileOptions};
use polymage_vm::{run_program_static, Engine, RunRequest};
use std::sync::Arc;

fn bits(bufs: &[polymage_vm::Buffer]) -> Vec<Vec<u32>> {
    bufs.iter()
        .map(|b| b.data.iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn engine_matches_static_executor_bit_exact_all_benchmarks() {
    let engine = Engine::with_threads(4);
    for b in all_benchmarks(Scale::Tiny) {
        let inputs = b.make_inputs(42);
        for opts in [
            CompileOptions::optimized(b.params()),
            CompileOptions::base(b.params()),
        ] {
            let compiled =
                compile(b.pipeline(), &opts).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            let prog = Arc::clone(&compiled.program);
            for nthreads in [1usize, 2, 4] {
                let legacy = run_program_static(&prog, &inputs, nthreads)
                    .unwrap_or_else(|e| panic!("{}: static run: {e}", b.name()));
                let pooled = engine
                    .submit(RunRequest::new(&prog, &inputs).threads(nthreads))
                    .and_then(|h| h.join())
                    .unwrap_or_else(|e| panic!("{}: engine run: {e}", b.name()));
                assert_eq!(
                    bits(&legacy),
                    bits(&pooled),
                    "{}: engine output differs from static executor \
                     (threads {nthreads}, fuse {})",
                    b.name(),
                    opts.fuse
                );
            }
        }
    }
}
