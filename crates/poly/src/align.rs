//! Alignment and scaling of function schedules (paper §3.3).
//!
//! A group of heterogeneous stages can only be overlap-tiled when, after
//! per-function schedule scaling and dimension alignment, every intra-group
//! dependence component is bounded by constants. This module solves for
//! those per-function, per-dimension scaling factors, taking the group's
//! sink stage as the reference frame (scale 1 on each of its dimensions).
//!
//! For an access `p((q·x + o)/m)` from consumer dimension with scale `σc`,
//! the producer dimension must be scheduled with scale `σp = σc·m/q`; the
//! upsampled stage in Fig. 6 (`f↑(x) = h(x/2)`, i.e. `q=1, m=2`) thereby
//! gets the stretched schedule `(x) → 2x` shown in the paper. Conflicting
//! requirements (e.g. `g(x/2) + g(x/4)`, or the transpose
//! `g(x,y) + g(y,x)`) make the group unalignable, which the grouping
//! heuristic treats as "do not merge".

use crate::{extract_accesses, Access, AccessDim, Ratio};
use polymage_ir::{FuncId, Pipeline, Source, VarId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// How one dimension of a stage relates to the group's schedule space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimMap {
    /// Aligned to group dimension `gdim` with the given scale: the scheduled
    /// coordinate of a point `x` along this dimension is `scale · x`.
    Grouped {
        /// Index of the group schedule dimension.
        gdim: usize,
        /// Schedule scaling factor (integral after normalization).
        scale: Ratio,
    },
    /// Not aligned to any group dimension; the whole extent is computed
    /// inside each tile (e.g. a color-channel or grid-depth dimension).
    Free,
}

/// Result of alignment and scaling for a candidate group.
#[derive(Debug, Clone)]
pub struct Alignment {
    /// Number of group schedule dimensions (the sink's dimensionality).
    pub ndims: usize,
    /// Per stage, one [`DimMap`] per stage dimension.
    pub maps: HashMap<FuncId, Vec<DimMap>>,
    /// The reference (sink) stage.
    pub sink: FuncId,
}

impl Alignment {
    /// The map of one stage.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not part of the aligned group.
    pub fn map(&self, f: FuncId) -> &[DimMap] {
        &self.maps[&f]
    }

    /// The scale of stage `f` on group dimension `gdim`, if some dimension
    /// of `f` aligns there.
    pub fn scale_on(&self, f: FuncId, gdim: usize) -> Option<Ratio> {
        self.maps[&f].iter().find_map(|m| match m {
            DimMap::Grouped { gdim: g, scale } if *g == gdim => Some(*scale),
            _ => None,
        })
    }
}

/// Why a candidate group cannot be aligned/scaled (and hence not merged).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlignError {
    /// Two accesses require different scales for the same dimension
    /// (`g(x/2) + g(x/4)`).
    ScaleConflict {
        /// Stage whose dimension is over-constrained.
        func: String,
        /// The dimension index.
        dim: usize,
    },
    /// Two accesses align one dimension to different group dimensions
    /// (`g(x,y) + g(y,x)`).
    PlacementConflict {
        /// Stage whose dimension is over-constrained.
        func: String,
        /// The dimension index.
        dim: usize,
    },
    /// An index expression mixes several variables (`g(x + y)`), which this
    /// per-dimension framework cannot align.
    MultiVariableIndex {
        /// Consumer stage containing the access.
        func: String,
    },
    /// An index has a negative variable coefficient (reflection), which
    /// would need a schedule reversal we do not model.
    NegativeCoefficient {
        /// Consumer stage containing the access.
        func: String,
    },
    /// An index offset depends on a parameter, so the dependence distance is
    /// not a compile-time constant.
    ParametricOffset {
        /// Consumer stage containing the access.
        func: String,
    },
    /// A constant index selects a fixed coordinate of a dimension that other
    /// consumers aligned to the schedule, making the dependence distance
    /// position-dependent.
    ConstantIntoGrouped {
        /// Producer stage.
        func: String,
        /// The producer dimension.
        dim: usize,
    },
}

impl fmt::Display for AlignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignError::ScaleConflict { func, dim } => {
                write!(
                    f,
                    "conflicting schedule scales for `{func}` dimension {dim}"
                )
            }
            AlignError::PlacementConflict { func, dim } => {
                write!(f, "conflicting alignment for `{func}` dimension {dim}")
            }
            AlignError::MultiVariableIndex { func } => {
                write!(f, "multi-variable index expression in `{func}`")
            }
            AlignError::NegativeCoefficient { func } => {
                write!(f, "negative index coefficient in `{func}`")
            }
            AlignError::ParametricOffset { func } => {
                write!(f, "parameter-dependent index offset in `{func}`")
            }
            AlignError::ConstantIntoGrouped { func, dim } => write!(
                f,
                "constant index into scheduled dimension {dim} of `{func}`"
            ),
        }
    }
}

impl Error for AlignError {}

/// Computes alignment and scaling for the candidate group `group` with sink
/// stage `sink` (which must be in `group`).
///
/// Stages are processed consumers-first so that each producer inherits its
/// constraints from already-aligned consumers; dimensions never constrained
/// by any consumer stay [`DimMap::Free`]. On success every intra-group
/// dependence is expressible with constant (bounded) components in the
/// scaled schedule space.
///
/// # Errors
///
/// See [`AlignError`]; any error means "this group must not be fused".
///
/// # Panics
///
/// Panics if `sink` is not in `group`.
pub fn solve_alignment(
    pipe: &Pipeline,
    group: &[FuncId],
    sink: FuncId,
) -> Result<Alignment, AlignError> {
    assert!(group.contains(&sink), "sink must belong to the group");
    let ndims = pipe.func(sink).dims();
    let mut maps: HashMap<FuncId, Vec<DimMap>> = HashMap::new();
    for &f in group {
        maps.insert(f, vec![DimMap::Free; pipe.func(f).dims()]);
    }
    // The sink is the reference: identity alignment.
    maps.insert(
        sink,
        (0..ndims)
            .map(|d| DimMap::Grouped {
                gdim: d,
                scale: Ratio::ONE,
            })
            .collect(),
    );

    // Process consumers before producers: reverse topological order of the
    // group subgraph, derived by repeatedly taking stages all of whose
    // in-group consumers are already processed.
    let order = reverse_topo(pipe, group);

    for &c in &order {
        let cdef = pipe.func(c);
        let cvars = &cdef.var_dom.vars;
        let cmap = maps[&c].clone();
        for acc in extract_accesses(cdef) {
            let p = match acc.src {
                Source::Func(p) if group.contains(&p) => p,
                _ => continue,
            };
            apply_access_constraints(pipe, &acc, c, cvars, &cmap, p, &mut maps)?;
        }
    }

    // Detect constant indices into dimensions that ended up grouped: the
    // dependence distance would grow with position.
    for &c in group {
        let cdef = pipe.func(c);
        for acc in extract_accesses(cdef) {
            let p = match acc.src {
                Source::Func(p) if group.contains(&p) => p,
                _ => continue,
            };
            for (j, dim) in acc.dims.iter().enumerate() {
                if let AccessDim::Affine(a) = dim {
                    if a.is_const() {
                        if let DimMap::Grouped { .. } = maps[&p][j] {
                            return Err(AlignError::ConstantIntoGrouped {
                                func: pipe.func(p).name.clone(),
                                dim: j,
                            });
                        }
                    }
                }
            }
        }
    }

    normalize_scales(&mut maps, ndims);
    Ok(Alignment { ndims, maps, sink })
}

/// Applies the constraints of one access from consumer `c` to producer `p`.
fn apply_access_constraints(
    pipe: &Pipeline,
    acc: &Access,
    c: FuncId,
    cvars: &[VarId],
    cmap: &[DimMap],
    p: FuncId,
    maps: &mut HashMap<FuncId, Vec<DimMap>>,
) -> Result<(), AlignError> {
    let cname = || pipe.func(c).name.clone();
    for (j, dim) in acc.dims.iter().enumerate() {
        let a = match dim {
            AccessDim::Affine(a) => a,
            AccessDim::Dynamic => continue,
        };
        if a.is_const() {
            continue; // no alignment constraint; legality checked later
        }
        let (v, q) = match a.single_var() {
            Some(vq) => vq,
            None => return Err(AlignError::MultiVariableIndex { func: cname() }),
        };
        if q < 0 {
            return Err(AlignError::NegativeCoefficient { func: cname() });
        }
        if a.cst.as_const().is_none() {
            return Err(AlignError::ParametricOffset { func: cname() });
        }
        // Which consumer dimension does v belong to?
        let dc = match cvars.iter().position(|&u| u == v) {
            Some(d) => d,
            None => continue, // reduction variable or foreign var: no constraint
        };
        let (gdim, sc) = match cmap[dc] {
            DimMap::Grouped { gdim, scale } => (gdim, scale),
            DimMap::Free => continue,
        };
        let required = sc * Ratio::new(a.den, q);
        let pmap = maps.get_mut(&p).expect("producer in group");
        match pmap[j] {
            DimMap::Free => {
                pmap[j] = DimMap::Grouped {
                    gdim,
                    scale: required,
                }
            }
            DimMap::Grouped {
                gdim: g2,
                scale: s2,
            } => {
                if g2 != gdim {
                    return Err(AlignError::PlacementConflict {
                        func: pipe.func(p).name.clone(),
                        dim: j,
                    });
                }
                if s2 != required {
                    return Err(AlignError::ScaleConflict {
                        func: pipe.func(p).name.clone(),
                        dim: j,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Orders `group` so that every stage appears before the stages it reads
/// (consumers first).
fn reverse_topo(pipe: &Pipeline, group: &[FuncId]) -> Vec<FuncId> {
    // consumer -> producers edges within the group
    let mut order: Vec<FuncId> = Vec::with_capacity(group.len());
    let mut placed: Vec<bool> = vec![false; pipe.funcs().len()];
    // consumers_of[p] = in-group stages that read p
    let mut remaining: Vec<FuncId> = group.to_vec();
    // Iteratively emit stages whose in-group consumers are all placed.
    while !remaining.is_empty() {
        let mut progressed = false;
        let mut next = Vec::new();
        for &f in &remaining {
            let mut ready = true;
            for &c in group {
                if c == f || placed[c.index()] {
                    continue;
                }
                let reads_f = extract_accesses(pipe.func(c))
                    .iter()
                    .any(|a| a.src == Source::Func(f));
                if reads_f {
                    ready = false;
                    break;
                }
            }
            if ready {
                order.push(f);
                placed[f.index()] = true;
                progressed = true;
            } else {
                next.push(f);
            }
        }
        remaining = next;
        if !progressed {
            // Cycle inside the group (self-referencing stages): emit the
            // rest in declaration order; alignment constraints still apply.
            order.extend(remaining.iter().copied());
            break;
        }
    }
    order
}

/// Scales each group dimension's factors to integers (LCM of denominators).
fn normalize_scales(maps: &mut HashMap<FuncId, Vec<DimMap>>, ndims: usize) {
    for g in 0..ndims {
        let mut l = 1i64;
        for dims in maps.values() {
            for m in dims {
                if let DimMap::Grouped { gdim, scale } = m {
                    if *gdim == g {
                        l = crate::ratio::lcm(l, scale.den());
                    }
                }
            }
        }
        if l == 1 {
            continue;
        }
        for dims in maps.values_mut() {
            for m in dims.iter_mut() {
                if let DimMap::Grouped { gdim, scale } = m {
                    if *gdim == g {
                        *scale = *scale * Ratio::int(l);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymage_ir::{Case, Expr, Interval, PipelineBuilder, ScalarType};

    /// Builds the 1-D sampling chain of Fig. 6:
    /// f(x)=in(x); g(x)=f(2x-1)+f(2x+1); h(x)=g(2x-1)+g(2x+1);
    /// fup(x)=h(x/2); fout(x)=fup(x/2).
    fn fig6() -> (polymage_ir::Pipeline, Vec<FuncId>, FuncId) {
        let mut p = PipelineBuilder::new("fig6");
        let n = p.param("N");
        let img = p.image("in", ScalarType::Float, vec![polymage_ir::PAff::param(n)]);
        let x = p.var("x");
        let dom = |k: i64| {
            Interval::new(
                polymage_ir::PAff::cst(2),
                polymage_ir::PAff::param(n) / k - 2,
            )
        };
        let f = p.func("f", &[(x, dom(1))], ScalarType::Float);
        p.define(f, vec![Case::always(Expr::at(img, [Expr::from(x)]))])
            .unwrap();
        let g = p.func("g", &[(x, dom(2))], ScalarType::Float);
        p.define(
            g,
            vec![Case::always(
                Expr::at(f, [2i64 * Expr::from(x) - 1]) + Expr::at(f, [2i64 * Expr::from(x) + 1]),
            )],
        )
        .unwrap();
        let h = p.func("h", &[(x, dom(4))], ScalarType::Float);
        p.define(
            h,
            vec![Case::always(
                Expr::at(g, [2i64 * Expr::from(x) - 1]) + Expr::at(g, [2i64 * Expr::from(x) + 1]),
            )],
        )
        .unwrap();
        let fup = p.func("fup", &[(x, dom(2))], ScalarType::Float);
        p.define(fup, vec![Case::always(Expr::at(h, [Expr::from(x) / 2]))])
            .unwrap();
        let fout = p.func("fout", &[(x, dom(1))], ScalarType::Float);
        p.define(fout, vec![Case::always(Expr::at(fup, [Expr::from(x) / 2]))])
            .unwrap();
        let pipe = p.finish(&[fout]).unwrap();
        (pipe, vec![f, g, h, fup, fout], vec![fout][0])
    }

    #[test]
    fn fig6_scales_match_paper() {
        let (pipe, group, sink) = fig6();
        let al = solve_alignment(&pipe, &group, sink).unwrap();
        // Paper's scaled schedules: f→x, g→2x, h→4x, f↑→2x, fout→x.
        let expect = [1i64, 2, 4, 2, 1];
        for (i, f) in group.iter().enumerate() {
            match al.map(*f)[0] {
                DimMap::Grouped { gdim, scale } => {
                    assert_eq!(gdim, 0);
                    assert_eq!(scale, Ratio::int(expect[i]), "func index {i}");
                }
                DimMap::Free => panic!("func {i} should be grouped"),
            }
        }
    }

    #[test]
    fn transpose_is_a_placement_conflict() {
        let mut p = PipelineBuilder::new("t");
        let (x, y) = (p.var("x"), p.var("y"));
        let d = Interval::cst(0, 63);
        let g = p.func("g", &[(x, d.clone()), (y, d.clone())], ScalarType::Float);
        p.define(g, vec![Case::always(Expr::from(x) + Expr::from(y))])
            .unwrap();
        let f = p.func("f", &[(x, d.clone()), (y, d)], ScalarType::Float);
        p.define(
            f,
            vec![Case::always(
                Expr::at(g, [Expr::from(x), Expr::from(y)])
                    + Expr::at(g, [Expr::from(y), Expr::from(x)]),
            )],
        )
        .unwrap();
        let pipe = p.finish(&[f]).unwrap();
        let err = solve_alignment(&pipe, &[g, f], f).unwrap_err();
        assert!(matches!(err, AlignError::PlacementConflict { .. }));
    }

    #[test]
    fn mixed_rates_are_a_scale_conflict() {
        let mut p = PipelineBuilder::new("t");
        let x = p.var("x");
        let d = Interval::cst(0, 255);
        let g = p.func("g", &[(x, d.clone())], ScalarType::Float);
        p.define(g, vec![Case::always(Expr::from(x))]).unwrap();
        let f = p.func("f", &[(x, d)], ScalarType::Float);
        p.define(
            f,
            vec![Case::always(
                Expr::at(g, [Expr::from(x) / 2]) + Expr::at(g, [Expr::from(x) / 4]),
            )],
        )
        .unwrap();
        let pipe = p.finish(&[f]).unwrap();
        let err = solve_alignment(&pipe, &[g, f], f).unwrap_err();
        assert!(matches!(err, AlignError::ScaleConflict { .. }));
    }

    #[test]
    fn channel_dim_stays_free() {
        // gray(x,y) = I-like 3-channel producer rgb(c,x,y) read at constants
        let mut p = PipelineBuilder::new("t");
        let (c, x, y) = (p.var("c"), p.var("x"), p.var("y"));
        let d = Interval::cst(0, 63);
        let rgb = p.func(
            "rgb",
            &[(c, Interval::cst(0, 2)), (x, d.clone()), (y, d.clone())],
            ScalarType::Float,
        );
        p.define(rgb, vec![Case::always(Expr::from(x) * 1.0)])
            .unwrap();
        let gray = p.func("gray", &[(x, d.clone()), (y, d)], ScalarType::Float);
        p.define(
            gray,
            vec![Case::always(
                Expr::at(rgb, [Expr::i(0), Expr::from(x), Expr::from(y)]) * 0.114
                    + Expr::at(rgb, [Expr::i(1), Expr::from(x), Expr::from(y)]) * 0.587
                    + Expr::at(rgb, [Expr::i(2), Expr::from(x), Expr::from(y)]) * 0.299,
            )],
        )
        .unwrap();
        let pipe = p.finish(&[gray]).unwrap();
        let al = solve_alignment(&pipe, &[rgb, gray], gray).unwrap();
        assert_eq!(al.map(rgb)[0], DimMap::Free);
        assert!(matches!(al.map(rgb)[1], DimMap::Grouped { gdim: 0, .. }));
        assert!(matches!(al.map(rgb)[2], DimMap::Grouped { gdim: 1, .. }));
    }

    #[test]
    fn parametric_offset_rejected() {
        let mut p = PipelineBuilder::new("t");
        let n = p.param("N");
        let x = p.var("x");
        let d = Interval::new(polymage_ir::PAff::cst(0), polymage_ir::PAff::param(n));
        let g = p.func("g", &[(x, d.clone())], ScalarType::Float);
        p.define(g, vec![Case::always(Expr::from(x))]).unwrap();
        let f = p.func("f", &[(x, d)], ScalarType::Float);
        p.define(f, vec![Case::always(Expr::at(g, [x + Expr::Param(n)]))])
            .unwrap();
        let pipe = p.finish(&[f]).unwrap();
        let err = solve_alignment(&pipe, &[g, f], f).unwrap_err();
        assert_eq!(err, AlignError::ParametricOffset { func: "f".into() });
    }

    #[test]
    fn multi_variable_index_rejected() {
        let mut p = PipelineBuilder::new("t");
        let (x, y) = (p.var("x"), p.var("y"));
        let d = Interval::cst(0, 63);
        let g = p.func("g", &[(x, d.clone())], ScalarType::Float);
        p.define(g, vec![Case::always(Expr::from(x))]).unwrap();
        let f = p.func("f", &[(x, d.clone()), (y, d)], ScalarType::Float);
        p.define(f, vec![Case::always(Expr::at(g, [x + Expr::from(y)]))])
            .unwrap();
        let pipe = p.finish(&[f]).unwrap();
        let err = solve_alignment(&pipe, &[g, f], f).unwrap_err();
        assert_eq!(err, AlignError::MultiVariableIndex { func: "f".into() });
    }

    #[test]
    fn stencil_chain_identity_scales() {
        let mut p = PipelineBuilder::new("t");
        let x = p.var("x");
        let d = Interval::cst(1, 62);
        let a = p.func("a", &[(x, d.clone())], ScalarType::Float);
        p.define(a, vec![Case::always(Expr::from(x))]).unwrap();
        let b = p.func("b", &[(x, d)], ScalarType::Float);
        p.define(
            b,
            vec![Case::always(Expr::at(a, [x - 1]) + Expr::at(a, [x + 1]))],
        )
        .unwrap();
        let pipe = p.finish(&[b]).unwrap();
        let al = solve_alignment(&pipe, &[a, b], b).unwrap();
        assert_eq!(al.scale_on(a, 0), Some(Ratio::ONE));
        assert_eq!(al.scale_on(b, 0), Some(Ratio::ONE));
    }
}
