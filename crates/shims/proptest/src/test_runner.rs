//! The case-generation loop driving each `proptest!` test.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{ProptestConfig, TestCaseError, TestCaseResult};

/// Deterministic RNG handed to strategies, seeded from the test's name so
/// every run of a given test generates the same case sequence.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Builds the RNG for the named test, deterministically.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, mixed with a fixed tag.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h ^ 0x5eed_cafe_f00d_d00d),
        }
    }

    /// The underlying generator (for `gen_range` et al.).
    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Runs `case` until `config.cases` successes, skipping `prop_assume!`
/// rejections, and panics on the first failure (no shrinking).
pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut rng = TestRng::deterministic(name);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let reject_cap = 1024 + 16 * config.cases as u64;
    let mut attempt: u64 = 0;
    while passed < config.cases {
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                if rejected > reject_cap {
                    panic!(
                        "proptest `{name}`: too many rejected cases \
                         ({rejected}, last: {why})"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {attempt}: {msg}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut n = 0u32;
        run(&ProptestConfig::with_cases(17), "count", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    fn rejections_do_not_count() {
        let mut total = 0u32;
        let mut kept = 0u32;
        run(&ProptestConfig::with_cases(5), "reject", |_| {
            total += 1;
            if total.is_multiple_of(2) {
                Err(TestCaseError::reject("odd ones out"))
            } else {
                kept += 1;
                Ok(())
            }
        });
        assert_eq!(kept, 5);
        assert!(total > 5);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failure_panics() {
        run(&ProptestConfig::with_cases(5), "fail", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
