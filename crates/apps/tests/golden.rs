//! Golden-value regression tests: a stable checksum per benchmark at Tiny
//! scale pins the exact numeric behavior of the whole stack (DSL →
//! compiler → engine). Any semantic drift — in lowering, scheduling,
//! execution order within a stage, or the apps themselves — shows up here
//! before it can silently skew benchmark comparisons.
//!
//! If a change *intentionally* alters semantics (it shouldn't: schedules
//! must be semantics-preserving), regenerate with
//! `cargo test -p polymage-apps --test golden -- --nocapture` and update.

use polymage_apps::{all_benchmarks, Scale};
use polymage_core::{CompileOptions, Session};

/// An order-independent but value-sensitive checksum (sum of value·f(index)
/// in f64 to make the test insensitive to tiny per-element noise while
/// catching any real change).
fn checksum(data: &[f32]) -> f64 {
    data.iter()
        .enumerate()
        .map(|(i, &v)| {
            let w = 1.0 + (i % 97) as f64 / 97.0;
            v as f64 * w + v.abs() as f64 * 0.5
        })
        .sum()
}

#[test]
fn golden_checksums() {
    let expected: &[(&str, f64)] = &[
        ("Unsharp Mask", 2184798.156290269),
        ("Bilateral Grid", 4473.312028816677),
        ("Harris Corner", -0.00046295813777195),
        ("Camera Pipeline", 2802199.8041237155),
        ("Pyramid Blending", 72105.28545573528),
        ("Multiscale Interpolate", 113389.14272499557),
        ("Local Laplacian", 31886.870462656054),
    ];
    let mut failures = Vec::new();
    let session = Session::with_threads(1);
    for b in all_benchmarks(Scale::Tiny) {
        let inputs = b.make_inputs(42);
        let out = session
            .run(
                b.pipeline(),
                &CompileOptions::optimized(b.params()),
                &inputs,
            )
            .unwrap();
        let sum: f64 = out.iter().map(|o| checksum(&o.data)).sum();
        println!("(\"{}\", {:?}),", b.name(), sum);
        match expected.iter().find(|(n, _)| *n == b.name()) {
            Some((_, want)) => {
                let tol = want.abs() * 1e-5 + 1e-7;
                if (sum - want).abs() > tol {
                    failures.push(format!(
                        "{}: checksum {} (expected {})",
                        b.name(),
                        sum,
                        want
                    ));
                }
            }
            None => failures.push(format!("{}: no golden value", b.name())),
        }
    }
    assert!(failures.is_empty(), "{failures:#?}");
}
