//! Strategies for collections (`proptest::collection::vec`).

use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Vec`s with lengths drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.inner().gen_range(self.len.clone());
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// is drawn uniformly from `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(!len.is_empty(), "collection::vec: empty length range");
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_range() {
        let mut rng = TestRng::deterministic("vec_lengths");
        let s = vec(-3i64..3, 1..9);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..9).contains(&v.len()));
            assert!(v.iter().all(|x| (-3..3).contains(x)));
        }
    }
}
