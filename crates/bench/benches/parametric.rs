//! Criterion benches for the parametric split: per benchmark, the cost of
//! a full `compile` (plan + instantiate) versus re-binding a pre-built
//! [`ParametricPlan`] at a fresh size with `instantiate`. The serving-path
//! claim is that instantiation is an order of magnitude cheaper than
//! compilation (geomean across the seven apps), since everything
//! size-independent — grouping, schedule structure, kernel lowering and
//! SSA optimization — is already paid for by the plan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polymage_apps::{all_benchmarks, Scale};
use polymage_core::{compile, instantiate, plan, CompileOptions};

/// Options at the app's own size with estimates pinned there too, so the
/// plan built once is the one a serving loop would rebind per request.
fn opts_for(params: Vec<i64>) -> CompileOptions {
    let est = params.clone();
    CompileOptions::optimized(params).with_estimates(est)
}

fn bench_full_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("parametric/compile");
    g.sample_size(10);
    for b in all_benchmarks(Scale::Small) {
        let opts = opts_for(b.params());
        g.bench_function(
            BenchmarkId::from_parameter(b.name().replace(' ', "_")),
            |bench| bench.iter(|| compile(b.pipeline(), &opts).unwrap()),
        );
    }
    g.finish();
}

fn bench_instantiate(c: &mut Criterion) {
    let mut g = c.benchmark_group("parametric/instantiate");
    g.sample_size(10);
    for b in all_benchmarks(Scale::Small) {
        let p = plan(b.pipeline(), &opts_for(b.params())).unwrap();
        // Bind at a size different from the estimates — the serving case.
        let bound: Vec<i64> = b.params().iter().map(|v| v + 64).collect();
        g.bench_function(
            BenchmarkId::from_parameter(b.name().replace(' ', "_")),
            |bench| bench.iter(|| instantiate(&p, &bound).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_full_compile, bench_instantiate);
criterion_main!(benches);
