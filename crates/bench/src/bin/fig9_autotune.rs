//! Reproduces **Figure 9**: the autotuner's scatter of single-thread vs
//! multi-thread execution time per configuration, for the three benchmarks
//! the paper shows (Pyramid Blending, Camera Pipeline, Multiscale
//! Interpolation) — plus the comparison against a random-search tuner over
//! an unrestricted space (the OpenTuner stand-in of Table 2's middle
//! column).
//!
//! The paper sweeps 7 tile sizes per dimension × 3 thresholds = 147
//! configurations in under 30 minutes; pass `--runs`/`--scale` to trade
//! fidelity for time, and `--filter` to tune one benchmark.

use polymage_bench::HarnessArgs;
use polymage_core::autotune::{autotune, random_search, THRESHOLDS, TILE_CANDIDATES};
use polymage_core::CompileOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::parse();
    let threads = args.threads.iter().copied().max().unwrap_or(1);
    let paper_apps = [
        "Pyramid Blending",
        "Camera Pipeline",
        "Multiscale Interpolate",
    ];
    for b in args.benchmarks() {
        if args.filter.is_none() && !paper_apps.contains(&b.name()) {
            continue;
        }
        println!("\n=== Fig. 9: {} (threads {}) ===", b.name(), threads);
        let inputs = b.make_inputs(42);
        let base = CompileOptions::optimized(b.params());
        let outcome = autotune(
            b.pipeline(),
            &base,
            &inputs,
            threads,
            args.runs,
            &TILE_CANDIDATES,
            &THRESHOLDS,
        )
        .expect("autotune");
        println!(
            "{:>10} {:>10} {:>8} {:>10} {:>12} {:>12}",
            "tile0", "tile1", "thresh", "model-ov", "t1(ms)", "tN(ms)"
        );
        for r in &outcome.records {
            println!(
                "{:>10} {:>10} {:>8.1} {:>9.1}% {:>12.2} {:>12.2}",
                r.tile[0],
                r.tile[1],
                r.threshold,
                r.predicted_overlap * 100.0,
                r.t1.as_secs_f64() * 1e3,
                r.tn.as_secs_f64() * 1e3
            );
        }
        let best = outcome.best_record();
        println!(
            "best: tiles {:?} thresh {} → t1 {:.2} ms, tN {:.2} ms ({} configs)",
            best.tile,
            best.threshold,
            best.t1.as_secs_f64() * 1e3,
            best.tn.as_secs_f64() * 1e3,
            outcome.records.len()
        );

        // Random-space baseline at the same budget.
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let budget = outcome.records.len();
        let rnd = random_search(
            b.pipeline(),
            &base,
            &inputs,
            threads,
            args.runs,
            budget,
            &mut rng,
        )
        .expect("random search");
        let rbest = rnd.best_record();
        println!(
            "random-search best (same {budget}-config budget): tiles {:?} → tN {:.2} ms \
             ({:.2}x slower than model-driven best)",
            rbest.tile,
            rbest.tn.as_secs_f64() * 1e3,
            rbest.tn.as_secs_f64() / best.tn.as_secs_f64()
        );
    }
}
