//! Canonical image sizes for the seven benchmarks — the single source of
//! truth behind every `Scale` match arm, test size, and bench preset.
//!
//! Each benchmark's `new(scale)` routes through this table, and the
//! `polymage-bench` crate re-exports it (with preset helpers) so binaries
//! and criterion benches never hard-code their own `(rows, cols)` copies.
//! Pyramid-based apps require dimensions divisible by `2^levels`; the
//! table entries respect each app's constraint at every scale.

use crate::Scale;

/// The `(rows, cols)` of one benchmark at the three workload scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppSizes {
    /// Benchmark name as used in Table 2 (matches `Benchmark::name`).
    pub name: &'static str,
    /// The paper's size (Table 2).
    pub paper: (i64, i64),
    /// Quarter-linear-size for fast test/CI runs.
    pub small: (i64, i64),
    /// Tiny size for exhaustive correctness sweeps.
    pub tiny: (i64, i64),
}

impl AppSizes {
    /// The `(rows, cols)` at a scale.
    pub const fn at(self, scale: Scale) -> (i64, i64) {
        match scale {
            Scale::Paper => self.paper,
            Scale::Small => self.small,
            Scale::Tiny => self.tiny,
        }
    }
}

/// Unsharp Mask (2048×2048×3 in Table 2).
pub const UNSHARP: AppSizes = AppSizes {
    name: "Unsharp Mask",
    paper: (2048, 2048),
    small: (512, 512),
    tiny: (48, 56),
};

/// Bilateral Grid (2560×1536 in Table 2).
pub const BILATERAL: AppSizes = AppSizes {
    name: "Bilateral Grid",
    paper: (2560, 1536),
    small: (640, 384),
    tiny: (64, 48),
};

/// Harris Corner (6400×6400 in Table 2).
pub const HARRIS: AppSizes = AppSizes {
    name: "Harris Corner",
    paper: (6400, 6400),
    small: (1600, 1600),
    tiny: (60, 68),
};

/// Camera Pipeline (2528×1920 in Table 2).
pub const CAMERA: AppSizes = AppSizes {
    name: "Camera Pipeline",
    paper: (2528, 1920),
    small: (632, 480),
    tiny: (64, 48),
};

/// Pyramid Blending (2048×2048×3 in Table 2; dims divisible by
/// `2^levels`).
pub const PYRAMID: AppSizes = AppSizes {
    name: "Pyramid Blending",
    paper: (2048, 2048),
    small: (512, 512),
    tiny: (256, 256),
};

/// Multiscale Interpolate (2560×1536×3 in Table 2; dims divisible by
/// `2^levels`).
pub const INTERPOLATE: AppSizes = AppSizes {
    name: "Multiscale Interpolate",
    paper: (2560, 1536),
    small: (640, 384),
    tiny: (352, 320),
};

/// Local Laplacian (2560×1536×3 in Table 2; dims divisible by
/// `2^levels`).
pub const LAPLACIAN: AppSizes = AppSizes {
    name: "Local Laplacian",
    paper: (2560, 1536),
    small: (640, 384),
    tiny: (176, 160),
};

/// All seven benchmarks' size entries, in Table 2 order.
pub const ALL: [AppSizes; 7] = [
    UNSHARP,
    BILATERAL,
    HARRIS,
    CAMERA,
    PYRAMID,
    INTERPOLATE,
    LAPLACIAN,
];

/// Looks up a benchmark's sizes by its Table 2 name
/// (`Benchmark::name`).
pub fn for_name(name: &str) -> Option<AppSizes> {
    ALL.into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_benchmarks;

    #[test]
    fn table_matches_benchmark_instances() {
        // Every benchmark constructed at a scale carries the table's
        // sizes: the first two parameters are (rows, cols) by convention.
        for scale in [Scale::Tiny, Scale::Small] {
            for b in all_benchmarks(scale) {
                let sizes = for_name(b.name()).expect("every app is in the table");
                let params = b.params();
                assert_eq!(
                    (params[0], params[1]),
                    sizes.at(scale),
                    "{} at {:?}",
                    b.name(),
                    scale
                );
            }
        }
    }
}
