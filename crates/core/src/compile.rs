//! The compiler driver: size-independent planning (phase 1) followed by
//! binding to the options' parameter values (phase 2).
//!
//! [`compile`] is now a thin composition of [`crate::plan`] and
//! [`crate::instantiate`] — the paper's full flow (Fig. 4) split at the
//! size boundary: graph construction, point-wise inlining, grouping
//! (Algorithm 1) and kernel pre-optimization happen in the plan; bounds
//! checking, overlapped-tile construction, storage optimization and
//! kernel finalization happen per binding. When the estimates default to
//! the bound values (the common case) the result is identical to the old
//! monolithic driver.

use crate::report::CompileReport;
use crate::{CompileError, CompileOptions};
use polymage_diag::{Diag, Value};
use polymage_ir::Pipeline;
use polymage_vm::Program;

/// A compiled pipeline: the executable program and the structural report.
///
/// The program is behind an [`Arc`](std::sync::Arc) so cached `Compiled` values (see
/// `Session`) can be shared with a running [`polymage_vm::Engine`] without
/// copying; `&compiled.program` still coerces to `&Program` everywhere.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Executable program for a [`polymage_vm::Engine`] (or the
    /// [`polymage_vm::run_program`] shim).
    pub program: std::sync::Arc<Program>,
    /// Structural report (grouping, storage, overlaps).
    pub report: CompileReport,
}

/// Compiles a pipeline specification with the given options.
///
/// This runs the paper's full flow (Fig. 4): graph construction, point-wise
/// inlining, grouping (Algorithm 1), overlapped tile construction, storage
/// optimization, static bounds checking, and lowering to the execution
/// engine. Internally it is [`crate::plan`] (size-independent, at
/// [`CompileOptions::estimates`]) followed by [`crate::instantiate`] at
/// `opts.params` — build the plan yourself to amortize phase 1 across many
/// sizes.
///
/// # Errors
///
/// Returns a [`CompileError`] for invalid specifications (cycles,
/// out-of-bounds accesses, unsupported self-references) or mismatched
/// parameter counts.
pub fn compile(pipe: &Pipeline, opts: &CompileOptions) -> Result<Compiled, CompileError> {
    compile_with(pipe, opts, &Diag::noop())
}

/// [`compile`] with diagnostics: a `compile` span wrapping the `plan` span
/// (`phase.frontend`, `phase.grouping`, `phase.lower`) and the
/// `instantiate` span (`phase.schedule`, `phase.storage`,
/// `phase.kernel-opt`); every candidate merge becomes a `grouping.merge`
/// event and each bound group a `group.scheduled` event.
pub fn compile_with(
    pipe: &Pipeline,
    opts: &CompileOptions,
    diag: &Diag,
) -> Result<Compiled, CompileError> {
    if opts.params.len() != pipe.params().len() {
        return Err(CompileError::param_mismatch(pipe, opts.params.len()));
    }
    let compile_span = diag.begin();
    let plan = crate::plan::plan_with(pipe, opts, diag)?;
    let compiled = crate::instantiate::instantiate_with(&plan, &opts.params, diag)?;
    diag.end(
        compile_span,
        "compile",
        if diag.enabled() {
            vec![
                ("pipeline", Value::from(plan.pipeline().name())),
                ("groups", Value::UInt(compiled.report.groups.len() as u64)),
                (
                    "predicted_overlap",
                    Value::Float(compiled.report.predicted_overlap()),
                ),
            ]
        } else {
            Vec::new()
        },
    );
    Ok(compiled)
}
