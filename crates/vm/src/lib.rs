//! # polymage-vm
//!
//! The execution substrate of PolyMage-rs.
//!
//! The original PolyMage emits C++ (OpenMP + `ivdep`) and leans on icc for
//! vectorization. This crate is the executable stand-in: the compiler
//! (`polymage-core`) lowers each stage to a small register [`Kernel`] whose
//! operations work on *chunks* — contiguous runs of the innermost loop —
//! so the per-operation dispatch cost is amortized and the inner loops are
//! tight, slice-to-slice operations the Rust compiler auto-vectorizes. The
//! chunked mode is the analogue of the paper's `+vec` configurations;
//! [`EvalMode::Scalar`] evaluates one point at a time, the `−vec` analogue.
//!
//! Everything the paper's generated code does at run time exists here:
//!
//! - full arrays for live-outs, per-thread [`BufKind::Scratch`] pads with
//!   tile-relative indexing for intermediates (§3.6);
//! - a parallel executor over precomputed overlapped tiles (§3.4/3.7);
//! - sequential and privatized-parallel reduction execution for
//!   `Accumulator` stages;
//! - a sequential scan path for self-referential (time-iterated) stages.
//!
//! The VM computes in `f32` (with integer semantics applied on index
//! computation and saturating stores per declared [`polymage_ir::ScalarType`]).

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod buffer;
mod engine;
mod error;
mod eval;
mod exec;
mod kernel;
mod loadclass;
pub mod opt;
mod pool;
mod program;
// The SIMD backend is the single sanctioned home for `unsafe` in this
// crate: `#[target_feature]` chunk loops reached only through
// runtime-detected dispatch levels (see `simd/mod.rs` for the safety
// argument). Everything else stays under `deny(unsafe_code)`.
#[allow(unsafe_code)]
mod simd;

pub use buffer::{BufDecl, BufId, BufKind, Buffer};
pub use engine::{CancelToken, Engine, OverloadPolicy, Priority, RunHandle, RunRequest};
pub use error::{CancelReason, VmError};
pub use eval::{eval_kernel, BufView, ChunkCtx, EvalCounters, RegFile, CHUNK};
pub use exec::{
    run_program, run_program_static, run_program_static_stats, run_program_stats, RunStats,
};
pub use kernel::{BinF, CmpF, IdxPlan, Kernel, Op, OptMeta, RegId, UnF};
pub use loadclass::{LoadClass, LoadHistogram};
pub use opt::{
    collect_reads, fixed_dims, optimize_kernel, optimize_program, sync_mask, KernelOptReport,
};
pub use pool::{BufferPool, PoolStats, SharedPool};
pub use program::{
    CaseExec, EvalMode, GroupExec, GroupKind, Program, ReductionExec, ScratchSlots, SeqExec,
    SlotRange, StageExec, StoragePlan, TileWork, TiledGroup,
};
pub use simd::{
    available_levels as available_simd_levels, clamp_to_detected as clamp_simd_level,
    detect as detect_simd, process_level as process_simd_level, resolve as resolve_simd, SimdLevel,
    SimdOpt,
};
