//! Chunked register kernels — the compiled form of one stage's expressions.

use crate::BufId;

/// Index of a virtual register inside a [`Kernel`]'s register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegId(pub u16);

/// Binary floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinF {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
    /// Euclidean remainder (`a - b*floor(a/b)`).
    Mod,
    /// `a.powf(b)`.
    Pow,
}

/// Unary floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnF {
    Neg,
    Abs,
    Sqrt,
    Exp,
    Log,
    Sin,
    Cos,
    Floor,
    Ceil,
}

/// Comparison operations producing 1.0/0.0 masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CmpF {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// How one dimension of a load is indexed.
///
/// `Affine` covers every statically analyzable index
/// `(q·coord(dim) + o) / m` (floor division); `dim == None` is a constant
/// index. `Reg` is a data-dependent index taken from a register (rounded to
/// nearest and clamped into the buffer's valid range).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdxPlan {
    /// `(q·coord(dim) + o) / m`, with `coord(None) = 0`.
    Affine {
        /// Consumer loop dimension supplying the coordinate.
        dim: Option<usize>,
        /// Coefficient.
        q: i64,
        /// Offset (parameters already substituted).
        o: i64,
        /// Positive floor divisor.
        m: i64,
    },
    /// Data-dependent index from a register.
    Reg(RegId),
}

/// One chunk operation. All operands are registers holding `len` lanes.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Broadcast a constant.
    ConstF {
        /// Destination register.
        dst: RegId,
        /// The value.
        val: f32,
    },
    /// Materialize the consumer coordinate of `dim` as lane values
    /// (the innermost dimension yields `x0, x0+1, …`; outer dimensions
    /// broadcast).
    CoordF {
        /// Destination register.
        dst: RegId,
        /// Consumer loop dimension.
        dim: usize,
    },
    /// Binary operation `dst = a ⊕ b`.
    BinF {
        /// Operation.
        op: BinF,
        /// Destination register.
        dst: RegId,
        /// Left operand.
        a: RegId,
        /// Right operand.
        b: RegId,
    },
    /// Unary operation `dst = ⊖a`.
    UnF {
        /// Operation.
        op: UnF,
        /// Destination register.
        dst: RegId,
        /// Operand.
        a: RegId,
    },
    /// Comparison producing a 1.0/0.0 mask.
    CmpMask {
        /// Operation.
        op: CmpF,
        /// Destination register.
        dst: RegId,
        /// Left operand.
        a: RegId,
        /// Right operand.
        b: RegId,
    },
    /// Mask conjunction (`a·b`).
    MaskAnd {
        /// Destination register.
        dst: RegId,
        /// Left mask.
        a: RegId,
        /// Right mask.
        b: RegId,
    },
    /// Mask disjunction (`max(a,b)`).
    MaskOr {
        /// Destination register.
        dst: RegId,
        /// Left mask.
        a: RegId,
        /// Right mask.
        b: RegId,
    },
    /// Mask negation (`1−a`).
    MaskNot {
        /// Destination register.
        dst: RegId,
        /// Mask operand.
        a: RegId,
    },
    /// Lane-wise select: `dst = mask ≠ 0 ? a : b`.
    SelectF {
        /// Destination register.
        dst: RegId,
        /// Mask register.
        mask: RegId,
        /// Taken where mask ≠ 0.
        a: RegId,
        /// Taken where mask = 0.
        b: RegId,
    },
    /// Integral cast: round to nearest (ties away from zero).
    CastRound {
        /// Destination register.
        dst: RegId,
        /// Operand.
        a: RegId,
    },
    /// Saturating integral cast: clamp to `[lo, hi]`, then round.
    CastSat {
        /// Destination register.
        dst: RegId,
        /// Operand.
        a: RegId,
        /// Lower clamp bound.
        lo: f32,
        /// Upper clamp bound.
        hi: f32,
    },
    /// Load a chunk from a buffer.
    Load {
        /// Destination register.
        dst: RegId,
        /// Source buffer.
        buf: BufId,
        /// One plan per buffer dimension.
        plan: Vec<IdxPlan>,
    },
}

impl Op {
    /// The destination register of this operation.
    pub fn dst(&self) -> RegId {
        match *self {
            Op::ConstF { dst, .. }
            | Op::CoordF { dst, .. }
            | Op::BinF { dst, .. }
            | Op::UnF { dst, .. }
            | Op::CmpMask { dst, .. }
            | Op::MaskAnd { dst, .. }
            | Op::MaskOr { dst, .. }
            | Op::MaskNot { dst, .. }
            | Op::SelectF { dst, .. }
            | Op::CastRound { dst, .. }
            | Op::CastSat { dst, .. }
            | Op::Load { dst, .. } => dst,
        }
    }

    /// Calls `f` on every source register, including data-dependent load
    /// index registers.
    pub fn for_each_src(&self, mut f: impl FnMut(RegId)) {
        match self {
            Op::ConstF { .. } | Op::CoordF { .. } => {}
            Op::BinF { a, b, .. }
            | Op::CmpMask { a, b, .. }
            | Op::MaskAnd { a, b, .. }
            | Op::MaskOr { a, b, .. } => {
                f(*a);
                f(*b);
            }
            Op::UnF { a, .. }
            | Op::MaskNot { a, .. }
            | Op::CastRound { a, .. }
            | Op::CastSat { a, .. } => f(*a),
            Op::SelectF { mask, a, b, .. } => {
                f(*mask);
                f(*a);
                f(*b);
            }
            Op::Load { plan, .. } => {
                for p in plan {
                    if let IdxPlan::Reg(r) = p {
                        f(*r);
                    }
                }
            }
        }
    }

    /// Calls `f` with mutable access to every source register.
    pub fn for_each_src_mut(&mut self, mut f: impl FnMut(&mut RegId)) {
        match self {
            Op::ConstF { .. } | Op::CoordF { .. } => {}
            Op::BinF { a, b, .. }
            | Op::CmpMask { a, b, .. }
            | Op::MaskAnd { a, b, .. }
            | Op::MaskOr { a, b, .. } => {
                f(a);
                f(b);
            }
            Op::UnF { a, .. }
            | Op::MaskNot { a, .. }
            | Op::CastRound { a, .. }
            | Op::CastSat { a, .. } => f(a),
            Op::SelectF { mask, a, b, .. } => {
                f(mask);
                f(a);
                f(b);
            }
            Op::Load { plan, .. } => {
                for p in plan {
                    if let IdxPlan::Reg(r) = p {
                        f(r);
                    }
                }
            }
        }
    }

    /// Mutable access to the destination register.
    pub fn dst_mut(&mut self) -> &mut RegId {
        match self {
            Op::ConstF { dst, .. }
            | Op::CoordF { dst, .. }
            | Op::BinF { dst, .. }
            | Op::UnF { dst, .. }
            | Op::CmpMask { dst, .. }
            | Op::MaskAnd { dst, .. }
            | Op::MaskOr { dst, .. }
            | Op::MaskNot { dst, .. }
            | Op::SelectF { dst, .. }
            | Op::CastRound { dst, .. }
            | Op::CastSat { dst, .. }
            | Op::Load { dst, .. } => dst,
        }
    }
}

/// Optimizer metadata attached to a kernel by
/// [`crate::optimize_kernel`](crate::opt::optimize_kernel).
///
/// `dep[r]` is a bitmask over the consumer loop dimensions: bit `d` is set
/// iff register `r`'s value can vary with coordinate `d` (transitively,
/// through operands and affine load indices). Because the executor picks
/// the chunk axis per region at run time, uniformity is decided at
/// evaluation time: a register is *chunk-invariant* for chunk axis `inner`
/// iff bit `inner` is clear, and the evaluator then computes it once per
/// row in a scalar preamble instead of once per lane per chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptMeta {
    /// Per-register dimension-dependence bitmask (indexed by register).
    pub dep: Vec<u32>,
}

/// A straight-line program over chunk registers with one or more result
/// registers (`outs[0]` is the value; reductions add target-index outputs).
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Operations in execution order.
    pub ops: Vec<Op>,
    /// Number of registers used.
    pub nregs: usize,
    /// Result registers.
    pub outs: Vec<RegId>,
    /// Uniformity metadata, present only on optimized kernels. `None` means
    /// the evaluator runs every op across all lanes (the pre-optimizer
    /// behavior).
    pub meta: Option<OptMeta>,
}

impl Kernel {
    /// The primary (value) output register.
    pub fn out(&self) -> RegId {
        self.outs[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dst_extraction() {
        let op = Op::BinF {
            op: BinF::Add,
            dst: RegId(3),
            a: RegId(1),
            b: RegId(2),
        };
        assert_eq!(op.dst(), RegId(3));
        let op = Op::Load {
            dst: RegId(5),
            buf: BufId(0),
            plan: vec![],
        };
        assert_eq!(op.dst(), RegId(5));
    }

    #[test]
    fn kernel_primary_out() {
        let k = Kernel {
            ops: vec![],
            nregs: 2,
            meta: None,
            outs: vec![RegId(1), RegId(0)],
        };
        assert_eq!(k.out(), RegId(1));
    }
}
