//! # polymage-bench
//!
//! The measurement harness reproducing every table and figure of the
//! paper's evaluation (§4). Binaries:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table2` | Table 2 (per-benchmark execution times and speedups) |
//! | `fig8_grouping` | Fig. 8 (grouping structure found by the compiler) |
//! | `fig9_autotune` | Fig. 9 (autotuning scatter: 1-core vs N-core times) |
//! | `fig10_speedups` | Fig. 10 (speedups of base/opt × ±vec over base) |
//! | `inspect` | compiler reports and emitted C for any benchmark |
//!
//! Criterion micro-benchmarks live in `benches/`.
//!
//! All binaries take `--scale tiny|small|paper` (default `small`) and
//! `--threads a,b,c`. Measurements follow the paper's protocol: one warm-up
//! run is discarded and the mean of the remaining runs is reported.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod sizes;

use polymage_apps::{Benchmark, Scale};
use polymage_core::{CompileOptions, Compiled, Session};
use polymage_vm::{Buffer, Engine, EvalMode, RunRequest};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Times a compiled program on a persistent [`Engine`]: one discarded
/// warm-up then the mean of `runs`. Reusing one engine across
/// measurements keeps the worker pool and buffer pool warm, so the
/// numbers reflect steady-state frame-loop behavior rather than thread
/// spawn cost.
pub fn time_program(
    engine: &Engine,
    c: &Compiled,
    inputs: &[Buffer],
    threads: usize,
    runs: usize,
) -> Duration {
    let run_once = |what: &str| {
        engine
            .submit(RunRequest::new(&c.program, inputs).threads(threads))
            .and_then(|h| h.join())
            .unwrap_or_else(|e| panic!("{what} run: {e}"))
    };
    let _ = run_once("warm-up");
    let start = Instant::now();
    for _ in 0..runs.max(1) {
        let _ = run_once("measured");
    }
    start.elapsed() / runs.max(1) as u32
}

/// The four schedule configurations of Fig. 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// Inlining + parallelism only (paper's "base", −vec).
    Base,
    /// Base with chunked (vectorized) evaluation.
    BaseVec,
    /// Full grouping/tiling/storage optimization, −vec.
    Opt,
    /// Fully optimized, +vec — the headline configuration.
    OptVec,
}

impl Config {
    /// All four, in Fig. 10's order.
    pub const ALL: [Config; 4] = [Config::Base, Config::BaseVec, Config::Opt, Config::OptVec];

    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Config::Base => "PolyMage(base)",
            Config::BaseVec => "PolyMage(base+vec)",
            Config::Opt => "PolyMage(opt)",
            Config::OptVec => "PolyMage(opt+vec)",
        }
    }

    /// Compiler options for this configuration.
    pub fn options(self, params: Vec<i64>) -> CompileOptions {
        match self {
            Config::Base => CompileOptions::base(params).with_mode(EvalMode::Scalar),
            Config::BaseVec => CompileOptions::base(params),
            Config::Opt => CompileOptions::optimized(params).with_mode(EvalMode::Scalar),
            Config::OptVec => CompileOptions::optimized(params),
        }
    }
}

/// Compiles a benchmark under a configuration through a [`Session`]
/// (panicking on compile errors — benchmark specifications are
/// known-valid). Repeated calls with the same configuration hit the
/// session's compile cache.
pub fn compile_config(session: &Session, b: &dyn Benchmark, cfg: Config) -> Arc<Compiled> {
    session
        .compile(b.pipeline(), &cfg.options(b.params()))
        .unwrap_or_else(|e| panic!("{}: {e}", b.name()))
}

/// Times the library-style reference implementation (the OpenCV stand-in).
pub fn time_reference(b: &dyn Benchmark, inputs: &[Buffer], runs: usize) -> Duration {
    let _ = b.reference(inputs);
    let start = Instant::now();
    for _ in 0..runs.max(1) {
        let _ = b.reference(inputs);
    }
    start.elapsed() / runs.max(1) as u32
}

/// Common command-line options for harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Workload scale.
    pub scale: Scale,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Timed runs per measurement (after one warm-up).
    pub runs: usize,
    /// Restrict to benchmarks whose name contains this substring.
    pub filter: Option<String>,
    /// Autotune each benchmark (coarse sweep) before measuring, as the
    /// paper does for Table 2.
    pub tune: bool,
    /// Run the exhaustive autotune sweep instead of the model-pruned
    /// default (`fig9_autotune --full`; the ablation baseline).
    pub full: bool,
}

impl HarnessArgs {
    /// Parses `--scale`, `--threads`, `--runs`, `--filter` from the process
    /// arguments, with paper-faithful defaults adapted to the host.
    pub fn parse() -> HarnessArgs {
        let mut out = HarnessArgs {
            scale: Scale::Small,
            threads: vec![1, 2, 4],
            runs: 3,
            filter: None,
            tune: false,
            full: false,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    out.scale = match args.get(i).map(String::as_str) {
                        Some("tiny") => Scale::Tiny,
                        Some("small") => Scale::Small,
                        Some("paper") => Scale::Paper,
                        other => panic!("unknown scale {other:?}"),
                    };
                }
                "--threads" => {
                    i += 1;
                    out.threads = args[i]
                        .split(',')
                        .map(|s| s.parse().expect("thread count"))
                        .collect();
                }
                "--runs" => {
                    i += 1;
                    out.runs = args[i].parse().expect("runs");
                }
                "--filter" => {
                    i += 1;
                    out.filter = Some(args[i].clone());
                }
                "--tune" => out.tune = true,
                "--full" => out.full = true,
                other => panic!("unknown argument `{other}`"),
            }
            i += 1;
        }
        out
    }

    /// The selected benchmarks.
    pub fn benchmarks(&self) -> Vec<Box<dyn Benchmark>> {
        polymage_apps::all_benchmarks(self.scale)
            .into_iter()
            .filter(|b| {
                self.filter
                    .as_ref()
                    .map(|f| b.name().to_lowercase().contains(&f.to_lowercase()))
                    .unwrap_or(true)
            })
            .collect()
    }
}

/// Coarse per-benchmark autotuning (the paper tunes each Table 2 entry):
/// sweeps a reduced tile set at the default threshold on the session's
/// engine and returns the best configuration's compiled program.
pub fn tune_config(
    session: &Session,
    b: &dyn Benchmark,
    inputs: &[Buffer],
    threads: usize,
    runs: usize,
) -> (Arc<Compiled>, Vec<i64>) {
    let mut best: Option<(Duration, Arc<Compiled>, Vec<i64>)> = None;
    let mut opts = CompileOptions::optimized(b.params());
    for t0 in [32i64, 128, 512] {
        for t1 in [64i64, 256, 512] {
            opts.tiles = polymage_core::TileSpec::Fixed(vec![t0, t1]);
            let compiled = session
                .compile(b.pipeline(), &opts)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            opts.skip_bounds_check = true;
            let t = time_program(session.engine(), &compiled, inputs, threads, runs.max(1));
            if best.as_ref().map(|(bt, _, _)| t < *bt).unwrap_or(true) {
                best = Some((t, compiled, vec![t0, t1]));
            }
        }
    }
    let (_, compiled, tiles) = best.expect("at least one configuration");
    (compiled, tiles)
}

/// Formats a duration as fractional milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_options() {
        let o = Config::OptVec.options(vec![1, 2]);
        assert!(o.fuse && o.tile);
        assert_eq!(o.mode, EvalMode::Vector);
        let o = Config::Base.options(vec![1, 2]);
        assert!(!o.fuse && !o.tile);
        assert_eq!(o.mode, EvalMode::Scalar);
        assert_eq!(Config::ALL.len(), 4);
        assert!(Config::OptVec.label().contains("opt+vec"));
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(Duration::from_micros(1500)), "1.50");
    }
}
