//! Human-readable rendering of pipeline specifications — the inverse of
//! Fig. 1: given a built [`Pipeline`], print a listing close to what the
//! user wrote, with real parameter/variable/stage names. Used by debug
//! output, error reporting, and the `inspect` harness.

use crate::{BinOp, CmpOp, Cond, Expr, FuncBody, Interval, PAff, Pipeline, UnOp};
use std::fmt;

/// Renders a parameter-affine expression with real parameter names.
fn paff_str(pipe: &Pipeline, a: &PAff) -> String {
    let mut s = String::new();
    let mut first = true;
    let c = a.num_const();
    if c != 0 || a.terms().next().is_none() {
        s.push_str(&c.to_string());
        first = false;
    }
    for (p, q) in a.terms() {
        if q >= 0 && !first {
            s.push('+');
        }
        let name = pipe
            .params()
            .get(p.index())
            .map(String::as_str)
            .unwrap_or("?");
        match q {
            1 => s.push_str(name),
            -1 => {
                s.push('-');
                s.push_str(name);
            }
            _ => s.push_str(&format!("{q}*{name}")),
        }
        first = false;
    }
    if a.denominator() != 1 {
        s.push_str(&format!("/{}", a.denominator()));
    }
    s
}

fn interval_str(pipe: &Pipeline, iv: &Interval) -> String {
    format!("[{}, {}]", paff_str(pipe, &iv.lo), paff_str(pipe, &iv.hi))
}

/// Wrapper that renders an expression with a pipeline's names.
pub struct ExprDisplay<'a> {
    pipe: &'a Pipeline,
    expr: &'a Expr,
}

/// Wrapper that renders a whole pipeline as a Fig. 1-style listing.
pub struct PipelineDisplay<'a> {
    pipe: &'a Pipeline,
}

impl Pipeline {
    /// Renders an expression with this pipeline's names.
    pub fn display_expr<'a>(&'a self, expr: &'a Expr) -> ExprDisplay<'a> {
        ExprDisplay { pipe: self, expr }
    }

    /// Renders the whole specification as a listing.
    pub fn display(&self) -> PipelineDisplay<'_> {
        PipelineDisplay { pipe: self }
    }
}

fn write_expr(pipe: &Pipeline, e: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match e {
        Expr::Const(c) => {
            if c.fract() == 0.0 && c.abs() < 1e12 {
                write!(f, "{}", *c as i64)
            } else {
                write!(f, "{c}")
            }
        }
        Expr::Var(v) => write!(
            f,
            "{}",
            pipe.vars()
                .get(v.index())
                .map(String::as_str)
                .unwrap_or("?")
        ),
        Expr::Param(p) => {
            write!(
                f,
                "{}",
                pipe.params()
                    .get(p.index())
                    .map(String::as_str)
                    .unwrap_or("?")
            )
        }
        Expr::Call(src, args) => {
            write!(f, "{}(", pipe.source_name(*src))?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_expr(pipe, a, f)?;
            }
            write!(f, ")")
        }
        Expr::Unary(op, a) => {
            let name = match op {
                UnOp::Neg => "-",
                UnOp::Abs => "abs",
                UnOp::Sqrt => "sqrt",
                UnOp::Exp => "exp",
                UnOp::Log => "log",
                UnOp::Sin => "sin",
                UnOp::Cos => "cos",
                UnOp::Floor => "floor",
                UnOp::Ceil => "ceil",
            };
            if *op == UnOp::Neg {
                write!(f, "(-")?;
                write_expr(pipe, a, f)?;
                write!(f, ")")
            } else {
                write!(f, "{name}(")?;
                write_expr(pipe, a, f)?;
                write!(f, ")")
            }
        }
        Expr::Binary(op, a, b) => {
            let tok = match op {
                BinOp::Add => " + ",
                BinOp::Sub => " - ",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Min => return write_call2(pipe, "min", a, b, f),
                BinOp::Max => return write_call2(pipe, "max", a, b, f),
                BinOp::Mod => " % ",
                BinOp::Pow => return write_call2(pipe, "pow", a, b, f),
            };
            write!(f, "(")?;
            write_expr(pipe, a, f)?;
            write!(f, "{tok}")?;
            write_expr(pipe, b, f)?;
            write!(f, ")")
        }
        Expr::Select(c, a, b) => {
            write!(f, "select(")?;
            write_cond(pipe, c, f)?;
            write!(f, ", ")?;
            write_expr(pipe, a, f)?;
            write!(f, ", ")?;
            write_expr(pipe, b, f)?;
            write!(f, ")")
        }
        Expr::Cast(ty, a) => {
            write!(f, "cast<{ty}>(")?;
            write_expr(pipe, a, f)?;
            write!(f, ")")
        }
    }
}

fn write_call2(
    pipe: &Pipeline,
    name: &str,
    a: &Expr,
    b: &Expr,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    write!(f, "{name}(")?;
    write_expr(pipe, a, f)?;
    write!(f, ", ")?;
    write_expr(pipe, b, f)?;
    write!(f, ")")
}

fn write_cond(pipe: &Pipeline, c: &Cond, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match c {
        Cond::Cmp(op, a, b) => {
            let tok = match op {
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
                CmpOp::Eq => "==",
                CmpOp::Ne => "!=",
            };
            write_expr(pipe, a, f)?;
            write!(f, " {tok} ")?;
            write_expr(pipe, b, f)
        }
        Cond::And(a, b) => {
            write!(f, "(")?;
            write_cond(pipe, a, f)?;
            write!(f, " && ")?;
            write_cond(pipe, b, f)?;
            write!(f, ")")
        }
        Cond::Or(a, b) => {
            write!(f, "(")?;
            write_cond(pipe, a, f)?;
            write!(f, " || ")?;
            write_cond(pipe, b, f)?;
            write!(f, ")")
        }
        Cond::Not(a) => {
            write!(f, "!(")?;
            write_cond(pipe, a, f)?;
            write!(f, ")")
        }
    }
}

impl fmt::Display for ExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_expr(self.pipe, self.expr, f)
    }
}

impl fmt::Display for PipelineDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.pipe;
        writeln!(f, "pipeline {} {{", p.name())?;
        if !p.params().is_empty() {
            writeln!(f, "  params: {}", p.params().join(", "))?;
        }
        for img in p.images() {
            let dims: Vec<String> = img.extents.iter().map(|e| paff_str(p, e)).collect();
            writeln!(f, "  image {}: {} [{}]", img.name, img.ty, dims.join(", "))?;
        }
        for fd in p.funcs() {
            let vars: Vec<&str> = fd
                .var_dom
                .vars
                .iter()
                .map(|v| p.vars().get(v.index()).map(String::as_str).unwrap_or("?"))
                .collect();
            let doms: Vec<String> = fd
                .var_dom
                .dom
                .iter()
                .map(|iv| interval_str(p, iv))
                .collect();
            writeln!(
                f,
                "  {}({}) : {} over {}",
                fd.name,
                vars.join(", "),
                fd.ty,
                doms.join(" × ")
            )?;
            match &fd.body {
                FuncBody::Undefined => writeln!(f, "    = <undefined>")?,
                FuncBody::Cases(cases) => {
                    for case in cases {
                        match &case.cond {
                            None => writeln!(f, "    = {}", p.display_expr(&case.expr))?,
                            Some(c) => {
                                write!(f, "    | ")?;
                                write_cond(p, c, f)?;
                                writeln!(f, " -> {}", p.display_expr(&case.expr))?;
                            }
                        }
                    }
                }
                FuncBody::Reduce(acc) => {
                    let rvars: Vec<&str> = acc
                        .red_vars
                        .iter()
                        .map(|v| p.vars().get(v.index()).map(String::as_str).unwrap_or("?"))
                        .collect();
                    let targets: Vec<String> = acc
                        .target
                        .iter()
                        .map(|t| p.display_expr(t).to_string())
                        .collect();
                    writeln!(
                        f,
                        "    reduce({:?}) over ({}) : [{}] <- {}",
                        acc.op,
                        rvars.join(", "),
                        targets.join(", "),
                        p.display_expr(&acc.value)
                    )?;
                }
            }
        }
        let outs: Vec<String> = p
            .live_outs()
            .iter()
            .map(|&o| p.func(o).name.clone())
            .collect();
        writeln!(f, "  live-out: {}", outs.join(", "))?;
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Accumulate, Case, Interval, PAff, PipelineBuilder, Reduction, ScalarType};

    fn sample() -> Pipeline {
        let mut p = PipelineBuilder::new("demo");
        let n = p.param("N");
        let img = p.image("I", ScalarType::UChar, vec![PAff::param(n)]);
        let (x, b) = (p.var("x"), p.var("b"));
        let f = p.func(
            "f",
            &[(x, Interval::new(PAff::cst(1), PAff::param(n) - 2))],
            ScalarType::Float,
        );
        p.define(
            f,
            vec![Case::new(
                Expr::from(x).ge(2),
                (Expr::at(img, [x - 1]) + Expr::at(img, [x + 1])).sqrt() * 0.5,
            )],
        )
        .unwrap();
        let acc = Accumulate {
            red_vars: vec![x],
            red_dom: vec![Interval::cst(0, 9)],
            target: vec![Expr::at(img, [Expr::from(x)])],
            value: Expr::Const(1.0),
            op: Reduction::Sum,
        };
        let h = p
            .accumulator("h", &[(b, Interval::cst(0, 255))], ScalarType::Int, acc)
            .unwrap();
        p.finish(&[f, h]).unwrap()
    }

    #[test]
    fn renders_listing() {
        let p = sample();
        let s = p.display().to_string();
        assert!(s.contains("pipeline demo {"), "{s}");
        assert!(s.contains("params: N"), "{s}");
        assert!(s.contains("image I: unsigned char [N]"), "{s}");
        assert!(s.contains("f(x) : float over [1, -2+N]"), "{s}");
        assert!(s.contains("| x >= 2 -> "), "{s}");
        assert!(s.contains("sqrt("), "{s}");
        assert!(s.contains("reduce(Sum) over (x) : [I(x)] <- 1"), "{s}");
        assert!(s.contains("live-out: f, h"), "{s}");
    }

    #[test]
    fn renders_expressions_with_names() {
        let p = sample();
        let x = crate::VarId::from_index(0);
        let e = Expr::select(
            Expr::from(x).lt(3),
            Expr::from(x) * 2.0,
            Expr::from(x).max(Expr::Const(7.0)),
        );
        let s = p.display_expr(&e).to_string();
        assert_eq!(s, "select(x < 3, (x*2), max(x, 7))");
    }
}
