//! The kernel optimizer's bit-exactness contract, checked on random SSA
//! kernels: for any kernel, any chunk axis, any chunk length, and any row,
//! the optimized kernel (constant folding, simplification, CSE, DCE,
//! compaction, uniformity metadata, specialized loads) produces **bit
//! identical** lane values for every output register.

use polymage_vm::opt::optimize_kernel;
use polymage_vm::*;
use proptest::prelude::*;

const CONSTS: [f32; 8] = [0.0, -0.0, 1.0, -1.0, 0.5, 2.0, 4.0, 3.1];
const BINOPS: [BinF; 8] = [
    BinF::Add,
    BinF::Sub,
    BinF::Mul,
    BinF::Div,
    BinF::Min,
    BinF::Max,
    BinF::Mod,
    BinF::Pow,
];
const UNOPS: [UnF; 9] = [
    UnF::Neg,
    UnF::Abs,
    UnF::Sqrt,
    UnF::Exp,
    UnF::Log,
    UnF::Sin,
    UnF::Cos,
    UnF::Floor,
    UnF::Ceil,
];
const CMPS: [CmpF; 6] = [CmpF::Lt, CmpF::Le, CmpF::Gt, CmpF::Ge, CmpF::Eq, CmpF::Ne];

/// Builds a random SSA kernel from opcode tuples. Register 0/1 are the two
/// coordinates, 2/3 seed constants; every subsequent op reads earlier
/// registers only. Load plans stay within the fixed 16×200 test buffer for
/// the evaluation grid used below (affine dim-0 offsets ≤ 2 on x ≤ 5;
/// dim-1 coefficients ≤ 2 on y ≤ 39).
fn build_kernel(codes: &[(u8, usize, usize, u8)]) -> Kernel {
    let mut ops = vec![
        Op::CoordF {
            dst: RegId(0),
            dim: 0,
        },
        Op::CoordF {
            dst: RegId(1),
            dim: 1,
        },
        Op::ConstF {
            dst: RegId(2),
            val: 2.0,
        },
        Op::ConstF {
            dst: RegId(3),
            val: -0.5,
        },
    ];
    let mut n: u16 = 4;
    for &(code, a, b, extra) in codes {
        let ra = RegId((a % n as usize) as u16);
        let rb = RegId((b % n as usize) as u16);
        let rc = RegId(((a + b) % n as usize) as u16);
        let dst = RegId(n);
        let e = extra as usize;
        let op = match code % 12 {
            0 => Op::ConstF {
                dst,
                val: CONSTS[e % CONSTS.len()],
            },
            1 => Op::CoordF { dst, dim: e % 2 },
            2 => Op::BinF {
                op: BINOPS[e % BINOPS.len()],
                dst,
                a: ra,
                b: rb,
            },
            3 => Op::UnF {
                op: UNOPS[e % UNOPS.len()],
                dst,
                a: ra,
            },
            4 => Op::CmpMask {
                op: CMPS[e % CMPS.len()],
                dst,
                a: ra,
                b: rb,
            },
            5 => Op::MaskAnd { dst, a: ra, b: rb },
            6 => Op::MaskOr { dst, a: ra, b: rb },
            7 => Op::MaskNot { dst, a: ra },
            8 => Op::SelectF {
                dst,
                mask: ra,
                a: rb,
                b: rc,
            },
            9 => Op::CastRound { dst, a: ra },
            10 => Op::CastSat {
                dst,
                a: ra,
                lo: 0.0,
                hi: 255.0,
            },
            _ => {
                let inner = if extra & 1 == 0 {
                    // affine: (q·y + o)/m with q,m ∈ {1,2}
                    IdxPlan::Affine {
                        dim: Some(1),
                        q: 1 + (e as i64 >> 1 & 1),
                        o: (e as i64 >> 2) % 3,
                        m: 1 + (e as i64 >> 3 & 1),
                    }
                } else {
                    // data-dependent (rounded + clamped in both paths)
                    IdxPlan::Reg(ra)
                };
                Op::Load {
                    dst,
                    buf: BufId(0),
                    plan: vec![
                        IdxPlan::Affine {
                            dim: Some(0),
                            q: 1,
                            o: (e as i64) % 3,
                            m: 1,
                        },
                        inner,
                    ],
                }
            }
        };
        ops.push(op);
        n += 1;
    }
    Kernel {
        ops,
        nregs: n as usize,
        meta: None,
        // two outputs so multi-out (value + mask style) kernels and the
        // uniform-out broadcast path are exercised
        outs: vec![RegId(n - 1), RegId(n / 2)],
    }
}

/// Evaluates all output registers of `k` over a 2-D grid, chunking along
/// `inner` with the given chunk length, starting a fresh uniform-row cache
/// per row. Evaluation dispatches at the given SIMD `level` (clamped to
/// host support). Returns the concatenated bit patterns of every out
/// register.
fn eval_grid(k: &Kernel, data: &[f32], inner: usize, chunk: usize, level: SimdLevel) -> Vec<u32> {
    let bufs = [Some(BufView {
        data,
        origin: vec![0, 0],
        strides: vec![200, 1],
        sizes: vec![16, 200],
    })];
    let (xe, ye) = (6i64, 40i64);
    let mut regs = RegFile::new();
    regs.set_simd(level);
    let mut out = Vec::new();
    let (outer_end, inner_end) = if inner == 1 { (xe, ye) } else { (ye, xe) };
    for o in 0..outer_end {
        regs.begin_row();
        let mut i = 0i64;
        while i < inner_end {
            let len = ((inner_end - i) as usize).min(chunk);
            let coords = if inner == 1 { [o, i] } else { [i, o] };
            let ctx = ChunkCtx {
                coords: &coords,
                len,
                inner,
                bufs: &bufs,
            };
            eval_kernel(k, &ctx, &mut regs);
            for &r in &k.outs {
                out.extend(regs.reg(r)[..len].iter().map(|v| v.to_bits()));
            }
            i += len as i64;
        }
    }
    out
}

proptest! {
    /// Optimized ≡ unoptimized, bit-exactly, for random kernels under both
    /// chunk axes and non-CHUNK-aligned chunk lengths — and at every SIMD
    /// level the host supports, all compared against the scalar loops.
    #[test]
    fn optimizer_is_bit_exact(
        codes in proptest::collection::vec(
            (0u8..12, 0usize..64, 0usize..64, 0u8..=255), 1..40),
        chunk in 1usize..50,
    ) {
        let data: Vec<f32> = (0..16 * 200)
            .map(|i| ((i * 37 % 113) as f32) - 50.0)
            .collect();
        let k = build_kernel(&codes);
        let mut k2 = k.clone();
        let rpt = optimize_kernel(&mut k2, 2, &[], "prop".into());
        prop_assert!(k2.meta.is_some());
        prop_assert!(rpt.ops_after <= rpt.ops_before);
        for inner in [1usize, 0] {
            let want = eval_grid(&k, &data, inner, chunk, SimdLevel::Scalar);
            for level in available_simd_levels() {
                let raw = eval_grid(&k, &data, inner, chunk, level);
                prop_assert_eq!(&want, &raw,
                    "unoptimized axis {} chunk {} level {} kernel {:?}",
                    inner, chunk, level, &k);
                let got = eval_grid(&k2, &data, inner, chunk, level);
                prop_assert_eq!(&want, &got,
                    "axis {} chunk {} level {} kernel {:?}",
                    inner, chunk, level, &k);
            }
        }
    }
}
