//! Multi-tenant execution: concurrent submitters on one shared engine
//! must get results bit-identical to a fresh single-run engine, runs must
//! actually interleave on the shared worker pool (not serialize), and the
//! serving types must be shareable across threads.

use polymage_apps::{all_benchmarks, harris::HarrisCorner, Benchmark, Scale};
use polymage_core::{compile, CompileOptions, Session};
use polymage_diag::Diag;
use polymage_vm::{Buffer, Engine, Program, RunHandle, RunRequest, SharedPool};
use std::collections::VecDeque;
use std::sync::Arc;

fn bits(bufs: &[Buffer]) -> Vec<Vec<u32>> {
    bufs.iter()
        .map(|b| b.data.iter().map(|v| v.to_bits()).collect())
        .collect()
}

const THREAD_MIX: [usize; 3] = [1, 2, 4];

/// Every benchmark × {optimized, base}, with its inputs.
fn workload() -> Vec<(String, Arc<Program>, Vec<Buffer>)> {
    let mut out = Vec::new();
    for b in all_benchmarks(Scale::Tiny) {
        let inputs = b.make_inputs(42);
        for opts in [
            CompileOptions::optimized(b.params()),
            CompileOptions::base(b.params()),
        ] {
            let compiled =
                compile(b.pipeline(), &opts).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            let name = format!("{}/{}", b.name(), if opts.fuse { "opt" } else { "base" });
            out.push((name, Arc::clone(&compiled.program), inputs.clone()));
        }
    }
    out
}

#[test]
fn concurrent_submitters_bit_identical_to_fresh_engine() {
    let programs = workload();

    // Goldens: a fresh engine with nothing else running, per thread count.
    let mut golden: Vec<Vec<Vec<Vec<u32>>>> = Vec::new(); // [program][thread-mix]
    for (name, prog, inputs) in &programs {
        let mut per_threads = Vec::new();
        for &t in &THREAD_MIX {
            let fresh = Engine::with_threads(4);
            let out = fresh
                .submit(RunRequest::new(prog, inputs).threads(t))
                .and_then(|h| h.join())
                .unwrap_or_else(|e| panic!("{name}: golden run: {e}"));
            per_threads.push(bits(&out));
        }
        golden.push(per_threads);
    }

    // 4 submitter threads share one engine; each walks every program with
    // a different thread-count rotation and keeps two runs in flight, so
    // the scheduler constantly interleaves heterogeneous programs.
    let engine = Engine::with_threads(4);
    std::thread::scope(|s| {
        for submitter in 0..4usize {
            let engine = &engine;
            let programs = &programs;
            let golden = &golden;
            s.spawn(move || {
                let mut pending: VecDeque<(usize, usize, RunHandle)> = VecDeque::new();
                let check = |(pi, mi, handle): (usize, usize, RunHandle)| {
                    let out = handle
                        .join()
                        .unwrap_or_else(|e| panic!("{}: {e}", programs[pi].0));
                    assert_eq!(
                        golden[pi][mi],
                        bits(&out),
                        "{} (submitter {submitter}, {} threads) diverged under load",
                        programs[pi].0,
                        THREAD_MIX[mi]
                    );
                };
                for round in 0..2 {
                    for (pi, (_, prog, inputs)) in programs.iter().enumerate() {
                        let mi = (pi + submitter + round) % THREAD_MIX.len();
                        let handle = engine
                            .submit(RunRequest::new(prog, inputs).threads(THREAD_MIX[mi]))
                            .unwrap();
                        pending.push_back((pi, mi, handle));
                        if pending.len() >= 2 {
                            check(pending.pop_front().unwrap());
                        }
                    }
                }
                for item in pending {
                    check(item);
                }
            });
        }
    });
}

#[test]
fn submitted_runs_make_interleaved_progress() {
    // Two request threads share one Arc<Session> (2 pooled workers). If
    // runs serialized, no two group spans from distinct run_ids could
    // overlap in time; the scheduler must interleave them. Scheduling is
    // timing-dependent, so allow a few attempts before declaring failure.
    let b = HarrisCorner::new(Scale::Tiny);
    let opts = CompileOptions::optimized(b.params());
    for attempt in 0..5 {
        let diag = Diag::recorder();
        let session = Arc::new(Session::with_threads(2).with_diag(diag.clone()));
        std::thread::scope(|s| {
            for seed in [1u64, 2] {
                let session = Arc::clone(&session);
                let b = HarrisCorner::new(Scale::Tiny);
                let opts = opts.clone();
                s.spawn(move || {
                    let inputs = b.make_inputs(seed);
                    for _ in 0..6 {
                        session.run(b.pipeline(), &opts, &inputs).unwrap();
                    }
                });
            }
        });
        let rec = diag.snapshot().unwrap();
        assert!(
            rec.run_ids().len() >= 12,
            "every traced run contributes a distinct run_id"
        );
        let spans: Vec<(u64, u64, u64)> = rec
            .events_named("group")
            .filter_map(|e| {
                let id = e.run_id()?;
                let dur = e.dur_us?;
                Some((id, e.ts_us, e.ts_us + dur))
            })
            .collect();
        let overlap = spans.iter().enumerate().any(|(i, a)| {
            spans[i + 1..]
                .iter()
                .any(|b| a.0 != b.0 && a.1 < b.2 && b.1 < a.2)
        });
        if overlap {
            return; // interleaving demonstrated
        }
        eprintln!("attempt {attempt}: no overlapping group spans yet, retrying");
    }
    panic!("group spans from distinct run_ids never overlapped: runs are serializing");
}

#[test]
fn admission_cap_applies_backpressure_without_deadlock() {
    // max_inflight=1 forces complete serialization via the admission gate;
    // three submitter threads must all make progress and stay bit-exact.
    let b = HarrisCorner::new(Scale::Tiny);
    let compiled = compile(b.pipeline(), &CompileOptions::optimized(b.params())).unwrap();
    let prog = Arc::clone(&compiled.program);
    let inputs = b.make_inputs(7);
    let engine = Engine::with_threads_and_inflight(2, 1);
    assert_eq!(engine.max_inflight(), 1);
    let golden = bits(
        &Engine::with_threads(2)
            .submit(RunRequest::new(&prog, &inputs))
            .unwrap()
            .join()
            .unwrap(),
    );
    std::thread::scope(|s| {
        for _ in 0..3 {
            let engine = &engine;
            let (prog, inputs, golden) = (&prog, &inputs, &golden);
            s.spawn(move || {
                for _ in 0..4 {
                    let out = engine
                        .submit(RunRequest::new(prog, inputs))
                        .unwrap()
                        .join()
                        .unwrap();
                    assert_eq!(golden, &bits(&out));
                }
            });
        }
    });
}

#[test]
fn mixed_priority_random_cancellation_stress() {
    use polymage_vm::{CancelReason, Priority, VmError};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    // Real compiled pipelines under a priority mix with random caller
    // cancellation: survivors must stay bit-identical to a fresh engine,
    // cancelled runs must report the caller reason, and when everything
    // resolves the engine holds no run buffers and the pool's byte
    // accounting balances. This is the CI stress leg for the scheduler.
    let programs: Vec<(String, Arc<Program>, Vec<Buffer>)> = workload()
        .into_iter()
        .filter(|(name, _, _)| name.ends_with("/opt"))
        .collect();
    let golden: Vec<Vec<Vec<u32>>> = programs
        .iter()
        .map(|(name, prog, inputs)| {
            let fresh = Engine::with_threads(4);
            let out = fresh
                .submit(RunRequest::new(prog, inputs).threads(2))
                .and_then(|h| h.join())
                .unwrap_or_else(|e| panic!("{name}: golden run: {e}"));
            bits(&out)
        })
        .collect();

    let engine = Engine::with_threads(4);
    let priorities = [Priority::Low, Priority::Normal, Priority::High];
    std::thread::scope(|s| {
        for submitter in 0..4usize {
            let engine = &engine;
            let programs = &programs;
            let golden = &golden;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xABCD ^ submitter as u64);
                for round in 0..2 {
                    for (pi, (name, prog, inputs)) in programs.iter().enumerate() {
                        let prio = priorities[(pi + submitter + round) % priorities.len()];
                        let handle = engine
                            .submit(RunRequest::new(prog, inputs).threads(2).priority(prio))
                            .unwrap();
                        // About a third of the runs get cancelled at a
                        // random point: before they start, mid-flight, or
                        // (often) after they already finished.
                        let cancelled = rng.gen_bool(1.0 / 3.0);
                        if cancelled {
                            let token = handle.cancel_token();
                            let delay_us = rng.gen_range(0..1_500u64);
                            s.spawn(move || {
                                std::thread::sleep(std::time::Duration::from_micros(delay_us));
                                token.cancel();
                            });
                        }
                        let (result, stats) = handle.join_outcome();
                        match result {
                            Ok(out) => {
                                assert_eq!(
                                    golden[pi],
                                    bits(&out),
                                    "{name} (submitter {submitter}, {prio:?}) \
                                     diverged under priority mix"
                                );
                                assert_eq!(stats.cancelled_tiles, 0, "{name}");
                            }
                            Err(VmError::Cancelled {
                                reason: CancelReason::Caller,
                            }) => {
                                assert!(cancelled, "{name}: run cancelled without a cancel call");
                            }
                            Err(other) => panic!("{name}: unexpected error {other:?}"),
                        }
                    }
                }
            });
        }
    });

    assert_eq!(
        engine.live_full_bytes(),
        0,
        "all runs resolved but buffers are still live"
    );
    assert_eq!(
        engine.pool_stats().retained_bytes,
        engine.pool_audit_retained_bytes(),
        "pool byte accounting drifted under cancellation stress"
    );
}

#[test]
fn serving_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<Session>();
    assert_send_sync::<RunHandle>();
    assert_send_sync::<SharedPool>();
    assert_send_sync::<Diag>();
}
