//! Property-based tests for the chunk evaluator: chunked evaluation over
//! any chunk axis must agree with a direct scalar computation, and load
//! plans must agree with naive indexing. Every value-producing property
//! runs at each SIMD level the host supports — the vector loops must be
//! bit-identical to the scalar reference.

use polymage_vm::*;
use proptest::prelude::*;

fn view_1d(data: &[f32]) -> (Vec<i64>, Vec<i64>, Vec<i64>) {
    (vec![0], vec![1], vec![data.len() as i64])
}

proptest! {
    /// Affine loads `(q·x + o)/m` equal naive gather for every chunk split.
    #[test]
    fn affine_loads_match_naive(
        q in 1i64..4,
        oo in 0i64..5,
        m in 1i64..4,
        x0 in 0i64..20,
        len in 1usize..64,
    ) {
        let data: Vec<f32> = (0..512).map(|i| (i * 3 % 97) as f32).collect();
        let (origin, strides, sizes) = view_1d(&data);
        // ensure indices stay in range
        let max_idx = (q * (x0 + len as i64 - 1) + oo) / m;
        prop_assume!(max_idx < 512);
        let k = Kernel {
            ops: vec![Op::Load {
                dst: RegId(0),
                buf: BufId(0),
                plan: vec![IdxPlan::Affine { dim: Some(0), q, o: oo, m }],
            }],
            nregs: 1,
            meta: None,
            outs: vec![RegId(0)],
        };
        let view = polymage_vm::ChunkCtx {
            coords: &[x0],
            len,
            inner: 0,
            bufs: &[Some(polymage_vm::BufView {
                data: &data,
                origin: origin.clone(),
                strides: strides.clone(),
                sizes: sizes.clone(),
            })],
        };
        for level in available_simd_levels() {
            let mut regs = RegFile::new();
            regs.set_simd(level);
            eval_kernel(&k, &view, &mut regs);
            for i in 0..len {
                let idx = (q * (x0 + i as i64) + oo).div_euclid(m);
                prop_assert_eq!(regs.reg(RegId(0))[i], data[idx as usize]);
            }
        }
    }

    /// Arithmetic over chunks equals scalar arithmetic per lane.
    #[test]
    fn chunk_arithmetic_matches_scalar(
        vals in proptest::collection::vec(-100.0f32..100.0, 1..64),
        c in -10.0f32..10.0,
    ) {
        let len = vals.len();
        let data = vals.clone();
        let k = Kernel {
            ops: vec![
                Op::Load {
                    dst: RegId(0),
                    buf: BufId(0),
                    plan: vec![IdxPlan::Affine { dim: Some(0), q: 1, o: 0, m: 1 }],
                },
                Op::ConstF { dst: RegId(1), val: c },
                Op::BinF { op: BinF::Mul, dst: RegId(2), a: RegId(0), b: RegId(1) },
                Op::BinF { op: BinF::Add, dst: RegId(3), a: RegId(2), b: RegId(0) },
                Op::UnF { op: UnF::Abs, dst: RegId(4), a: RegId(3) },
                Op::BinF { op: BinF::Max, dst: RegId(5), a: RegId(4), b: RegId(1) },
            ],
            nregs: 6,
            meta: None,
            outs: vec![RegId(5)],
        };
        let (origin, strides, sizes) = view_1d(&data);
        let ctx = ChunkCtx {
            coords: &[0],
            len,
            inner: 0,
            bufs: &[Some(BufView { data: &data, origin, strides, sizes })],
        };
        for level in available_simd_levels() {
            let mut regs = RegFile::new();
            regs.set_simd(level);
            eval_kernel(&k, &ctx, &mut regs);
            for (i, &v) in vals.iter().enumerate().take(len) {
                let want = (v * c + v).abs().max(c);
                prop_assert_eq!(regs.reg(RegId(5))[i], want);
            }
        }
    }

    /// Masks and selects implement boolean algebra per lane.
    #[test]
    fn mask_algebra(vals in proptest::collection::vec(-10.0f32..10.0, 1..32)) {
        let len = vals.len();
        let data = vals.clone();
        // select(!(v > 0 && v < 5), -1, v)
        let k = Kernel {
            ops: vec![
                Op::Load {
                    dst: RegId(0),
                    buf: BufId(0),
                    plan: vec![IdxPlan::Affine { dim: Some(0), q: 1, o: 0, m: 1 }],
                },
                Op::ConstF { dst: RegId(1), val: 0.0 },
                Op::ConstF { dst: RegId(2), val: 5.0 },
                Op::CmpMask { op: CmpF::Gt, dst: RegId(3), a: RegId(0), b: RegId(1) },
                Op::CmpMask { op: CmpF::Lt, dst: RegId(4), a: RegId(0), b: RegId(2) },
                Op::MaskAnd { dst: RegId(5), a: RegId(3), b: RegId(4) },
                Op::MaskNot { dst: RegId(6), a: RegId(5) },
                Op::ConstF { dst: RegId(7), val: -1.0 },
                Op::SelectF { dst: RegId(8), mask: RegId(6), a: RegId(7), b: RegId(0) },
            ],
            nregs: 9,
            meta: None,
            outs: vec![RegId(8)],
        };
        let (origin, strides, sizes) = view_1d(&data);
        let ctx = ChunkCtx {
            coords: &[0],
            len,
            inner: 0,
            bufs: &[Some(BufView { data: &data, origin, strides, sizes })],
        };
        for level in available_simd_levels() {
            let mut regs = RegFile::new();
            regs.set_simd(level);
            eval_kernel(&k, &ctx, &mut regs);
            for (i, &v) in vals.iter().enumerate().take(len) {
                let want = if !(v > 0.0 && v < 5.0) { -1.0 } else { v };
                prop_assert_eq!(regs.reg(RegId(8))[i], want);
            }
        }
    }

    /// Chunking a 2-D load along either axis yields the same values.
    #[test]
    fn chunk_axis_equivalence(rows in 2i64..8, cols in 2i64..8, ox in 0i64..2, oy in 0i64..2) {
        let n = (rows * cols) as usize;
        let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let mk = || Kernel {
            ops: vec![Op::Load {
                dst: RegId(0),
                buf: BufId(0),
                plan: vec![
                    IdxPlan::Affine { dim: Some(0), q: 1, o: 0, m: 1 },
                    IdxPlan::Affine { dim: Some(1), q: 1, o: 0, m: 1 },
                ],
            }],
            nregs: 1,
            meta: None,
            outs: vec![RegId(0)],
        };
        let view = || BufView {
            data: &data,
            origin: vec![0, 0],
            strides: vec![cols, 1],
            sizes: vec![rows, cols],
        };
        for level in available_simd_levels() {
        // chunk along axis 1 (rows of the buffer)
        let mut got_rowwise = vec![0.0f32; n];
        {
            let bufs = [Some(view())];
            let mut regs = RegFile::new();
            regs.set_simd(level);
            for x in ox..rows {
                let len = (cols - oy) as usize;
                let ctx = ChunkCtx { coords: &[x, oy], len, inner: 1, bufs: &bufs };
                eval_kernel(&mk(), &ctx, &mut regs);
                for i in 0..len {
                    got_rowwise[(x * cols + oy + i as i64) as usize] =
                        regs.reg(RegId(0))[i];
                }
            }
        }
        // chunk along axis 0 (columns of the buffer, strided loads —
        // the AVX2 gather path when the level allows it)
        let mut got_colwise = vec![0.0f32; n];
        {
            let bufs = [Some(view())];
            let mut regs = RegFile::new();
            regs.set_simd(level);
            for y in oy..cols {
                let len = (rows - ox) as usize;
                let ctx = ChunkCtx { coords: &[ox, y], len, inner: 0, bufs: &bufs };
                eval_kernel(&mk(), &ctx, &mut regs);
                for i in 0..len {
                    got_colwise[((ox + i as i64) * cols + y) as usize] =
                        regs.reg(RegId(0))[i];
                }
            }
        }
        for x in ox..rows {
            for y in oy..cols {
                let i = (x * cols + y) as usize;
                prop_assert_eq!(got_rowwise[i], data[i]);
                prop_assert_eq!(got_colwise[i], data[i]);
            }
        }
        }
    }
}
