//! Criterion benches: one group per paper benchmark, measuring the four
//! Fig. 10 configurations at Tiny scale (fast, CI-friendly). The printed
//! table/figure harnesses in `src/bin/` run the paper-scale sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polymage_apps::{all_benchmarks, Scale};
use polymage_bench::{compile_config, Config};
use polymage_core::Session;

fn bench_pipelines(c: &mut Criterion) {
    let session = Session::with_threads(1);
    for b in all_benchmarks(Scale::Tiny) {
        let inputs = b.make_inputs(42);
        let mut g = c.benchmark_group(b.name().replace(' ', "_"));
        g.sample_size(10);
        for cfg in Config::ALL {
            let compiled = compile_config(&session, b.as_ref(), cfg);
            g.bench_function(BenchmarkId::from_parameter(cfg.label()), |bench| {
                bench.iter(|| session.run_compiled(&compiled, &inputs).unwrap())
            });
        }
        // the library-style reference for comparison (Table 2's OpenCV column)
        g.bench_function(BenchmarkId::from_parameter("library-reference"), |bench| {
            bench.iter(|| b.reference(&inputs))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
