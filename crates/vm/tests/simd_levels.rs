//! The SIMD backend's bit-exactness contract, checked exhaustively at the
//! chunk level: for every instruction-set level the host supports, every
//! vectorized operation, and every chunk length 1..=CHUNK (so every
//! vector-body/scalar-tail split), the lanes produced must be bit-identical
//! to the scalar loops — including NaN, ±0.0, infinities, denormals, and
//! round-half-away ties.
//!
//! Also pins down the register-file reuse contract behind the persistent
//! per-worker `RegFile`: operations write only `[..len]` and consumers read
//! only `[..len]`, so lanes left over from an earlier, longer evaluation
//! can never leak into a later short one.

use polymage_vm::*;

/// Adversarial lane values: exercises NaN propagation/ordering, signed
/// zeros, infinities, denormals, round-half-away ties, and saturation
/// boundaries.
const SPECIALS: [f32; 16] = [
    0.0,
    -0.0,
    1.0,
    -1.0,
    0.5,
    -0.5,
    2.5,
    -3.5,
    255.49,
    256.0,
    f32::NAN,
    f32::INFINITY,
    f32::NEG_INFINITY,
    f32::MIN_POSITIVE,
    1.0e-40,   // denormal
    8388609.0, // 2^23 + 1: already integral, "big" path of round
];

/// Fills a CHUNK-sized buffer cycling through the special values, offset
/// so that `a` and `b` operands pair every special with every other over
/// the various lengths.
fn special_data(offset: usize) -> Vec<f32> {
    (0..2 * CHUNK)
        .map(|i| SPECIALS[(i * 7 + offset) % SPECIALS.len()])
        .collect()
}

/// A kernel applying every vectorized op class to two loaded operands.
fn all_ops_kernel() -> Kernel {
    let bin = [
        BinF::Add,
        BinF::Sub,
        BinF::Mul,
        BinF::Div,
        BinF::Min,
        BinF::Max,
    ];
    let cmp = [CmpF::Lt, CmpF::Le, CmpF::Gt, CmpF::Ge, CmpF::Eq, CmpF::Ne];
    let mut ops = vec![
        Op::Load {
            dst: RegId(0),
            buf: BufId(0),
            plan: vec![IdxPlan::Affine {
                dim: Some(0),
                q: 1,
                o: 0,
                m: 1,
            }],
        },
        Op::Load {
            dst: RegId(1),
            buf: BufId(1),
            plan: vec![IdxPlan::Affine {
                dim: Some(0),
                q: 1,
                o: 0,
                m: 1,
            }],
        },
    ];
    let mut n = 2u16;
    for op in bin {
        ops.push(Op::BinF {
            op,
            dst: RegId(n),
            a: RegId(0),
            b: RegId(1),
        });
        n += 1;
    }
    for op in cmp {
        ops.push(Op::CmpMask {
            op,
            dst: RegId(n),
            a: RegId(0),
            b: RegId(1),
        });
        n += 1;
    }
    let m1 = RegId(n - 1); // Ne mask
    let m2 = RegId(n - 2); // Eq mask
    for op in [
        Op::MaskAnd {
            dst: RegId(n),
            a: m1,
            b: m2,
        },
        Op::MaskOr {
            dst: RegId(n + 1),
            a: m1,
            b: m2,
        },
        Op::MaskNot {
            dst: RegId(n + 2),
            a: m1,
        },
        Op::SelectF {
            dst: RegId(n + 3),
            mask: RegId(0),
            a: RegId(1),
            b: RegId(2),
        },
        Op::CastRound {
            dst: RegId(n + 4),
            a: RegId(0),
        },
        Op::CastSat {
            dst: RegId(n + 5),
            a: RegId(0),
            lo: 0.0,
            hi: 255.0,
        },
    ] {
        ops.push(op);
        n += 1;
    }
    Kernel {
        ops,
        nregs: n as usize,
        meta: None,
        // every computed register is an output
        outs: (2..n).map(RegId).collect(),
    }
}

/// 1-D contiguous view over a data slice.
fn view(d: &[f32]) -> BufView<'_> {
    BufView {
        data: d,
        origin: vec![0],
        strides: vec![1],
        sizes: vec![d.len() as i64],
    }
}

/// Evaluates `k` once at (x0=0, len) against the two special-value buffers
/// and returns the bit pattern of every output register's live lanes.
fn eval_bits(k: &Kernel, a: &[f32], b: &[f32], len: usize, level: SimdLevel) -> Vec<u32> {
    let bufs = [Some(view(a)), Some(view(b))];
    let ctx = ChunkCtx {
        coords: &[0],
        len,
        inner: 0,
        bufs: &bufs,
    };
    let mut regs = RegFile::new();
    regs.set_simd(level);
    eval_kernel(k, &ctx, &mut regs);
    let mut out = Vec::new();
    for &r in &k.outs {
        out.extend(regs.reg(r)[..len].iter().map(|v| v.to_bits()));
    }
    out
}

/// Every level × every vectorized op × every body/tail split 1..=CHUNK is
/// bit-identical to the scalar loops on adversarial values.
#[test]
fn all_levels_bit_identical_at_every_tail_length() {
    let k = all_ops_kernel();
    let a = special_data(0);
    let b = special_data(3);
    for len in 1..=CHUNK {
        let want = eval_bits(&k, &a, &b, len, SimdLevel::Scalar);
        for level in available_simd_levels() {
            let got = eval_bits(&k, &a, &b, len, level);
            assert_eq!(want, got, "level {level} diverged from scalar at len {len}");
        }
    }
}

/// Strided loads (the AVX2 gather path) are value-identical to scalar
/// indexing at every length, including negative strides via dim-0 chunking
/// of a row-major 2-D view.
#[test]
fn strided_loads_bit_identical() {
    let cols = 7i64;
    let rows = CHUNK as i64 + 3;
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| SPECIALS[i as usize % SPECIALS.len()])
        .collect();
    let k = Kernel {
        ops: vec![Op::Load {
            dst: RegId(0),
            buf: BufId(0),
            plan: vec![
                IdxPlan::Affine {
                    dim: Some(0),
                    q: 2,
                    o: 1,
                    m: 1,
                },
                IdxPlan::Affine {
                    dim: Some(1),
                    q: 1,
                    o: 0,
                    m: 1,
                },
            ],
        }],
        nregs: 1,
        meta: None,
        outs: vec![RegId(0)],
    };
    let bufs = [Some(BufView {
        data: &data,
        origin: vec![0, 0],
        strides: vec![cols, 1],
        sizes: vec![rows, cols],
    })];
    for len in [1usize, 3, 4, 5, 8, 9, 31, 60] {
        for y in 0..cols {
            let ctx = ChunkCtx {
                coords: &[0, y],
                len,
                inner: 0,
                bufs: &bufs,
            };
            let mut want = Vec::new();
            for level in available_simd_levels() {
                let mut regs = RegFile::new();
                regs.set_simd(level);
                eval_kernel(&k, &ctx, &mut regs);
                let got: Vec<u32> = regs.reg(RegId(0))[..len]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                if level == SimdLevel::Scalar {
                    for (i, &bits) in got.iter().enumerate() {
                        let idx = (2 * i as i64 + 1) * cols + y;
                        assert_eq!(bits, data[idx as usize].to_bits());
                    }
                    want = got;
                } else {
                    assert_eq!(want, got, "level {level} gather len {len} y {y}");
                }
            }
        }
    }
}

/// Register-file reuse: a long evaluation followed by a short one on the
/// *same* register file yields exactly what a fresh register file yields —
/// stale lanes beyond `len` are never observable through outputs. This is
/// the contract that lets engine workers keep one `RegFile` across jobs
/// and lets `ensure`/`begin_row` skip re-zeroing live registers.
#[test]
fn tail_chunks_never_see_stale_lanes() {
    let k = all_ops_kernel();
    let a = special_data(1);
    let b = special_data(5);
    let a2 = special_data(9);
    let b2 = special_data(13);
    for level in available_simd_levels() {
        let mut reused = RegFile::new();
        reused.set_simd(level);
        // Long evaluation fills all CHUNK lanes of every register.
        {
            let bufs = [Some(view(&a)), Some(view(&b))];
            reused.begin_row();
            let ctx = ChunkCtx {
                coords: &[0],
                len: CHUNK,
                inner: 0,
                bufs: &bufs,
            };
            eval_kernel(&k, &ctx, &mut reused);
        }
        // Short tail evaluation on different data, same register file.
        for len in [1usize, 2, 7, 31] {
            let bufs = [Some(view(&a2)), Some(view(&b2))];
            reused.begin_row();
            let ctx = ChunkCtx {
                coords: &[0],
                len,
                inner: 0,
                bufs: &bufs,
            };
            eval_kernel(&k, &ctx, &mut reused);
            let fresh_bits = eval_bits(&k, &a2, &b2, len, level);
            let mut reused_bits = Vec::new();
            for &r in &k.outs {
                reused_bits.extend(reused.reg(r)[..len].iter().map(|v| v.to_bits()));
            }
            assert_eq!(
                fresh_bits, reused_bits,
                "stale lanes leaked at level {level} len {len}"
            );
        }
    }
}

/// `set_simd` clamps to host support, and lane counters attribute work to
/// the level actually dispatched.
#[test]
fn level_clamping_and_counters() {
    let k = all_ops_kernel();
    let a = special_data(0);
    let b = special_data(3);
    for level in available_simd_levels() {
        let bufs = [Some(view(&a)), Some(view(&b))];
        let ctx = ChunkCtx {
            coords: &[0],
            len: 17,
            inner: 0,
            bufs: &bufs,
        };
        let mut regs = RegFile::new();
        regs.set_simd(level);
        assert_eq!(regs.simd_level(), level, "available level must stick");
        eval_kernel(&k, &ctx, &mut regs);
        let c = regs.take_counters();
        let lanes = [
            c.simd_lanes_scalar,
            c.simd_lanes_sse2,
            c.simd_lanes_avx2,
            c.simd_lanes_neon,
        ];
        let idx = match level {
            SimdLevel::Scalar => 0,
            SimdLevel::Sse2 => 1,
            SimdLevel::Avx2 => 2,
            SimdLevel::Neon => 3,
        };
        assert_eq!(lanes[idx], 17, "lanes counted at the dispatched level");
        for (i, &l) in lanes.iter().enumerate() {
            if i != idx {
                assert_eq!(l, 0, "no lanes counted at other levels");
            }
        }
    }
    // An unavailable level clamps to something the host has (never panics,
    // never dispatches unsupported instructions).
    let mut regs = RegFile::new();
    regs.set_simd(SimdLevel::Avx2);
    let eff = regs.simd_level();
    assert!(
        available_simd_levels().contains(&eff),
        "clamped level {eff} must be available"
    );
}
