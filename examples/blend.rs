//! Pyramid blending scenario (the paper's Fig. 8 workload): blend two
//! out-of-focus halves into one all-in-focus image, comparing the
//! optimized schedule against the unfused baseline and the library-style
//! reference.
//!
//! ```sh
//! cargo run --release --example blend
//! ```

use polymage::apps::pyramid::PyramidBlend;
use polymage::apps::{Benchmark, Scale};
use polymage::core::{CompileOptions, Session};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = PyramidBlend::new(Scale::Small);
    let inputs = app.make_inputs(2024);
    let session = Session::with_threads(2);

    let opt = session.compile(app.pipeline(), &CompileOptions::optimized(app.params()))?;
    println!("grouping (dashed boxes of Fig. 8):");
    for (i, g) in opt.report.groups.iter().enumerate() {
        println!("  box {i}: {}", g.stages.join(" "));
    }

    // warm up, then time (the session's pooled workers stay warm between runs)
    let _ = session.run_compiled(&opt, &inputs)?;
    let t = Instant::now();
    let out = session.run_compiled(&opt, &inputs)?;
    let opt_ms = t.elapsed().as_secs_f64() * 1e3;

    let base = session.compile(app.pipeline(), &CompileOptions::base(app.params()))?;
    let _ = session.run_compiled(&base, &inputs)?;
    let t = Instant::now();
    let base_out = session.run_compiled(&base, &inputs)?;
    let base_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let reference = app.reference(&inputs);
    let lib_ms = t.elapsed().as_secs_f64() * 1e3;

    println!("\noptimized: {opt_ms:.2} ms   base: {base_ms:.2} ms   library-style: {lib_ms:.2} ms");
    println!("fusion+tiling speedup over base: {:.2}x", base_ms / opt_ms);

    let diff = out[0].max_abs_diff(&base_out[0]);
    let rdiff = out[0].max_abs_diff(&reference[0]);
    println!("max |opt − base| = {diff}, max |opt − reference| = {rdiff}");
    assert!(diff < 1e-3 && rdiff < 1e-3);

    // a quick look at the blend seam
    let (rx, ry) = (out[0].rect.range(0), out[0].rect.range(1));
    let mid_x = (rx.0 + rx.1) / 2;
    print!("blend profile @ row {mid_x}: ");
    let step = (ry.1 - ry.0) / 8;
    for i in 0..=8 {
        print!("{:.2} ", out[0].at(&[mid_x, ry.0 + i * step]));
    }
    println!();
    Ok(())
}
