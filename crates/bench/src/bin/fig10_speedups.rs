//! Reproduces **Figure 10**: for each benchmark, the speedup of every
//! configuration — PolyMage(base), (base+vec), (opt), (opt+vec) — over
//! PolyMage(base) on one thread, across thread counts.
//!
//! The paper plots bars for 1/2/4/8/16 cores; pass `--threads 1,2,4,8,16`
//! on a many-core host. On a single-core host the thread series is flat and
//! the interesting axes are ±vec and base→opt (locality), which this
//! harness still reproduces.

use polymage_bench::{compile_config, time_program, Config, HarnessArgs};
use polymage_core::Session;

fn main() {
    let args = HarnessArgs::parse();
    let session = Session::with_threads(args.threads.iter().copied().max().unwrap_or(1));
    let engine = session.engine();
    println!(
        "Figure 10 — speedups over PolyMage(base) @ 1 thread; scale {:?}, runs {}",
        args.scale, args.runs
    );
    for b in args.benchmarks() {
        println!("\n--- {} ---", b.name());
        let inputs = b.make_inputs(42);
        let base = compile_config(&session, b.as_ref(), Config::Base);
        let t0 = time_program(engine, &base, &inputs, 1, args.runs).as_secs_f64();
        print!("{:<22}", "config \\ threads");
        for t in &args.threads {
            print!("{t:>9}");
        }
        println!();
        for cfg in Config::ALL {
            let compiled = compile_config(&session, b.as_ref(), cfg);
            print!("{:<22}", cfg.label());
            for &t in &args.threads {
                let d = time_program(engine, &compiled, &inputs, t, args.runs).as_secs_f64();
                print!("{:>8.2}x", t0 / d);
            }
            println!();
        }
    }
}
