//! Round-trip validation of the runnable C backend: the emitted C program
//! is compiled with the system C compiler and its output compared against
//! the VM — a third, fully independent implementation of the language
//! semantics (after the VM and the interpreter).
//!
//! Skips silently when no C compiler is installed.

use polymage_core::{compile, emit_c_inputs, emit_c_reference, CompileOptions};
use polymage_ir::*;
use polymage_poly::Rect;
use polymage_vm::{run_program, Buffer};
use std::process::Command;

fn have_cc() -> bool {
    Command::new("cc").arg("--version").output().is_ok()
}

/// Compiles and runs the C reference, returning the printed values.
fn run_c(pipe: &Pipeline, params: &[i64], inputs: &[Buffer]) -> Vec<f32> {
    let dir = std::env::temp_dir().join(format!(
        "polymage-cref-{}-{}",
        pipe.name(),
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let main_c = emit_c_reference(pipe, params);
    let data: Vec<&[f32]> = inputs.iter().map(|b| b.data.as_slice()).collect();
    let inputs_c = emit_c_inputs(pipe, params, &data);
    std::fs::write(dir.join("main.c"), &main_c).unwrap();
    std::fs::write(dir.join("inputs.c"), &inputs_c).unwrap();
    let exe = dir.join("prog");
    let out = Command::new("cc")
        .args(["-O1", "-o"])
        .arg(&exe)
        .arg(dir.join("main.c"))
        .arg(dir.join("inputs.c"))
        .arg("-lm")
        .output()
        .expect("cc invocation");
    assert!(
        out.status.success(),
        "cc failed:\n{}\n--- main.c ---\n{}",
        String::from_utf8_lossy(&out.stderr),
        main_c
    );
    let run = Command::new(&exe).output().expect("run emitted program");
    assert!(run.status.success());
    let _ = std::fs::remove_dir_all(&dir);
    String::from_utf8(run.stdout)
        .unwrap()
        .lines()
        .map(|l| l.trim().parse::<f32>().expect("float line"))
        .collect()
}

fn check_roundtrip(pipe: &Pipeline, params: Vec<i64>, inputs: &[Buffer], tol: f32) {
    if !have_cc() {
        eprintln!("no C compiler; skipping");
        return;
    }
    let cvals = run_c(pipe, &params, inputs);
    let compiled = compile(pipe, &CompileOptions::optimized(params)).unwrap();
    let got = run_program(&compiled.program, inputs, 2).unwrap();
    let vmvals: Vec<f32> = got.iter().flat_map(|b| b.data.iter().copied()).collect();
    assert_eq!(cvals.len(), vmvals.len(), "output size mismatch");
    for (i, (c, v)) in cvals.iter().zip(&vmvals).enumerate() {
        assert!(
            (c - v).abs() <= tol + tol * v.abs(),
            "elem {i}: C {c} vs VM {v}"
        );
    }
}

#[test]
fn c_backend_matches_vm_on_stencil_pipeline() {
    let mut p = PipelineBuilder::new("cref_stencil");
    let (r, c) = (p.param("R"), p.param("C"));
    let img = p.image("I", ScalarType::Float, vec![PAff::param(r), PAff::param(c)]);
    let (x, y) = (p.var("x"), p.var("y"));
    let d1 = (
        Interval::new(PAff::cst(1), PAff::param(r) - 2),
        Interval::new(PAff::cst(1), PAff::param(c) - 2),
    );
    let blur = p.func(
        "blur",
        &[(x, d1.0.clone()), (y, d1.1.clone())],
        ScalarType::Float,
    );
    p.define(
        blur,
        vec![Case::always(stencil(
            img,
            &[x, y],
            1.0 / 9.0,
            &[[1, 1, 1], [1, 1, 1], [1, 1, 1]],
        ))],
    )
    .unwrap();
    let d2 = (
        Interval::new(PAff::cst(2), PAff::param(r) - 3),
        Interval::new(PAff::cst(2), PAff::param(c) - 3),
    );
    let sharp = p.func("sharp", &[(x, d2.0), (y, d2.1)], ScalarType::Float);
    p.define(
        sharp,
        vec![Case::always(
            Expr::at(img, [Expr::from(x), Expr::from(y)]) * 2.0
                - Expr::at(blur, [Expr::from(x), Expr::from(y)]),
        )],
    )
    .unwrap();
    let pipe = p.finish(&[sharp]).unwrap();
    let input = Buffer::zeros(Rect::new(vec![(0, 40), (0, 36)]))
        .fill_with(|pt| ((pt[0] * 13 + pt[1] * 7) % 32) as f32 / 8.0);
    check_roundtrip(&pipe, vec![41, 37], &[input], 1e-5);
}

#[test]
fn c_backend_matches_vm_on_histogram_lut() {
    let mut p = PipelineBuilder::new("cref_hist");
    let img = p.image("I", ScalarType::UChar, vec![PAff::cst(40), PAff::cst(40)]);
    let (x, y, b) = (p.var("x"), p.var("y"), p.var("b"));
    let d = Interval::cst(0, 39);
    let acc = Accumulate {
        red_vars: vec![x, y],
        red_dom: vec![d.clone(), d.clone()],
        target: vec![Expr::at(img, [Expr::from(x), Expr::from(y)])],
        value: Expr::Const(1.0),
        op: Reduction::Sum,
    };
    let hist = p
        .accumulator("hist", &[(b, Interval::cst(0, 63))], ScalarType::Int, acc)
        .unwrap();
    let out = p.func("eq", &[(x, d.clone()), (y, d)], ScalarType::Float);
    p.define(
        out,
        vec![Case::always(Expr::at(
            hist,
            [Expr::at(img, [Expr::from(x), Expr::from(y)])],
        ))],
    )
    .unwrap();
    let pipe = p.finish(&[out]).unwrap();
    let input = Buffer::zeros(Rect::new(vec![(0, 39), (0, 39)]))
        .fill_with(|pt| ((pt[0] * 31 + pt[1] * 17) % 64) as f32);
    check_roundtrip(&pipe, vec![], &[input], 0.0);
}

#[test]
fn c_backend_matches_vm_on_sampling_and_parity() {
    let mut p = PipelineBuilder::new("cref_sample");
    let img = p.image("I", ScalarType::Float, vec![PAff::cst(64)]);
    let x = p.var("x");
    // down(x) = I(2x) + I(2x+1) over [0,31]
    let down = p.func("down", &[(x, Interval::cst(0, 31))], ScalarType::Float);
    p.define(
        down,
        vec![Case::always(
            Expr::at(img, [2i64 * Expr::from(x)]) + Expr::at(img, [2i64 * Expr::from(x) + 1]),
        )],
    )
    .unwrap();
    // up with parity cases: even → down(x/2), odd → −down(x/2)
    let up = p.func("up", &[(x, Interval::cst(0, 62))], ScalarType::Float);
    p.define(
        up,
        vec![
            Case::new(
                Expr::from(x).rem(2.0).eq_(0.0),
                Expr::at(down, [Expr::from(x) / 2]),
            ),
            Case::new(
                Expr::from(x).rem(2.0).eq_(1.0),
                -Expr::at(down, [Expr::from(x) / 2]),
            ),
        ],
    )
    .unwrap();
    let pipe = p.finish(&[up]).unwrap();
    let input = Buffer::zeros(Rect::new(vec![(0, 63)])).fill_with(|pt| (pt[0] % 9) as f32 - 4.0);
    check_roundtrip(&pipe, vec![], &[input], 0.0);
}

#[test]
fn c_backend_matches_vm_on_time_iteration() {
    let mut p = PipelineBuilder::new("cref_scan");
    let img = p.image("I", ScalarType::Float, vec![PAff::cst(32)]);
    let (t, x) = (p.var("t"), p.var("x"));
    let f = p.func(
        "f",
        &[(t, Interval::cst(0, 3)), (x, Interval::cst(0, 31))],
        ScalarType::Float,
    );
    p.define(
        f,
        vec![
            Case::new(Expr::from(t).le(0), Expr::at(img, [Expr::from(x)])),
            Case::new(
                Expr::from(t).ge(1) & Expr::from(x).ge(1) & Expr::from(x).le(30),
                (Expr::at(f, [t - 1, x - 1]) + Expr::at(f, [t - 1, x + 1])) * 0.5,
            ),
        ],
    )
    .unwrap();
    let pipe = p.finish(&[f]).unwrap();
    let input = Buffer::zeros(Rect::new(vec![(0, 31)])).fill_with(|pt| (pt[0] * pt[0] % 11) as f32);
    check_roundtrip(&pipe, vec![], &[input], 1e-6);
}

/// The paper's benchmark pipelines themselves round-trip through the C
/// backend at Tiny scale (apps with big inputs are covered by their own
/// reference tests; here we take the three with the most varied access
/// patterns).
#[test]
fn c_backend_matches_vm_on_benchmarks() {
    if !have_cc() {
        eprintln!("no C compiler; skipping");
        return;
    }
    use polymage_apps::{Benchmark, Scale};
    let apps: Vec<Box<dyn Benchmark>> = vec![
        Box::new(polymage_apps::harris::HarrisCorner::new(Scale::Tiny)),
        Box::new(polymage_apps::camera::CameraPipe::new(Scale::Tiny)),
        Box::new(polymage_apps::bilateral::BilateralGrid::new(Scale::Tiny)),
    ];
    for app in apps {
        let inputs = app.make_inputs(5);
        check_roundtrip(app.pipeline(), app.params(), &inputs, app.tolerance());
    }
}
