//! aarch64 NEON chunk loops (4 lanes, baseline on every aarch64 CPU).
//!
//! Bit-exactness here comes from same-instruction equivalence with the
//! aarch64 *scalar* lowering rather than from emulating x86 semantics:
//!
//! * `f32::min`/`f32::max` lower to `fminnm`/`fmaxnm` on aarch64, and
//!   `vminnmq_f32`/`vmaxnmq_f32` are exactly the vector forms of those
//!   instructions — per-lane identical results by construction.
//! * `f32::round` lowers to `frinta` (round to integral, ties away);
//!   `vrndaq_f32` is the vector `frinta`.
//! * comparisons, clamp, and select are built from ordered compares and
//!   `bsl`, matching the scalar `<`/`>`/`!=` semantics on NaN and ±0.
//! * No fused multiply-add intrinsics are used anywhere.

use crate::eval::{round_ties_away, scalar_bin, scalar_cmp, CHUNK};
use crate::{BinF, CmpF};
use std::arch::aarch64::*;

/// Mask (all-ones/all-zeros lanes) to a 1.0/0.0 float mask.
#[inline]
#[target_feature(enable = "neon")]
unsafe fn mask_to_f32(m: uint32x4_t) -> float32x4_t {
    vreinterpretq_f32_u32(vandq_u32(m, vreinterpretq_u32_f32(vdupq_n_f32(1.0))))
}

/// `f32::clamp(v, lo, hi)` semantics (NaN passes through).
#[inline]
#[target_feature(enable = "neon")]
unsafe fn clampq(v: float32x4_t, lo: float32x4_t, hi: float32x4_t) -> float32x4_t {
    let below = vcltq_f32(v, lo);
    let c = vbslq_f32(below, lo, v);
    let above = vcgtq_f32(c, hi);
    vbslq_f32(above, hi, c)
}

/// Lane-exact `BinF` over register chunks (Mod/Pow never dispatched here).
#[target_feature(enable = "neon")]
pub(super) unsafe fn bin_neon(
    op: BinF,
    d: &mut [f32; CHUNK],
    a: &[f32; CHUNK],
    b: &[f32; CHUNK],
    len: usize,
) {
    let n = len & !3;
    let (ap, bp, dp) = (a.as_ptr(), b.as_ptr(), d.as_mut_ptr());
    macro_rules! lanes {
        ($ins:path) => {{
            let mut i = 0;
            while i < n {
                let r = $ins(vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
                vst1q_f32(dp.add(i), r);
                i += 4;
            }
        }};
    }
    match op {
        BinF::Add => lanes!(vaddq_f32),
        BinF::Sub => lanes!(vsubq_f32),
        BinF::Mul => lanes!(vmulq_f32),
        BinF::Div => lanes!(vdivq_f32),
        BinF::Min => lanes!(vminnmq_f32),
        BinF::Max => lanes!(vmaxnmq_f32),
        BinF::Mod | BinF::Pow => debug_assert!(false, "Mod/Pow are scalar-only"),
    }
    for i in n..len {
        d[i] = scalar_bin(op, a[i], b[i]);
    }
}

/// Comparison masks (1.0 / 0.0) over register chunks.
#[target_feature(enable = "neon")]
pub(super) unsafe fn cmp_neon(
    op: CmpF,
    d: &mut [f32; CHUNK],
    a: &[f32; CHUNK],
    b: &[f32; CHUNK],
    len: usize,
) {
    let n = len & !3;
    let (ap, bp, dp) = (a.as_ptr(), b.as_ptr(), d.as_mut_ptr());
    let mut i = 0;
    while i < n {
        let va = vld1q_f32(ap.add(i));
        let vb = vld1q_f32(bp.add(i));
        let m = match op {
            CmpF::Lt => vcltq_f32(va, vb),
            CmpF::Le => vcleq_f32(va, vb),
            CmpF::Gt => vcltq_f32(vb, va),
            CmpF::Ge => vcleq_f32(vb, va),
            CmpF::Eq => vceqq_f32(va, vb),
            CmpF::Ne => vmvnq_u32(vceqq_f32(va, vb)),
        };
        vst1q_f32(dp.add(i), mask_to_f32(m));
        i += 4;
    }
    for i in n..len {
        d[i] = scalar_cmp(op, a[i], b[i]);
    }
}

/// Mask negation `d = 1.0 − a`.
#[target_feature(enable = "neon")]
pub(super) unsafe fn not_neon(d: &mut [f32; CHUNK], a: &[f32; CHUNK], len: usize) {
    let n = len & !3;
    let one = vdupq_n_f32(1.0);
    let mut i = 0;
    while i < n {
        vst1q_f32(
            d.as_mut_ptr().add(i),
            vsubq_f32(one, vld1q_f32(a.as_ptr().add(i))),
        );
        i += 4;
    }
    for i in n..len {
        d[i] = 1.0 - a[i];
    }
}

/// Lane select `d[i] = if m[i] != 0.0 { a[i] } else { b[i] }`.
#[target_feature(enable = "neon")]
pub(super) unsafe fn select_neon(
    d: &mut [f32; CHUNK],
    m: &[f32; CHUNK],
    a: &[f32; CHUNK],
    b: &[f32; CHUNK],
    len: usize,
) {
    let n = len & !3;
    let zero = vdupq_n_f32(0.0);
    let mut i = 0;
    while i < n {
        let vm = vld1q_f32(m.as_ptr().add(i));
        let va = vld1q_f32(a.as_ptr().add(i));
        let vb = vld1q_f32(b.as_ptr().add(i));
        // NaN != 0.0 is true, -0.0 != 0.0 is false — matches the scalar test.
        let take_a = vmvnq_u32(vceqq_f32(vm, zero));
        vst1q_f32(d.as_mut_ptr().add(i), vbslq_f32(take_a, va, vb));
        i += 4;
    }
    for i in n..len {
        d[i] = if m[i] != 0.0 { a[i] } else { b[i] };
    }
}

/// `CastRound`: round half away from zero (`frinta`).
#[target_feature(enable = "neon")]
pub(super) unsafe fn round_neon(d: &mut [f32; CHUNK], a: &[f32; CHUNK], len: usize) {
    let n = len & !3;
    let mut i = 0;
    while i < n {
        vst1q_f32(
            d.as_mut_ptr().add(i),
            vrndaq_f32(vld1q_f32(a.as_ptr().add(i))),
        );
        i += 4;
    }
    for i in n..len {
        d[i] = round_ties_away(a[i]);
    }
}

/// `CastSat`: clamp to `[lo, hi]`, then round half away from zero.
#[target_feature(enable = "neon")]
pub(super) unsafe fn sat_neon(
    d: &mut [f32; CHUNK],
    a: &[f32; CHUNK],
    lo: f32,
    hi: f32,
    len: usize,
) {
    let n = len & !3;
    let vlo = vdupq_n_f32(lo);
    let vhi = vdupq_n_f32(hi);
    let mut i = 0;
    while i < n {
        let c = clampq(vld1q_f32(a.as_ptr().add(i)), vlo, vhi);
        vst1q_f32(d.as_mut_ptr().add(i), vrndaq_f32(c));
        i += 4;
    }
    for i in n..len {
        d[i] = round_ties_away(a[i].clamp(lo, hi));
    }
}

/// Chunk store with optional saturation/rounding into an output buffer
/// slice.
#[target_feature(enable = "neon")]
pub(super) unsafe fn store_neon(
    dst: &mut [f32],
    src: &[f32],
    sat: Option<(f32, f32)>,
    round: bool,
) {
    let len = dst.len().min(src.len());
    let n = len & !3;
    let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
    match (sat, round) {
        (Some((lo, hi)), true) => {
            let (vlo, vhi) = (vdupq_n_f32(lo), vdupq_n_f32(hi));
            let mut i = 0;
            while i < n {
                let c = clampq(vld1q_f32(sp.add(i)), vlo, vhi);
                vst1q_f32(dp.add(i), vrndaq_f32(c));
                i += 4;
            }
            for i in n..len {
                dst[i] = round_ties_away(src[i].clamp(lo, hi));
            }
        }
        (Some((lo, hi)), false) => {
            let (vlo, vhi) = (vdupq_n_f32(lo), vdupq_n_f32(hi));
            let mut i = 0;
            while i < n {
                vst1q_f32(dp.add(i), clampq(vld1q_f32(sp.add(i)), vlo, vhi));
                i += 4;
            }
            for i in n..len {
                dst[i] = src[i].clamp(lo, hi);
            }
        }
        (None, true) => {
            let mut i = 0;
            while i < n {
                vst1q_f32(dp.add(i), vrndaq_f32(vld1q_f32(sp.add(i))));
                i += 4;
            }
            for i in n..len {
                dst[i] = round_ties_away(src[i]);
            }
        }
        (None, false) => dst.copy_from_slice(&src[..len]),
    }
}
