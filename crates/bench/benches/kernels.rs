//! Kernel-optimizer ablation: the opt+vec schedule with the bit-exact SSA
//! pass pipeline (`CompileOptions::kernel_opt`) on vs off, across all seven
//! apps. Isolates the instruction-quality term — constant folding, CSE,
//! DCE, uniform-op hoisting, and specialized load loops — from the
//! schedule-level optimizations (grouping/tiling/storage), which are held
//! fixed. Numbers go into EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polymage_apps::{all_benchmarks, Scale};
use polymage_core::{compile, CompileOptions};
use polymage_vm::Engine;

fn bench_kernel_opt(c: &mut Criterion) {
    let threads = 1; // single-core container; avoids scheduler noise
    let engine = Engine::with_threads(threads);
    for b in all_benchmarks(Scale::Small) {
        let inputs = b.make_inputs(42);
        let on = compile(b.pipeline(), &CompileOptions::optimized(b.params()))
            .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        let off = compile(
            b.pipeline(),
            &CompileOptions::optimized(b.params()).with_kernel_opt(false),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        let mut g = c.benchmark_group(format!("kernels_{}", b.name().replace(' ', "_")));
        g.sample_size(15);
        g.bench_function(BenchmarkId::from_parameter("kernel-opt"), |bench| {
            bench.iter(|| {
                engine
                    .run_with_threads(&on.program, &inputs, threads)
                    .unwrap()
            })
        });
        g.bench_function(BenchmarkId::from_parameter("no-kernel-opt"), |bench| {
            bench.iter(|| {
                engine
                    .run_with_threads(&off.program, &inputs, threads)
                    .unwrap()
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_kernel_opt);
criterion_main!(benches);
