//! Reproduces **Figure 8** (and Fig. 2): prints the stage graph and the
//! grouping the compiler finds for each benchmark — the dashed boxes of the
//! paper's Pyramid Blending figure — as text and Graphviz dot.

use polymage_bench::HarnessArgs;
use polymage_core::{compile, CompileOptions};
use polymage_graph::PipelineGraph;

fn main() {
    let args = HarnessArgs::parse();
    for b in args.benchmarks() {
        println!("\n================ {} ================", b.name());
        let graph = PipelineGraph::build(b.pipeline()).expect("valid DAG");
        println!("--- stage graph (Fig. 2 style, dot) ---");
        println!("{}", graph.to_dot(b.pipeline()));
        let compiled =
            compile(b.pipeline(), &CompileOptions::optimized(b.params())).expect("compile");
        println!("--- grouping report ---");
        println!("{}", compiled.report);
        println!("--- grouping (Fig. 8 style, dot clusters) ---");
        println!("{}", compiled.report.grouping_dot());
    }
}
