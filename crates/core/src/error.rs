//! Compiler errors.

use polymage_graph::{BoundsViolation, GraphError};
use polymage_ir::IrError;
use std::error::Error;
use std::fmt;

/// Errors reported by [`crate::compile`].
#[derive(Debug, Clone)]
pub enum CompileError {
    /// Structural error in the specification.
    Ir(IrError),
    /// Graph construction failed (dependence cycle).
    Graph(GraphError),
    /// The static bounds check found out-of-range accesses.
    Bounds(Vec<BoundsViolation>),
    /// A self-referential stage's self-dependences are not lexicographically
    /// backward (the scan order cannot satisfy them), or use unsupported
    /// (scaled/dynamic) self-access patterns.
    InvalidSelfReference {
        /// Stage name.
        func: String,
        /// Explanation.
        reason: String,
    },
    /// A parameter value required by the pipeline was not supplied.
    MissingParams {
        /// Parameters the pipeline declares.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A stage domain or image extent evaluated to an empty/negative size.
    EmptyDomain {
        /// Stage or image name.
        name: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Ir(e) => write!(f, "specification error: {e}"),
            CompileError::Graph(e) => write!(f, "pipeline graph error: {e}"),
            CompileError::Bounds(vs) => {
                writeln!(f, "static bounds check failed ({} violations):", vs.len())?;
                for v in vs.iter().take(5) {
                    writeln!(f, "  {v}")?;
                }
                if vs.len() > 5 {
                    writeln!(f, "  …")?;
                }
                Ok(())
            }
            CompileError::InvalidSelfReference { func, reason } => {
                write!(f, "invalid self-reference in `{func}`: {reason}")
            }
            CompileError::MissingParams { expected, got } => {
                write!(
                    f,
                    "pipeline declares {expected} parameter(s), got {got} value(s)"
                )
            }
            CompileError::EmptyDomain { name } => {
                write!(f, "domain of `{name}` is empty for the given parameters")
            }
        }
    }
}

impl Error for CompileError {}

impl From<IrError> for CompileError {
    fn from(e: IrError) -> Self {
        CompileError::Ir(e)
    }
}

impl From<GraphError> for CompileError {
    fn from(e: GraphError) -> Self {
        CompileError::Graph(e)
    }
}
