//! Cooperative cancellation, deadlines, and admission policies.
//!
//! Programs here are hand-assembled chains of pointwise tiled groups
//! (`out_g(x) = out_{g-1}(x) + 1`), long enough that a run spans many
//! tile claims — the granularity at which cancellation must take hold.

use polymage_poly::Rect;
use polymage_vm::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A chain of `ngroups` pointwise tiled groups over a 1-D domain of
/// `len` points, `tile` points per tile (one tile per strip). Group `g`
/// stores `buf[g] + 1` directly into `buf[g+1]`; the final buffer is the
/// output, so `out(x) = in(x) + ngroups`.
fn chain_program(ngroups: usize, len: i64, tile: i64) -> Program {
    assert!(len % tile == 0);
    let mut buffers = vec![BufDecl {
        name: "in".into(),
        kind: BufKind::Full,
        sizes: vec![len],
        origin: vec![0],
    }];
    for g in 0..ngroups {
        buffers.push(BufDecl {
            name: format!("b{}", g + 1),
            kind: BufKind::Full,
            sizes: vec![len],
            origin: vec![0],
        });
    }

    let dom = Rect::new(vec![(0, len - 1)]);
    let mut groups = Vec::new();
    for g in 0..ngroups {
        let src = BufId(g);
        let dst = BufId(g + 1);
        let kernel = Kernel {
            ops: vec![
                Op::Load {
                    dst: RegId(0),
                    buf: src,
                    plan: vec![IdxPlan::Affine {
                        dim: Some(0),
                        q: 1,
                        o: 0,
                        m: 1,
                    }],
                },
                Op::ConstF {
                    dst: RegId(1),
                    val: 1.0,
                },
                Op::BinF {
                    op: BinF::Add,
                    dst: RegId(2),
                    a: RegId(0),
                    b: RegId(1),
                },
            ],
            nregs: 3,
            meta: None,
            outs: vec![RegId(2)],
        };
        let stage = StageExec {
            name: format!("s{g}"),
            scratch: src, // unused: direct stages stream to their full buffer
            full: Some(dst),
            direct: true,
            sat: None,
            round: false,
            cases: vec![CaseExec {
                steps: vec![(1, 0)],
                rect: dom.clone(),
                kernel,
                mask: None,
            }],
            dom: dom.clone(),
            reads: vec![src],
        };
        let nstrips = (len / tile) as usize;
        let tiles: Vec<TileWork> = (0..nstrips)
            .map(|s| {
                let lo = s as i64 * tile;
                let r = Rect::new(vec![(lo, lo + tile - 1)]);
                TileWork {
                    strip: s,
                    regions: vec![r.clone()],
                    stores: vec![Some(r)],
                }
            })
            .collect();
        groups.push(GroupExec {
            name: format!("g{g}"),
            kind: GroupKind::Tiled(TiledGroup::new(vec![stage], tiles, nstrips, &buffers)),
        });
    }

    Program {
        name: format!("chain{ngroups}"),
        image_bufs: vec![BufId(0)],
        outputs: vec![("out".into(), BufId(ngroups))],
        mode: EvalMode::Vector,
        simd: process_simd_level(),
        storage: StoragePlan::run_scoped(buffers.len()),
        groups,
        buffers,
    }
}

fn input_for(len: i64, seed: u64) -> Buffer {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f32> = (0..len).map(|_| rng.gen_range(-8.0f32..8.0)).collect();
    Buffer::zeros(Rect::new(vec![(0, len - 1)])).fill_with(|p| data[p[0] as usize])
}

fn bits(bufs: &[Buffer]) -> Vec<Vec<u32>> {
    bufs.iter()
        .map(|b| b.data.iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// A run whose deadline already passed is cancelled before it computes,
/// with the honest reason, and the `sched.deadline_miss` counter fires.
#[test]
fn expired_deadline_cancels_with_deadline_reason() {
    let engine = Engine::with_threads(2);
    let prog = Arc::new(chain_program(4, 4096, 256));
    let input = input_for(4096, 1);
    let diag = polymage_diag::Diag::recorder();

    let handle = engine
        .submit(
            RunRequest::new(&prog, std::slice::from_ref(&input))
                .deadline(Duration::ZERO)
                .trace(&diag),
        )
        .unwrap();
    let (result, _stats) = handle.join_outcome();
    match result {
        Err(VmError::Cancelled {
            reason: CancelReason::Deadline,
        }) => {}
        other => panic!("expected deadline cancellation, got {other:?}"),
    }
    assert_eq!(engine.live_full_bytes(), 0);

    let rec = diag.snapshot().unwrap();
    assert!(rec.counter(polymage_diag::Counter::SchedCancel) >= 1);
    assert!(rec.counter(polymage_diag::Counter::SchedDeadlineMiss) >= 1);
}

/// Caller cancellation mid-run stops the run within one tile claim: the
/// remaining tiles are reported as `cancelled_tiles`, not computed, and
/// the run's buffers return to the pool immediately.
#[test]
fn caller_cancel_stops_within_one_tile_claim() {
    let engine = Engine::with_threads(2);
    // 16 groups × 256 tiles: far more claims than can finish instantly.
    let prog = Arc::new(chain_program(16, 1 << 18, 1 << 10));
    let total_tiles_per_group = 1u64 << 8;
    let input = input_for(1 << 18, 2);
    let diag = polymage_diag::Diag::recorder();

    let handle = engine
        .submit(RunRequest::new(&prog, std::slice::from_ref(&input)).trace(&diag))
        .unwrap();
    // Let it get going, then pull the plug.
    std::thread::sleep(Duration::from_millis(1));
    handle.cancel();
    let (result, stats) = handle.join_outcome();
    match result {
        Err(VmError::Cancelled {
            reason: CancelReason::Caller,
        }) => {}
        other => panic!("expected caller cancellation, got {other:?}"),
    }
    // The run must not have computed everything: either whole groups were
    // skipped (tiles counter short) or tiles inside a group were dropped
    // at the claim gate (cancelled_tiles counts them).
    let total = 16 * total_tiles_per_group;
    assert!(
        stats.tiles < total || stats.cancelled_tiles > 0,
        "cancelled run computed all {total} tiles (tiles {}, cancelled {})",
        stats.tiles,
        stats.cancelled_tiles
    );
    assert_eq!(engine.live_full_bytes(), 0, "buffers must return to pool");
    let rec = diag.snapshot().unwrap();
    assert!(rec.counter(polymage_diag::Counter::SchedCancel) >= 1);
}

/// `FailFast` submissions bounce off a full engine instead of blocking,
/// and `Shed` evicts a strictly-lower-priority victim to make room.
#[test]
fn overload_policies_fail_fast_and_shed() {
    let engine = Engine::with_threads_and_inflight(2, 1);
    let prog = Arc::new(chain_program(16, 1 << 18, 1 << 10));
    let input = input_for(1 << 18, 3);
    let inputs = std::slice::from_ref(&input);

    // Occupy the only slot with a low-priority run.
    let victim = engine
        .submit(RunRequest::new(&prog, inputs).priority(Priority::Low))
        .unwrap();

    // FailFast: immediate rejection, no blocking, reason Shed.
    let err = engine
        .submit(RunRequest::new(&prog, inputs).on_overload(OverloadPolicy::FailFast))
        .unwrap_err();
    assert!(matches!(
        err,
        VmError::Cancelled {
            reason: CancelReason::Shed
        }
    ));

    // Shed: the high-priority submission evicts the low-priority victim
    // and takes its slot.
    let high = engine
        .submit(
            RunRequest::new(&prog, inputs)
                .priority(Priority::High)
                .on_overload(OverloadPolicy::Shed),
        )
        .unwrap();
    let (victim_result, _) = victim.join_outcome();
    assert!(
        matches!(
            victim_result,
            Err(VmError::Cancelled {
                reason: CancelReason::Shed
            })
        ),
        "victim should be shed, got {victim_result:?}"
    );
    let out = high.join().unwrap();
    let fresh = Engine::with_threads(2)
        .submit(RunRequest::new(&prog, inputs))
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(bits(&fresh), bits(&out), "shedding must not corrupt winner");
    assert_eq!(engine.live_full_bytes(), 0);
}

/// Satellite regression: the admission slot is reserved *before* buffer
/// allocation, so a submitter blocked at the cap holds no memory — the
/// engine's live-buffer footprint never exceeds one run's working set
/// even with a second submission queued behind it.
#[test]
fn blocked_submitter_holds_no_buffers() {
    let engine = Arc::new(Engine::with_threads_and_inflight(2, 1));
    let len = 1i64 << 18;
    let ngroups = 16;
    let prog = Arc::new(chain_program(ngroups, len, 1 << 10));
    let one_run_bytes = (ngroups as u64 + 1) * len as u64 * 4;
    let input = input_for(len, 4);

    let a = engine
        .submit(RunRequest::new(&prog, std::slice::from_ref(&input)))
        .unwrap();
    let b_submitting = Arc::new(AtomicBool::new(false));
    let b_done = Arc::new(AtomicBool::new(false));
    let b_thread = {
        let (engine, prog, input) = (Arc::clone(&engine), Arc::clone(&prog), input.clone());
        let (b_submitting, b_done) = (Arc::clone(&b_submitting), Arc::clone(&b_done));
        std::thread::spawn(move || {
            b_submitting.store(true, Ordering::SeqCst);
            let out = engine
                .submit(RunRequest::new(&prog, std::slice::from_ref(&input)))
                .unwrap()
                .join()
                .unwrap();
            b_done.store(true, Ordering::SeqCst);
            out
        })
    };
    // While A runs and B queues (and after both finish), live bytes never
    // exceed a single run's footprint: the blocked submitter allocated
    // nothing.
    while !b_done.load(Ordering::SeqCst) {
        let live = engine.live_full_bytes();
        assert!(
            live <= one_run_bytes,
            "live {live} bytes exceeds one run's {one_run_bytes}: \
             blocked submitter is holding buffers"
        );
        std::thread::yield_now();
    }
    assert!(b_submitting.load(Ordering::SeqCst));
    a.join().unwrap();
    let out_b = b_thread.join().unwrap();
    let fresh = Engine::with_threads(2)
        .submit(RunRequest::new(&prog, std::slice::from_ref(&input)))
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(bits(&fresh), bits(&out_b));
    assert_eq!(engine.live_full_bytes(), 0);
}

/// On a single worker, a later-submitted high-priority run finishes ahead
/// of earlier low-priority submissions, and within the same band the
/// earlier deadline wins (EDF).
#[test]
fn priority_and_deadline_order_claims() {
    // One worker so claims are strictly ordered, with an admission cap
    // high enough that all four submissions are inflight at once.
    let engine = Engine::with_threads_and_inflight(1, 8);
    // The blocker is far longer than the queued runs (and than the cost
    // of submitting them), so the queue is fully built while the worker
    // is still busy — the claim order below is the scheduler's choice,
    // not submission timing.
    let big = Arc::new(chain_program(64, 1 << 18, 1 << 10));
    let big_input = input_for(1 << 18, 50);
    let prog = Arc::new(chain_program(8, 1 << 14, 1 << 9));
    let input = input_for(1 << 14, 5);
    let inputs = std::slice::from_ref(&input);

    // The blocker occupies the worker while the queue builds up.
    let blocker = engine
        .submit(RunRequest::new(&big, std::slice::from_ref(&big_input)))
        .unwrap();
    let low_a = engine
        .submit(RunRequest::new(&prog, inputs).priority(Priority::Low))
        .unwrap();
    let low_b = engine
        .submit(
            RunRequest::new(&prog, inputs)
                .priority(Priority::Low)
                .deadline(Duration::from_secs(600)),
        )
        .unwrap();
    let high = engine
        .submit(RunRequest::new(&prog, inputs).priority(Priority::High))
        .unwrap();

    let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|s| {
        for (name, handle) in [
            ("blocker", blocker),
            ("low_a", low_a),
            ("low_b", low_b),
            ("high", high),
        ] {
            let order = Arc::clone(&order);
            s.spawn(move || {
                handle.join().unwrap();
                order.lock().unwrap().push(name);
            });
        }
    });
    let order = order.lock().unwrap();
    let pos = |n: &str| order.iter().position(|&x| x == n).unwrap();
    assert!(
        pos("high") < pos("low_a") && pos("high") < pos("low_b"),
        "high-priority run must finish before queued low runs: {order:?}"
    );
    // EDF within the Low band: low_b has a deadline, low_a has none, so
    // low_b (the only deadline-bearing Low) runs first.
    assert!(
        pos("low_b") < pos("low_a"),
        "deadline-bearing run must precede no-deadline peer in-band: {order:?}"
    );
}

/// Queued runs report the time they spent waiting for their first claim.
#[test]
fn sched_wait_reported_for_queued_runs() {
    let engine = Engine::with_threads(1);
    let prog = Arc::new(chain_program(8, 1 << 16, 1 << 10));
    let input = input_for(1 << 16, 6);
    let inputs = std::slice::from_ref(&input);

    let first = engine.submit(RunRequest::new(&prog, inputs)).unwrap();
    let queued = engine.submit(RunRequest::new(&prog, inputs)).unwrap();
    let (_, s1) = first.join_stats().unwrap();
    let (_, s2) = queued.join_stats().unwrap();
    assert!(
        s2.sched_wait >= s1.sched_wait,
        "queued run waited {:?}, first {:?}",
        s2.sched_wait,
        s1.sched_wait
    );
    assert_eq!(s2.cancelled_tiles, 0);
}

/// Fuzz: concurrent runs with random cancellation points (pre-start,
/// mid-run, near-finish, never). Survivors are bit-exact against a fresh
/// engine, cancelled runs report the caller reason, and the pool's byte
/// accounting balances when the dust settles.
#[test]
fn cancellation_fuzz_survivors_bit_exact_and_pool_balances() {
    let len = 1i64 << 14;
    let prog = Arc::new(chain_program(6, len, 1 << 9));
    let fresh = Engine::with_threads(2);
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
        let engine = Engine::with_threads(3);
        let n = 6;
        let runs: Vec<(Buffer, Option<Duration>)> = (0..n)
            .map(|i| {
                let input = input_for(len, seed * 100 + i);
                // i % 3 == 0 → never cancelled; otherwise a random point
                // from "before anything starts" to "probably finished".
                let cancel_after =
                    (i % 3 != 0).then(|| Duration::from_micros(rng.gen_range(0..3_000u64)));
                (input, cancel_after)
            })
            .collect();

        std::thread::scope(|s| {
            let mut joiners = Vec::new();
            for (input, cancel_after) in &runs {
                let handle = engine
                    .submit(RunRequest::new(&prog, std::slice::from_ref(input)))
                    .unwrap();
                if let Some(delay) = *cancel_after {
                    let token = handle.cancel_token();
                    s.spawn(move || {
                        std::thread::sleep(delay);
                        token.cancel();
                    });
                }
                joiners.push((handle, input, cancel_after.is_some()));
            }
            for (handle, input, was_cancelled) in joiners {
                let (result, stats) = handle.join_outcome();
                match result {
                    Ok(out) => {
                        // Cancelled-too-late runs may still complete; runs
                        // we never cancelled must.
                        let want = fresh
                            .submit(RunRequest::new(&prog, std::slice::from_ref(input)))
                            .unwrap()
                            .join()
                            .unwrap();
                        assert_eq!(
                            bits(&want),
                            bits(&out),
                            "seed {seed}: survivor diverged from fresh engine"
                        );
                        assert_eq!(stats.cancelled_tiles, 0);
                    }
                    Err(VmError::Cancelled {
                        reason: CancelReason::Caller,
                    }) => {
                        assert!(
                            was_cancelled,
                            "seed {seed}: uncancelled run reported caller cancellation"
                        );
                    }
                    Err(other) => panic!("seed {seed}: unexpected error {other:?}"),
                }
            }
        });

        assert_eq!(
            engine.live_full_bytes(),
            0,
            "seed {seed}: runs resolved but buffers still live"
        );
        let pool = engine.pool_stats();
        assert_eq!(
            pool.retained_bytes,
            engine.pool_audit_retained_bytes(),
            "seed {seed}: pool byte accounting drifted"
        );
    }
}

/// The deprecated pre-`RunRequest` entry points still work (they are kept
/// as shims for embedders one release behind).
#[test]
#[allow(deprecated)]
fn deprecated_shims_still_run() {
    let engine = Engine::with_threads(2);
    let prog = Arc::new(chain_program(3, 4096, 256));
    let input = input_for(4096, 7);
    let inputs = std::slice::from_ref(&input);

    let via_run = engine.run(&prog, inputs).unwrap();
    let via_threads = engine.run_with_threads(&prog, inputs, 1).unwrap();
    let (via_stats, stats) = engine.run_stats(&prog, inputs).unwrap();
    let via_submit = engine
        .submit_default(&prog, inputs)
        .unwrap()
        .join()
        .unwrap();
    let via_new = engine
        .submit(RunRequest::new(&prog, inputs))
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(bits(&via_new), bits(&via_run));
    assert_eq!(bits(&via_new), bits(&via_threads));
    assert_eq!(bits(&via_new), bits(&via_stats));
    assert_eq!(bits(&via_new), bits(&via_submit));
    assert!(stats.tiles > 0);
}
