//! Expression tree traversal helpers used across the compiler crates.

use crate::{Cond, Expr, FuncBody, FuncDef};

/// Visitor callback over every [`Expr`] node in a tree (pre-order).
pub type ExprVisitor<'a> = dyn FnMut(&Expr) + 'a;

/// Visits `e` and every sub-expression, including those nested inside
/// `Select` conditions, in pre-order.
pub fn visit_exprs(e: &Expr, f: &mut dyn FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::Param(_) => {}
        Expr::Call(_, args) => {
            for a in args {
                visit_exprs(a, f);
            }
        }
        Expr::Unary(_, a) => visit_exprs(a, f),
        Expr::Binary(_, a, b) => {
            visit_exprs(a, f);
            visit_exprs(b, f);
        }
        Expr::Select(c, a, b) => {
            visit_cond(c, f);
            visit_exprs(a, f);
            visit_exprs(b, f);
        }
        Expr::Cast(_, a) => visit_exprs(a, f),
    }
}

/// Visits every expression inside a condition tree.
pub fn visit_cond(c: &Cond, f: &mut dyn FnMut(&Expr)) {
    match c {
        Cond::Cmp(_, a, b) => {
            visit_exprs(a, f);
            visit_exprs(b, f);
        }
        Cond::And(a, b) | Cond::Or(a, b) => {
            visit_cond(a, f);
            visit_cond(b, f);
        }
        Cond::Not(a) => visit_cond(a, f),
    }
}

/// Visits every expression appearing anywhere in a function definition:
/// case guards, case bodies, reduction targets and values.
pub fn visit_func_exprs(fd: &FuncDef, f: &mut dyn FnMut(&Expr)) {
    match &fd.body {
        FuncBody::Undefined => {}
        FuncBody::Cases(cases) => {
            for c in cases {
                if let Some(g) = &c.cond {
                    visit_cond(g, f);
                }
                visit_exprs(&c.expr, f);
            }
        }
        FuncBody::Reduce(acc) => {
            for t in &acc.target {
                visit_exprs(t, f);
            }
            visit_exprs(&acc.value, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, VarId};

    #[test]
    fn visits_all_nodes() {
        let x = Expr::from(VarId::from_index(0));
        let e = Expr::select(x.clone().gt(0.0), x.clone() + 1.0, x * 2.0);
        let mut n = 0;
        visit_exprs(&e, &mut |_| n += 1);
        // select + cond(2: var, const) + (add: var, const) + (mul: var, const)
        assert_eq!(n, 9);
    }

    #[test]
    fn visits_nested_conditions() {
        let x = Expr::from(VarId::from_index(0));
        let c = (x.clone().gt(0.0) & x.clone().lt(5.0)) | !(x.eq_(7.0));
        let mut consts = 0;
        visit_cond(&c, &mut |e| {
            if matches!(e, Expr::Const(_)) {
                consts += 1;
            }
        });
        assert_eq!(consts, 3);
    }

    #[test]
    fn preorder_root_first() {
        let x = Expr::from(VarId::from_index(0));
        let e = x + 1.0;
        let mut first = None;
        visit_exprs(&e, &mut |n| {
            if first.is_none() {
                first = Some(matches!(n, Expr::Binary(BinOp::Add, ..)));
            }
        });
        assert_eq!(first, Some(true));
    }
}
