//! Exact rational numbers for schedule scaling factors.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num/den` with `den > 0`, kept in lowest terms.
///
/// Used for the scaling factors of §3.3: up/down-sampling chains multiply
/// schedule scales by 2 or 1/2 per pyramid level, so factors stay tiny and
/// `i64` never overflows in practice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i64,
    den: i64,
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    /// Zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// One.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates `num/den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Ratio {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den).max(1);
        let s = if den < 0 { -1 } else { 1 };
        Ratio {
            num: s * num / g,
            den: s * den / g,
        }
    }

    /// An integer as a rational.
    pub fn int(v: i64) -> Ratio {
        Ratio { num: v, den: 1 }
    }

    /// Numerator (after normalization).
    pub fn num(self) -> i64 {
        self.num
    }

    /// Denominator (after normalization, always positive).
    pub fn den(self) -> i64 {
        self.den
    }

    /// The reciprocal.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(self) -> Ratio {
        Ratio::new(self.den, self.num)
    }

    /// Whether the value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Largest integer ≤ the value.
    pub fn floor(self) -> i64 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer ≥ the value.
    pub fn ceil(self) -> i64 {
        -(-self.num).div_euclid(self.den)
    }

    /// Absolute value.
    pub fn abs(self) -> Ratio {
        Ratio {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Converts to `f64` (for reporting only).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, r: Ratio) -> Ratio {
        Ratio::new(self.num * r.den + r.num * self.den, self.den * r.den)
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, r: Ratio) -> Ratio {
        Ratio::new(self.num * r.den - r.num * self.den, self.den * r.den)
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, r: Ratio) -> Ratio {
        Ratio::new(self.num * r.num, self.den * r.den)
    }
}

impl Div for Ratio {
    type Output = Ratio;
    fn div(self, r: Ratio) -> Ratio {
        assert!(r.num != 0, "rational division by zero");
        Ratio::new(self.num * r.den, self.den * r.num)
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Ratio {
    fn from(v: i64) -> Self {
        Ratio::int(v)
    }
}

/// Least common multiple of two positive integers.
pub(crate) fn lcm(a: i64, b: i64) -> i64 {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-2, -4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(2, -4), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(0, 5), Ratio::ZERO);
    }

    #[test]
    fn arithmetic() {
        let h = Ratio::new(1, 2);
        assert_eq!(h + h, Ratio::ONE);
        assert_eq!(h * Ratio::int(4), Ratio::int(2));
        assert_eq!(Ratio::ONE / h, Ratio::int(2));
        assert_eq!(h - Ratio::ONE, Ratio::new(-1, 2));
        assert_eq!(-h, Ratio::new(-1, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Ratio::new(7, 2).floor(), 3);
        assert_eq!(Ratio::new(7, 2).ceil(), 4);
        assert_eq!(Ratio::new(-7, 2).floor(), -4);
        assert_eq!(Ratio::new(-7, 2).ceil(), -3);
        assert_eq!(Ratio::int(5).floor(), 5);
        assert_eq!(Ratio::int(5).ceil(), 5);
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::ZERO);
        assert_eq!(Ratio::new(2, 6).cmp(&Ratio::new(1, 3)), Ordering::Equal);
    }

    #[test]
    fn lcm_works() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(1, 7), 7);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_den_panics() {
        let _ = Ratio::new(1, 0);
    }
}
