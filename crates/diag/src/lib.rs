//! # polymage-diag
//!
//! The observability spine of PolyMage-rs: structured spans and typed
//! counters with pluggable sinks.
//!
//! Every layer of the system — the compiler driver, the grouping
//! heuristic, the session cache, the autotuner, and the execution engine —
//! reports what it decided and what it measured through a [`Diag`] handle
//! instead of ad-hoc side structures. A handle is a cheap clone over one of
//! two sinks:
//!
//! - **no-op** ([`Diag::noop`]) — the default everywhere. Emission sites
//!   reduce to a single enum-variant check, so instrumented code paths cost
//!   nothing measurable (checked by a criterion benchmark in
//!   `crates/bench/benches/engine.rs`, not by a cargo feature);
//! - **recorder** ([`Diag::recorder`]) — an in-memory [`Recorder`] that
//!   timestamps spans/events and accumulates [`Counter`]s. Its
//!   [`Recording`] snapshot can answer structured queries or export a
//!   chrome://tracing JSON document ([`Recording::to_chrome_json`]).
//!
//! Emission-site protocol: build argument vectors only when
//! [`Diag::enabled`] is true (or pass them to [`Diag::event`], which drops
//! them immediately on the no-op sink); hot loops should accumulate plain
//! integers and flush them with [`Diag::count`] at a coarse granularity
//! (per group, per run) rather than emitting per chunk.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A typed argument value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// Owned string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The value as an `f64`, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::UInt(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `u64`, when it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(v) => Some(*v),
            Value::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::UInt(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::UInt(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

/// Argument list of a span or event: `(key, value)` pairs.
pub type Args = Vec<(&'static str, Value)>;

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident => $text:expr,)*) => {
        /// Typed monotonic counters accumulated by the recording sink.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum Counter {
            $($(#[$doc])* $name,)*
        }

        impl Counter {
            /// Number of counters.
            pub const COUNT: usize = [$(Counter::$name),*].len();
            /// Every counter, in declaration order.
            pub const ALL: [Counter; Counter::COUNT] = [$(Counter::$name),*];

            /// Stable text name (used by exports and summaries).
            pub fn name(self) -> &'static str {
                match self {
                    $(Counter::$name => $text,)*
                }
            }
        }
    };
}

counters! {
    /// Session compile-cache hits.
    CacheHit => "cache.hit",
    /// Session compile-cache misses (compiler ran).
    CacheMiss => "cache.miss",
    /// Session compile-cache LRU evictions.
    CacheEvict => "cache.evict",
    /// Grouping merges accepted (overlap ratio under threshold).
    GroupMergeAccept => "grouping.merge.accept",
    /// Grouping merges rejected (any criterion).
    GroupMergeReject => "grouping.merge.reject",
    /// Shared-pool buffer acquisitions.
    PoolAcquire => "pool.acquire",
    /// Shared-pool acquisitions served by a retained allocation.
    PoolReuse => "pool.reuse",
    /// Shared-pool releases dropped at the retention cap.
    PoolDrop => "pool.drop",
    /// Tiles claimed by engine workers.
    TileClaim => "engine.tile.claim",
    /// Uniform-preamble row-cache hits (chunks reusing a cached preamble).
    UniformHit => "eval.uniform.hit",
    /// Uniform-preamble row-cache misses (preamble recomputed).
    UniformMiss => "eval.uniform.miss",
    /// Loads resolved to the broadcast (chunk-invariant) class.
    LoadBroadcast => "eval.load.broadcast",
    /// Loads resolved to the contiguous (slice-copy) class.
    LoadContiguous => "eval.load.contiguous",
    /// Loads resolved to the strided class (incl. diagonal).
    LoadStrided => "eval.load.strided",
    /// Loads resolved to the gather class.
    LoadGather => "eval.load.gather",
    /// Register lanes evaluated through the AVX2 chunk loops.
    SimdLanesAvx2 => "eval.simd.lanes.avx2",
    /// Register lanes evaluated through the SSE2 chunk loops.
    SimdLanesSse2 => "eval.simd.lanes.sse2",
    /// Register lanes evaluated through the NEON chunk loops.
    SimdLanesNeon => "eval.simd.lanes.neon",
    /// Register lanes evaluated by the scalar fallback loops.
    SimdLanesScalar => "eval.simd.lanes.scalar",
    /// Scratch bytes eliminated by slot folding (per-worker, at compile).
    StorageFoldedBytes => "storage.folded_bytes",
    /// Full buffers returned to the pool before run completion.
    StorageEarlyRelease => "storage.early_release",
    /// Peak bytes of full buffers resident across the engine (monotone;
    /// flushed as deltas so the summed counter equals the final peak).
    StoragePeakBytes => "storage.peak_bytes",
    /// Session plan-cache hits (a size-independent `ParametricPlan` was
    /// reused).
    PlanHit => "session.plan_hit",
    /// Session plan-cache misses (phase-1 planning ran).
    PlanMiss => "session.plan_miss",
    /// Session instance-cache hits (a bound `Program` was reused).
    InstanceHit => "session.instance_hit",
    /// Session instance-cache misses (phase-2 instantiation ran).
    InstanceMiss => "session.instance_miss",
    /// Groups whose tile shape the cache model selected (constraints met).
    TileModelSelect => "tilemodel.select",
    /// Groups where no candidate met every constraint and the model fell
    /// back to the fixed baseline shape.
    TileModelFallback => "tilemodel.fallback",
    /// Plan-time tile decisions demoted at instantiation because the
    /// concrete bounds no longer admit them.
    TileModelRecheck => "tilemodel.recheck",
    /// Scheduler grants where a higher-urgency run jumped ahead of an
    /// earlier submission (the FIFO order was overridden).
    SchedPreempt => "sched.preempt",
    /// Runs shed by admission control (fail-fast rejections plus inflight
    /// victims cancelled to make room).
    SchedShed => "sched.shed",
    /// Runs completed as cancelled, for any reason.
    SchedCancel => "sched.cancel",
    /// Runs cancelled because their deadline expired (while queued,
    /// blocked on admission, or mid-execution).
    SchedDeadlineMiss => "sched.deadline_miss",
}

/// An in-flight span, created by [`Diag::begin`] and closed by
/// [`Diag::end`]. On the no-op sink it carries nothing and costs nothing.
#[must_use = "close spans with Diag::end"]
#[derive(Debug)]
pub struct Span {
    start: Option<Instant>,
}

/// One recorded span or instant event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event name (a stable identifier, not prose).
    pub name: &'static str,
    /// Microseconds since the recorder was created.
    pub ts_us: u64,
    /// Span duration in microseconds; `None` for instant events.
    pub dur_us: Option<u64>,
    /// Small dense id of the emitting thread.
    pub tid: u64,
    /// Typed arguments.
    pub args: Args,
}

impl Event {
    /// Looks up an argument by key.
    pub fn arg(&self, key: &str) -> Option<&Value> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// The engine run this event belongs to (its `run_id` argument), if
    /// any. Engine-emitted spans and events all carry one, so traces from
    /// overlapping runs are separable.
    pub fn run_id(&self) -> Option<u64> {
        match self.arg("run_id") {
            Some(Value::UInt(id)) => Some(*id),
            _ => None,
        }
    }
}

/// The in-memory recording sink.
#[derive(Debug)]
pub struct Recorder {
    t0: Instant,
    events: Mutex<Vec<Event>>,
    counters: [AtomicU64; Counter::COUNT],
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

impl Recorder {
    fn new() -> Recorder {
        Recorder {
            t0: Instant::now(),
            events: Mutex::new(Vec::new()),
            counters: [const { AtomicU64::new(0) }; Counter::COUNT],
        }
    }

    fn push(&self, ev: Event) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(ev);
    }

    fn snapshot(&self) -> Recording {
        Recording {
            events: self
                .events
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
            counters: Counter::ALL.map(|c| self.counters[c as usize].load(Ordering::Relaxed)),
        }
    }
}

/// The diagnostics handle every instrumented layer receives.
///
/// Cloning is cheap (an enum over nothing or an [`Arc`]); the default is
/// the no-op sink.
#[derive(Debug, Clone, Default)]
pub struct Diag {
    sink: Sink,
}

#[derive(Debug, Clone, Default)]
enum Sink {
    #[default]
    Noop,
    Record(Arc<Recorder>),
}

impl Diag {
    /// The no-op sink: every emission reduces to one enum check.
    pub fn noop() -> Diag {
        Diag { sink: Sink::Noop }
    }

    /// A fresh in-memory recorder. Timestamps are relative to this call.
    pub fn recorder() -> Diag {
        Diag {
            sink: Sink::Record(Arc::new(Recorder::new())),
        }
    }

    /// Whether emissions are recorded. Guard argument construction with
    /// this at hot emission sites.
    #[inline]
    pub fn enabled(&self) -> bool {
        matches!(self.sink, Sink::Record(_))
    }

    /// Opens a span. Timestamp capture is skipped entirely on the no-op
    /// sink.
    #[inline]
    pub fn begin(&self) -> Span {
        Span {
            start: match self.sink {
                Sink::Noop => None,
                Sink::Record(_) => Some(Instant::now()),
            },
        }
    }

    /// Closes a span, recording name, duration, and arguments.
    pub fn end(&self, span: Span, name: &'static str, args: Args) {
        if let (Sink::Record(rec), Some(start)) = (&self.sink, span.start) {
            let ts_us = start.duration_since(rec.t0).as_micros() as u64;
            rec.push(Event {
                name,
                ts_us,
                dur_us: Some(start.elapsed().as_micros() as u64),
                tid: TID.with(|t| *t),
                args,
            });
        }
    }

    /// Records an instant event.
    pub fn event(&self, name: &'static str, args: Args) {
        if let Sink::Record(rec) = &self.sink {
            rec.push(Event {
                name,
                ts_us: rec.t0.elapsed().as_micros() as u64,
                dur_us: None,
                tid: TID.with(|t| *t),
                args,
            });
        }
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn count(&self, c: Counter, n: u64) {
        if let Sink::Record(rec) = &self.sink {
            if n != 0 {
                rec.counters[c as usize].fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot of everything recorded so far (`None` on the no-op sink).
    pub fn snapshot(&self) -> Option<Recording> {
        match &self.sink {
            Sink::Noop => None,
            Sink::Record(rec) => Some(rec.snapshot()),
        }
    }
}

/// A point-in-time copy of a recorder's events and counters.
#[derive(Debug, Clone)]
pub struct Recording {
    /// Recorded spans and events, in emission order per thread.
    pub events: Vec<Event>,
    /// Final counter values, indexed by `Counter as usize`.
    pub counters: [u64; Counter::COUNT],
}

impl Recording {
    /// The value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Every event with the given name.
    pub fn events_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// Every distinct engine run id appearing in the recording, in first-
    /// appearance order.
    pub fn run_ids(&self) -> Vec<u64> {
        let mut ids = Vec::new();
        for e in &self.events {
            if let Some(id) = e.run_id() {
                if !ids.contains(&id) {
                    ids.push(id);
                }
            }
        }
        ids
    }

    /// Every event belonging to one engine run (events without a `run_id`
    /// argument — compiler phases, grouping decisions — are excluded).
    pub fn events_for_run(&self, run_id: u64) -> impl Iterator<Item = &Event> + '_ {
        self.events
            .iter()
            .filter(move |e| e.run_id() == Some(run_id))
    }

    /// Exports the recording as a chrome://tracing JSON document
    /// (load via `chrome://tracing` or <https://ui.perfetto.dev>).
    ///
    /// Spans become complete (`"ph":"X"`) events, instants become
    /// (`"ph":"i"`) events, and final counter values are attached as one
    /// trailing counter (`"ph":"C"`) sample per non-zero counter.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            match e.dur_us {
                Some(dur) => {
                    out.push_str(&format!(
                        "{{\"name\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                         \"pid\":1,\"tid\":{}",
                        json_str(e.name),
                        e.ts_us,
                        dur,
                        e.tid
                    ));
                }
                None => {
                    out.push_str(&format!(
                        "{{\"name\":{},\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                         \"pid\":1,\"tid\":{}",
                        json_str(e.name),
                        e.ts_us,
                        e.tid
                    ));
                }
            }
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{}:{}", json_str(k), json_value(v)));
                }
                out.push('}');
            }
            out.push('}');
        }
        let last_ts = self.events.iter().map(|e| e.ts_us).max().unwrap_or(0);
        for c in Counter::ALL {
            let v = self.counter(c);
            if v == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":{},\"ph\":\"C\",\"ts\":{},\"pid\":1,\
                 \"args\":{{\"value\":{}}}}}",
                json_str(c.name()),
                last_ts,
                v
            ));
        }
        out.push_str("]}");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Float(f) if f.is_finite() => {
            // JSON has no NaN/Inf; finite floats print round-trippably.
            format!("{f}")
        }
        Value::Float(_) => "null".to_string(),
        Value::Str(s) => json_str(s),
        Value::Bool(b) => b.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_records_nothing() {
        let d = Diag::noop();
        assert!(!d.enabled());
        let sp = d.begin();
        assert!(sp.start.is_none(), "no-op spans must not read the clock");
        d.end(sp, "x", vec![]);
        d.event("y", vec![("k", Value::Int(1))]);
        d.count(Counter::CacheHit, 5);
        assert!(d.snapshot().is_none());
    }

    #[test]
    fn recorder_captures_spans_events_counters() {
        let d = Diag::recorder();
        assert!(d.enabled());
        let sp = d.begin();
        std::thread::sleep(std::time::Duration::from_millis(2));
        d.end(sp, "phase", vec![("n", Value::UInt(3))]);
        d.event("decision", vec![("ok", Value::Bool(true))]);
        d.count(Counter::CacheMiss, 2);
        d.count(Counter::CacheMiss, 1);

        let rec = d.snapshot().unwrap();
        assert_eq!(rec.events.len(), 2);
        let span = rec.events_named("phase").next().unwrap();
        assert!(span.dur_us.unwrap() >= 1000, "span measured ≥ 1ms");
        assert_eq!(span.arg("n").unwrap().as_u64(), Some(3));
        let ev = rec.events_named("decision").next().unwrap();
        assert!(ev.dur_us.is_none());
        assert_eq!(rec.counter(Counter::CacheMiss), 3);
        assert_eq!(rec.counter(Counter::CacheHit), 0);
    }

    #[test]
    fn clones_share_one_recorder() {
        let d = Diag::recorder();
        let d2 = d.clone();
        d2.event("from-clone", vec![]);
        d2.count(Counter::TileClaim, 7);
        let rec = d.snapshot().unwrap();
        assert_eq!(rec.events.len(), 1);
        assert_eq!(rec.counter(Counter::TileClaim), 7);
    }

    #[test]
    fn chrome_json_shape() {
        let d = Diag::recorder();
        let sp = d.begin();
        d.end(
            sp,
            "group",
            vec![
                ("name", Value::Str("harris\"x".into())),
                ("ratio", Value::Float(0.25)),
            ],
        );
        d.event("note", vec![("i", Value::Int(-1))]);
        d.count(Counter::PoolReuse, 4);
        let json = d.snapshot().unwrap().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("harris\\\"x"), "strings are escaped");
        assert!(json.contains("\"ratio\":0.25"));
        assert!(json.contains("pool.reuse"));
        // Balanced braces/brackets — a cheap well-formedness check in lieu
        // of a JSON parser dependency.
        let (mut braces, mut brackets) = (0i64, 0i64);
        let mut in_str = false;
        let mut esc = false;
        for c in json.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' => braces += 1,
                '}' => braces -= 1,
                '[' => brackets += 1,
                ']' => brackets -= 1,
                _ => {}
            }
        }
        assert_eq!(braces, 0);
        assert_eq!(brackets, 0);
    }

    #[test]
    fn counter_names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT);
    }
}
