//! Liveness-driven storage folding on the real benchmark pipelines: for
//! every app, every schedule, and every thread count, `storage_fold` on
//! must be **bit identical** to off — and on the deep pipelines (Pyramid
//! Blending, Local Laplacian) it must measurably shrink both the
//! per-worker scratch arena and the peak of concurrently resident full
//! buffers (early release after each buffer's last consumer group).

use polymage_apps::{all_benchmarks, Scale};
use polymage_core::{compile, CompileOptions};
use polymage_vm::{run_program_static, Engine, RunRequest};

fn bits(bufs: &[polymage_vm::Buffer]) -> Vec<Vec<u32>> {
    bufs.iter()
        .map(|b| b.data.iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn fold_on_off_bit_identical_all_benchmarks() {
    let engine = Engine::with_threads(4);
    for b in all_benchmarks(Scale::Tiny) {
        let inputs = b.make_inputs(42);
        for base in [
            CompileOptions::optimized(b.params()),
            CompileOptions::base(b.params()),
        ] {
            let c_on = compile(b.pipeline(), &base.clone().with_storage_fold(true))
                .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            let c_off = compile(b.pipeline(), &base.clone().with_storage_fold(false))
                .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            assert!(
                c_on.program.arena_bytes() <= c_off.program.arena_bytes(),
                "{}: folding grew the scratch arena",
                b.name()
            );
            // Per thread count (reduction merge order is thread-count
            // specific): the unfolded static executor is the oracle; the
            // engine must match it exactly with folding on and off.
            for nthreads in [1usize, 2, 4] {
                let oracle = run_program_static(&c_off.program, &inputs, nthreads)
                    .unwrap_or_else(|e| panic!("{}: oracle: {e}", b.name()));
                for (label, prog) in [("fold on", &c_on.program), ("fold off", &c_off.program)] {
                    let got = engine
                        .submit(RunRequest::new(prog, &inputs).threads(nthreads))
                        .and_then(|h| h.join())
                        .unwrap_or_else(|e| panic!("{}: {label}: {e}", b.name()));
                    assert_eq!(
                        bits(&oracle),
                        bits(&got),
                        "{}: {label} differs from unfolded oracle \
                         (threads {nthreads}, fuse {})",
                        b.name(),
                        base.fuse
                    );
                }
            }
        }
    }
}

#[test]
fn deep_pipelines_fold_and_release_early() {
    let engine = Engine::with_threads(4);
    for name in ["Pyramid Blending", "Local Laplacian"] {
        let b = all_benchmarks(Scale::Tiny)
            .into_iter()
            .find(|b| b.name() == name)
            .expect("benchmark present");
        let inputs = b.make_inputs(7);
        let on = compile(
            b.pipeline(),
            &CompileOptions::optimized(b.params()).with_storage_fold(true),
        )
        .unwrap();
        let off = compile(
            b.pipeline(),
            &CompileOptions::optimized(b.params()).with_storage_fold(false),
        )
        .unwrap();

        // Estimated peaks: narrowing lifetimes can only help.
        assert!(
            on.report.peak_full_bytes <= off.report.peak_full_bytes,
            "{name}: folding raised the estimated peak"
        );
        assert!(
            on.report.peak_full_bytes < off.report.peak_full_bytes,
            "{name}: a ≥37-stage pipeline must release something early \
             (peak {} vs {})",
            on.report.peak_full_bytes,
            off.report.peak_full_bytes
        );

        // Measured per-run accounting from the engine.
        let (_, s_on) = engine
            .submit(RunRequest::new(&on.program, &inputs))
            .unwrap()
            .join_stats()
            .unwrap();
        let (_, s_off) = engine
            .submit(RunRequest::new(&off.program, &inputs))
            .unwrap()
            .join_stats()
            .unwrap();
        assert!(
            s_on.early_releases > 0,
            "{name}: no buffer was released before run end"
        );
        assert_eq!(s_off.early_releases, 0, "{name}: fold-off must not release");
        assert!(
            s_on.peak_full_bytes < s_off.peak_full_bytes,
            "{name}: measured peak {} (fold on) not below {} (fold off)",
            s_on.peak_full_bytes,
            s_off.peak_full_bytes
        );
        assert_eq!(
            s_on.peak_full_bytes as usize, on.report.peak_full_bytes,
            "{name}: compiler peak estimate disagrees with the engine"
        );
    }
}
