//! The stage graph: edges, topological order, and levels.

use crate::GraphError;
use polymage_ir::{FuncId, Pipeline, Source};
use polymage_poly::extract_accesses;

/// The pipeline's directed acyclic graph of stages (Fig. 2 of the paper).
///
/// Nodes are stages; an edge `p → c` means consumer `c` reads producer `p`.
/// The *level* of a stage is its depth in a topological sort — the leading
/// dimension of the paper's initial schedules (§3.1).
#[derive(Debug, Clone)]
pub struct PipelineGraph {
    producers: Vec<Vec<FuncId>>,
    consumers: Vec<Vec<FuncId>>,
    self_ref: Vec<bool>,
    levels: Vec<usize>,
    topo: Vec<FuncId>,
}

impl PipelineGraph {
    /// Builds the graph from a pipeline specification.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] when distinct stages depend on each
    /// other cyclically. A stage reading itself (time-iterated pattern) is
    /// legal and recorded instead.
    pub fn build(pipe: &Pipeline) -> Result<PipelineGraph, GraphError> {
        let n = pipe.funcs().len();
        let mut producers: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        let mut consumers: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        let mut self_ref = vec![false; n];
        for c in pipe.func_ids() {
            for acc in extract_accesses(pipe.func(c)) {
                if let Source::Func(p) = acc.src {
                    if p == c {
                        self_ref[c.index()] = true;
                        continue;
                    }
                    if !producers[c.index()].contains(&p) {
                        producers[c.index()].push(p);
                        consumers[p.index()].push(c);
                    }
                }
            }
        }
        // Kahn's algorithm for topological order + cycle detection.
        let mut indeg: Vec<usize> = producers.iter().map(|p| p.len()).collect();
        let mut queue: Vec<FuncId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(FuncId::from_index)
            .collect();
        let mut topo: Vec<FuncId> = Vec::with_capacity(n);
        let mut levels = vec![0usize; n];
        while let Some(f) = queue.pop() {
            topo.push(f);
            for &c in &consumers[f.index()] {
                levels[c.index()] = levels[c.index()].max(levels[f.index()] + 1);
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    queue.push(c);
                }
            }
        }
        if topo.len() != n {
            let cyc: Vec<String> = (0..n)
                .filter(|&i| indeg[i] > 0)
                .map(|i| pipe.funcs()[i].name.clone())
                .collect();
            return Err(GraphError::Cycle(cyc));
        }
        // Stable order: by (level, declaration index) for reproducibility.
        topo.sort_by_key(|f| (levels[f.index()], f.index()));
        Ok(PipelineGraph {
            producers,
            consumers,
            self_ref,
            levels,
            topo,
        })
    }

    /// Stages `f` reads (excluding images and itself).
    pub fn producers(&self, f: FuncId) -> &[FuncId] {
        &self.producers[f.index()]
    }

    /// Stages that read `f`.
    pub fn consumers(&self, f: FuncId) -> &[FuncId] {
        &self.consumers[f.index()]
    }

    /// Whether `f` reads its own values (time-iterated pattern).
    pub fn is_self_referential(&self, f: FuncId) -> bool {
        self.self_ref[f.index()]
    }

    /// Topological level (depth) of `f`; inputs-only stages are level 0.
    pub fn level(&self, f: FuncId) -> usize {
        self.levels[f.index()]
    }

    /// All stages in a topological order (producers before consumers),
    /// stable across runs.
    pub fn topo_order(&self) -> &[FuncId] {
        &self.topo
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Renders the graph in Graphviz dot format (stage names as nodes).
    pub fn to_dot(&self, pipe: &Pipeline) -> String {
        let mut s = String::from("digraph pipeline {\n  rankdir=TB;\n");
        for f in pipe.func_ids() {
            s.push_str(&format!("  \"{}\";\n", pipe.func(f).name));
        }
        for f in pipe.func_ids() {
            for &c in self.consumers(f) {
                s.push_str(&format!(
                    "  \"{}\" -> \"{}\";\n",
                    pipe.func(f).name,
                    pipe.func(c).name
                ));
            }
            if self.is_self_referential(f) {
                s.push_str(&format!(
                    "  \"{0}\" -> \"{0}\" [style=dashed];\n",
                    pipe.func(f).name
                ));
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymage_ir::{Case, Expr, Interval, PipelineBuilder, ScalarType};

    fn chain3() -> (Pipeline, Vec<FuncId>) {
        let mut p = PipelineBuilder::new("t");
        let x = p.var("x");
        let d = Interval::cst(0, 99);
        let a = p.func("a", &[(x, d.clone())], ScalarType::Float);
        p.define(a, vec![Case::always(Expr::from(x))]).unwrap();
        let b = p.func("b", &[(x, d.clone())], ScalarType::Float);
        p.define(b, vec![Case::always(Expr::at(a, [Expr::from(x)]))])
            .unwrap();
        let c = p.func("c", &[(x, d)], ScalarType::Float);
        p.define(
            c,
            vec![Case::always(
                Expr::at(b, [Expr::from(x)]) + Expr::at(a, [Expr::from(x)]),
            )],
        )
        .unwrap();
        (p.finish(&[c]).unwrap(), vec![a, b, c])
    }

    #[test]
    fn levels_and_edges() {
        let (pipe, f) = chain3();
        let g = PipelineGraph::build(&pipe).unwrap();
        assert_eq!(g.level(f[0]), 0);
        assert_eq!(g.level(f[1]), 1);
        assert_eq!(g.level(f[2]), 2);
        assert_eq!(g.producers(f[2]), &[f[1], f[0]]);
        assert_eq!(g.consumers(f[0]), &[f[1], f[2]]);
        assert_eq!(g.topo_order(), &[f[0], f[1], f[2]]);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn detects_cycles() {
        let mut p = PipelineBuilder::new("t");
        let x = p.var("x");
        let d = Interval::cst(0, 9);
        let a = p.func("a", &[(x, d.clone())], ScalarType::Float);
        let b = p.func("b", &[(x, d)], ScalarType::Float);
        p.define(a, vec![Case::always(Expr::at(b, [Expr::from(x)]))])
            .unwrap();
        p.define(b, vec![Case::always(Expr::at(a, [Expr::from(x)]))])
            .unwrap();
        let pipe = p.finish(&[b]).unwrap();
        match PipelineGraph::build(&pipe) {
            Err(GraphError::Cycle(names)) => {
                assert_eq!(names.len(), 2);
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn self_reference_is_not_a_cycle() {
        let mut p = PipelineBuilder::new("t");
        let (t, x) = (p.var("t"), p.var("x"));
        let f = p.func(
            "f",
            &[(t, Interval::cst(0, 9)), (x, Interval::cst(0, 99))],
            ScalarType::Float,
        );
        // f(t,x) = f(t-1, x) + 1 on t >= 1; f(0,x) = 0
        p.define(
            f,
            vec![
                Case::new(Expr::from(t).ge(1), Expr::at(f, [t - 1, x + 0]) + 1.0),
                Case::new(Expr::from(t).le(0), Expr::Const(0.0)),
            ],
        )
        .unwrap();
        let pipe = p.finish(&[f]).unwrap();
        let g = PipelineGraph::build(&pipe).unwrap();
        assert!(g.is_self_referential(f));
        assert_eq!(g.level(f), 0);
    }

    #[test]
    fn dot_output_mentions_edges() {
        let (pipe, _) = chain3();
        let g = PipelineGraph::build(&pipe).unwrap();
        let dot = g.to_dot(&pipe);
        assert!(dot.contains("\"a\" -> \"b\""));
        assert!(dot.contains("\"b\" -> \"c\""));
        assert!(dot.contains("\"a\" -> \"c\""));
    }
}
