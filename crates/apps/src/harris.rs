//! Harris Corner Detection — the paper's running example (Fig. 1, Fig. 2).
//!
//! Eleven stages: Sobel-like derivative stencils `Ix`/`Iy`, point-wise
//! products `Ixx`/`Ixy`/`Iyy`, 3×3 box sums `Sxx`/`Sxy`/`Syy`, and the
//! point-wise `det`/`trace`/`harris` corner response. The compiler inlines
//! all point-wise stages and fuses the stencils into one overlapped-tiled
//! group, reproducing the schedule described in §4.

use crate::{Benchmark, Scale};
use polymage_ir::*;
use polymage_vm::Buffer;

/// The Harris benchmark.
pub struct HarrisCorner {
    pipeline: Pipeline,
    rows: i64,
    cols: i64,
}

/// Builds the Fig. 1 specification verbatim: image `(R+2) × (C+2)`,
/// derivative stages guarded to `[1,R]×[1,C]`, box/output stages guarded to
/// `[2,R−1]×[2,C−1]`.
pub fn build() -> Pipeline {
    let mut p = PipelineBuilder::new("harris");
    let (r, c) = (p.param("R"), p.param("C"));
    let img = p.image(
        "I",
        ScalarType::Float,
        vec![PAff::param(r) + 2, PAff::param(c) + 2],
    );
    let (x, y) = (p.var("x"), p.var("y"));
    let row = Interval::new(PAff::cst(0), PAff::param(r) + 1);
    let col = Interval::new(PAff::cst(0), PAff::param(c) + 1);
    let dom = [(x, row), (y, col)];
    let cond = Expr::from(x).ge(1)
        & Expr::from(x).le(Expr::Param(r))
        & Expr::from(y).ge(1)
        & Expr::from(y).le(Expr::Param(c));
    let condb = Expr::from(x).ge(2)
        & Expr::from(x).le(Expr::Param(r) - 1.0)
        & Expr::from(y).ge(2)
        & Expr::from(y).le(Expr::Param(c) - 1.0);

    let iy = p.func("Iy", &dom, ScalarType::Float);
    p.define(
        iy,
        vec![Case::new(
            cond.clone(),
            stencil(
                img,
                &[x, y],
                1.0 / 12.0,
                &[[-1, -2, -1], [0, 0, 0], [1, 2, 1]],
            ),
        )],
    )
    .unwrap();
    let ix = p.func("Ix", &dom, ScalarType::Float);
    p.define(
        ix,
        vec![Case::new(
            cond.clone(),
            stencil(
                img,
                &[x, y],
                1.0 / 12.0,
                &[[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]],
            ),
        )],
    )
    .unwrap();

    let at = |f: FuncId, x: VarId, y: VarId| Expr::at(f, [Expr::from(x), Expr::from(y)]);
    let ixx = p.func("Ixx", &dom, ScalarType::Float);
    p.define(
        ixx,
        vec![Case::new(cond.clone(), at(ix, x, y) * at(ix, x, y))],
    )
    .unwrap();
    let iyy = p.func("Iyy", &dom, ScalarType::Float);
    p.define(
        iyy,
        vec![Case::new(cond.clone(), at(iy, x, y) * at(iy, x, y))],
    )
    .unwrap();
    let ixy = p.func("Ixy", &dom, ScalarType::Float);
    p.define(ixy, vec![Case::new(cond, at(ix, x, y) * at(iy, x, y))])
        .unwrap();

    let box3 = [[1i64, 1, 1], [1, 1, 1], [1, 1, 1]];
    let sxx = p.func("Sxx", &dom, ScalarType::Float);
    let syy = p.func("Syy", &dom, ScalarType::Float);
    let sxy = p.func("Sxy", &dom, ScalarType::Float);
    for (s, i) in [(sxx, ixx), (syy, iyy), (sxy, ixy)] {
        p.define(
            s,
            vec![Case::new(condb.clone(), stencil(i, &[x, y], 1.0, &box3))],
        )
        .unwrap();
    }

    let det = p.func("det", &dom, ScalarType::Float);
    p.define(
        det,
        vec![Case::new(
            condb.clone(),
            at(sxx, x, y) * at(syy, x, y) - at(sxy, x, y) * at(sxy, x, y),
        )],
    )
    .unwrap();
    let trace = p.func("trace", &dom, ScalarType::Float);
    p.define(
        trace,
        vec![Case::new(condb.clone(), at(sxx, x, y) + at(syy, x, y))],
    )
    .unwrap();
    let harris = p.func("harris", &dom, ScalarType::Float);
    p.define(
        harris,
        vec![Case::new(
            condb,
            at(det, x, y) - 0.04 * at(trace, x, y) * at(trace, x, y),
        )],
    )
    .unwrap();
    p.finish(&[harris]).unwrap()
}

impl HarrisCorner {
    /// Instantiates at a given scale.
    pub fn new(scale: Scale) -> Self {
        let (rows, cols) = crate::sizes::HARRIS.at(scale);
        HarrisCorner::with_size(rows, cols)
    }

    /// Instantiates with explicit interior dimensions (`R`, `C`).
    pub fn with_size(rows: i64, cols: i64) -> Self {
        HarrisCorner {
            pipeline: build(),
            rows,
            cols,
        }
    }
}

impl Benchmark for HarrisCorner {
    fn name(&self) -> &str {
        "Harris Corner"
    }

    fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    fn params(&self) -> Vec<i64> {
        vec![self.rows, self.cols]
    }

    fn make_inputs(&self, seed: u64) -> Vec<Buffer> {
        vec![crate::inputs::gray_image(
            self.rows + 2,
            self.cols + 2,
            seed,
        )]
    }

    fn reference(&self, inputs: &[Buffer]) -> Vec<Buffer> {
        let img = &inputs[0];
        let (r, c) = (self.rows, self.cols);
        let full = polymage_poly::Rect::new(vec![(0, r + 1), (0, c + 1)]);
        let n = (r + 2) as usize * (c + 2) as usize;
        let idx = |x: i64, y: i64| (x * (c + 2) + y) as usize;
        let (mut ix, mut iy) = (vec![0.0f32; n], vec![0.0f32; n]);
        for x in 1..=r {
            for y in 1..=c {
                let g = |dx: i64, dy: i64| img.at(&[x + dx, y + dy]);
                iy[idx(x, y)] =
                    (-g(-1, -1) - 2.0 * g(-1, 0) - g(-1, 1) + g(1, -1) + 2.0 * g(1, 0) + g(1, 1))
                        / 12.0;
                ix[idx(x, y)] = (-g(-1, -1) + g(-1, 1) - 2.0 * g(0, -1) + 2.0 * g(0, 1) - g(1, -1)
                    + g(1, 1))
                    / 12.0;
            }
        }
        let (mut ixx, mut iyy, mut ixy) = (vec![0.0f32; n], vec![0.0f32; n], vec![0.0f32; n]);
        for x in 1..=r {
            for y in 1..=c {
                let i = idx(x, y);
                ixx[i] = ix[i] * ix[i];
                iyy[i] = iy[i] * iy[i];
                ixy[i] = ix[i] * iy[i];
            }
        }
        let box_sum = |src: &[f32], x: i64, y: i64| {
            let mut s = 0.0;
            for dx in -1..=1 {
                for dy in -1..=1 {
                    s += src[idx(x + dx, y + dy)];
                }
            }
            s
        };
        let mut out = Buffer::zeros(full);
        for x in 2..=r - 1 {
            for y in 2..=c - 1 {
                let sxx = box_sum(&ixx, x, y);
                let syy = box_sum(&iyy, x, y);
                let sxy = box_sum(&ixy, x, y);
                let det = sxx * syy - sxy * sxy;
                let trace = sxx + syy;
                out.data[idx(x, y)] = det - 0.04 * trace * trace;
            }
        }
        vec![out]
    }

    fn tolerance(&self) -> f32 {
        5e-4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_stages() {
        let p = build();
        assert_eq!(p.funcs().len(), 11);
    }

    #[test]
    fn dag_shape_matches_fig2() {
        let p = build();
        let g = polymage_graph::PipelineGraph::build(&p).unwrap();
        // levels: Ix/Iy at 0, products at 1, box sums at 2, det/trace at 3,
        // harris at 4
        let by_name = |n: &str| p.func_ids().find(|&f| p.func(f).name == n).unwrap();
        assert_eq!(g.level(by_name("Ix")), 0);
        assert_eq!(g.level(by_name("Ixx")), 1);
        assert_eq!(g.level(by_name("Sxx")), 2);
        assert_eq!(g.level(by_name("det")), 3);
        assert_eq!(g.level(by_name("harris")), 4);
        assert_eq!(g.consumers(by_name("Ix")).len(), 2); // Ixx, Ixy
    }
}
