//! Structural validation of compiled programs.
//!
//! The executor relies on a set of invariants the scheduler must establish:
//! regions inside domains, store rectangles covering full-stored domains
//! exactly once with strips disjoint along the slab dimension, kernels in
//! SSA form referencing declared buffers, scratch allocations large enough
//! for every tile region. [`validate_program`] audits all of them; tests
//! run it over every benchmark and every schedule configuration, so a
//! scheduler regression is caught as a named invariant violation rather
//! than a mysterious wrong pixel.

use polymage_vm::{BufKind, GroupKind, IdxPlan, Kernel, Op, Program, TiledGroup};

/// One violated invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which group (by name).
    pub group: String,
    /// Description of the violated invariant.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.group, self.message)
    }
}

/// Audits a compiled program's structural invariants; returns all
/// violations (empty = valid).
pub fn validate_program(prog: &Program) -> Vec<Violation> {
    let mut out = Vec::new();
    for group in &prog.groups {
        let mut push = |message: String| {
            out.push(Violation {
                group: group.name.clone(),
                message,
            });
        };
        match &group.kind {
            GroupKind::Tiled(tg) => validate_tiled(prog, tg, &mut push),
            GroupKind::Reduction(red) => {
                validate_kernel(prog, &red.kernel, &mut push);
                if red.kernel.outs.len() != 1 + prog.buffers[red.out.0].sizes.len() {
                    push(format!(
                        "reduction `{}` must produce one value and one index per \
                         output dimension",
                        red.name
                    ));
                }
            }
            GroupKind::Sequential(seq) => {
                for c in &seq.cases {
                    validate_kernel(prog, &c.kernel, &mut push);
                }
            }
        }
    }
    out
}

fn validate_tiled(prog: &Program, tg: &TiledGroup, push: &mut dyn FnMut(String)) {
    let nstages = tg.stages.len();
    for (k, st) in tg.stages.iter().enumerate() {
        for c in &st.cases {
            validate_kernel(prog, &c.kernel, push);
            if c.steps.len() != st.dom.ndim() {
                push(format!("stage `{}` case steps rank mismatch", st.name));
            }
            if let Some(m) = c.mask {
                if !c.kernel.outs.contains(&m) {
                    push(format!(
                        "stage `{}` mask register not among kernel outputs",
                        st.name
                    ));
                }
            }
        }
        if st.direct && st.full.is_none() {
            push(format!("direct stage `{}` has no full buffer", st.name));
        }
        if !st.direct {
            let decl = &prog.buffers[st.scratch.0];
            if decl.kind != BufKind::Scratch {
                push(format!(
                    "stage `{}` scratch id is not a scratch buffer",
                    st.name
                ));
            }
        }
        let _ = k;
    }

    // Slot-map invariants: every non-direct stage owns an in-bounds arena
    // range of exactly its scratch declaration's length, and stages whose
    // live ranges intersect (stage k is live from its own evaluation to the
    // last stage reading its scratchpad) occupy disjoint arena ranges.
    if tg.slots.stage.len() != nstages {
        push(format!(
            "slot map covers {} stages, group has {nstages}",
            tg.slots.stage.len()
        ));
    }
    let mut last_use: Vec<usize> = (0..nstages).collect();
    for (j, s) in tg.stages.iter().enumerate() {
        for &b in &s.reads {
            if let Some(k) = tg.stages.iter().position(|p| !p.direct && p.scratch == b) {
                last_use[k] = last_use[k].max(j);
            }
        }
    }
    for (k, st) in tg.stages.iter().enumerate() {
        let Some(r) = tg.slots.stage.get(k).copied().flatten() else {
            if !st.direct {
                push(format!("non-direct stage `{}` has no arena slot", st.name));
            }
            continue;
        };
        if st.direct {
            push(format!("direct stage `{}` has an arena slot", st.name));
            continue;
        }
        if r.len != prog.buffers[st.scratch.0].len() {
            push(format!(
                "stage `{}` slot length {} != scratch declaration {}",
                st.name,
                r.len,
                prog.buffers[st.scratch.0].len()
            ));
        }
        if r.offset + r.len > tg.slots.arena_len || r.slot >= tg.slots.nslots {
            push(format!(
                "stage `{}` slot {:?} out of arena bounds (len {}, {} slots)",
                st.name, r, tg.slots.arena_len, tg.slots.nslots
            ));
        }
        for (j, other) in tg.stages.iter().enumerate().skip(k + 1) {
            let Some(o) = tg.slots.stage.get(j).copied().flatten() else {
                continue;
            };
            // Intervals [k, last_use[k]] and [j, last_use[j]] with k < j
            // intersect iff stage k is still live when j evaluates.
            if last_use[k] >= j && r.offset < o.offset + o.len && o.offset < r.offset + r.len {
                push(format!(
                    "stages `{}` and `{}` are simultaneously live but share \
                     arena bytes ({:?} vs {:?})",
                    st.name, other.name, r, o
                ));
            }
        }
    }

    // Per-tile invariants.
    let mut strips_seen: i64 = -1;
    for (ti, t) in tg.tiles.iter().enumerate() {
        if t.regions.len() != nstages || t.stores.len() != nstages {
            push(format!("tile {ti} has wrong per-stage vector lengths"));
            continue;
        }
        if (t.strip as i64) < strips_seen {
            push(format!("tile {ti} breaks ascending strip order"));
        }
        strips_seen = strips_seen.max(t.strip as i64);
        for (k, st) in tg.stages.iter().enumerate() {
            let region = &t.regions[k];
            if region.is_empty() {
                continue;
            }
            if !st.dom.contains_rect(region) {
                push(format!(
                    "tile {ti}: stage `{}` region {} outside domain {}",
                    st.name, region, st.dom
                ));
            }
            if let Some(store) = &t.stores[k] {
                if !region.contains_rect(store) {
                    push(format!(
                        "tile {ti}: stage `{}` store {} outside its region {}",
                        st.name, store, region
                    ));
                }
            }
            // scratch must be big enough for the region
            if !st.direct {
                let decl = &prog.buffers[st.scratch.0];
                for d in 0..region.ndim() {
                    if region.extent(d) > decl.sizes[d] {
                        push(format!(
                            "tile {ti}: stage `{}` region {} exceeds scratch size \
                             {:?}",
                            st.name, region, decl.sizes
                        ));
                    }
                }
            }
        }
    }

    // Full-stored stages: stores must cover the domain exactly once, and be
    // disjoint across strips along dimension 0 (the slab dimension).
    for (k, st) in tg.stages.iter().enumerate() {
        let Some(_full) = st.full else { continue };
        if st.dom.is_empty() {
            continue;
        }
        // coverage via a point-count argument (exact cover ⇒ Σ|store| = |dom|
        // and every store ⊆ dom; overlaps would make the sum exceed it)
        let mut covered: i64 = 0;
        for t in &tg.tiles {
            if let Some(store) = &t.stores[k] {
                covered += store.volume();
                if !st.dom.contains_rect(store) {
                    push(format!(
                        "stage `{}` store {} outside domain",
                        st.name, store
                    ));
                }
            }
        }
        if covered != st.dom.volume() {
            push(format!(
                "stage `{}` stores cover {covered} of {} domain points \
                 (must be an exact partition)",
                st.name,
                st.dom.volume()
            ));
        }
        // strip-disjointness along dim 0
        let mut ranges: Vec<(usize, (i64, i64))> = Vec::new();
        for t in &tg.tiles {
            if let Some(store) = &t.stores[k] {
                if !store.is_empty() {
                    ranges.push((t.strip, store.range(0)));
                }
            }
        }
        for (i, &(s1, r1)) in ranges.iter().enumerate() {
            for &(s2, r2) in ranges.iter().skip(i + 1) {
                if s1 != s2 && r1.0 <= r2.1 && r2.0 <= r1.1 {
                    push(format!(
                        "stage `{}` rows {:?} (strip {s1}) and {:?} (strip {s2}) \
                         overlap across strips",
                        st.name, r1, r2
                    ));
                }
            }
        }
    }
}

fn validate_kernel(prog: &Program, k: &Kernel, push: &mut dyn FnMut(String)) {
    let mut defined = vec![false; k.nregs];
    for op in &k.ops {
        // SSA: operands defined before use, destination fresh
        let check_use = |r: polymage_vm::RegId, push: &mut dyn FnMut(String)| {
            if r.0 as usize >= k.nregs || !defined[r.0 as usize] {
                push(format!("kernel reads undefined register r{}", r.0));
            }
        };
        match op {
            Op::ConstF { .. } | Op::CoordF { .. } => {}
            Op::BinF { a, b, .. }
            | Op::CmpMask { a, b, .. }
            | Op::MaskAnd { a, b, .. }
            | Op::MaskOr { a, b, .. } => {
                check_use(*a, push);
                check_use(*b, push);
            }
            Op::UnF { a, .. }
            | Op::MaskNot { a, .. }
            | Op::CastRound { a, .. }
            | Op::CastSat { a, .. } => check_use(*a, push),
            Op::SelectF { mask, a, b, .. } => {
                check_use(*mask, push);
                check_use(*a, push);
                check_use(*b, push);
            }
            Op::Load { buf, plan, .. } => {
                if buf.0 >= prog.buffers.len() {
                    push(format!("kernel loads undeclared buffer {}", buf.0));
                } else if plan.len() != prog.buffers[buf.0].sizes.len() {
                    push(format!(
                        "kernel load plan rank {} != buffer `{}` rank {}",
                        plan.len(),
                        prog.buffers[buf.0].name,
                        prog.buffers[buf.0].sizes.len()
                    ));
                }
                for p in plan {
                    if let IdxPlan::Reg(r) = p {
                        check_use(*r, push);
                    }
                }
            }
        }
        let dst = op.dst();
        if dst.0 as usize >= k.nregs {
            push(format!("kernel writes out-of-range register r{}", dst.0));
        } else if defined[dst.0 as usize] {
            push(format!("kernel violates SSA: r{} written twice", dst.0));
        } else {
            defined[dst.0 as usize] = true;
        }
    }
    for o in &k.outs {
        if o.0 as usize >= k.nregs || !defined[o.0 as usize] {
            push(format!("kernel output r{} never defined", o.0));
        }
    }
}

/// Convenience: validates and panics with a readable report on failure
/// (used by tests).
pub fn assert_valid(prog: &Program) {
    let vs = validate_program(prog);
    assert!(
        vs.is_empty(),
        "program `{}` violates {} invariant(s):\n{}",
        prog.name,
        vs.len(),
        vs.iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymage_poly::Rect;
    use polymage_vm::{BufDecl, CaseExec, GroupExec, RegId, StageExec, TileWork};

    fn tiny_prog() -> Program {
        // single direct stage writing a 1-D buffer with 2 strips
        let kernel = Kernel {
            ops: vec![Op::ConstF {
                dst: RegId(0),
                val: 1.0,
            }],
            nregs: 1,
            meta: None,
            outs: vec![RegId(0)],
        };
        let buffers = vec![BufDecl {
            name: "out".into(),
            kind: BufKind::Full,
            sizes: vec![8],
            origin: vec![0],
        }];
        let stages = vec![StageExec {
            name: "out".into(),
            scratch: polymage_vm::BufId(0),
            full: Some(polymage_vm::BufId(0)),
            direct: true,
            sat: None,
            round: false,
            cases: vec![CaseExec {
                rect: Rect::new(vec![(0, 7)]),
                steps: vec![(1, 0)],
                kernel,
                mask: None,
            }],
            dom: Rect::new(vec![(0, 7)]),
            reads: vec![],
        }];
        let tiles = vec![
            TileWork {
                strip: 0,
                regions: vec![Rect::new(vec![(0, 3)])],
                stores: vec![Some(Rect::new(vec![(0, 3)]))],
            },
            TileWork {
                strip: 1,
                regions: vec![Rect::new(vec![(4, 7)])],
                stores: vec![Some(Rect::new(vec![(4, 7)]))],
            },
        ];
        let tg = TiledGroup::new(stages, tiles, 2, &buffers);
        Program {
            name: "v".into(),
            buffers,
            image_bufs: vec![],
            groups: vec![GroupExec {
                name: "g".into(),
                kind: GroupKind::Tiled(tg),
            }],
            outputs: vec![("out".into(), polymage_vm::BufId(0))],
            mode: polymage_vm::EvalMode::Vector,
            simd: polymage_vm::process_simd_level(),
            storage: polymage_vm::StoragePlan::run_scoped(1),
        }
    }

    #[test]
    fn valid_program_passes() {
        assert!(validate_program(&tiny_prog()).is_empty());
    }

    #[test]
    fn detects_overlapping_stores() {
        let mut p = tiny_prog();
        if let GroupKind::Tiled(tg) = &mut p.groups[0].kind {
            tg.tiles[1].stores[0] = Some(Rect::new(vec![(3, 7)]));
            tg.tiles[1].regions[0] = Rect::new(vec![(3, 7)]);
        }
        let vs = validate_program(&p);
        assert!(
            vs.iter().any(|v| v.message.contains("exact partition")),
            "{vs:?}"
        );
        assert!(
            vs.iter()
                .any(|v| v.message.contains("overlap across strips")),
            "{vs:?}"
        );
    }

    #[test]
    fn detects_region_outside_domain() {
        let mut p = tiny_prog();
        if let GroupKind::Tiled(tg) = &mut p.groups[0].kind {
            tg.tiles[0].regions[0] = Rect::new(vec![(-1, 3)]);
        }
        let vs = validate_program(&p);
        assert!(
            vs.iter().any(|v| v.message.contains("outside domain")),
            "{vs:?}"
        );
    }

    #[test]
    fn detects_ssa_violations() {
        let mut p = tiny_prog();
        if let GroupKind::Tiled(tg) = &mut p.groups[0].kind {
            tg.stages[0].cases[0].kernel = Kernel {
                ops: vec![
                    Op::ConstF {
                        dst: RegId(0),
                        val: 1.0,
                    },
                    Op::ConstF {
                        dst: RegId(0),
                        val: 2.0,
                    }, // double write
                ],
                nregs: 1,
                meta: None,
                outs: vec![RegId(0)],
            };
        }
        let vs = validate_program(&p);
        assert!(vs.iter().any(|v| v.message.contains("SSA")), "{vs:?}");
        // undefined use
        let mut p = tiny_prog();
        if let GroupKind::Tiled(tg) = &mut p.groups[0].kind {
            tg.stages[0].cases[0].kernel = Kernel {
                ops: vec![Op::UnF {
                    op: polymage_vm::UnF::Neg,
                    dst: RegId(1),
                    a: RegId(0), // never defined
                }],
                nregs: 2,
                meta: None,
                outs: vec![RegId(1)],
            };
        }
        let vs = validate_program(&p);
        assert!(
            vs.iter().any(|v| v.message.contains("undefined register")),
            "{vs:?}"
        );
    }
}
