//! A user-written pipeline that is *not* one of the paper's benchmarks:
//! Canny-style edge detection — Gaussian smoothing, Sobel gradients,
//! gradient magnitude/orientation, non-maximum suppression, and double
//! thresholding. Shows how the DSL's pieces (stencils, point-wise math,
//! `Select`-based data-dependent logic, piecewise cases) compose for a
//! realistic computer-vision task, and what the optimizer does with a
//! pipeline it has never seen.
//!
//! ```sh
//! cargo run --release --example edge_detect
//! ```

use polymage::core::{CompileOptions, Session};
use polymage::ir::*;
use polymage::poly::Rect;
use polymage::vm::Buffer;

fn build() -> Result<Pipeline, Box<dyn std::error::Error>> {
    let mut p = PipelineBuilder::new("edge_detect");
    let (r, c) = (p.param("R"), p.param("C"));
    let img = p.image("I", ScalarType::Float, vec![PAff::param(r), PAff::param(c)]);
    let (x, y) = (p.var("x"), p.var("y"));
    let interior = |off: i64| {
        [
            (x, Interval::new(PAff::cst(off), PAff::param(r) - 1 - off)),
            (y, Interval::new(PAff::cst(off), PAff::param(c) - 1 - off)),
        ]
    };

    // 1. Gaussian smoothing (separable would fuse too; 2-D for brevity)
    let smooth = p.func("smooth", &interior(2), ScalarType::Float);
    p.define(
        smooth,
        vec![Case::always(stencil(
            img,
            &[x, y],
            1.0 / 159.0,
            &[
                [2, 4, 5, 4, 2],
                [4, 9, 12, 9, 4],
                [5, 12, 15, 12, 5],
                [4, 9, 12, 9, 4],
                [2, 4, 5, 4, 2],
            ],
        ))],
    )?;

    // 2. Sobel gradients
    let gx = p.func("gx", &interior(3), ScalarType::Float);
    p.define(
        gx,
        vec![Case::always(stencil(
            smooth,
            &[x, y],
            1.0,
            &[[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]],
        ))],
    )?;
    let gy = p.func("gy", &interior(3), ScalarType::Float);
    p.define(
        gy,
        vec![Case::always(stencil(
            smooth,
            &[x, y],
            1.0,
            &[[-1, -2, -1], [0, 0, 0], [1, 2, 1]],
        ))],
    )?;

    // 3. magnitude (point-wise → inlined by the compiler)
    let at = |f: FuncId| Expr::at(f, [Expr::from(x), Expr::from(y)]);
    let mag = p.func("mag", &interior(3), ScalarType::Float);
    p.define(
        mag,
        vec![Case::always((at(gx) * at(gx) + at(gy) * at(gy)).sqrt())],
    )?;

    // 4. non-maximum suppression: keep the pixel only if it is the local
    //    maximum along its (quantized) gradient direction — data-dependent
    //    Select logic over the magnitude field.
    let nms = p.func("nms", &interior(4), ScalarType::Float);
    let m = |dx: i64, dy: i64| Expr::at(mag, [x + dx, y + dy]);
    let horiz = at(gx).abs().ge(at(gy).abs());
    let keep_h = m(0, 0).ge(m(0, -1)) & m(0, 0).ge(m(0, 1));
    let keep_v = m(0, 0).ge(m(-1, 0)) & m(0, 0).ge(m(1, 0));
    p.define(
        nms,
        vec![Case::always(Expr::select(
            (horiz.clone() & keep_h) | (!horiz & keep_v),
            m(0, 0),
            0.0,
        ))],
    )?;

    // 5. double threshold: strong = 1, weak = 0.5, rest = 0
    let edges = p.func("edges", &interior(4), ScalarType::Float);
    let v = Expr::at(nms, [Expr::from(x), Expr::from(y)]);
    p.define(
        edges,
        vec![Case::always(Expr::select(
            v.clone().ge(0.35),
            1.0,
            Expr::select(v.ge(0.15), 0.5, 0.0),
        ))],
    )?;

    Ok(p.finish(&[edges])?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipe = build()?;
    let (rows, cols) = (512i64, 512i64);
    let session = Session::with_threads(2);
    let opts = CompileOptions::optimized(vec![rows, cols]);
    let compiled = session.compile(&pipe, &opts)?;
    println!("--- optimizer report ---\n{}", compiled.report);

    // an input with clear structure: bright disc on a dark gradient
    let input = Buffer::zeros(Rect::new(vec![(0, rows - 1), (0, cols - 1)])).fill_with(|p| {
        let (dx, dy) = (p[0] as f32 - 256.0, p[1] as f32 - 256.0);
        let disc = if (dx * dx + dy * dy).sqrt() < 120.0 {
            0.8
        } else {
            0.1
        };
        disc + p[1] as f32 * 0.0003
    });
    let out = &session.run_compiled(&compiled, &[input])?[0];

    let strong = out.data.iter().filter(|&&v| v == 1.0).count();
    let weak = out.data.iter().filter(|&&v| v == 0.5).count();
    println!("strong edge pixels: {strong}, weak: {weak}");
    // the disc boundary is ~2π·120 ≈ 754 pixels; NMS thins it to ~1–2 px
    assert!(
        strong > 400 && strong < 4000,
        "edge census looks wrong: {strong}"
    );

    // sanity: edges form a ring — check a horizontal scan through the center
    let mut crossings = 0;
    let mut prev = 0.0;
    let (ylo, yhi) = out.rect.range(1);
    for yq in ylo..=yhi {
        let v = out.at(&[256, yq]);
        if (v == 1.0) != (prev == 1.0) {
            crossings += 1;
        }
        prev = v;
    }
    println!("edge crossings on the center scanline: {crossings}");
    assert!(
        crossings >= 2,
        "the disc boundary must be crossed at least twice"
    );
    Ok(())
}
