//! Concrete integer boxes (hyper-rectangles).

use std::fmt;

/// An axis-aligned integer box: per dimension an inclusive `[lo, hi]` range.
///
/// A dimension with `lo > hi` makes the whole box empty. `Rect` is the
/// concrete (parameter-substituted) counterpart of a function domain and the
/// unit of work of the tiled executor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rect {
    dims: Vec<(i64, i64)>,
}

impl Rect {
    /// Creates a box from per-dimension inclusive ranges.
    ///
    /// Empty ranges are canonicalized to `(lo, lo − 1)` so that two empty
    /// boxes with the same lower corner compare equal regardless of how
    /// negative their raw extents were.
    pub fn new(dims: Vec<(i64, i64)>) -> Rect {
        Rect {
            dims: dims
                .into_iter()
                .map(|(lo, hi)| (lo, hi.max(lo - 1)))
                .collect(),
        }
    }

    /// A zero-dimensional box (contains exactly the empty tuple).
    pub fn nullary() -> Rect {
        Rect { dims: Vec::new() }
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// The inclusive range of dimension `d`.
    pub fn range(&self, d: usize) -> (i64, i64) {
        self.dims[d]
    }

    /// All ranges.
    pub fn ranges(&self) -> &[(i64, i64)] {
        &self.dims
    }

    /// Mutable access to a dimension's range.
    pub fn range_mut(&mut self, d: usize) -> &mut (i64, i64) {
        &mut self.dims[d]
    }

    /// Whether the box contains no points.
    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(|&(lo, hi)| lo > hi)
    }

    /// Number of points along dimension `d` (0 if that range is empty).
    pub fn extent(&self, d: usize) -> i64 {
        let (lo, hi) = self.dims[d];
        (hi - lo + 1).max(0)
    }

    /// Total number of points.
    pub fn volume(&self) -> i64 {
        if self.is_empty() {
            return 0;
        }
        self.dims.iter().map(|&(lo, hi)| hi - lo + 1).product()
    }

    /// Per-dimension intersection.
    ///
    /// # Panics
    ///
    /// Panics if dimensionalities differ.
    pub fn intersect(&self, other: &Rect) -> Rect {
        assert_eq!(
            self.ndim(),
            other.ndim(),
            "intersecting boxes of different rank"
        );
        Rect {
            dims: self
                .dims
                .iter()
                .zip(&other.dims)
                .map(|(&(a, b), &(c, d))| (a.max(c), b.min(d)))
                .collect(),
        }
    }

    /// Smallest box containing both (per-dimension hull).
    ///
    /// # Panics
    ///
    /// Panics if dimensionalities differ.
    pub fn hull(&self, other: &Rect) -> Rect {
        assert_eq!(self.ndim(), other.ndim(), "hull of boxes of different rank");
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        Rect {
            dims: self
                .dims
                .iter()
                .zip(&other.dims)
                .map(|(&(a, b), &(c, d))| (a.min(c), b.max(d)))
                .collect(),
        }
    }

    /// Whether `pt` lies inside the box.
    pub fn contains(&self, pt: &[i64]) -> bool {
        pt.len() == self.ndim()
            && self
                .dims
                .iter()
                .zip(pt)
                .all(|(&(lo, hi), &p)| lo <= p && p <= hi)
    }

    /// Whether `other` is entirely inside `self` (empty boxes are contained
    /// in everything).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        if other.is_empty() {
            return true;
        }
        self.ndim() == other.ndim()
            && self
                .dims
                .iter()
                .zip(&other.dims)
                .all(|(&(a, b), &(c, d))| a <= c && d <= b)
    }

    /// Grows every dimension by `amount` on both sides.
    pub fn dilate(&self, amount: i64) -> Rect {
        Rect {
            dims: self
                .dims
                .iter()
                .map(|&(lo, hi)| (lo - amount, hi + amount))
                .collect(),
        }
    }

    /// Iterates over all points in row-major order (first dim outermost).
    ///
    /// Intended for tests and small domains.
    pub fn points(&self) -> impl Iterator<Item = Vec<i64>> + '_ {
        let ndim = self.ndim();
        let empty = self.is_empty();
        let mut cur: Vec<i64> = self.dims.iter().map(|&(lo, _)| lo).collect();
        let mut done = empty && ndim > 0;
        let mut first = true;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            if first {
                first = false;
                if ndim == 0 {
                    done = true;
                    return Some(Vec::new());
                }
                return Some(cur.clone());
            }
            // advance odometer
            for d in (0..ndim).rev() {
                if cur[d] < self.dims[d].1 {
                    cur[d] += 1;
                    for (c, dim) in cur.iter_mut().zip(&self.dims).skip(d + 1) {
                        *c = dim.0;
                    }
                    return Some(cur.clone());
                }
            }
            done = true;
            None
        })
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, &(lo, hi)) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, " × ")?;
            }
            write!(f, "[{lo},{hi}]")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_extent() {
        let r = Rect::new(vec![(0, 3), (1, 2)]);
        assert_eq!(r.volume(), 8);
        assert_eq!(r.extent(0), 4);
        assert_eq!(r.extent(1), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn empty_behaviour() {
        let r = Rect::new(vec![(3, 1), (0, 5)]);
        assert!(r.is_empty());
        assert_eq!(r.volume(), 0);
        assert_eq!(r.extent(0), 0);
    }

    #[test]
    fn intersect_and_hull() {
        let a = Rect::new(vec![(0, 10)]);
        let b = Rect::new(vec![(5, 15)]);
        assert_eq!(a.intersect(&b), Rect::new(vec![(5, 10)]));
        assert_eq!(a.hull(&b), Rect::new(vec![(0, 15)]));
        let e = Rect::new(vec![(7, 3)]);
        assert_eq!(a.hull(&e), a);
    }

    #[test]
    fn containment() {
        let r = Rect::new(vec![(0, 4), (0, 4)]);
        assert!(r.contains(&[0, 4]));
        assert!(!r.contains(&[0, 5]));
        assert!(r.contains_rect(&Rect::new(vec![(1, 2), (1, 2)])));
        assert!(!r.contains_rect(&Rect::new(vec![(1, 5), (1, 2)])));
        assert!(r.contains_rect(&Rect::new(vec![(3, 2), (0, 0)])));
    }

    #[test]
    fn dilation() {
        let r = Rect::new(vec![(2, 3)]).dilate(2);
        assert_eq!(r, Rect::new(vec![(0, 5)]));
    }

    #[test]
    fn point_iteration_row_major() {
        let r = Rect::new(vec![(0, 1), (5, 6)]);
        let pts: Vec<_> = r.points().collect();
        assert_eq!(pts, vec![vec![0, 5], vec![0, 6], vec![1, 5], vec![1, 6]]);
    }

    #[test]
    fn point_iteration_empty_and_nullary() {
        let r = Rect::new(vec![(1, 0)]);
        assert_eq!(r.points().count(), 0);
        assert_eq!(Rect::nullary().points().count(), 1);
    }
}
